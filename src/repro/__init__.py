"""repro — a low-power VLSI optimization framework.

This package reproduces the CAD system surveyed in Devadas & Malik,
"A Survey of Optimization Techniques Targeting Low Power VLSI Circuits"
(DAC 1995).  It provides, from scratch:

* a two-level and multi-level Boolean logic engine (``repro.logic``),
* a hash-consed ROBDD package (``repro.bdd``),
* zero-delay and event-driven gate-level simulators (``repro.sim``),
* switching-activity estimation and CMOS power models (``repro.power``),
* a generic technology library (``repro.library``),
* the surveyed optimizations at the circuit, logic, sequential,
  datapath, architecture and software levels (``repro.opt``,
  ``repro.arch``, ``repro.sw``),
* flow drivers and reporting (``repro.core``).
"""

__version__ = "1.0.0"

from repro.logic.netlist import Network, Latch
from repro.power.model import PowerParameters, PowerReport

__all__ = ["Network", "Latch", "PowerParameters", "PowerReport", "__version__"]
