"""Formal equivalence checking for combinational and sequential nets."""

from repro.verify.equivalence import (combinational_equivalent,
                                      sequential_equivalent,
                                      EquivalenceResult)

__all__ = ["combinational_equivalent", "sequential_equivalent",
           "EquivalenceResult"]
