"""Equivalence checking.

The optimization passes in this framework are all supposed to preserve
behaviour; random simulation catches most breakage cheaply, but the
sequential transformations (clock gating, precomputation, product
sharing inside FSMs) deserve *exhaustive* verification:

* :func:`combinational_equivalent` — canonical-BDD miter over the
  primary inputs (exact).
* :func:`sequential_equivalent` — product-machine reachability: BFS
  over joint (state_a, state_b) pairs from the reset states, checking
  output equality for **every** input minterm in every reachable joint
  state.  Exact for machines whose reachable joint state space and
  input alphabet are enumerable — the regime of the surveyed FSM
  optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.logic.netlist import Network


@dataclass
class EquivalenceResult:
    """Outcome of a sequential equivalence check."""

    equivalent: bool
    joint_states_explored: int
    counterexample: Optional[Dict[str, object]] = None
    #: counterexample fields: "state_a", "state_b", "input" (minterm),
    #: "output" (name of the differing output pair)

    def __bool__(self) -> bool:
        return self.equivalent


def combinational_equivalent(a: Network, b: Network) -> bool:
    """Exact combinational equivalence (canonical BDDs, shared manager).

    Outputs are matched positionally; inputs by name.
    """
    from repro.sim.functional import verify_equivalence_exact

    return verify_equivalence_exact(a, b)


def sequential_equivalent(a: Network, b: Network,
                          max_joint_states: int = 20000
                          ) -> EquivalenceResult:
    """Product-machine equivalence from the reset states.

    Both machines must have the same primary-input names; outputs are
    compared positionally.  Latch enables are supported.  Raises
    ``RuntimeError`` if the joint reachable space exceeds
    ``max_joint_states``.
    """
    if set(a.inputs) != set(b.inputs):
        raise ValueError("networks have different primary inputs")
    if len(a.outputs) != len(b.outputs):
        return EquivalenceResult(False, 0,
                                 {"reason": "output count differs"})
    pis = sorted(a.inputs)
    n_in = len(pis)
    num_minterms = 1 << n_in
    mask = (1 << num_minterms) - 1
    input_words = {}
    for i, pi in enumerate(pis):
        w = 0
        for m in range(num_minterms):
            if (m >> i) & 1:
                w |= 1 << m
        input_words[pi] = w

    latches_a = [l.output for l in a.latches]
    latches_b = [l.output for l in b.latches]

    def step(net: Network, latch_names: List[str],
             state: Tuple[int, ...]):
        state_words = {name: (mask if bit else 0)
                       for name, bit in zip(latch_names, state)}
        nxt, values = net.step_words(state_words, input_words, mask)
        out_words = [values[o] for o in net.outputs]
        succs = []
        for m in range(num_minterms):
            succs.append(tuple((nxt[l] >> m) & 1 for l in latch_names))
        return out_words, succs

    init = (tuple(l.init for l in a.latches),
            tuple(l.init for l in b.latches))
    seen = {init}
    frontier = [init]
    explored = 0
    while frontier:
        nxt_frontier = []
        for sa, sb in frontier:
            explored += 1
            outs_a, succs_a = step(a, latches_a, sa)
            outs_b, succs_b = step(b, latches_b, sb)
            for idx, (wa, wb) in enumerate(zip(outs_a, outs_b)):
                diff = wa ^ wb
                if diff:
                    m = (diff & -diff).bit_length() - 1
                    return EquivalenceResult(
                        False, explored,
                        {"state_a": sa, "state_b": sb, "input": m,
                         "output": (a.outputs[idx], b.outputs[idx])})
            for m in range(num_minterms):
                joint = (succs_a[m], succs_b[m])
                if joint not in seen:
                    if len(seen) >= max_joint_states:
                        raise RuntimeError(
                            "joint state space exceeds "
                            f"{max_joint_states}")
                    seen.add(joint)
                    nxt_frontier.append(joint)
        frontier = nxt_frontier
    return EquivalenceResult(True, explored)
