"""Cold scheduling ([40] Su/Tsui/Despain; Section V).

Reorders the instructions of each basic block — respecting data
dependences — to minimize the control-path switching, modelled as the
Hamming distance between consecutive opcode encodings.  The experiments
contrast a DSP profile (strong inter-instruction overhead, scheduling
pays) with a big CPU (overhead marginal), reproducing the paper's
"may not be an important issue for large general purpose CPUs".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sw.isa import Instruction, OPCODES, Program


def basic_blocks(prog: Program) -> List[Tuple[int, int]]:
    """(start, end) index ranges of branch-free, label-free regions."""
    blocks: List[Tuple[int, int]] = []
    start = 0
    for i, ins in enumerate(prog.instructions):
        boundary_before = ins.label is not None
        boundary_after = ins.is_branch() or ins.op == "halt"
        if boundary_before and i > start:
            blocks.append((start, i))
            start = i
        if boundary_after:
            blocks.append((start, i + 1))
            start = i + 1
    if start < len(prog.instructions):
        blocks.append((start, len(prog.instructions)))
    return [b for b in blocks if b[1] > b[0]]


def control_path_switching(trace: Sequence[str]) -> int:
    """Total opcode-encoding bit flips along an instruction stream."""
    total = 0
    prev: Optional[int] = None
    for op in trace:
        enc = OPCODES[op]
        if prev is not None:
            total += (prev ^ enc).bit_count()
        prev = enc
    return total


def _dependencies(block: List[Instruction]) -> List[Set[int]]:
    """deps[i] = indices that must execute before instruction i."""
    deps: List[Set[int]] = [set() for _ in block]
    last_write: Dict[str, int] = {}
    last_reads: Dict[str, List[int]] = {}
    last_mem: Optional[int] = None
    for i, ins in enumerate(block):
        for r in ins.reads():
            if r in last_write:
                deps[i].add(last_write[r])           # RAW
        for w in ins.writes():
            if w in last_write:
                deps[i].add(last_write[w])           # WAW
            for rd in last_reads.get(w, ()):
                deps[i].add(rd)                      # WAR
        if ins.is_memory():
            if last_mem is not None:
                deps[i].add(last_mem)                # memory order
            last_mem = i
        for r in ins.reads():
            last_reads.setdefault(r, []).append(i)
        for w in ins.writes():
            last_write[w] = i
            last_reads[w] = []
        deps[i].discard(i)
    return deps


def cold_schedule_block(block: List[Instruction],
                        prev_op: Optional[str] = None
                        ) -> List[Instruction]:
    """Greedy list schedule minimizing adjacent opcode Hamming distance."""
    n = len(block)
    deps = _dependencies(block)
    remaining = set(range(n))
    done: Set[int] = set()
    out: List[Instruction] = []
    last_enc = OPCODES[prev_op] if prev_op else None
    while remaining:
        ready = [i for i in remaining if deps[i] <= done]
        if last_enc is None:
            # Keep the original first instruction to preserve labels.
            choice = min(ready)
        else:
            choice = min(ready,
                         key=lambda i: (bin(last_enc ^
                                            block[i].encoding())
                                        .count("1"), i))
        out.append(block[choice])
        last_enc = block[choice].encoding()
        remaining.discard(choice)
        done.add(choice)
    # Labels must stay on the first instruction of the block.
    labels = [ins.label for ins in block if ins.label]
    if labels:
        for ins in out:
            ins.label = None
        out[0].label = labels[0]
    return out


def cold_schedule(prog: Program) -> Program:
    """Apply cold scheduling to every basic block of a program."""
    src = prog.copy()
    out_instrs: List[Instruction] = list(src.instructions)
    prev_op: Optional[str] = None
    for start, end in basic_blocks(src):
        block = out_instrs[start:end]
        # The trailing branch/halt must stay last.
        tail: List[Instruction] = []
        if block and (block[-1].is_branch() or block[-1].op == "halt"):
            tail = [block[-1]]
            block = block[:-1]
        if len(block) > 1:
            block = cold_schedule_block(block, prev_op)
        out_instrs[start:end] = block + tail
        if end - 1 >= 0 and out_instrs[end - 1:end]:
            prev_op = out_instrs[end - 1].op
    return Program(out_instrs, name=prog.name + "_cold")
