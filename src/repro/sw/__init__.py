"""System/software level (Section V): instruction-level power."""

from repro.sw.isa import Instruction, Program, OPCODES, assemble
from repro.sw.cpu import CPU, CPUProfile, ExecutionResult, \
    big_cpu_profile, dsp_profile
from repro.sw.power_model import InstructionPowerModel, \
    fit_instruction_model
from repro.sw.compile import linear_scan_allocate, strength_reduce, \
    peephole_mac
from repro.sw.schedule import cold_schedule, basic_blocks, \
    control_path_switching

__all__ = ["Instruction", "Program", "OPCODES", "assemble", "CPU",
           "CPUProfile", "ExecutionResult", "big_cpu_profile",
           "dsp_profile", "InstructionPowerModel",
           "fit_instruction_model", "linear_scan_allocate",
           "strength_reduce", "peephole_mac", "cold_schedule",
           "basic_blocks", "control_path_switching"]
