"""A small RISC/DSP instruction set.

Stands in for the commercial CPUs of [46]/[45] (see DESIGN.md): 16
general registers, word-addressed memory, a multiply-accumulate for the
DSP experiments, and fixed opcode encodings so control-path switching
(the Hamming distance between consecutive opcodes, [40]) is measurable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


#: Opcode binary encodings.  Related operations share high bits so a
#: smart scheduler has real Hamming structure to exploit.
OPCODES: Dict[str, int] = {
    "nop":  0b000000,
    "li":   0b000001,
    "mov":  0b000011,
    "add":  0b010000,
    "sub":  0b010001,
    "and":  0b010100,
    "or":   0b010101,
    "xor":  0b010110,
    "shl":  0b011000,
    "shr":  0b011001,
    "mul":  0b011100,
    "mac":  0b010010,   # one bit from add: MAC slots into accumulate loops
    "ld":   0b100000,
    "st":   0b100001,
    "beq":  0b110000,
    "bne":  0b110001,
    "blt":  0b110010,
    "jmp":  0b110100,
    "halt": 0b111111,
}

NUM_REGISTERS = 16


@dataclass
class Instruction:
    """One instruction; unused fields stay None.

    Register operands are strings like ``"r3"`` (or virtual registers
    ``"v12"`` before allocation).  ``target`` is a label for branches.
    """

    op: str
    dst: Optional[str] = None
    src1: Optional[str] = None
    src2: Optional[str] = None
    imm: Optional[int] = None
    target: Optional[str] = None
    label: Optional[str] = None   # label *on* this instruction

    def reads(self) -> List[str]:
        regs = []
        if self.op == "st":
            # st value, addr, offset-imm
            for r in (self.dst, self.src1):
                if r is not None:
                    regs.append(r)
        else:
            for r in (self.src1, self.src2):
                if r is not None:
                    regs.append(r)
            if self.op == "mac" and self.dst is not None:
                regs.append(self.dst)   # accumulator read
            if self.op in ("beq", "bne", "blt") and self.dst is not None:
                regs.append(self.dst)
        return regs

    def writes(self) -> List[str]:
        if self.op in ("st", "beq", "bne", "blt", "jmp", "nop", "halt"):
            return []
        return [self.dst] if self.dst is not None else []

    def is_branch(self) -> bool:
        return self.op in ("beq", "bne", "blt", "jmp")

    def is_memory(self) -> bool:
        return self.op in ("ld", "st")

    def encoding(self) -> int:
        return OPCODES[self.op]

    def __str__(self) -> str:
        parts = [self.op]
        for f in (self.dst, self.src1, self.src2):
            if f is not None:
                parts.append(f)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(self.target)
        text = " ".join(parts)
        return f"{self.label}: {text}" if self.label else text


class Program:
    """A list of instructions with label resolution."""

    def __init__(self, instructions: Optional[Sequence[Instruction]]
                 = None, name: str = "prog"):
        self.name = name
        self.instructions: List[Instruction] = \
            list(instructions) if instructions else []

    def append(self, instr: Instruction) -> Instruction:
        self.instructions.append(instr)
        return instr

    def labels(self) -> Dict[str, int]:
        return {ins.label: i for i, ins in enumerate(self.instructions)
                if ins.label}

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, i: int) -> Instruction:
        return self.instructions[i]

    def copy(self) -> "Program":
        return Program([Instruction(i.op, i.dst, i.src1, i.src2, i.imm,
                                    i.target, i.label)
                        for i in self.instructions], self.name)

    def listing(self) -> str:
        return "\n".join(str(i) for i in self.instructions)


_REG = re.compile(r"^[rv]\d+$")


def assemble(text: str, name: str = "prog") -> Program:
    """Tiny assembler.

    Syntax, one instruction per line (``;`` comments)::

        loop:  add r1, r2, r3
               li  r4, 42
               ld  r5, r6, 0      ; r5 = mem[r6 + 0]
               st  r5, r6, 4      ; mem[r6 + 4] = r5
               beq r1, r2, loop
               halt
    """
    prog = Program(name=name)
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        label = None
        if ":" in line:
            label, line = line.split(":", 1)
            label = label.strip()
            line = line.strip()
            if not line:
                line = "nop"
        tokens = [t.strip() for t in re.split(r"[,\s]+", line) if t.strip()]
        op = tokens[0]
        if op not in OPCODES:
            raise ValueError(f"unknown opcode {op!r}")
        args = tokens[1:]
        ins = Instruction(op, label=label)
        if op in ("add", "sub", "and", "or", "xor", "mul", "mac"):
            ins.dst, ins.src1, ins.src2 = args
        elif op in ("shl", "shr"):
            ins.dst, ins.src1 = args[0], args[1]
            ins.imm = int(args[2])
        elif op == "li":
            ins.dst, ins.imm = args[0], int(args[1])
        elif op == "mov":
            ins.dst, ins.src1 = args
        elif op in ("ld", "st"):
            ins.dst, ins.src1 = args[0], args[1]
            ins.imm = int(args[2]) if len(args) > 2 else 0
        elif op in ("beq", "bne", "blt"):
            ins.dst, ins.src1, ins.target = args
        elif op == "jmp":
            ins.target = args[0]
        elif op in ("nop", "halt"):
            pass
        for r in (ins.dst, ins.src1, ins.src2):
            if r is not None and not _REG.match(r):
                raise ValueError(f"bad register {r!r} in {line!r}")
        prog.append(ins)
    return prog
