"""Sample kernels for the software-power experiments.

Programs are written with virtual registers (``v*``) so the register
allocator can be run with different register budgets, and in an
unfused form so strength reduction / MAC packing have work to do.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sw.isa import Instruction, Program


def dot_product(n: int) -> Tuple[Program, Dict[int, int], int]:
    """Unrolled n-element dot product.

    Returns (program, initial memory, expected result).  Vectors live
    at addresses 0.. and 100..; the result is stored to address 200.
    """
    memory = {}
    expected = 0
    for i in range(n):
        a, b = i + 1, 2 * i + 1
        memory[i] = a
        memory[100 + i] = b
        expected += a * b
    prog = Program(name=f"dot{n}")
    prog.append(Instruction("li", dst="v0", imm=0))       # acc
    for i in range(n):
        prog.append(Instruction("li", dst="v1", imm=i))
        prog.append(Instruction("ld", dst="v2", src1="v1", imm=0))
        prog.append(Instruction("li", dst="v3", imm=100 + i))
        prog.append(Instruction("ld", dst="v4", src1="v3", imm=0))
        prog.append(Instruction("mul", dst="v5", src1="v2", src2="v4"))
        prog.append(Instruction("add", dst="v0", src1="v0", src2="v5"))
    prog.append(Instruction("li", dst="v6", imm=200))
    prog.append(Instruction("st", dst="v0", src1="v6", imm=0))
    prog.append(Instruction("halt"))
    return prog, memory, expected


def scale_by_constant(n: int, constant: int
                      ) -> Tuple[Program, Dict[int, int], List[int]]:
    """y[i] = constant · x[i] — strength-reduction workload when the
    constant is a power of two."""
    memory = {i: i + 3 for i in range(n)}
    expected = [constant * (i + 3) for i in range(n)]
    prog = Program(name=f"scale{n}x{constant}")
    prog.append(Instruction("li", dst="v9", imm=constant))
    for i in range(n):
        prog.append(Instruction("li", dst="v1", imm=i))
        prog.append(Instruction("ld", dst="v2", src1="v1", imm=0))
        prog.append(Instruction("mul", dst="v3", src1="v2", src2="v9"))
        prog.append(Instruction("li", dst="v4", imm=300 + i))
        prog.append(Instruction("st", dst="v3", src1="v4", imm=0))
    prog.append(Instruction("halt"))
    return prog, memory, expected


def fir_kernel(taps: int) -> Tuple[Program, Dict[int, int], int]:
    """One FIR output sample: y = Σ c_i · x_i (unrolled, MAC-packable)."""
    memory = {}
    expected = 0
    for i in range(taps):
        c, x = i + 1, (7 * i + 2) % 16
        memory[i] = c
        memory[50 + i] = x
        expected += c * x
    prog = Program(name=f"fir{taps}")
    prog.append(Instruction("li", dst="v0", imm=0))
    for i in range(taps):
        prog.append(Instruction("li", dst="v1", imm=i))
        prog.append(Instruction("ld", dst="v2", src1="v1", imm=0))
        prog.append(Instruction("li", dst="v3", imm=50 + i))
        prog.append(Instruction("ld", dst="v4", src1="v3", imm=0))
        prog.append(Instruction("mul", dst="v5", src1="v2", src2="v4"))
        prog.append(Instruction("add", dst="v0", src1="v0", src2="v5"))
    prog.append(Instruction("li", dst="v6", imm=99))
    prog.append(Instruction("st", dst="v0", src1="v6", imm=0))
    prog.append(Instruction("halt"))
    return prog, memory, expected


def linear_search(n: int, target_index: int
                  ) -> Tuple[Program, Dict[int, int], int]:
    """O(n) scan of a sorted array for a key (algorithm-choice study,
    [49]).  The found index is stored at address 500."""
    memory = {i: 10 * i + 5 for i in range(n)}
    key = memory[target_index]
    prog = Program(name=f"lsearch{n}")
    prog.append(Instruction("li", dst="r1", imm=0))        # index
    prog.append(Instruction("li", dst="r2", imm=key))
    prog.append(Instruction("li", dst="r3", imm=1))
    prog.append(Instruction("li", dst="r4", imm=n))
    loop = Instruction("ld", dst="r5", src1="r1", imm=0, label="loop")
    prog.append(loop)
    prog.append(Instruction("beq", dst="r5", src1="r2", target="found"))
    prog.append(Instruction("add", dst="r1", src1="r1", src2="r3"))
    prog.append(Instruction("blt", dst="r1", src1="r4", target="loop"))
    prog.append(Instruction("li", dst="r1", imm=-1, label="notfound"))
    found = Instruction("li", dst="r6", imm=500)
    found.label = "found"
    prog.append(found)
    prog.append(Instruction("st", dst="r1", src1="r6", imm=0))
    prog.append(Instruction("halt"))
    return prog, memory, target_index


def binary_search(n: int, target_index: int
                  ) -> Tuple[Program, Dict[int, int], int]:
    """O(log n) search of the same sorted array — fewer memory touches,
    hence (per [46]) lower energy despite the heavier loop body."""
    memory = {i: 10 * i + 5 for i in range(n)}
    key = memory[target_index]
    prog = Program(name=f"bsearch{n}")
    prog.append(Instruction("li", dst="r1", imm=0))        # lo
    prog.append(Instruction("li", dst="r2", imm=n - 1))    # hi
    prog.append(Instruction("li", dst="r3", imm=key))
    prog.append(Instruction("li", dst="r4", imm=1))
    loop = Instruction("blt", dst="r2", src1="r1", target="notfound")
    loop.label = "loop"
    prog.append(loop)
    prog.append(Instruction("add", dst="r5", src1="r1", src2="r2"))
    prog.append(Instruction("shr", dst="r5", src1="r5", imm=1))  # mid
    prog.append(Instruction("ld", dst="r6", src1="r5", imm=0))
    prog.append(Instruction("beq", dst="r6", src1="r3",
                            target="found"))
    prog.append(Instruction("blt", dst="r6", src1="r3",
                            target="golow"))
    # key < mem[mid]: hi = mid - 1
    prog.append(Instruction("sub", dst="r2", src1="r5", src2="r4"))
    prog.append(Instruction("jmp", target="loop"))
    golow = Instruction("add", dst="r1", src1="r5", src2="r4")
    golow.label = "golow"                                  # lo = mid+1
    prog.append(golow)
    prog.append(Instruction("jmp", target="loop"))
    nf = Instruction("li", dst="r5", imm=-1)
    nf.label = "notfound"
    prog.append(nf)
    found = Instruction("li", dst="r7", imm=500)
    found.label = "found"
    prog.append(found)
    prog.append(Instruction("st", dst="r5", src1="r7", imm=0))
    prog.append(Instruction("halt"))
    return prog, memory, target_index


def mixed_block(n: int = 12) -> Program:
    """A dependency-light straight-line block with diverse opcodes —
    the cold-scheduling stress case (original order alternates opcode
    families maximally)."""
    prog = Program(name="mixed")
    ops = ["add", "ld", "xor", "st", "sub", "ld", "or", "st",
           "and", "ld", "add", "st"]
    prog.append(Instruction("li", dst="r1", imm=1))
    prog.append(Instruction("li", dst="r2", imm=2))
    for i in range(n):
        op = ops[i % len(ops)]
        dst = f"r{3 + (i % 8)}"
        if op in ("add", "sub", "xor", "or", "and"):
            prog.append(Instruction(op, dst=dst, src1="r1", src2="r2"))
        elif op == "ld":
            prog.append(Instruction("ld", dst=dst, src1="r1", imm=i))
        else:
            prog.append(Instruction("st", dst="r2", src1="r1", imm=i))
    prog.append(Instruction("halt"))
    return prog
