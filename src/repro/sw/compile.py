"""Compilation choices that change software energy ([45]; Section V).

* :func:`linear_scan_allocate` — register allocation with spilling.
  Register operands are much cheaper than memory operands, so the
  number of architectural registers made available directly moves the
  program's energy (the paper's register-allocation observation).
* :func:`strength_reduce` — replace multiplies by constant powers of
  two with shifts (instruction selection: cheaper opcodes, same result).
* :func:`peephole_mac` — pack a multiply feeding an add into a single
  MAC (the DSP instruction-pairing optimization of [23]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sw.isa import Instruction, Program


def _virtuals(prog: Program) -> List[str]:
    seen: List[str] = []
    for ins in prog:
        for r in list(ins.reads()) + list(ins.writes()):
            if r.startswith("v") and r not in seen:
                seen.append(r)
    return seen


def _live_ranges(prog: Program) -> Dict[str, Tuple[int, int]]:
    ranges: Dict[str, Tuple[int, int]] = {}
    for i, ins in enumerate(prog):
        for r in list(ins.reads()) + list(ins.writes()):
            if not r.startswith("v"):
                continue
            if r not in ranges:
                ranges[r] = (i, i)
            else:
                ranges[r] = (ranges[r][0], i)
    return ranges


def linear_scan_allocate(prog: Program, num_regs: int,
                         spill_base: int = 0x1000,
                         reserved: Tuple[str, str] = ("r14", "r15")
                         ) -> Program:
    """Map virtual registers (``v*``) to ``r0..r{num_regs-1}``.

    Straight-line programs only (branches to labels are allowed but
    live ranges are computed linearly — adequate for the kernel loops
    used in the experiments).  Virtuals that do not fit are *spilled*:
    every use loads from a dedicated stack slot and every definition
    stores back, through the reserved scratch registers.
    """
    if num_regs < 1:
        raise ValueError("need at least one allocatable register")
    ranges = _live_ranges(prog)
    order = sorted(ranges, key=lambda v: ranges[v][0])
    pool = [f"r{i}" for i in range(num_regs)
            if f"r{i}" not in reserved]
    active: List[Tuple[int, str, str]] = []   # (end, virtual, phys)
    assignment: Dict[str, Optional[str]] = {}
    slots: Dict[str, int] = {}
    for v in order:
        start, end = ranges[v]
        active = [a for a in active if a[0] >= start]
        used = {phys for _e, _v, phys in active if _e >= start}
        free = [p for p in pool if p not in used]
        if free:
            phys = free[0]
            assignment[v] = phys
            active.append((end, v, phys))
        else:
            assignment[v] = None
            slots[v] = spill_base + 4 * len(slots)

    out = Program(name=prog.name + f"_r{num_regs}")
    scratch0, scratch1 = reserved
    for ins in prog:
        new = Instruction(ins.op, ins.dst, ins.src1, ins.src2, ins.imm,
                          ins.target, ins.label)
        loads: List[Instruction] = []
        stores: List[Instruction] = []
        scratches = [scratch0, scratch1]

        def map_read(r: Optional[str]) -> Optional[str]:
            if r is None or not r.startswith("v"):
                return r
            phys = assignment[r]
            if phys is not None:
                return phys
            s = scratches.pop(0)
            loads.append(Instruction("li", dst=s, imm=slots[r]))
            loads.append(Instruction("ld", dst=s, src1=s, imm=0))
            return s

        # Map reads first (the write may reuse a scratch afterwards).
        read_set = set(new.reads())
        if new.op == "st":
            new.dst = map_read(new.dst)
            new.src1 = map_read(new.src1)
        else:
            new.src1 = map_read(new.src1)
            new.src2 = map_read(new.src2)
            if new.op == "mac" and new.dst in read_set:
                new.dst = map_read(new.dst)
        for w in list(ins.writes()):
            if not w.startswith("v"):
                continue
            phys = assignment[w]
            if phys is not None:
                new.dst = phys
            else:
                # Write through a scratch, then store to the slot.
                s = scratch0
                new.dst = s
                stores.append(Instruction("li", dst=scratch1,
                                          imm=slots[w]))
                stores.append(Instruction("st", dst=s, src1=scratch1,
                                          imm=0))
        if loads and loads[0].label is None and new.label is not None:
            loads[0].label, new.label = new.label, None
        for l in loads:
            out.append(l)
        out.append(new)
        for s in stores:
            out.append(s)
    return out


def strength_reduce(prog: Program) -> Program:
    """Replace ``mul`` by a power-of-two constant with a shift.

    Detects the idiom ``li rK, 2^n`` followed (anywhere later, with rK
    unmodified) by ``mul rd, rs, rK``.
    """
    out = prog.copy()
    const_val: Dict[str, int] = {}
    for ins in out:
        if ins.op == "li":
            const_val[ins.dst] = ins.imm or 0
            continue
        if ins.op == "mul":
            for operand, other in ((ins.src2, ins.src1),
                                   (ins.src1, ins.src2)):
                v = const_val.get(operand)
                if v is not None and v > 0 and (v & (v - 1)) == 0:
                    ins.op = "shl"
                    ins.src1 = other
                    ins.src2 = None
                    ins.imm = v.bit_length() - 1
                    break
        for w in ins.writes():
            const_val.pop(w, None)
        if ins.is_branch():
            const_val.clear()
    return out


def peephole_mac(prog: Program) -> Program:
    """Fuse ``mul t, a, b`` + ``add acc, acc, t`` into
    ``mac acc, a, b`` when ``t`` dies at the add."""
    src = prog.copy()
    out = Program(name=prog.name + "_mac")
    i = 0
    instrs = src.instructions
    while i < len(instrs):
        ins = instrs[i]
        nxt = instrs[i + 1] if i + 1 < len(instrs) else None
        def dead_after(reg: str, start: int) -> bool:
            """True if ``reg`` is redefined before any later read."""
            for later in instrs[start:]:
                if reg in later.reads():
                    return False
                if reg in later.writes():
                    return True
            return True

        fusible = (
            ins.op == "mul" and nxt is not None and nxt.op == "add" and
            nxt.label is None and
            ins.dst in (nxt.src1, nxt.src2) and
            nxt.dst in (nxt.src1, nxt.src2) and nxt.dst != ins.dst and
            dead_after(ins.dst, i + 2))
        if fusible:
            out.append(Instruction("mac", dst=nxt.dst, src1=ins.src1,
                                   src2=ins.src2, label=ins.label))
            i += 2
        else:
            out.append(Instruction(ins.op, ins.dst, ins.src1, ins.src2,
                                   ins.imm, ins.target, ins.label))
            i += 1
    return out
