"""Instruction-level power-model fitting ([46], Tiwari et al.).

The methodology: measure (here: simulate) loops of a single instruction
to obtain per-instruction *base* costs, then loops alternating pairs of
instructions to obtain inter-instruction *overhead* costs.  The fitted
model predicts whole-program energy from the instruction stream alone,
which is how the survey's software optimizations evaluate candidate
code without hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sw.cpu import CPU
from repro.sw.isa import Instruction, Program


def _measurable_ops() -> List[str]:
    """Straight-line opcodes safe to repeat in a measurement loop."""
    return ["nop", "li", "mov", "add", "sub", "and", "or", "xor",
            "shl", "shr", "mul", "mac", "ld", "st"]


def _loop_of(ops: Sequence[str], repetitions: int) -> Program:
    """A straight-line program repeating the opcode pattern."""
    prog = Program(name="microbench")
    prog.append(Instruction("li", dst="r1", imm=5))
    prog.append(Instruction("li", dst="r2", imm=3))
    for _ in range(repetitions):
        for op in ops:
            if op in ("add", "sub", "and", "or", "xor", "mul", "mac"):
                prog.append(Instruction(op, dst="r3", src1="r1",
                                        src2="r2"))
            elif op in ("shl", "shr"):
                prog.append(Instruction(op, dst="r3", src1="r1", imm=1))
            elif op == "li":
                prog.append(Instruction("li", dst="r3", imm=7))
            elif op == "mov":
                prog.append(Instruction("mov", dst="r3", src1="r1"))
            elif op == "ld":
                prog.append(Instruction("ld", dst="r3", src1="r2",
                                        imm=0))
            elif op == "st":
                prog.append(Instruction("st", dst="r3", src1="r2",
                                        imm=0))
            else:
                prog.append(Instruction("nop"))
    prog.append(Instruction("halt"))
    return prog


@dataclass
class InstructionPowerModel:
    """Fitted base-cost table and pairwise overhead table."""

    base: Dict[str, float]
    overhead: Dict[Tuple[str, str], float]
    memory_extra: float = 0.0

    def pair_overhead(self, a: str, b: str) -> float:
        key = (min(a, b), max(a, b))
        return self.overhead.get(key, 0.0)

    def predict(self, program_trace: Sequence[str]) -> float:
        """Predicted energy (nJ) for an executed opcode trace."""
        total = 0.0
        prev: Optional[str] = None
        for op in program_trace:
            total += self.base.get(op, 1.0)
            if op in ("ld", "st"):
                total += self.memory_extra
            if prev is not None:
                total += self.pair_overhead(prev, op)
            prev = op
        return total

    def predict_program(self, program: Program) -> float:
        """Predicted energy of a *straight-line* program (no branches):
        the static instruction list is its own execution trace."""
        trace = []
        for ins in program:
            if ins.is_branch():
                raise ValueError(
                    "predict_program is for straight-line code; "
                    "use predict() on an executed trace")
            trace.append(ins.op)
            if ins.op == "halt":
                break
        return self.predict(trace)

    def prediction_error(self, cpu: CPU, program: Program) -> float:
        """Relative error of the model against a measured run."""
        measured = cpu.run(program)
        predicted = self.predict(measured.opcode_trace)
        return abs(predicted - measured.energy) / measured.energy


def fit_instruction_model(cpu: CPU, repetitions: int = 200
                          ) -> InstructionPowerModel:
    """Tiwari's two-step characterization against the given CPU."""
    ops = _measurable_ops()
    base: Dict[str, float] = {}
    # Step 1: single-instruction loops.  The loop repeats one opcode, so
    # the per-instruction energy includes the (op, op) self-overhead —
    # exactly as in the physical measurements.
    for op in ops:
        prog = _loop_of([op], repetitions)
        res = cpu.run(prog)
        # Subtract the prologue/halt by differencing two lengths.
        prog2 = _loop_of([op], repetitions * 2)
        res2 = cpu.run(prog2)
        per_instr = (res2.energy - res.energy) / repetitions
        if op in ("ld", "st"):
            per_instr -= cpu.profile.memory_energy
        base[op] = per_instr
    # Step 2: alternating pairs give base(a)+base(b)+2·overhead(a,b).
    overhead: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(ops):
        for b in ops[i:]:
            prog = _loop_of([a, b], repetitions)
            prog2 = _loop_of([a, b], repetitions * 2)
            res = cpu.run(prog)
            res2 = cpu.run(prog2)
            per_pair = (res2.energy - res.energy) / repetitions
            mem_ops = int(a in ("ld", "st")) + int(b in ("ld", "st"))
            per_pair -= mem_ops * cpu.profile.memory_energy
            ov = (per_pair - base[a] - base[b]) / 2.0
            overhead[(min(a, b), max(a, b))] = ov
    return InstructionPowerModel(base=base, overhead=overhead,
                                 memory_extra=cpu.profile.memory_energy)
