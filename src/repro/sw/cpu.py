"""Instruction-set simulator with energy accounting.

Implements the measurement-based methodology of [46] in simulation: the
"ground truth" energy of a program is the sum of per-instruction base
costs plus *inter-instruction* (circuit-state) overhead proportional to
the Hamming distance between consecutive opcode encodings, plus memory
penalties — the structure Tiwari et al. found in real current
measurements.  Two CPU profiles reproduce the scheduling contrast of
[40]/[46]/[23]: a large general-purpose CPU where the overhead is
marginal, and a small DSP where it is comparable to the base cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sw.isa import Instruction, NUM_REGISTERS, Program


@dataclass(frozen=True)
class CPUProfile:
    """Energy/timing characterization of one processor."""

    name: str
    base_energy: Dict[str, float]      # nJ per instruction
    overhead_per_bit: float            # nJ per flipped opcode bit
    memory_energy: float               # extra nJ per memory access
    cycles: Dict[str, int]             # latency per opcode
    pairing: bool = False              # DSP instruction packing support

    def base(self, op: str) -> float:
        return self.base_energy.get(op, 1.0)

    def latency(self, op: str) -> int:
        return self.cycles.get(op, 1)


def big_cpu_profile() -> CPUProfile:
    """A wide general-purpose CPU: big base costs, tiny state overhead —
    instruction order barely matters ([46]'s 486DX2 observation)."""
    base = {"nop": 1.6, "li": 2.0, "mov": 2.0, "add": 2.2, "sub": 2.2,
            "and": 2.1, "or": 2.1, "xor": 2.1, "shl": 2.3, "shr": 2.3,
            "mul": 5.0, "mac": 5.5, "ld": 4.5, "st": 4.8, "beq": 2.6,
            "bne": 2.6, "blt": 2.6, "jmp": 2.4, "halt": 1.0}
    cycles = {"mul": 2, "mac": 2, "ld": 2, "st": 2}
    return CPUProfile(name="bigcpu", base_energy=base,
                      overhead_per_bit=0.05, memory_energy=3.0,
                      cycles=cycles)


def dsp_profile() -> CPUProfile:
    """A small DSP: lean base costs, strong inter-instruction overhead
    (exposed control path), MAC and packing support ([23])."""
    base = {"nop": 0.3, "li": 0.5, "mov": 0.5, "add": 0.6, "sub": 0.6,
            "and": 0.55, "or": 0.55, "xor": 0.55, "shl": 0.6,
            "shr": 0.6, "mul": 1.6, "mac": 1.8, "ld": 1.2, "st": 1.3,
            "beq": 0.8, "bne": 0.8, "blt": 0.8, "jmp": 0.7, "halt": 0.2}
    cycles = {"mul": 2, "mac": 2, "ld": 2, "st": 2}
    return CPUProfile(name="dsp", base_energy=base,
                      overhead_per_bit=0.35, memory_energy=1.5,
                      cycles=cycles, pairing=True)


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    cycles: int
    energy: float                # nJ
    instructions: int
    base_energy: float
    overhead_energy: float
    memory_energy: float
    registers: Dict[str, int] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)
    opcode_trace: List[str] = field(default_factory=list)

    @property
    def average_power(self) -> float:
        """nJ per cycle — proportional to watts at fixed clock."""
        return self.energy / max(1, self.cycles)


class CPU:
    """Functional ISS for :mod:`repro.sw.isa` with energy accounting."""

    def __init__(self, profile: Optional[CPUProfile] = None):
        self.profile = profile or big_cpu_profile()

    def run(self, program: Program,
            registers: Optional[Dict[str, int]] = None,
            memory: Optional[Dict[int, int]] = None,
            max_instructions: int = 1_000_000) -> ExecutionResult:
        prof = self.profile
        regs: Dict[str, int] = {f"r{i}": 0 for i in range(NUM_REGISTERS)}
        if registers:
            regs.update(registers)
        mem: Dict[int, int] = dict(memory) if memory else {}
        labels = program.labels()
        pc = 0
        cycles = 0
        count = 0
        e_base = e_over = e_mem = 0.0
        prev_enc: Optional[int] = None
        trace: List[str] = []

        def val(r: Optional[str]) -> int:
            if r is None:
                return 0
            return regs.get(r, 0)

        while 0 <= pc < len(program.instructions):
            if count >= max_instructions:
                raise RuntimeError("instruction budget exceeded "
                                   "(runaway program?)")
            ins = program.instructions[pc]
            count += 1
            cycles += prof.latency(ins.op)
            e_base += prof.base(ins.op)
            enc = ins.encoding()
            if prev_enc is not None:
                e_over += prof.overhead_per_bit * \
                    (prev_enc ^ enc).bit_count()
            prev_enc = enc
            trace.append(ins.op)
            nxt = pc + 1
            op = ins.op
            if op == "halt":
                break
            elif op == "nop":
                pass
            elif op == "li":
                regs[ins.dst] = ins.imm or 0
            elif op == "mov":
                regs[ins.dst] = val(ins.src1)
            elif op in ("add", "sub", "and", "or", "xor", "mul"):
                a, b = val(ins.src1), val(ins.src2)
                if op == "add":
                    regs[ins.dst] = a + b
                elif op == "sub":
                    regs[ins.dst] = a - b
                elif op == "and":
                    regs[ins.dst] = a & b
                elif op == "or":
                    regs[ins.dst] = a | b
                elif op == "xor":
                    regs[ins.dst] = a ^ b
                else:
                    regs[ins.dst] = a * b
            elif op == "mac":
                regs[ins.dst] = val(ins.dst) + \
                    val(ins.src1) * val(ins.src2)
            elif op == "shl":
                regs[ins.dst] = val(ins.src1) << (ins.imm or 0)
            elif op == "shr":
                regs[ins.dst] = val(ins.src1) >> (ins.imm or 0)
            elif op == "ld":
                e_mem += prof.memory_energy
                regs[ins.dst] = mem.get(val(ins.src1) + (ins.imm or 0), 0)
            elif op == "st":
                e_mem += prof.memory_energy
                mem[val(ins.src1) + (ins.imm or 0)] = val(ins.dst)
            elif op in ("beq", "bne", "blt"):
                a, b = val(ins.dst), val(ins.src1)
                taken = (a == b) if op == "beq" else \
                    (a != b) if op == "bne" else (a < b)
                if taken:
                    nxt = labels[ins.target]
            elif op == "jmp":
                nxt = labels[ins.target]
            else:
                raise ValueError(f"unimplemented opcode {op!r}")
            pc = nxt
        return ExecutionResult(
            cycles=cycles, energy=e_base + e_over + e_mem,
            instructions=count, base_energy=e_base,
            overhead_energy=e_over, memory_energy=e_mem,
            registers=regs, memory=mem, opcode_trace=trace)
