"""Technology library: standard cells and switch-level gate models."""

from repro.library.cells import Cell, Library, generic_library
from repro.library.transistors import SeriesStack, StackEnergyModel

__all__ = ["Cell", "Library", "generic_library", "SeriesStack",
           "StackEnergyModel"]
