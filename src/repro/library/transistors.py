"""Switch-level model of a series transistor stack.

This is the model behind the transistor-reordering optimization of
Section II-A ([32], [42]): in a series pull-down (NAND-style) or pull-up
(NOR-style) chain, the *internal* nodes between transistors carry
parasitic drain/source capacitance, and how often they charge and
discharge depends on which input signal drives which position.

State model (per clock step, inputs switch simultaneously):

* the chain conducts iff all inputs are ON; then the output and all
  internal nodes are pulled to the rail (logic 0 for a pull-down);
* otherwise the output is restored by the complementary network
  (logic 1), and internal node *i* (between transistor *i* and *i+1*,
  transistor 1 adjacent to the output):

  - follows the output (charges) iff transistors 1..i are all ON,
  - is pulled to the rail iff transistors i+1..n are all ON,
  - otherwise floats and retains its previous value.

Energy is counted as C·V² per 0→1 charge event on each node.  Delay uses
the Elmore model of the discharge through the full stack triggered by the
last-arriving input.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import List, Optional, Sequence


@dataclass(frozen=True)
class StackEnergyModel:
    """Capacitance/resistance parameters of the stack (arbitrary units)."""

    c_output: float = 4.0      # load + drain cap at the gate output
    c_internal: float = 1.0    # drain+source cap at each internal node
    r_on: float = 1.0          # on-resistance of one transistor
    vdd: float = 1.0


class SeriesStack:
    """An n-transistor series chain with a given input-to-position order.

    ``order[k]`` is the index of the input signal placed at position
    ``k`` (position 0 is adjacent to the output node).
    """

    def __init__(self, num_inputs: int, order: Optional[Sequence[int]] = None,
                 model: Optional[StackEnergyModel] = None):
        self.n = num_inputs
        self.order = list(order) if order is not None \
            else list(range(num_inputs))
        if sorted(self.order) != list(range(num_inputs)):
            raise ValueError("order must be a permutation of inputs")
        self.model = model or StackEnergyModel()

    # -- steady-state node values ------------------------------------------

    def node_states(self, inputs: Sequence[int],
                    previous: Optional[List[float]] = None
                    ) -> List[float]:
        """Voltages (0/1, or retained value) of [output, int_1..int_{n-1}].

        ``inputs`` is indexed by signal; positions read through ``order``.
        """
        on = [inputs[self.order[k]] for k in range(self.n)]
        states: List[float] = [0.0] * self.n
        all_on = all(on)
        out_v = 0.0 if all_on else 1.0
        states[0] = out_v
        for i in range(1, self.n):
            conduct_above = all(on[:i])
            conduct_below = all(on[i:])
            if conduct_below:
                states[i] = 0.0
            elif conduct_above:
                states[i] = out_v
            else:
                states[i] = previous[i] if previous is not None else 0.0
        return states

    # -- energy -------------------------------------------------------------

    def _node_caps(self) -> List[float]:
        return [self.model.c_output] + \
            [self.model.c_internal] * (self.n - 1)

    def energy_of_sequence(self, vectors: Sequence[Sequence[int]]) -> float:
        """Total charging energy over an input-vector sequence."""
        caps = self._node_caps()
        vdd2 = self.model.vdd ** 2
        energy = 0.0
        prev: Optional[List[float]] = None
        for vec in vectors:
            states = self.node_states(vec, prev)
            if prev is not None:
                for c, before, after in zip(caps, prev, states):
                    if after > before:
                        energy += c * (after - before) * vdd2
            prev = states
        return energy

    def expected_energy(self, probs: Sequence[float],
                        iterations: int = 200) -> float:
        """Exact expected charging energy per cycle in steady state.

        Inputs are spatially and temporally independent with
        ``probs[i] = P(input i = 1)``.  Because floating internal nodes
        retain state, the stack is a Markov chain over node-state
        vectors; the stationary distribution is found by power
        iteration (state spaces are tiny for realistic stack widths).
        """
        n = self.n
        caps = self._node_caps()
        vdd2 = self.model.vdd ** 2

        def vec_prob(v: int) -> float:
            p = 1.0
            for i in range(n):
                p *= probs[i] if (v >> i) & 1 else 1.0 - probs[i]
            return p

        input_probs = [(v, vec_prob(v)) for v in range(1 << n)
                       if vec_prob(v) > 0.0]
        bits = lambda v: [(v >> i) & 1 for i in range(n)]

        # Stationary distribution over node-state tuples.
        start = tuple(self.node_states(bits(input_probs[0][0])))
        dist = {start: 1.0}
        for _ in range(iterations):
            nxt: dict = {}
            for state, p_s in dist.items():
                for v, p_v in input_probs:
                    s1 = tuple(self.node_states(bits(v),
                                                previous=list(state)))
                    nxt[s1] = nxt.get(s1, 0.0) + p_s * p_v
            delta = sum(abs(nxt.get(s, 0.0) - dist.get(s, 0.0))
                        for s in set(nxt) | set(dist))
            dist = nxt
            if delta < 1e-12:
                break

        energy = 0.0
        for state, p_s in dist.items():
            for v, p_v in input_probs:
                s1 = self.node_states(bits(v), previous=list(state))
                e = 0.0
                for c, before, after in zip(caps, state, s1):
                    if after > before:
                        e += c * (after - before) * vdd2
                energy += p_s * p_v * e
        return energy

    # -- delay ----------------------------------------------------------------

    def elmore_delay(self, arrival: Sequence[float]) -> float:
        """Gate settling time given per-input arrival times.

        When the last input (at position k) turns on, the output and the
        internal nodes above position k discharge through the whole
        stack; the Elmore delay of that RC ladder grows with k, so
        late-arriving signals belong near the output (the well-known
        rule the paper cites).
        """
        m = self.model
        worst = 0.0
        for k in range(self.n):
            # Nodes to discharge: output (index 0) and internals 1..k.
            tau = m.c_output * self.n * m.r_on
            for i in range(1, k + 1):
                tau += m.c_internal * (self.n - i) * m.r_on
            t = arrival[self.order[k]] + tau
            worst = max(worst, t)
        return worst

    def reordered(self, order: Sequence[int]) -> "SeriesStack":
        return SeriesStack(self.n, order, self.model)
