"""A generic standard-cell library.

Cells are characterized the way the architecture-level models of Section
IV-A assume: an input-pin capacitance, an intrinsic output (self)
capacitance, an area, and a linear delay model ``d = intrinsic +
drive · C_load``.  Values are derived from transistor counts of the
static CMOS realisation, in the same capacitance units as
:mod:`repro.power.model`, so mapped and unmapped netlists are comparable.

Each logical cell is offered in two drive strengths (``x1``/``x2``) —
the larger one halves the load-dependent delay but doubles input
capacitance — plus a low-power ``lp`` variant with reduced switched
capacitance at an area/delay premium.  These variants are exactly the
choice space exploited by low-power technology mapping ([43], [48]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


from repro.logic.sop import Cover


@dataclass(frozen=True)
class Cell:
    """One library cell."""

    name: str
    cover: Cover              # ON-set over the cell's ordered pins
    num_inputs: int
    area: float               # transistor count
    input_cap: float          # per-pin gate capacitance (cap units)
    output_cap: float         # intrinsic drain/wire capacitance
    intrinsic_delay: float
    drive: float              # delay per unit of load capacitance

    def delay(self, load: float) -> float:
        return self.intrinsic_delay + self.drive * load

    def __repr__(self) -> str:
        return f"Cell({self.name})"


class Library:
    """A set of cells indexed by name, with pattern-matching helpers."""

    def __init__(self, cells: List[Cell]):
        self.cells: Dict[str, Cell] = {c.name: c for c in cells}

    def __iter__(self):
        return iter(self.cells.values())

    def __getitem__(self, name: str) -> Cell:
        return self.cells[name]

    def __len__(self) -> int:
        return len(self.cells)

    def inverters(self) -> List[Cell]:
        return [c for c in self if c.num_inputs == 1 and
                c.cover.to_strings() == ["0"]]

    def smallest_inverter(self) -> Cell:
        invs = self.inverters()
        if not invs:
            raise ValueError("library has no inverter")
        return min(invs, key=lambda c: c.area)


def _cell_variants(name: str, rows: List[str], transistors: int,
                   intrinsic: float, drive: float) -> List[Cell]:
    """Build x1/x2/lp variants of a cell from PLA rows of its ON-set.

    ``x1``/``x2`` trade delay against input capacitance and area as
    usual.  ``lp`` models a low-power logic style ([48]: technology
    decomposition with alternative circuit styles): noticeably lower
    switched capacitance per transition at the cost of more layout area
    and a slower, weaker output — attractive only when the mapping cost
    function actually weighs activity.
    """
    cover = Cover.from_strings(rows) if rows and rows[0] else Cover.one(0)
    n = len(rows[0]) if rows else 0
    base_in = 2.0          # one P+N pair per pin, x1
    base_out = 0.5 * transistors
    out = []
    for mult, suffix in ((1.0, "_x1"), (2.0, "_x2")):
        out.append(Cell(
            name=name + suffix,
            cover=cover,
            num_inputs=n,
            area=transistors * mult,
            input_cap=base_in * mult,
            output_cap=base_out * mult,
            intrinsic_delay=intrinsic,
            drive=drive / mult,
        ))
    out.append(Cell(
        name=name + "_lp",
        cover=cover,
        num_inputs=n,
        area=transistors * 1.4,
        input_cap=base_in * 0.7,
        output_cap=base_out * 0.55,
        intrinsic_delay=intrinsic * 1.5,
        drive=drive * 1.7,
    ))
    return out


def generic_library() -> Library:
    """The default technology library used by the experiments."""
    cells: List[Cell] = []
    # name, ON-set rows (pin 0 first), transistors, intrinsic, drive
    defs: List[Tuple[str, List[str], int, float, float]] = [
        ("inv", ["0"], 2, 0.4, 0.10),
        ("buf", ["1"], 4, 0.7, 0.07),
        ("nand2", ["0-", "-0"], 4, 0.5, 0.12),
        ("nand3", ["0--", "-0-", "--0"], 6, 0.7, 0.15),
        ("nand4", ["0---", "-0--", "--0-", "---0"], 8, 0.9, 0.18),
        ("nor2", ["00"], 4, 0.6, 0.14),
        ("nor3", ["000"], 6, 0.9, 0.18),
        ("and2", ["11"], 6, 0.8, 0.10),
        ("or2", ["1-", "-1"], 6, 0.9, 0.11),
        ("xor2", ["10", "01"], 10, 1.1, 0.16),
        ("xnor2", ["11", "00"], 10, 1.1, 0.16),
        # AOI21: out = !(p0·p1 + p2) -> ON-set rows
        ("aoi21", ["0-0", "-00"], 6, 0.7, 0.15),
        # AOI22: out = !(p0·p1 + p2·p3)
        ("aoi22", ["0-0-", "0--0", "-00-", "-0-0"], 8, 0.8, 0.17),
        # OAI21: out = !((p0+p1)·p2)
        ("oai21", ["00-", "--0"], 6, 0.7, 0.15),
        # MUX2: out = s·d1 + s'·d0 with pins (s, d0, d1)
        ("mux2", ["01-", "1-1"], 10, 1.0, 0.14),
    ]
    for name, rows, transistors, intrinsic, drive in defs:
        cells.extend(_cell_variants(name, rows, transistors,
                                    intrinsic, drive))
    return Library(cells)
