"""A compact hash-consed ROBDD package.

Provides the usual operations (ITE-based apply, quantification,
composition, restriction) plus *weighted satisfy counting*, which gives
exact signal probabilities for switching-activity analysis — the role BDDs
play in refs [3], [16], [30] of the surveyed paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class BDD:
    """BDD manager with a fixed variable order.

    Node 0 is constant FALSE, node 1 constant TRUE.  Internal nodes are
    triples ``(level, lo, hi)`` hash-consed in a unique table.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, variables: Sequence[str] = ()):
        self.var_names: List[str] = []
        self.var_level: Dict[str, int] = {}
        self._level: List[int] = [1 << 30, 1 << 30]  # terminals: max level
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        for v in variables:
            self.add_variable(v)

    # -- variables ------------------------------------------------------

    def add_variable(self, name: str) -> int:
        """Append a variable at the bottom of the current order."""
        if name in self.var_level:
            raise ValueError(f"variable {name!r} already exists")
        level = len(self.var_names)
        self.var_names.append(name)
        self.var_level[name] = level
        return level

    def var(self, name: str) -> "BDDFunction":
        if name not in self.var_level:
            self.add_variable(name)
        level = self.var_level[name]
        node = self._mk(level, BDD.FALSE, BDD.TRUE)
        return BDDFunction(self, node)

    @property
    def true(self) -> "BDDFunction":
        return BDDFunction(self, BDD.TRUE)

    @property
    def false(self) -> "BDDFunction":
        return BDDFunction(self, BDD.FALSE)

    def num_nodes(self) -> int:
        return len(self._lo)

    # -- core construction ----------------------------------------------

    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._lo)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == BDD.TRUE:
            return g
        if f == BDD.FALSE:
            return h
        if g == h:
            return g
        if g == BDD.TRUE and h == BDD.FALSE:
            return f
        key = (f, g, h)
        hit = self._ite_cache.get(key)
        if hit is not None:
            return hit
        top = min(self._level[f], self._level[g], self._level[h])

        def cof(n: int, phase: int) -> int:
            if self._level[n] != top:
                return n
            return self._hi[n] if phase else self._lo[n]

        hi = self._ite(cof(f, 1), cof(g, 1), cof(h, 1))
        lo = self._ite(cof(f, 0), cof(g, 0), cof(h, 0))
        result = self._mk(top, lo, hi)
        self._ite_cache[key] = result
        return result

    def _not(self, f: int) -> int:
        return self._ite(f, BDD.FALSE, BDD.TRUE)

    # -- quantification / substitution -------------------------------------

    def _restrict(self, f: int, level: int, phase: int,
                  cache: Dict[int, int]) -> int:
        if self._level[f] > level:
            return f
        hit = cache.get(f)
        if hit is not None:
            return hit
        if self._level[f] == level:
            result = self._hi[f] if phase else self._lo[f]
        else:
            lo = self._restrict(self._lo[f], level, phase, cache)
            hi = self._restrict(self._hi[f], level, phase, cache)
            result = self._mk(self._level[f], lo, hi)
        cache[f] = result
        return result

    def _exists_one(self, f: int, level: int) -> int:
        lo = self._restrict(f, level, 0, {})
        hi = self._restrict(f, level, 1, {})
        return self._ite(lo, BDD.TRUE, hi)

    def _compose(self, f: int, level: int, g: int,
                 cache: Dict[int, int]) -> int:
        if self._level[f] > level:
            return f
        hit = cache.get(f)
        if hit is not None:
            return hit
        if self._level[f] == level:
            result = self._ite(g, self._hi[f], self._lo[f])
        else:
            lo = self._compose(self._lo[f], level, g, cache)
            hi = self._compose(self._hi[f], level, g, cache)
            top_var = self._mk(self._level[f], BDD.FALSE, BDD.TRUE)
            result = self._ite(top_var, hi, lo)
        cache[f] = result
        return result

    # -- analysis -----------------------------------------------------------

    def _prob(self, f: int, level_probs: List[float],
              cache: Dict[int, float]) -> float:
        if f == BDD.TRUE:
            return 1.0
        if f == BDD.FALSE:
            return 0.0
        hit = cache.get(f)
        if hit is not None:
            return hit
        p = level_probs[self._level[f]]
        val = p * self._prob(self._hi[f], level_probs, cache) + \
            (1.0 - p) * self._prob(self._lo[f], level_probs, cache)
        cache[f] = val
        return val

    def _support(self, f: int, out: set, seen: set) -> None:
        if f <= 1 or f in seen:
            return
        seen.add(f)
        out.add(self._level[f])
        self._support(self._lo[f], out, seen)
        self._support(self._hi[f], out, seen)


class BDDFunction:
    """A Boolean function: a node handle within a :class:`BDD` manager."""

    __slots__ = ("bdd", "node")

    def __init__(self, bdd: BDD, node: int):
        self.bdd = bdd
        self.node = node

    # -- logical operators --------------------------------------------------

    def _coerce(self, other: object) -> "BDDFunction":
        if isinstance(other, BDDFunction):
            if other.bdd is not self.bdd:
                raise ValueError("mixing BDD managers")
            return other
        if other is True or other == 1:
            return self.bdd.true
        if other is False or other == 0:
            return self.bdd.false
        raise TypeError(f"cannot combine BDD with {other!r}")

    def __and__(self, other) -> "BDDFunction":
        o = self._coerce(other)
        return BDDFunction(self.bdd,
                           self.bdd._ite(self.node, o.node, BDD.FALSE))

    def __or__(self, other) -> "BDDFunction":
        o = self._coerce(other)
        return BDDFunction(self.bdd,
                           self.bdd._ite(self.node, BDD.TRUE, o.node))

    def __xor__(self, other) -> "BDDFunction":
        o = self._coerce(other)
        return BDDFunction(self.bdd,
                           self.bdd._ite(self.node,
                                         self.bdd._not(o.node), o.node))

    def __invert__(self) -> "BDDFunction":
        return BDDFunction(self.bdd, self.bdd._not(self.node))

    __rand__ = __and__
    __ror__ = __or__
    __rxor__ = __xor__

    def ite(self, g: "BDDFunction", h: "BDDFunction") -> "BDDFunction":
        return BDDFunction(self.bdd,
                           self.bdd._ite(self.node, g.node, h.node))

    def equiv(self, other: "BDDFunction") -> bool:
        return self.node == self._coerce(other).node

    def implies(self, other: "BDDFunction") -> bool:
        o = self._coerce(other)
        return self.bdd._ite(self.node, o.node, BDD.TRUE) == BDD.TRUE

    # -- predicates -----------------------------------------------------------

    @property
    def is_true(self) -> bool:
        return self.node == BDD.TRUE

    @property
    def is_false(self) -> bool:
        return self.node == BDD.FALSE

    # -- quantification / substitution ----------------------------------------

    def restrict(self, assignment: Dict[str, int]) -> "BDDFunction":
        """Cofactor with respect to a partial variable assignment."""
        node = self.node
        for name, phase in assignment.items():
            level = self.bdd.var_level[name]
            node = self.bdd._restrict(node, level, 1 if phase else 0, {})
        return BDDFunction(self.bdd, node)

    def exists(self, variables: Iterable[str]) -> "BDDFunction":
        node = self.node
        for name in variables:
            node = self.bdd._exists_one(node, self.bdd.var_level[name])
        return BDDFunction(self.bdd, node)

    def forall(self, variables: Iterable[str]) -> "BDDFunction":
        inv = self.bdd._not(self.node)
        for name in variables:
            inv = self.bdd._exists_one(inv, self.bdd.var_level[name])
        return BDDFunction(self.bdd, self.bdd._not(inv))

    def compose(self, name: str, g: "BDDFunction") -> "BDDFunction":
        level = self.bdd.var_level[name]
        return BDDFunction(self.bdd,
                           self.bdd._compose(self.node, level, g.node, {}))

    # -- analysis ---------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, int]) -> bool:
        node = self.node
        bdd = self.bdd
        while node > 1:
            name = bdd.var_names[bdd._level[node]]
            node = bdd._hi[node] if assignment.get(name, 0) else \
                bdd._lo[node]
        return node == BDD.TRUE

    def probability(self, probs: Dict[str, float],
                    default: float = 0.5) -> float:
        """Exact P(f = 1) with independent inputs."""
        level_probs = [default] * len(self.bdd.var_names)
        for name, p in probs.items():
            if name in self.bdd.var_level:
                level_probs[self.bdd.var_level[name]] = p
        return self.bdd._prob(self.node, level_probs, {})

    def sat_count(self, num_vars: Optional[int] = None) -> float:
        n = num_vars if num_vars is not None else len(self.bdd.var_names)
        uniform = {name: 0.5 for name in self.bdd.var_names}
        return self.probability(uniform) * (2 ** n)

    def support(self) -> List[str]:
        levels: set = set()
        self.bdd._support(self.node, levels, set())
        return [self.bdd.var_names[l] for l in sorted(levels)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BDDFunction) and \
            other.bdd is self.bdd and other.node == self.node

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.node))

    def __repr__(self) -> str:
        return f"BDDFunction(node={self.node})"
