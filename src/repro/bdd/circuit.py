"""Building BDDs for netlist nodes (global functions over PIs/latches)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bdd.bdd import BDD, BDDFunction
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.logic.transform import node_cover


def bdd_to_cover(func: BDDFunction, var_order):
    """Enumerate a BDD's paths-to-TRUE as an SOP cover over ``var_order``
    (every support variable of ``func`` must appear in ``var_order``)."""
    from repro.logic.cube import Cube
    from repro.logic.sop import Cover

    bdd = func.bdd
    index = {name: i for i, name in enumerate(var_order)}
    n = len(var_order)
    cubes = []

    def walk(node: int, lits) -> None:
        if node == BDD.FALSE:
            return
        if node == BDD.TRUE:
            cubes.append(Cube.from_literals(n, lits))
            return
        name = bdd.var_names[bdd._level[node]]
        var = index[name]
        walk(bdd._lo[node], lits + [(var, 0)])
        walk(bdd._hi[node], lits + [(var, 1)])

    walk(func.node, [])
    return Cover(n, cubes).sccc()


def network_bdds(net: Network, bdd: Optional[BDD] = None,
                 nodes: Optional[Iterable[str]] = None
                 ) -> Dict[str, BDDFunction]:
    """Global BDD of every node over primary inputs and latch outputs.

    Latch outputs are treated as free variables (combinational view).
    Pass ``nodes`` to limit which results are retained (all are computed —
    intermediate functions are needed anyway).
    """
    manager = bdd if bdd is not None else BDD()
    funcs: Dict[str, BDDFunction] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            funcs[name] = manager.var(name)
            continue
        if node.kind == "gate" and node.gtype is GateType.CONST0:
            funcs[name] = manager.false
            continue
        if node.kind == "gate" and node.gtype is GateType.CONST1:
            funcs[name] = manager.true
            continue
        cover = node_cover(node)
        fanin_funcs = [funcs[fi] for fi in node.fanins]
        acc = manager.false
        for cube in cover:
            term = manager.true
            for var, phase in cube.literals():
                lit = fanin_funcs[var]
                term = term & (lit if phase else ~lit)
                if term.is_false:
                    break
            acc = acc | term
            if acc.is_true:
                break
        funcs[name] = acc
    if nodes is not None:
        wanted = set(nodes)
        return {k: v for k, v in funcs.items() if k in wanted}
    return funcs
