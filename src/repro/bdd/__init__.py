"""Hash-consed reduced ordered BDD package."""

from repro.bdd.bdd import BDD, BDDFunction

__all__ = ["BDD", "BDDFunction"]
