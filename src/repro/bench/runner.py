"""Benchmark execution: sequential or process-parallel, crash-proof.

The runner takes :class:`~repro.bench.registry.BenchSpec` entries and
produces a :class:`~repro.bench.result.RunReport`.  Each benchmark is
imported lazily and executed inside a worker; a benchmark that raises
(or fails to import, or exceeds its timeout) yields a ``BenchResult``
with ``status="error"``/``"timeout"`` and the traceback — it never
takes the suite down.

``jobs > 1`` uses :class:`concurrent.futures.ProcessPoolExecutor`;
``jobs <= 1`` runs in-process (handy under pytest and for debugging —
no timeout enforcement in that mode, since there is no process to
abandon).
"""

from __future__ import annotations

import hashlib
import importlib.util
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.profiling import collect_phases
from repro.bench.registry import BenchSpec
from repro.bench.result import (STATUS_ERROR, STATUS_OK, STATUS_TIMEOUT,
                                BenchResult, RunReport)

DEFAULT_TIMEOUT = 600.0


def _import_bench_module(path: str):
    """Import a benchmark module from its file, isolated by path.

    The containing directory is put at the head of ``sys.path`` so the
    conventional ``from conftest import emit`` import inside benchmark
    modules resolves; the module itself gets a path-hashed name so two
    suites with colliding stems (the real one and a test fixture) never
    share a ``sys.modules`` slot.
    """
    p = Path(path).resolve()
    bench_dir = str(p.parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    digest = hashlib.md5(str(p).encode()).hexdigest()[:8]
    mod_name = f"repro_bench_{digest}_{p.stem}"
    if mod_name in sys.modules:
        return sys.modules[mod_name]
    spec = importlib.util.spec_from_file_location(mod_name, p)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load benchmark module {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[mod_name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(mod_name, None)
        raise
    return module


def execute_one(name: str, path: str, claims: Sequence[str],
                params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Run one benchmark; always returns a ``BenchResult`` dict.

    Top-level (picklable) so it can serve as the process-pool task.
    """
    params = dict(params or {})
    result = BenchResult(name=name, claims=tuple(claims),
                         seed=int(params.get("seed", 0)))
    t0 = time.perf_counter()
    try:
        module = _import_bench_module(path)
        run = getattr(module, "run", None)
        if not callable(run):
            raise AttributeError(
                f"benchmark {name} has no run(params) entry point")
        with collect_phases() as phases:
            payload = run(params)
        if not isinstance(payload, dict) or "metrics" not in payload:
            raise TypeError(
                f"benchmark {name}: run() must return a dict with a "
                f"'metrics' key, got {type(payload).__name__}")
        metrics = payload["metrics"]
        bad = {k: v for k, v in metrics.items()
               if not isinstance(v, (int, float))
               or isinstance(v, bool)}
        if bad:
            raise TypeError(
                f"benchmark {name}: non-numeric metrics {sorted(bad)}")
        result.metrics = {k: metrics[k] for k in metrics}
        result.vectors = int(payload.get("vectors", 0))
        result.phases = dict(phases)
        result.status = STATUS_OK
    except BaseException:
        result.status = STATUS_ERROR
        result.error = traceback.format_exc(limit=20)
    result.wall_s = time.perf_counter() - t0
    return result.to_dict()


ProgressFn = Callable[[BenchResult], None]


def run_benchmarks(specs: Sequence[BenchSpec],
                   params: Optional[Dict[str, Any]] = None,
                   jobs: int = 1,
                   timeout: float = DEFAULT_TIMEOUT,
                   progress: Optional[ProgressFn] = None) -> RunReport:
    """Execute ``specs`` and collect a :class:`RunReport`.

    ``timeout`` is per benchmark, enforced only in process mode
    (``jobs > 1``).  A timed-out worker is abandoned: its result is
    recorded as ``status="timeout"`` and the pool is torn down without
    waiting for it at the end of the run.
    """
    params = dict(params or {})
    report = RunReport.new(params={**params, "jobs": jobs,
                                   "timeout": timeout})
    if jobs <= 1:
        for spec in specs:
            res = BenchResult.from_dict(
                execute_one(spec.name, spec.path, spec.claims, params))
            report.results.append(res)
            if progress:
                progress(res)
        return report

    executor = ProcessPoolExecutor(max_workers=jobs)
    timed_out = False
    try:
        futures = [(spec,
                    executor.submit(execute_one, spec.name, spec.path,
                                    spec.claims, params))
                   for spec in specs]
        for spec, fut in futures:
            try:
                res = BenchResult.from_dict(fut.result(timeout=timeout))
            except FutureTimeout:
                timed_out = True
                fut.cancel()
                res = BenchResult(
                    name=spec.name, claims=spec.claims,
                    seed=int(params.get("seed", 0)),
                    status=STATUS_TIMEOUT, wall_s=timeout,
                    error=f"exceeded {timeout:g}s timeout")
            except Exception:
                res = BenchResult(
                    name=spec.name, claims=spec.claims,
                    seed=int(params.get("seed", 0)),
                    status=STATUS_ERROR,
                    error=traceback.format_exc(limit=20))
            report.results.append(res)
            if progress:
                progress(res)
    finally:
        if timed_out:
            # Kill abandoned workers: a runaway benchmark would
            # otherwise keep the interpreter alive at exit (the
            # pool's atexit hook joins live workers).
            for proc in list(getattr(executor, "_processes",
                                     {}).values()):
                proc.kill()
        executor.shutdown(wait=not timed_out, cancel_futures=True)
    return report


def failures(report: RunReport) -> List[BenchResult]:
    return [r for r in report.results if not r.ok]
