"""Unified benchmark harness.

Discovers the ``benchmarks/bench_*.py`` experiments, runs them (in
parallel, crash-proof, with per-phase profiling) and tracks their
metrics as JSON artifacts for regression comparison.

>>> from repro.bench import discover, run_benchmarks, compare_reports
>>> report = run_benchmarks(discover(), {"quick": True, "seed": 0})
>>> report.all_ok
True

CLI: ``python -m repro.tools.cli bench run --quick --jobs 4`` and
``... bench compare BENCH_baseline.json BENCH_new.json``.
"""

from repro.bench.compare import (Comparison, Finding, compare_files,
                                 compare_reports)
from repro.bench.profiling import (PHASE_EST, PHASE_OPT, PHASE_SIM,
                                   PHASE_SYNTH, PHASE_VERIFY,
                                   collect_phases, phase)
from repro.bench.registry import (BenchSpec, claims_index,
                                  default_bench_dir, discover, find)
from repro.bench.result import (BenchResult, RunReport,
                                default_report_filename,
                                is_volatile_metric,
                                merge_claim_coverage)
from repro.bench.runner import execute_one, failures, run_benchmarks

__all__ = [
    "BenchResult", "BenchSpec", "Comparison", "Finding", "RunReport",
    "claims_index", "collect_phases", "compare_files",
    "compare_reports", "default_bench_dir", "default_report_filename",
    "discover", "execute_one", "failures", "find",
    "is_volatile_metric", "merge_claim_coverage", "phase",
    "run_benchmarks",
    "PHASE_EST", "PHASE_OPT", "PHASE_SIM", "PHASE_SYNTH",
    "PHASE_VERIFY",
]
