"""Lightweight per-phase wall-clock profiling for the benchmarks.

Benchmark ``run()`` entry points wrap their dominant computations in
``with phase("simulation"): ...`` blocks; the harness surrounds the
whole entry point with :func:`collect_phases` and stores the per-phase
totals next to the metrics, so "where does the time go —
simulation, optimization or estimation?" is answered by every
``BENCH_*.json`` artifact.

The collector is a plain stack: ``phase`` accumulates into the
innermost active collector and is a no-op when none is active (so the
pytest-benchmark path pays nothing).  Nested phases each record their
own wall time, i.e. an inner phase's time is also part of the
enclosing phase's total.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

PHASE_SIM = "simulation"
PHASE_OPT = "optimization"
PHASE_EST = "estimation"
PHASE_SYNTH = "synthesis"
PHASE_VERIFY = "verification"

_collectors: list = []


@contextmanager
def collect_phases() -> Iterator[Dict[str, float]]:
    """Activate a collector; yields the dict phase totals land in."""
    acc: Dict[str, float] = {}
    _collectors.append(acc)
    try:
        yield acc
    finally:
        _collectors.remove(acc)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Accumulate the elapsed wall time of the block under ``name``."""
    if not _collectors:
        yield
        return
    acc = _collectors[-1]
    t0 = time.perf_counter()
    try:
        yield
    finally:
        acc[name] = acc.get(name, 0.0) + (time.perf_counter() - t0)
