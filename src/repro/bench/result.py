"""Result records and JSON (de)serialization for the bench harness.

A suite run produces one :class:`RunReport` holding one
:class:`BenchResult` per benchmark.  Reports are written to
``BENCH_<timestamp>.json`` and are the regression-tracking currency of
the repo: ``bench compare`` diffs two of them.

Metric conventions
------------------
* metric values are numbers (int/float); the key encodes the quantity,
  e.g. ``"rca16.sw_fraction"`` or ``"saving.n3_strong"``;
* keys ending in ``_ms`` or ``_s`` are wall-clock measurements, and
  keys ending in ``_x`` are speedup ratios derived from them; both are
  treated as *volatile*: recorded for trend plots but excluded from
  drift detection (see :mod:`repro.bench.compare`).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"

#: metric-key suffixes whose values are wall-clock dependent
#: (timings and the speedup ratios computed from them).
VOLATILE_SUFFIXES: Tuple[str, ...] = ("_ms", "_s", "_x")


def is_volatile_metric(key: str) -> bool:
    return key.endswith(VOLATILE_SUFFIXES)


@dataclass
class BenchResult:
    """Outcome of one benchmark execution."""

    name: str
    claims: Tuple[str, ...] = ()
    status: str = STATUS_OK
    wall_s: float = 0.0
    seed: int = 0
    vectors: int = 0
    metrics: Dict[str, float] = field(default_factory=dict)
    phases: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "claims": list(self.claims),
            "status": self.status,
            "wall_s": self.wall_s,
            "seed": self.seed,
            "vectors": self.vectors,
            "metrics": dict(self.metrics),
            "phases": dict(self.phases),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BenchResult":
        return cls(
            name=d["name"],
            claims=tuple(d.get("claims", ())),
            status=d.get("status", STATUS_OK),
            wall_s=float(d.get("wall_s", 0.0)),
            seed=int(d.get("seed", 0)),
            vectors=int(d.get("vectors", 0)),
            metrics=dict(d.get("metrics", {})),
            phases=dict(d.get("phases", {})),
            error=d.get("error"),
        )


@dataclass
class RunReport:
    """One harness invocation: parameters, host info and all results."""

    results: List[BenchResult] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    created: str = ""
    host: Dict[str, str] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    @classmethod
    def new(cls, params: Optional[Dict[str, Any]] = None) -> "RunReport":
        return cls(
            params=dict(params or {}),
            created=time.strftime("%Y-%m-%dT%H:%M:%S"),
            host={
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "platform": platform.platform(),
            },
        )

    def by_name(self) -> Dict[str, BenchResult]:
        return {r.name: r for r in self.results}

    @property
    def num_ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def all_ok(self) -> bool:
        return bool(self.results) and self.num_ok == len(self.results)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "created": self.created,
            "params": dict(self.params),
            "host": dict(self.host),
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunReport":
        return cls(
            results=[BenchResult.from_dict(r)
                     for r in d.get("results", [])],
            params=dict(d.get("params", {})),
            created=d.get("created", ""),
            host=dict(d.get("host", {})),
            schema=int(d.get("schema", SCHEMA_VERSION)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as f:
            return cls.from_json(f.read())

    def summary(self) -> str:
        lines = [f"{len(self.results)} benchmarks, {self.num_ok} ok"]
        for r in sorted(self.results, key=lambda r: r.name):
            flag = r.status if not r.ok else f"{r.wall_s:7.2f}s"
            claims = ",".join(r.claims) or "-"
            lines.append(f"  {r.name:24s} {flag:>9s}  "
                         f"[{claims}]  {len(r.metrics)} metrics")
        return "\n".join(lines)


def default_report_filename(now: Optional[float] = None) -> str:
    stamp = time.strftime("%Y%m%d_%H%M%S",
                          time.localtime(now) if now else time.localtime())
    return f"BENCH_{stamp}.json"


def merge_claim_coverage(results: Sequence[BenchResult]) -> Dict[str, str]:
    """Map claim ID -> status of the benchmark reproducing it."""
    coverage: Dict[str, str] = {}
    for r in results:
        for c in r.claims:
            prev = coverage.get(c)
            if prev is None or (prev != STATUS_OK and r.ok):
                coverage[c] = r.status
    return coverage
