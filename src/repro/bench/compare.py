"""Regression detection between two ``BENCH_*.json`` reports.

``compare_reports(baseline, current)`` matches benchmarks by name and
metrics by key and flags:

* **drift** — a metric moved beyond tolerance
  (``math.isclose(rel_tol, abs_tol)``);
* **status** — a benchmark that was ``ok`` now errors or times out;
* **missing-bench** / **missing-metric** — coverage shrank;
* **new-bench** / **new-metric** — informational only, never failing
  (growth is expected between PRs).

Wall-clock metrics (keys ending ``_ms``/``_s``, the ``wall_s`` field
and the phase timers) are recorded for trend analysis but excluded from
drift detection — only deterministic quantities gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.bench.result import (STATUS_OK, RunReport,
                                is_volatile_metric)

DEFAULT_REL_TOL = 0.05
DEFAULT_ABS_TOL = 1e-9

# finding kinds
DRIFT = "drift"
STATUS = "status"
MISSING_BENCH = "missing-bench"
MISSING_METRIC = "missing-metric"
NEW_BENCH = "new-bench"
NEW_METRIC = "new-metric"

#: kinds that make the comparison fail
FAILING_KINDS = (DRIFT, STATUS, MISSING_BENCH, MISSING_METRIC)


@dataclass(frozen=True)
class Finding:
    kind: str
    bench: str
    metric: str = ""
    baseline: float = math.nan
    current: float = math.nan
    detail: str = ""

    @property
    def failing(self) -> bool:
        return self.kind in FAILING_KINDS

    def describe(self) -> str:
        where = f"{self.bench}.{self.metric}" if self.metric \
            else self.bench
        if self.kind == DRIFT:
            delta = self.current - self.baseline
            rel = (delta / abs(self.baseline)
                   if self.baseline else math.inf)
            return (f"DRIFT {where}: {self.baseline:g} -> "
                    f"{self.current:g} ({rel:+.1%})")
        return f"{self.kind.upper()} {where}: {self.detail}"


@dataclass
class Comparison:
    findings: List[Finding] = field(default_factory=list)
    benches_compared: int = 0
    metrics_compared: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.failing for f in self.findings)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.failing]

    def summary(self) -> str:
        lines = [f"compared {self.benches_compared} benchmarks, "
                 f"{self.metrics_compared} metrics: "
                 + ("OK" if self.ok
                    else f"{len(self.regressions)} regression(s)")]
        for f in self.findings:
            marker = "!!" if f.failing else "  "
            lines.append(f"  {marker} {f.describe()}")
        return "\n".join(lines)


def compare_reports(baseline: RunReport, current: RunReport,
                    rel_tol: float = DEFAULT_REL_TOL,
                    abs_tol: float = DEFAULT_ABS_TOL) -> Comparison:
    cmp = Comparison()
    base_by = baseline.by_name()
    cur_by = current.by_name()

    for name in sorted(base_by):
        if name not in cur_by:
            cmp.findings.append(Finding(
                MISSING_BENCH, name,
                detail="present in baseline, absent now"))
    for name in sorted(cur_by):
        if name not in base_by:
            cmp.findings.append(Finding(
                NEW_BENCH, name, detail="not in baseline"))

    for name in sorted(set(base_by) & set(cur_by)):
        b, c = base_by[name], cur_by[name]
        cmp.benches_compared += 1
        if b.status == STATUS_OK and c.status != STATUS_OK:
            cmp.findings.append(Finding(
                STATUS, name,
                detail=f"was ok, now {c.status}"
                       + (f": {c.error.splitlines()[-1]}"
                          if c.error else "")))
            continue
        if b.status != STATUS_OK:
            continue  # baseline itself was broken; nothing to gate on
        for key in sorted(b.metrics):
            if is_volatile_metric(key):
                continue
            if key not in c.metrics:
                cmp.findings.append(Finding(
                    MISSING_METRIC, name, key,
                    baseline=b.metrics[key],
                    detail="metric disappeared"))
                continue
            cmp.metrics_compared += 1
            bv, cv = b.metrics[key], c.metrics[key]
            if not math.isclose(bv, cv, rel_tol=rel_tol,
                                abs_tol=abs_tol):
                cmp.findings.append(Finding(
                    DRIFT, name, key, baseline=bv, current=cv))
        for key in sorted(set(c.metrics) - set(b.metrics)):
            if not is_volatile_metric(key):
                cmp.findings.append(Finding(
                    NEW_METRIC, name, key, current=c.metrics[key],
                    detail="not in baseline"))
    return cmp


def compare_files(baseline_path: str, current_path: str,
                  rel_tol: float = DEFAULT_REL_TOL,
                  abs_tol: float = DEFAULT_ABS_TOL) -> Comparison:
    return compare_reports(RunReport.load(baseline_path),
                           RunReport.load(current_path),
                           rel_tol=rel_tol, abs_tol=abs_tol)
