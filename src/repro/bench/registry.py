"""Benchmark discovery.

Every ``benchmarks/bench_<name>.py`` is an entry in the registry.  A
benchmark module exports

* ``CLAIMS`` — tuple of paper-claim IDs it reproduces (``("C1",)``;
  empty for ablations), and
* ``run(params) -> dict`` — the importable entry point: computes the
  experiment at the requested scale and returns
  ``{"metrics": {...}, "vectors": int}``.

Discovery is *static*: the module is parsed with :mod:`ast`, never
imported, so a benchmark that crashes on import is still listed (and
its crash is captured by the runner as a per-benchmark failure rather
than killing discovery).  Execution (:mod:`repro.bench.runner`) imports
the module lazily, inside the worker.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

#: environment override for the benchmark directory (used by the CI and
#: by tests that point the harness at a synthetic suite).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

PREFIX = "bench_"


@dataclass(frozen=True)
class BenchSpec:
    """Static description of one discovered benchmark."""

    name: str              # registry name, e.g. "power_breakdown"
    path: str              # absolute path of the module file
    claims: Tuple[str, ...] = ()
    description: str = ""  # first line of the module docstring
    has_run: bool = True   # module defines a top-level run()

    @property
    def module_stem(self) -> str:
        return Path(self.path).stem


def default_bench_dir() -> Path:
    """``$REPRO_BENCH_DIR`` or ``<repo>/benchmarks`` next to ``src/``."""
    env = os.environ.get(BENCH_DIR_ENV)
    if env:
        return Path(env)
    # .../repo/src/repro/bench/registry.py -> .../repo/benchmarks
    return Path(__file__).resolve().parents[3] / "benchmarks"


def _literal_claims(node: ast.AST) -> Tuple[str, ...]:
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return ()
    if isinstance(value, (list, tuple)):
        return tuple(str(v) for v in value)
    if isinstance(value, str):
        return (value,)
    return ()


def parse_spec(path: Path) -> BenchSpec:
    """Build a spec from the module source without importing it."""
    name = path.stem[len(PREFIX):] if path.stem.startswith(PREFIX) \
        else path.stem
    claims: Tuple[str, ...] = ()
    description = ""
    has_run = False
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError as exc:
        return BenchSpec(name=name, path=str(path),
                         description=f"unparseable: {exc}",
                         has_run=False)
    doc = ast.get_docstring(tree)
    if doc:
        description = doc.strip().splitlines()[0]
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if "CLAIMS" in targets:
                claims = _literal_claims(node.value)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "run":
                has_run = True
    return BenchSpec(name=name, path=str(path), claims=claims,
                     description=description, has_run=has_run)


def discover(bench_dir: Optional[Path] = None,
             pattern: Optional[str] = None) -> List[BenchSpec]:
    """All benchmarks under ``bench_dir``, optionally filtered.

    ``pattern`` is a comma-separated list of substrings; a benchmark is
    kept when any of them occurs in its name.
    """
    bench_dir = Path(bench_dir) if bench_dir else default_bench_dir()
    specs = [parse_spec(p)
             for p in sorted(bench_dir.glob(f"{PREFIX}*.py"))]
    if pattern:
        needles = [n.strip() for n in pattern.split(",") if n.strip()]
        specs = [s for s in specs
                 if any(n in s.name for n in needles)]
    return specs


def find(name: str,
         bench_dir: Optional[Path] = None) -> Optional[BenchSpec]:
    for spec in discover(bench_dir):
        if spec.name == name:
            return spec
    return None


def claims_index(specs: Sequence[BenchSpec]) -> dict:
    """claim ID -> benchmark name (for coverage reporting)."""
    index = {}
    for spec in specs:
        for claim in spec.claims:
            index[claim] = spec.name
    return index
