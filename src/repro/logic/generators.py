"""Parametric benchmark-circuit generators.

These stand in for the MCNC/ISCAS netlists used by the surveyed papers
(see DESIGN.md, substitutions table).  All generators return a
:class:`~repro.logic.netlist.Network` built from primitive gates.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.logic.gates import GateType
from repro.logic.netlist import Network


def _bit_names(prefix: str, n: int) -> List[str]:
    return [f"{prefix}{i}" for i in range(n)]


def ripple_carry_adder(n: int, name: str = "rca") -> Network:
    """n-bit ripple-carry adder: inputs a0..a{n-1}, b0..b{n-1}, cin;
    outputs s0..s{n-1}, cout."""
    net = Network(name)
    a = net.add_inputs(_bit_names("a", n))
    b = net.add_inputs(_bit_names("b", n))
    carry = net.add_input("cin")
    for i in range(n):
        p = net.add_gate(f"p{i}", GateType.XOR, [a[i], b[i]])
        net.add_gate(f"s{i}", GateType.XOR, [p, carry])
        g = net.add_gate(f"g{i}", GateType.AND, [a[i], b[i]])
        t = net.add_gate(f"t{i}", GateType.AND, [p, carry])
        carry = net.add_gate(f"c{i + 1}", GateType.OR, [g, t])
        net.set_output(f"s{i}")
    net.set_output(carry)
    return net


def comparator(n: int, name: str = "cmp") -> Network:
    """n-bit magnitude comparator computing C > D (Figure 1 of the paper).

    Built as a ripple from the LSB: gt_i = (c_i & ~d_i) | (eq_i & gt_{i-1}).
    Inputs c0..c{n-1}, d0..d{n-1}; output ``gt``.
    """
    net = Network(name)
    c = net.add_inputs(_bit_names("c", n))
    d = net.add_inputs(_bit_names("d", n))
    gt: Optional[str] = None
    for i in range(n):
        nd = net.add_gate(f"nd{i}", GateType.NOT, [d[i]])
        win = net.add_gate(f"win{i}", GateType.AND, [c[i], nd])
        if gt is None:
            gt = win
        else:
            eq = net.add_gate(f"eq{i}", GateType.XNOR, [c[i], d[i]])
            keep = net.add_gate(f"keep{i}", GateType.AND, [eq, gt])
            gt = net.add_gate(f"gt{i}", GateType.OR, [win, keep])
    assert gt is not None
    net.set_output(gt)
    return net


def equality_checker(n: int, name: str = "eq") -> Network:
    """n-bit equality comparator (balanced XNOR/AND tree)."""
    net = Network(name)
    a = net.add_inputs(_bit_names("a", n))
    b = net.add_inputs(_bit_names("b", n))
    layer = [net.add_gate(f"x{i}", GateType.XNOR, [a[i], b[i]])
             for i in range(n)]
    idx = 0
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(net.add_gate(f"and{idx}", GateType.AND,
                                    [layer[i], layer[i + 1]]))
            idx += 1
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    net.set_output(layer[0])
    return net


def parity_tree(n: int, balanced: bool = True, name: str = "parity"
                ) -> Network:
    """n-input XOR tree; ``balanced=False`` builds a chain (worst glitching)."""
    net = Network(name)
    ins = net.add_inputs(_bit_names("i", n))
    idx = 0
    if balanced:
        layer = list(ins)
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(net.add_gate(f"x{idx}", GateType.XOR,
                                        [layer[i], layer[i + 1]]))
                idx += 1
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        net.set_output(layer[0])
    else:
        acc = ins[0]
        for i in range(1, n):
            acc = net.add_gate(f"x{idx}", GateType.XOR, [acc, ins[i]])
            idx += 1
        net.set_output(acc)
    return net


def array_multiplier(n: int, name: str = "mult") -> Network:
    """n x n unsigned array multiplier (carry-save array, ripple at end).

    Inputs a0.., b0..; outputs p0..p{2n-1}.  Deep reconvergent carry chains
    make it the classical glitching benchmark ([25] in the paper).
    """
    net = Network(name)
    a = net.add_inputs(_bit_names("a", n))
    b = net.add_inputs(_bit_names("b", n))
    # Partial products.
    pp = [[net.add_gate(f"pp{i}_{j}", GateType.AND, [a[i], b[j]])
           for j in range(n)] for i in range(n)]
    uid = [0]

    def full_adder(x: str, y: str, z: str) -> (str, str):
        k = uid[0]
        uid[0] += 1
        s1 = net.add_gate(f"fs{k}a", GateType.XOR, [x, y])
        s = net.add_gate(f"fs{k}", GateType.XOR, [s1, z])
        c = net.add_gate(f"fc{k}", GateType.MAJ, [x, y, z])
        return s, c

    def half_adder(x: str, y: str) -> (str, str):
        k = uid[0]
        uid[0] += 1
        s = net.add_gate(f"hs{k}", GateType.XOR, [x, y])
        c = net.add_gate(f"hc{k}", GateType.AND, [x, y])
        return s, c

    # Column-wise carry-save reduction.
    columns: List[List[str]] = [[] for _ in range(2 * n)]
    for i in range(n):
        for j in range(n):
            columns[i + j].append(pp[i][j])
    for col in range(2 * n):
        while len(columns[col]) > 1:
            if len(columns[col]) >= 3:
                x, y, z = columns[col][:3]
                del columns[col][:3]
                s, c = full_adder(x, y, z)
            else:
                x, y = columns[col][:2]
                del columns[col][:2]
                s, c = half_adder(x, y)
            columns[col].append(s)
            if col + 1 < 2 * n:
                columns[col + 1].append(c)
        out = columns[col][0] if columns[col] else None
        if out is None:
            out = net.add_gate(f"pz{col}", GateType.CONST0, [])
        buf = net.add_gate(f"p{col}", GateType.BUF, [out])
        net.set_output(buf)
    return net


def carry_lookahead_adder(n: int, block: int = 4,
                          name: str = "cla") -> Network:
    """n-bit block carry-lookahead adder.

    Generate/propagate are computed per bit; carries inside each
    ``block`` come from the expanded lookahead equations, and blocks
    are chained.  Shallower and glitchier than the ripple adder — the
    classic architecture-power trade for the E-series experiments.
    """
    net = Network(name)
    a = net.add_inputs(_bit_names("a", n))
    b = net.add_inputs(_bit_names("b", n))
    cin = net.add_input("cin")
    g = [net.add_gate(f"g{i}", GateType.AND, [a[i], b[i]])
         for i in range(n)]
    p = [net.add_gate(f"p{i}", GateType.XOR, [a[i], b[i]])
         for i in range(n)]
    carry = cin
    carries = [carry]
    uid = [0]

    def and_tree(parts):
        if len(parts) == 1:
            return parts[0]
        uid[0] += 1
        name_ = f"la{uid[0]}"
        if len(parts) == 2:
            return net.add_gate(name_, GateType.AND, parts)
        return net.add_gate(name_, GateType.AND,
                            [and_tree(parts[:-1]), parts[-1]])

    for base in range(0, n, block):
        width = min(block, n - base)
        for k in range(1, width + 1):
            # c_{base+k} = Σ_j g_{base+j}·Π_{m>j} p_{base+m}
            #              + (Π p) · c_base
            terms = []
            for j in range(k):
                parts = [g[base + j]] + \
                    [p[base + m] for m in range(j + 1, k)]
                terms.append(and_tree(parts))
            terms.append(and_tree([p[base + m] for m in range(k)] +
                                  [carry]))
            cname = f"c{base + k}"
            acc = terms[0]
            for t in terms[1:-1]:
                uid[0] += 1
                acc = net.add_gate(f"lo{uid[0]}", GateType.OR, [acc, t])
            acc = net.add_gate(cname, GateType.OR, [acc, terms[-1]])
            carries.append(acc)
        carry = carries[base + width]
    for i in range(n):
        net.add_gate(f"s{i}", GateType.XOR, [p[i], carries[i]])
        net.set_output(f"s{i}")
    net.set_output(carries[n])
    return net


def carry_select_adder(n: int, block: int = 4,
                       name: str = "csel") -> Network:
    """n-bit carry-select adder: each block computes both carry
    assumptions and muxes on the incoming carry — faster at the price
    of duplicated (power-hungry) logic."""
    net = Network(name)
    a = net.add_inputs(_bit_names("a", n))
    b = net.add_inputs(_bit_names("b", n))
    carry = net.add_input("cin")
    for base in range(0, n, block):
        width = min(block, n - base)
        outs = {}
        for assume in (0, 1):
            c = net.add_gate(f"k{base}_{assume}",
                             GateType.CONST1 if assume else
                             GateType.CONST0, [])
            for i in range(base, base + width):
                px = net.add_gate(f"px{i}_{assume}", GateType.XOR,
                                  [a[i], b[i]])
                outs[(i, assume)] = net.add_gate(
                    f"sx{i}_{assume}", GateType.XOR, [px, c])
                c = net.add_gate(f"cx{i}_{assume}", GateType.MAJ,
                                 [a[i], b[i], c])
            outs[(base + width, assume)] = c
        for i in range(base, base + width):
            net.add_gate(f"s{i}", GateType.MUX,
                         [carry, outs[(i, 0)], outs[(i, 1)]])
            net.set_output(f"s{i}")
        carry = net.add_gate(f"c{base + width}", GateType.MUX,
                             [carry, outs[(base + width, 0)],
                              outs[(base + width, 1)]])
    net.set_output(carry)
    return net


def wallace_multiplier(n: int, name: str = "wallace") -> Network:
    """n x n multiplier with Wallace-style balanced reduction.

    Functionally identical to :func:`array_multiplier` but the
    carry-save tree is reduced breadth-first (all rows in parallel per
    level), giving a shallower, better-balanced network.
    """
    net = Network(name)
    a = net.add_inputs(_bit_names("a", n))
    b = net.add_inputs(_bit_names("b", n))
    columns: List[List[str]] = [[] for _ in range(2 * n)]
    for i in range(n):
        for j in range(n):
            columns[i + j].append(
                net.add_gate(f"pp{i}_{j}", GateType.AND, [a[i], b[j]]))
    uid = [0]

    def fa(x, y, z):
        uid[0] += 1
        k = uid[0]
        s1 = net.add_gate(f"ws{k}a", GateType.XOR, [x, y])
        s = net.add_gate(f"ws{k}", GateType.XOR, [s1, z])
        c = net.add_gate(f"wc{k}", GateType.MAJ, [x, y, z])
        return s, c

    def ha(x, y):
        uid[0] += 1
        k = uid[0]
        s = net.add_gate(f"whs{k}", GateType.XOR, [x, y])
        c = net.add_gate(f"whc{k}", GateType.AND, [x, y])
        return s, c

    # Breadth-first reduction: compress every column level by level.
    while any(len(col) > 2 for col in columns):
        nxt: List[List[str]] = [[] for _ in range(2 * n)]
        for col in range(2 * n):
            items = columns[col]
            idx = 0
            while len(items) - idx >= 3:
                s, c = fa(items[idx], items[idx + 1], items[idx + 2])
                nxt[col].append(s)
                if col + 1 < 2 * n:
                    nxt[col + 1].append(c)
                idx += 3
            if len(items) - idx == 2:
                s, c = ha(items[idx], items[idx + 1])
                nxt[col].append(s)
                if col + 1 < 2 * n:
                    nxt[col + 1].append(c)
                idx += 2
            nxt[col].extend(items[idx:])
        columns = nxt
    # Final carry-propagate (ripple) stage.
    carry = None
    for col in range(2 * n):
        items = list(columns[col])
        if carry is not None:
            items.append(carry)
        carry = None
        if not items:
            out = net.add_gate(f"pz{col}", GateType.CONST0, [])
        elif len(items) == 1:
            out = items[0]
        elif len(items) == 2:
            out, carry = ha(items[0], items[1])
        else:
            out, carry = fa(items[0], items[1], items[2])
        buf = net.add_gate(f"p{col}", GateType.BUF, [out])
        net.set_output(buf)
    return net


def mux_tree(select_bits: int, name: str = "muxtree") -> Network:
    """2^k-to-1 multiplexer tree (k = select_bits)."""
    net = Network(name)
    n = 1 << select_bits
    data = net.add_inputs(_bit_names("d", n))
    sel = net.add_inputs(_bit_names("s", select_bits))
    layer = list(data)
    idx = 0
    for level in range(select_bits):
        nxt = []
        for i in range(0, len(layer), 2):
            nxt.append(net.add_gate(f"m{idx}", GateType.MUX,
                                    [sel[level], layer[i], layer[i + 1]]))
            idx += 1
        layer = nxt
    net.set_output(layer[0])
    return net


def barrel_shifter(n_bits: int, name: str = "barrel") -> Network:
    """Logarithmic barrel shifter (left rotate by s).

    Inputs d0..d{n-1} and select bits s0..s{log2 n - 1}; outputs
    y0..y{n-1} = d rotated left by the select amount.  Log-depth mux
    layers — a classic datapath block with heavy mux fan-in.
    """
    if n_bits & (n_bits - 1):
        raise ValueError("barrel shifter width must be a power of two")
    stages = n_bits.bit_length() - 1
    net = Network(name)
    data = net.add_inputs(_bit_names("d", n_bits))
    sel = net.add_inputs(_bit_names("s", stages))
    layer = list(data)
    for stage in range(stages):
        amount = 1 << stage
        nxt = []
        for i in range(n_bits):
            src_rot = layer[(i - amount) % n_bits]
            nxt.append(net.add_gate(f"m{stage}_{i}", GateType.MUX,
                                    [sel[stage], layer[i], src_rot]))
        layer = nxt
    for i, sig in enumerate(layer):
        buf = net.add_gate(f"y{i}", GateType.BUF, [sig])
        net.set_output(buf)
    return net


def decoder(select_bits: int, name: str = "dec") -> Network:
    """k-to-2^k one-hot decoder with an enable input."""
    net = Network(name)
    sel = net.add_inputs(_bit_names("s", select_bits))
    en = net.add_input("en")
    inv = [net.add_gate(f"ns{i}", GateType.NOT, [sel[i]])
           for i in range(select_bits)]
    for code in range(1 << select_bits):
        parts = [sel[i] if (code >> i) & 1 else inv[i]
                 for i in range(select_bits)] + [en]
        acc = parts[0]
        for j, p in enumerate(parts[1:]):
            acc = net.add_gate(f"d{code}_{j}", GateType.AND, [acc, p])
        out = net.add_gate(f"o{code}", GateType.BUF, [acc])
        net.set_output(out)
    return net


def priority_encoder(n_bits: int, name: str = "prienc") -> Network:
    """Priority encoder: index of the highest asserted request line
    (outputs y*, plus ``valid``)."""
    import math

    net = Network(name)
    reqs = net.add_inputs(_bit_names("r", n_bits))
    out_bits = max(1, math.ceil(math.log2(n_bits)))
    # grant_i = r_i AND none of the higher requests.
    grants = []
    higher: Optional[str] = None
    for i in range(n_bits - 1, -1, -1):
        if higher is None:
            grants.append((i, reqs[i]))
            higher = reqs[i]
        else:
            nh = net.add_gate(f"nh{i}", GateType.NOT, [higher])
            grants.append((i, net.add_gate(f"g{i}", GateType.AND,
                                           [reqs[i], nh])))
            higher = net.add_gate(f"any{i}", GateType.OR,
                                  [higher, reqs[i]])
    for b in range(out_bits):
        sources = [g for i, g in grants if (i >> b) & 1]
        if not sources:
            net.add_gate(f"y{b}", GateType.CONST0, [])
        elif len(sources) == 1:
            net.add_gate(f"y{b}", GateType.BUF, [sources[0]])
        else:
            acc = sources[0]
            for j, s in enumerate(sources[1:]):
                acc = net.add_gate(f"yo{b}_{j}", GateType.OR, [acc, s])
            net.add_gate(f"y{b}", GateType.BUF, [acc])
        net.set_output(f"y{b}")
    net.add_gate("valid", GateType.BUF, [higher])
    net.set_output("valid")
    return net


def alu_slice(n: int, name: str = "alu") -> Network:
    """Small ALU: op-selected AND / OR / XOR / ADD over two n-bit words.

    Inputs a*, b*, op0, op1; outputs y0..y{n-1}.
    """
    net = Network(name)
    a = net.add_inputs(_bit_names("a", n))
    b = net.add_inputs(_bit_names("b", n))
    op0 = net.add_input("op0")
    op1 = net.add_input("op1")
    carry = net.add_gate("c_in0", GateType.CONST0, [])
    for i in range(n):
        g_and = net.add_gate(f"and{i}", GateType.AND, [a[i], b[i]])
        g_or = net.add_gate(f"or{i}", GateType.OR, [a[i], b[i]])
        g_xor = net.add_gate(f"xor{i}", GateType.XOR, [a[i], b[i]])
        g_sum = net.add_gate(f"sum{i}", GateType.XOR, [g_xor, carry])
        carry_new = net.add_gate(f"cout{i}", GateType.MAJ,
                                 [a[i], b[i], carry])
        lo = net.add_gate(f"lo{i}", GateType.MUX, [op0, g_and, g_or])
        hi = net.add_gate(f"hi{i}", GateType.MUX, [op0, g_xor, g_sum])
        y = net.add_gate(f"y{i}", GateType.MUX, [op1, lo, hi])
        net.set_output(y)
        carry = carry_new
    return net


def random_logic(num_inputs: int, num_gates: int, seed: int = 0,
                 num_outputs: Optional[int] = None,
                 name: str = "rand") -> Network:
    """Random DAG of 2-input gates — the 'typical combinational logic'
    workload for the estimation experiments."""
    rng = random.Random(seed)
    net = Network(name)
    pool = net.add_inputs(_bit_names("i", num_inputs))
    choices = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
               GateType.XOR, GateType.XNOR]
    for g in range(num_gates):
        gtype = rng.choice(choices)
        f1 = rng.choice(pool)
        f2 = rng.choice(pool)
        while f2 == f1 and len(pool) > 1:
            f2 = rng.choice(pool)
        node = net.add_gate(f"g{g}", gtype, [f1, f2])
        pool.append(node)
    fo = net.fanouts()
    sinks = [n for n in pool if not fo[n] and
             net.nodes[n].kind != "input"]
    if num_outputs is not None:
        extra = [n for n in reversed(pool)
                 if net.nodes[n].kind != "input" and n not in sinks]
        sinks = (sinks + extra)[:max(num_outputs, len(sinks))]
    for s in sinks:
        net.set_output(s)
    if not net.outputs:
        net.set_output(pool[-1])
    return net


def register_file(words: int, width: int, name: str = "regfile") -> Network:
    """Tiny register file: ``words`` registers of ``width`` bits with a
    one-hot write-enable per word (for the gated-clock experiments).

    Inputs: d0..d{width-1} (write data), we0..we{words-1}.
    Outputs: r{w}_{i} for each stored bit.
    """
    net = Network(name)
    data = net.add_inputs(_bit_names("d", width))
    wes = net.add_inputs(_bit_names("we", words))
    for w in range(words):
        for i in range(width):
            q = f"r{w}_{i}"
            mux = net.add_gate(f"wm{w}_{i}", GateType.MUX,
                               [wes[w], q + "_fb", data[i]])
            net.add_latch(mux, q)
            net.add_gate(q + "_fb", GateType.BUF, [q])
            net.set_output(q)
    return net


def counter(n: int, name: str = "counter") -> Network:
    """n-bit synchronous binary counter with enable input ``en``."""
    net = Network(name)
    en = net.add_input("en")
    carry = en
    for i in range(n):
        q = f"q{i}"
        tog = net.add_gate(f"t{i}", GateType.XOR, [f"q{i}_pre", carry])
        carry = net.add_gate(f"cy{i}", GateType.AND, [f"q{i}_pre", carry])
        net.add_latch(tog, f"q{i}_pre")
        buf = net.add_gate(q, GateType.BUF, [f"q{i}_pre"])
        net.set_output(buf)
    return net
