"""Boolean logic engine: cubes, SOP covers, netlists, factoring, BLIF."""

from repro.logic.cube import Cube
from repro.logic.sop import Cover
from repro.logic.gates import GateType
from repro.logic.netlist import Network, Latch, Node, NetlistError
from repro.logic.blif import read_blif, write_blif

__all__ = ["Cube", "Cover", "GateType", "Network", "Latch", "Node",
           "NetlistError", "read_blif", "write_blif"]
