"""SIS-style Boolean network: the central netlist data structure.

A :class:`Network` is a DAG of named nodes.  Each node is one of:

* a primary input (``kind == "input"``),
* a latch output (``kind == "latch"``; the latch itself records its data
  input, initial value and optional clock-enable),
* a primitive gate (``kind == "gate"``; a :class:`~repro.logic.gates.GateType`
  over an ordered fanin list),
* an SOP node (``kind == "sop"``; a :class:`~repro.logic.sop.Cover` whose
  variable *i* is the node's *i*-th fanin) — the technology-independent
  representation used by the multilevel optimizations.

Primary outputs are a list of node names.  Combinational evaluation is
bit-parallel (Python ints as pattern vectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.gates import GateType, eval_gate, gate_arity_ok, \
    gate_transistors
from repro.logic.sop import Cover


class NetlistError(Exception):
    """Structural error in a network."""


@dataclass
class Latch:
    """An edge-triggered register.

    ``enable`` (if set) names a node gating the clock: when the enable
    evaluates to 0 the latch holds its value (used by the gated-clock and
    precomputation optimizations).
    """

    data: str
    output: str
    init: int = 0
    enable: Optional[str] = None


class Node:
    """One vertex of a Boolean network."""

    __slots__ = ("name", "kind", "gtype", "fanins", "cover", "attrs")

    def __init__(self, name: str, kind: str,
                 gtype: Optional[GateType] = None,
                 fanins: Optional[List[str]] = None,
                 cover: Optional[Cover] = None):
        self.name = name
        self.kind = kind
        self.gtype = gtype
        self.fanins: List[str] = fanins or []
        self.cover = cover
        #: free-form per-node attributes (cell binding, transistor size, ...)
        self.attrs: Dict[str, object] = {}

    def is_source(self) -> bool:
        return self.kind in ("input", "latch")

    def num_transistors(self) -> int:
        """Transistor-count proxy for unmapped area/capacitance."""
        if self.kind == "gate":
            assert self.gtype is not None
            return gate_transistors(self.gtype, len(self.fanins))
        if self.kind == "sop":
            assert self.cover is not None
            # One transistor pair per literal plus output stage.
            return 2 * self.cover.num_literals() + 2
        return 0

    def __repr__(self) -> str:
        if self.kind == "gate":
            return f"Node({self.name}={self.gtype.value}({', '.join(self.fanins)}))"
        if self.kind == "sop":
            return f"Node({self.name}=SOP({', '.join(self.fanins)}))"
        return f"Node({self.name}:{self.kind})"


class Network:
    """A combinational / sequential Boolean network."""

    def __init__(self, name: str = "top"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.latches: List[Latch] = []
        self._topo_cache: Optional[List[str]] = None
        self._fanout_cache: Optional[Dict[str, List[str]]] = None
        #: compiled evaluation programs (repro.sim.compiled /
        #: repro.sim.timed); opaque here to avoid a layering cycle.
        #: Cleared by every structural mutation hook and re-validated
        #: against a structural fingerprint on use, so stale programs
        #: are never evaluated.
        self._compiled: Optional[object] = None
        self._timed: Optional[object] = None

    # -- construction ---------------------------------------------------

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._fanout_cache = None
        self._compiled = None
        self._timed = None

    def _check_new(self, name: str) -> None:
        if name in self.nodes:
            raise NetlistError(f"node {name!r} already exists")

    def add_input(self, name: str) -> str:
        self._check_new(name)
        self.nodes[name] = Node(name, "input")
        self.inputs.append(name)
        self._invalidate()
        return name

    def add_inputs(self, names: Iterable[str]) -> List[str]:
        return [self.add_input(n) for n in names]

    def add_gate(self, name: str, gtype: GateType,
                 fanins: Sequence[str]) -> str:
        self._check_new(name)
        if not gate_arity_ok(gtype, len(fanins)):
            raise NetlistError(
                f"gate {name!r}: {gtype.value} cannot take "
                f"{len(fanins)} inputs")
        self.nodes[name] = Node(name, "gate", gtype=gtype,
                                fanins=list(fanins))
        self._invalidate()
        return name

    def add_sop(self, name: str, fanins: Sequence[str], cover: Cover) -> str:
        self._check_new(name)
        if cover.num_vars != len(fanins):
            raise NetlistError(
                f"sop {name!r}: cover arity {cover.num_vars} != "
                f"{len(fanins)} fanins")
        self.nodes[name] = Node(name, "sop", fanins=list(fanins),
                                cover=cover)
        self._invalidate()
        return name

    def add_latch(self, data: str, output: str, init: int = 0,
                  enable: Optional[str] = None) -> Latch:
        self._check_new(output)
        self.nodes[output] = Node(output, "latch")
        latch = Latch(data=data, output=output, init=init, enable=enable)
        self.latches.append(latch)
        self._invalidate()
        return latch

    def set_output(self, name: str) -> None:
        if name not in self.outputs:
            self.outputs.append(name)

    def set_outputs(self, names: Iterable[str]) -> None:
        for n in names:
            self.set_output(n)

    # -- queries ----------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetlistError(f"no node named {name!r}") from None

    def gate_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if not n.is_source()]

    def latch_for_output(self, name: str) -> Latch:
        for latch in self.latches:
            if latch.output == name:
                return latch
        raise NetlistError(f"no latch with output {name!r}")

    def fanouts(self) -> Dict[str, List[str]]:
        """Map node name -> names of nodes reading it (latch data counts).

        The map is cached until the next structural mutation (the
        event-driven simulator reads it per construction); treat the
        returned dict as read-only.
        """
        if self._fanout_cache is not None:
            return self._fanout_cache
        fo: Dict[str, List[str]] = {n: [] for n in self.nodes}
        for node in self.nodes.values():
            for fi in node.fanins:
                fo[fi].append(node.name)
        for latch in self.latches:
            fo[latch.data].append(latch.output)
            if latch.enable is not None:
                fo[latch.enable].append(latch.output)
        self._fanout_cache = fo
        return fo

    def fanout_count(self, name: str) -> int:
        count = 0
        for node in self.nodes.values():
            count += node.fanins.count(name)
        for latch in self.latches:
            count += int(latch.data == name)
            count += int(latch.enable == name)
        if name in self.outputs:
            count += 1
        return count

    def _cycle_error(self, through: str) -> NetlistError:
        """Build the cycle diagnostic for :meth:`topo_order`.

        Extracts one concrete cycle with the analyzer's SCC machinery
        so the error names the full path instead of a single node.
        """
        from repro.analysis.graph import cycle_path

        adj = {n.name: ([] if n.is_source() else
                        [fi for fi in n.fanins if fi in self.nodes])
               for n in self.nodes.values()}
        path = cycle_path(adj)
        if path is None:  # pragma: no cover - detection just saw one
            return NetlistError(
                f"combinational cycle through {through!r}")
        return NetlistError(
            "combinational cycle: " + " -> ".join(path))

    def topo_order(self) -> List[str]:
        """Topological order of all nodes (sources first).

        Raises :class:`NetlistError` naming the offending cycle path
        (``combinational cycle: a -> b -> a``) on cyclic networks, and
        the missing node on dangling references.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        order: List[str] = []
        state: Dict[str, int] = {}  # 0=unseen 1=visiting 2=done

        for root in self.nodes:
            if state.get(root, 0) == 2:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                name, idx = stack.pop()
                if state.get(name, 0) == 2:
                    continue
                node = self.nodes.get(name)
                if node is None:
                    raise NetlistError(f"dangling reference to {name!r}")
                if node.is_source():
                    state[name] = 2
                    order.append(name)
                    continue
                if idx == 0:
                    if state.get(name, 0) == 1:
                        pass
                    state[name] = 1
                if idx < len(node.fanins):
                    stack.append((name, idx + 1))
                    fi = node.fanins[idx]
                    st = state.get(fi, 0)
                    if st == 1:
                        raise self._cycle_error(fi)
                    if st == 0:
                        stack.append((fi, 0))
                else:
                    state[name] = 2
                    order.append(name)
        self._topo_cache = order
        return order

    def levels(self, delays: Optional[Dict[str, float]] = None
               ) -> Dict[str, float]:
        """Arrival time of each node (unit delay per gate by default)."""
        arr: Dict[str, float] = {}
        for name in self.topo_order():
            node = self.nodes[name]
            if node.is_source():
                arr[name] = 0.0
            else:
                d = 1.0 if delays is None else delays.get(name, 1.0)
                arr[name] = d + max((arr[fi] for fi in node.fanins),
                                    default=0.0)
        return arr

    def depth(self) -> float:
        arr = self.levels()
        return max((arr[o] for o in self.outputs), default=0.0)

    def num_gates(self) -> int:
        return sum(1 for n in self.nodes.values() if not n.is_source())

    def num_transistors(self) -> int:
        return sum(n.num_transistors() for n in self.nodes.values())

    def num_literals(self) -> int:
        total = 0
        for n in self.nodes.values():
            if n.kind == "sop":
                total += n.cover.num_literals()
            elif n.kind == "gate":
                total += len(n.fanins)
        return total

    def stats(self) -> Dict[str, float]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "latches": len(self.latches),
            "gates": self.num_gates(),
            "transistors": self.num_transistors(),
            "depth": self.depth(),
        }

    # -- evaluation ---------------------------------------------------------

    def evaluate_words(self, input_words: Dict[str, int], mask: int,
                       state_words: Optional[Dict[str, int]] = None
                       ) -> Dict[str, int]:
        """Bit-parallel combinational evaluation.

        ``input_words`` maps PI names to pattern words; ``state_words`` maps
        latch-output names to their current values (default: init values
        replicated).  Returns a word for every node.
        """
        values: Dict[str, int] = {}
        for name in self.topo_order():
            node = self.nodes[name]
            if node.kind == "input":
                try:
                    values[name] = input_words[name] & mask
                except KeyError:
                    raise NetlistError(f"missing input value for {name!r}") \
                        from None
            elif node.kind == "latch":
                if state_words is not None and name in state_words:
                    values[name] = state_words[name] & mask
                else:
                    latch = self.latch_for_output(name)
                    values[name] = mask if latch.init else 0
            elif node.kind == "gate":
                ins = [values[fi] for fi in node.fanins]
                values[name] = eval_gate(node.gtype, ins, mask)
            else:  # sop
                ins = [values[fi] for fi in node.fanins]
                values[name] = node.cover.evaluate_words(ins, mask)
        return values

    def evaluate(self, input_values: Dict[str, int],
                 state: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Scalar evaluation: every value is 0 or 1."""
        words = self.evaluate_words(input_values, 1, state)
        return {k: v & 1 for k, v in words.items()}

    def initial_state(self) -> Dict[str, int]:
        return {latch.output: latch.init for latch in self.latches}

    def step_words(self, state_words: Dict[str, int],
                   input_words: Dict[str, int], mask: int
                   ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """One clocked step (bit-parallel over independent trajectories).

        Returns ``(next_state_words, node_values)``.  Latch enables are
        honoured: where an enable bit is 0 the latch keeps its old bit.
        """
        values = self.evaluate_words(input_words, mask, state_words)
        nxt: Dict[str, int] = {}
        for latch in self.latches:
            new = values[latch.data]
            if latch.enable is not None:
                en = values[latch.enable]
                old = state_words.get(latch.output,
                                      mask if latch.init else 0)
                new = (new & en) | (old & ~en & mask)
            nxt[latch.output] = new
        return nxt, values

    # -- structural editing ---------------------------------------------------

    def replace_fanin(self, node_name: str, old: str, new: str) -> None:
        node = self.node(node_name)
        if old not in node.fanins:
            raise NetlistError(f"{old!r} is not a fanin of {node_name!r}")
        node.fanins = [new if f == old else f for f in node.fanins]
        self._invalidate()

    def replace_everywhere(self, old: str, new: str) -> None:
        """Redirect every reader of ``old`` (fanins, latches, POs) to ``new``."""
        for node in self.nodes.values():
            if old in node.fanins:
                node.fanins = [new if f == old else f for f in node.fanins]
        for latch in self.latches:
            if latch.data == old:
                latch.data = new
            if latch.enable == old:
                latch.enable = new
        # Dedup while renaming: with both old and new already listed,
        # a plain rename would leave the output twice.
        renamed = [new if o == old else o for o in self.outputs]
        seen = set()
        self.outputs = [o for o in renamed
                        if not (o in seen or seen.add(o))]
        self._invalidate()

    def insert_buffer(self, reader: str, fanin: str,
                      buf_name: str) -> str:
        """Insert a BUF between ``fanin`` and one fanin slot of ``reader``."""
        self.add_gate(buf_name, GateType.BUF, [fanin])
        self.replace_fanin(reader, fanin, buf_name)
        return buf_name

    def remove_node(self, name: str) -> None:
        node = self.node(name)
        if self.fanout_count(name):
            raise NetlistError(f"cannot remove {name!r}: it has fanout")
        if node.kind == "input":
            self.inputs.remove(name)
        if node.kind == "latch":
            self.latches = [l for l in self.latches if l.output != name]
        del self.nodes[name]
        self._invalidate()

    def sweep(self) -> int:
        """Remove dangling gates (no path to an output or latch). Returns
        the number of nodes removed."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for name in list(self.nodes):
                node = self.nodes[name]
                if node.is_source() or name in self.outputs:
                    continue
                if self.fanout_count(name) == 0:
                    del self.nodes[name]
                    removed += 1
                    changed = True
        self._invalidate()
        return removed

    def copy(self, name: Optional[str] = None) -> "Network":
        net = Network(name or self.name)
        net.inputs = list(self.inputs)
        net.outputs = list(self.outputs)
        net.latches = [Latch(l.data, l.output, l.init, l.enable)
                       for l in self.latches]
        for n in self.nodes.values():
            node = Node(n.name, n.kind, n.gtype, list(n.fanins),
                        n.cover.copy() if n.cover is not None else None)
            node.attrs = dict(n.attrs)
            net.nodes[n.name] = node
        return net

    def fresh_name(self, prefix: str = "n") -> str:
        i = len(self.nodes)
        while f"{prefix}{i}" in self.nodes:
            i += 1
        return f"{prefix}{i}"

    def check(self) -> None:
        """Validate structural invariants; raises NetlistError on failure."""
        for node in self.nodes.values():
            for fi in node.fanins:
                if fi not in self.nodes:
                    raise NetlistError(
                        f"node {node.name!r} reads missing node {fi!r}")
        for latch in self.latches:
            if latch.data not in self.nodes:
                raise NetlistError(
                    f"latch {latch.output!r} reads missing {latch.data!r}")
            if latch.enable is not None and latch.enable not in self.nodes:
                raise NetlistError(
                    f"latch {latch.output!r} enable missing")
            if latch.output not in self.nodes or \
                    self.nodes[latch.output].kind != "latch":
                raise NetlistError(
                    f"latch output {latch.output!r} malformed")
        for out in self.outputs:
            if out not in self.nodes:
                raise NetlistError(f"missing output node {out!r}")
        self.topo_order()  # raises on cycles / dangling refs

    def __repr__(self) -> str:
        return (f"Network({self.name!r}: {len(self.inputs)} in, "
                f"{len(self.outputs)} out, {len(self.latches)} latches, "
                f"{self.num_gates()} gates)")
