"""Minimal BLIF reader/writer.

Supports ``.model``, ``.inputs``, ``.outputs``, ``.names`` (SOP tables with
single-output cover rows) and ``.latch`` (with optional initial value).
This is the interchange format for user-supplied netlists, standing in for
the MCNC benchmark distribution.
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO, Tuple, Union

from repro.logic.cube import Cube
from repro.logic.netlist import NetlistError, Network
from repro.logic.sop import Cover


class BlifError(NetlistError):
    """Malformed BLIF input; messages carry 1-based line numbers."""


def _logical_lines(stream: TextIO) -> List[Tuple[int, List[str]]]:
    """Tokenised logical lines as ``(first_physical_lineno, tokens)``."""
    lines: List[Tuple[int, List[str]]] = []
    pending = ""
    pending_at = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            if not pending:
                pending_at = lineno
            pending += line[:-1] + " "
            continue
        start = pending_at if pending else lineno
        full = pending + line
        pending = ""
        lines.append((start, full.split()))
    if pending.strip():
        lines.append((pending_at, pending.split()))
    return lines


def read_blif(source: Union[str, TextIO],
              check: bool = True) -> Network:
    """Parse BLIF from a string or file-like object.

    With ``check=True`` (the default) the result is validated —
    undefined fanins, latch references to missing nets and structural
    problems raise :class:`BlifError`/:class:`NetlistError` naming the
    offending line.  ``check=False`` returns the network as written,
    so broken inputs can still be loaded for linting.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    tokens = _logical_lines(source)
    net = Network()
    i = 0
    pending_outputs: List[str] = []
    #: reader name -> (lineno, referenced net, role) for late checking
    refs: List[Tuple[int, str, str, str]] = []
    def_lines: Dict[str, int] = {}

    def define(lineno: int, name: str) -> None:
        if name in def_lines:
            raise BlifError(
                f"line {lineno}: {name!r} already defined at line "
                f"{def_lines[name]}")
        def_lines[name] = lineno

    while i < len(tokens):
        lineno, tok = tokens[i]
        key = tok[0]
        if key == ".model":
            net.name = tok[1] if len(tok) > 1 else "top"
            i += 1
        elif key == ".inputs":
            for name in tok[1:]:
                define(lineno, name)
                net.add_input(name)
            i += 1
        elif key == ".outputs":
            pending_outputs.extend(tok[1:])
            i += 1
        elif key == ".latch":
            if len(tok) < 3:
                raise BlifError(
                    f"line {lineno}: .latch needs input and output")
            data, out = tok[1], tok[2]
            init = 0
            if len(tok) >= 4 and tok[-1] in ("0", "1", "2", "3"):
                init = 1 if tok[-1] == "1" else 0
            define(lineno, out)
            net.add_latch(data, out, init=init)
            refs.append((lineno, out, data, "latch data"))
            i += 1
        elif key == ".names":
            signals = tok[1:]
            if not signals:
                raise BlifError(
                    f"line {lineno}: .names needs at least an output")
            out = signals[-1]
            fanins = signals[:-1]
            rows: List[Cube] = []
            head_line = lineno
            i += 1
            is_const1 = False
            while i < len(tokens) and \
                    not tokens[i][1][0].startswith("."):
                row_line, row = tokens[i]
                if len(fanins) == 0:
                    if row[0] == "1":
                        is_const1 = True
                elif len(row) != 2:
                    raise BlifError(
                        f"line {row_line}: bad cover row "
                        f"{' '.join(row)!r}")
                else:
                    pattern, value = row
                    if value != "1":
                        raise BlifError(
                            f"line {row_line}: only ON-set covers "
                            f"are supported")
                    if len(pattern) != len(fanins):
                        raise BlifError(
                            f"line {row_line}: cover row width "
                            f"{len(pattern)} != {len(fanins)} fanins")
                    rows.append(Cube.from_string(pattern))
                i += 1
            define(head_line, out)
            if not fanins:
                cover = Cover.one(0) if is_const1 else Cover.zero(0)
                net.add_sop(out, [], cover)
            else:
                net.add_sop(out, fanins, Cover(len(fanins), rows))
                for fi in fanins:
                    refs.append((head_line, out, fi, "fanin"))
        elif key == ".end":
            i += 1
        else:
            raise BlifError(
                f"line {lineno}: unsupported BLIF construct {key!r}")
    for out in pending_outputs:
        net.set_output(out)
    if check:
        for lineno, reader, ref, role in refs:
            if ref not in net.nodes:
                raise BlifError(
                    f"line {lineno}: {reader!r} reads undefined net "
                    f"{ref!r} as {role}")
        for out in pending_outputs:
            if out not in net.nodes:
                raise BlifError(
                    f"output {out!r} is never defined")
        net.check()
    return net


def write_blif(net: Network) -> str:
    """Serialise a network to BLIF text (gates become .names tables)."""
    from repro.logic.transform import node_cover  # local import: no cycle

    out = [f".model {net.name}"]
    if net.inputs:
        out.append(".inputs " + " ".join(net.inputs))
    if net.outputs:
        out.append(".outputs " + " ".join(net.outputs))
    for latch in net.latches:
        out.append(f".latch {latch.data} {latch.output} {latch.init}")
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            continue
        cover = node_cover(node)
        out.append(".names " + " ".join(node.fanins + [name]))
        if not node.fanins:
            if cover.is_tautology():
                out.append("1")
        else:
            for cube in cover:
                out.append(cube.to_string() + " 1")
    out.append(".end")
    return "\n".join(out) + "\n"
