"""Minimal BLIF reader/writer.

Supports ``.model``, ``.inputs``, ``.outputs``, ``.names`` (SOP tables with
single-output cover rows) and ``.latch`` (with optional initial value).
This is the interchange format for user-supplied netlists, standing in for
the MCNC benchmark distribution.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from repro.logic.cube import Cube
from repro.logic.netlist import Network
from repro.logic.sop import Cover


class BlifError(Exception):
    pass


def _logical_lines(stream: TextIO) -> List[List[str]]:
    lines: List[List[str]] = []
    pending = ""
    for raw in stream:
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        full = pending + line
        pending = ""
        lines.append(full.split())
    if pending.strip():
        lines.append(pending.split())
    return lines


def read_blif(source: Union[str, TextIO]) -> Network:
    """Parse BLIF from a string or file-like object."""
    if isinstance(source, str):
        source = io.StringIO(source)
    tokens = _logical_lines(source)
    net = Network()
    i = 0
    pending_outputs: List[str] = []
    while i < len(tokens):
        tok = tokens[i]
        key = tok[0]
        if key == ".model":
            net.name = tok[1] if len(tok) > 1 else "top"
            i += 1
        elif key == ".inputs":
            for name in tok[1:]:
                net.add_input(name)
            i += 1
        elif key == ".outputs":
            pending_outputs.extend(tok[1:])
            i += 1
        elif key == ".latch":
            if len(tok) < 3:
                raise BlifError(".latch needs input and output")
            data, out = tok[1], tok[2]
            init = 0
            if len(tok) >= 4 and tok[-1] in ("0", "1", "2", "3"):
                init = 1 if tok[-1] == "1" else 0
            net.add_latch(data, out, init=init)
            i += 1
        elif key == ".names":
            signals = tok[1:]
            if not signals:
                raise BlifError(".names needs at least an output")
            out = signals[-1]
            fanins = signals[:-1]
            rows: List[Cube] = []
            i += 1
            is_const1 = False
            while i < len(tokens) and not tokens[i][0].startswith("."):
                row = tokens[i]
                if len(fanins) == 0:
                    if row[0] == "1":
                        is_const1 = True
                elif len(row) != 2:
                    raise BlifError(f"bad cover row {' '.join(row)!r}")
                else:
                    pattern, value = row
                    if value != "1":
                        raise BlifError("only ON-set covers are supported")
                    if len(pattern) != len(fanins):
                        raise BlifError("cover row width mismatch")
                    rows.append(Cube.from_string(pattern))
                i += 1
            if not fanins:
                cover = Cover.one(0) if is_const1 else Cover.zero(0)
                net.add_sop(out, [], cover)
            else:
                net.add_sop(out, fanins, Cover(len(fanins), rows))
        elif key == ".end":
            i += 1
        else:
            raise BlifError(f"unsupported BLIF construct {key!r}")
    for out in pending_outputs:
        net.set_output(out)
    net.check()
    return net


def write_blif(net: Network) -> str:
    """Serialise a network to BLIF text (gates become .names tables)."""
    from repro.logic.transform import node_cover  # local import: no cycle

    out = [f".model {net.name}"]
    if net.inputs:
        out.append(".inputs " + " ".join(net.inputs))
    if net.outputs:
        out.append(".outputs " + " ".join(net.outputs))
    for latch in net.latches:
        out.append(f".latch {latch.data} {latch.output} {latch.init}")
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            continue
        cover = node_cover(node)
        out.append(".names " + " ".join(node.fanins + [name]))
        if not node.fanins:
            if cover.is_tautology():
                out.append("1")
        else:
            for cube in cover:
                out.append(cube.to_string() + " 1")
    out.append(".end")
    return "\n".join(out) + "\n"
