"""Primitive gate types and their (bit-parallel) evaluation.

Evaluation operates on Python integers used as bit-vectors: bit *k* of every
word belongs to simulation pattern *k*, so a single pass over the netlist
evaluates an arbitrary number of patterns at once.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence


class GateType(str, Enum):
    """Primitive combinational gate types."""

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # fanins: (sel, d0, d1) -> sel ? d1 : d0
    MAJ = "maj"  # 3-input majority

    @property
    def is_inverting(self) -> bool:
        return self in (GateType.NOT, GateType.NAND, GateType.NOR,
                        GateType.XNOR)


#: Number of transistors in a static CMOS realisation of each gate, used as
#: the default area / capacitance proxy before technology mapping.
TRANSISTOR_COUNT = {
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 4,
    GateType.NOT: 2,
    GateType.AND: 6,    # NAND + INV
    GateType.NAND: 4,
    GateType.OR: 6,     # NOR + INV
    GateType.NOR: 4,
    GateType.XOR: 10,
    GateType.XNOR: 10,
    GateType.MUX: 10,
    GateType.MAJ: 12,
}


def gate_transistors(gtype: GateType, num_inputs: int) -> int:
    """Transistor count scaled for gates wider than two inputs."""
    base = TRANSISTOR_COUNT[gtype]
    if gtype in (GateType.AND, GateType.OR):
        return 2 * num_inputs + 2
    if gtype in (GateType.NAND, GateType.NOR):
        return 2 * num_inputs
    if gtype in (GateType.XOR, GateType.XNOR):
        return 10 * max(1, num_inputs - 1)
    return base


def eval_gate(gtype: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate a primitive gate on bit-parallel words.

    ``mask`` limits the word width (all outputs are ANDed with it so
    Python's arbitrary-precision negatives stay bounded).
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    if gtype is GateType.BUF:
        return inputs[0] & mask
    if gtype is GateType.NOT:
        return ~inputs[0] & mask
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = mask
        for w in inputs:
            acc &= w
        return acc if gtype is GateType.AND else ~acc & mask
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = 0
        for w in inputs:
            acc |= w
        acc &= mask
        return acc if gtype is GateType.OR else ~acc & mask
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = 0
        for w in inputs:
            acc ^= w
        acc &= mask
        return acc if gtype is GateType.XOR else ~acc & mask
    if gtype is GateType.MUX:
        sel, d0, d1 = inputs
        return ((sel & d1) | (~sel & d0)) & mask
    if gtype is GateType.MAJ:
        a, b, c = inputs
        return ((a & b) | (a & c) | (b & c)) & mask
    raise ValueError(f"unknown gate type {gtype}")


def gate_arity_ok(gtype: GateType, num_inputs: int) -> bool:
    """Check input-count legality for a gate type."""
    if gtype in (GateType.CONST0, GateType.CONST1):
        return num_inputs == 0
    if gtype in (GateType.BUF, GateType.NOT):
        return num_inputs == 1
    if gtype in (GateType.MUX, GateType.MAJ):
        return num_inputs == 3
    return num_inputs >= 2
