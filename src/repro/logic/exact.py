"""Exact two-level minimization (Quine–McCluskey + covering).

The heuristic :meth:`~repro.logic.sop.Cover.minimize` is the workhorse;
this module provides the exact optimum for small functions — prime
implicant generation by iterated consensus over minterm groups, then a
minimum cover by branch-and-bound with essential-prime reduction.
Used by the tests as ground truth for the heuristic, and available for
node sizes where exactness is affordable (≲ 10 variables).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.logic.cube import Cube
from repro.logic.sop import Cover


def prime_implicants(on: Cover, dc: Optional[Cover] = None
                     ) -> List[Cube]:
    """All prime implicants of ON ∪ DC (Quine–McCluskey merging)."""
    n = on.num_vars
    dc = dc if dc is not None else Cover.zero(n)
    care = [m for m in range(1 << n)
            if on.evaluate(m) or dc.evaluate(m)]
    if not care:
        return []
    if len(care) == 1 << n:
        return [Cube.universe(n)]
    current: Set[Tuple[int, int]] = {((1 << n) - 1, m) for m in care}
    primes: List[Cube] = []
    while current:
        merged_from: Set[Tuple[int, int]] = set()
        nxt: Set[Tuple[int, int]] = set()
        by_mask: Dict[int, List[int]] = {}
        for mask, value in current:
            by_mask.setdefault(mask, []).append(value)
        for mask, values in by_mask.items():
            vset = set(values)
            for value in values:
                for bit_index in range(n):
                    bit = 1 << bit_index
                    if not mask & bit:
                        continue
                    partner = value ^ bit
                    if partner in vset:
                        merged_from.add((mask, value))
                        merged_from.add((mask, partner))
                        nxt.add((mask & ~bit, value & ~bit))
        for mask, value in current:
            if (mask, value) not in merged_from:
                primes.append(Cube(on.num_vars, mask, value))
        current = nxt
    # Deduplicate (merging can produce the same implicant twice).
    return list({(c.mask, c.value): c for c in primes}.values())


def _min_cover(minterms: List[int], primes: List[Cube]) -> List[Cube]:
    """Branch-and-bound minimum unate covering."""
    covers: List[Set[int]] = [
        {m for m in minterms if p.covers_minterm(m)} for p in primes]

    best: List[int] = list(range(len(primes)))

    def search(uncovered: Set[int], chosen: List[int],
               available: List[int]) -> None:
        nonlocal best
        if not uncovered:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        if len(chosen) + 1 >= len(best):
            return
        # Essential/row-dominance style branching: pick the hardest
        # minterm and try each prime covering it.
        target = min(uncovered,
                     key=lambda m: sum(1 for i in available
                                       if m in covers[i]))
        candidates = [i for i in available if target in covers[i]]
        candidates.sort(key=lambda i: -len(covers[i] & uncovered))
        if not candidates:
            return            # uncoverable under this branch
        for i in candidates:
            search(uncovered - covers[i], chosen + [i],
                   [j for j in available if j != i])

    search(set(minterms), [], list(range(len(primes))))
    return [primes[i] for i in best]


def minimize_exact(on: Cover, dc: Optional[Cover] = None) -> Cover:
    """Exact minimum-cube cover of ON against the DC-set."""
    n = on.num_vars
    dc = dc if dc is not None else Cover.zero(n)
    care_on = [m for m in range(1 << n)
               if on.evaluate(m) and not dc.evaluate(m)]
    if not care_on:
        return Cover.zero(n)
    primes = prime_implicants(on, dc)
    chosen = _min_cover(care_on, primes)
    return Cover(n, chosen)


def is_minimum_size(cover: Cover, on: Cover,
                    dc: Optional[Cover] = None) -> bool:
    """True iff ``cover`` has as few cubes as the exact optimum."""
    return len(cover.sccc()) <= len(minimize_exact(on, dc))
