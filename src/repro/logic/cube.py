"""Cube representation for two-level (SOP) logic.

A cube over ``n`` Boolean variables is a product term.  It is stored as a
pair of bit-masks:

* ``mask``  — bit *i* is set iff variable *i* appears in the cube;
* ``value`` — bit *i* gives the polarity of variable *i* (1 = positive
  literal).  Bits outside ``mask`` are kept at 0 so cubes hash cleanly.

The full universe (tautology) cube has ``mask == 0``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple


def _popcount(x: int) -> int:
    return x.bit_count()


class Cube:
    """An immutable product term over ``num_vars`` variables."""

    __slots__ = ("num_vars", "mask", "value")

    def __init__(self, num_vars: int, mask: int = 0, value: int = 0):
        if mask >> num_vars:
            raise ValueError("mask has bits beyond num_vars")
        self.num_vars = num_vars
        self.mask = mask
        self.value = value & mask

    # -- constructors -------------------------------------------------

    @classmethod
    def universe(cls, num_vars: int) -> "Cube":
        """The cube covering every minterm."""
        return cls(num_vars, 0, 0)

    @classmethod
    def from_literals(cls, num_vars: int,
                      literals: Iterable[Tuple[int, int]]) -> "Cube":
        """Build a cube from ``(var_index, phase)`` pairs (phase 0 or 1)."""
        mask = value = 0
        for var, phase in literals:
            if not 0 <= var < num_vars:
                raise ValueError(f"variable index {var} out of range")
            bit = 1 << var
            if mask & bit and bool(value & bit) != bool(phase):
                raise ValueError(f"conflicting literals for variable {var}")
            mask |= bit
            if phase:
                value |= bit
        return cls(num_vars, mask, value)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse a PLA-style cube string, e.g. ``"1-0"`` (var 0 first)."""
        mask = value = 0
        for i, ch in enumerate(text):
            if ch == "1":
                mask |= 1 << i
                value |= 1 << i
            elif ch == "0":
                mask |= 1 << i
            elif ch not in "-2":
                raise ValueError(f"bad cube character {ch!r}")
        return cls(len(text), mask, value)

    @classmethod
    def from_minterm(cls, num_vars: int, minterm: int) -> "Cube":
        full = (1 << num_vars) - 1
        return cls(num_vars, full, minterm)

    # -- queries ------------------------------------------------------

    def literal(self, var: int) -> Optional[int]:
        """Phase of ``var`` in this cube (1, 0) or None if absent."""
        bit = 1 << var
        if not self.mask & bit:
            return None
        return 1 if self.value & bit else 0

    def num_literals(self) -> int:
        return _popcount(self.mask)

    def is_universe(self) -> bool:
        return self.mask == 0

    def covers_minterm(self, minterm: int) -> bool:
        return (minterm ^ self.value) & self.mask == 0

    def contains(self, other: "Cube") -> bool:
        """True iff every minterm of ``other`` is covered by ``self``."""
        return (self.mask & ~other.mask) == 0 and \
            (self.value ^ other.value) & self.mask == 0

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes conflict."""
        return _popcount(self.mask & other.mask & (self.value ^ other.value))

    def literals(self) -> Iterator[Tuple[int, int]]:
        m = self.mask
        while m:
            bit = m & -m
            var = bit.bit_length() - 1
            yield var, 1 if self.value & bit else 0
            m ^= bit

    # -- algebra ------------------------------------------------------

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Cube covering minterms in both, or None if disjoint."""
        if self.distance(other):
            return None
        return Cube(self.num_vars, self.mask | other.mask,
                    self.value | other.value)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both cubes."""
        mask = self.mask & other.mask & ~(self.value ^ other.value)
        return Cube(self.num_vars, mask, self.value & mask)

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """Distance-1 consensus cube, or None when distance != 1."""
        conflict = self.mask & other.mask & (self.value ^ other.value)
        if _popcount(conflict) != 1:
            return None
        mask = (self.mask | other.mask) & ~conflict
        value = (self.value | other.value) & mask
        return Cube(self.num_vars, mask, value)

    def cofactor_literal(self, var: int, phase: int) -> Optional["Cube"]:
        """Shannon cofactor with respect to one literal.

        Returns None when the cube vanishes under the assignment.
        """
        bit = 1 << var
        if self.mask & bit:
            if bool(self.value & bit) != bool(phase):
                return None
            return Cube(self.num_vars, self.mask & ~bit, self.value & ~bit)
        return self

    def cofactor_cube(self, other: "Cube") -> Optional["Cube"]:
        """Cofactor of ``self`` with respect to cube ``other``."""
        if self.distance(other):
            return None
        mask = self.mask & ~other.mask
        return Cube(self.num_vars, mask, self.value & mask)

    def without_var(self, var: int) -> "Cube":
        bit = 1 << var
        return Cube(self.num_vars, self.mask & ~bit, self.value & ~bit)

    def count_minterms(self) -> int:
        return 1 << (self.num_vars - self.num_literals())

    # -- dunder -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cube) and self.num_vars == other.num_vars \
            and self.mask == other.mask and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.num_vars, self.mask, self.value))

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"

    def to_string(self) -> str:
        chars = []
        for i in range(self.num_vars):
            bit = 1 << i
            if not self.mask & bit:
                chars.append("-")
            else:
                chars.append("1" if self.value & bit else "0")
        return "".join(chars)
