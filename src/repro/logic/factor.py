"""Algebraic division, kernel extraction and factoring (MIS-style).

These are the technology-independent restructuring primitives behind
Section III-A.3 of the paper: kernels found here are candidates for new
intermediate nodes, selected either for literal savings (area) or for
switched-capacitance savings (power, see ``repro.opt.logic.kernels``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.logic.cube import Cube
from repro.logic.sop import Cover

Literal = Tuple[int, int]  # (variable index, phase)


def cube_literals(cube: Cube) -> FrozenSet[Literal]:
    return frozenset(cube.literals())


def _cube_from_literals(num_vars: int, lits: FrozenSet[Literal]) -> Cube:
    return Cube.from_literals(num_vars, lits)


def common_cube(cover: Cover) -> FrozenSet[Literal]:
    """Largest cube dividing every cube of the cover."""
    if not cover.cubes:
        return frozenset()
    common = cube_literals(cover.cubes[0])
    for c in cover.cubes[1:]:
        common &= cube_literals(c)
    return common


def make_cube_free(cover: Cover) -> Cover:
    """Divide out the largest common cube."""
    common = common_cube(cover)
    if not common:
        return cover
    out = []
    for c in cover.cubes:
        out.append(_cube_from_literals(cover.num_vars,
                                       cube_literals(c) - common))
    return Cover(cover.num_vars, out)


def is_cube_free(cover: Cover) -> bool:
    return len(cover.cubes) > 1 and not common_cube(cover)


def divide_by_cube(cover: Cover, lits: FrozenSet[Literal]) -> Cover:
    """Quotient of algebraic division by a single cube."""
    out = []
    for c in cover.cubes:
        cl = cube_literals(c)
        if lits <= cl:
            out.append(_cube_from_literals(cover.num_vars, cl - lits))
    return Cover(cover.num_vars, out)


def algebraic_divide(cover: Cover, divisor: Cover
                     ) -> Tuple[Cover, Cover]:
    """Algebraic division ``cover = divisor * quotient + remainder``.

    Returns ``(quotient, remainder)``; quotient is empty when the divisor
    does not divide the cover.
    """
    if divisor.is_empty():
        raise ValueError("division by empty cover")
    quotient: Optional[Set[FrozenSet[Literal]]] = None
    for d in divisor.cubes:
        dl = cube_literals(d)
        q_d = {cube_literals(c) - dl
               for c in cover.cubes if dl <= cube_literals(c)}
        quotient = q_d if quotient is None else quotient & q_d
        if not quotient:
            break
    if not quotient:
        return Cover.zero(cover.num_vars), cover.copy()
    q_cover = Cover(cover.num_vars,
                    [_cube_from_literals(cover.num_vars, q)
                     for q in sorted(quotient, key=sorted)])
    # remainder = cover minus (divisor * quotient)
    product: Set[FrozenSet[Literal]] = set()
    for d in divisor.cubes:
        for q in quotient:
            product.add(cube_literals(d) | q)
    rem = [c for c in cover.cubes if cube_literals(c) not in product]
    return q_cover, Cover(cover.num_vars, rem)


def kernels(cover: Cover) -> List[Tuple[Cover, FrozenSet[Literal]]]:
    """All kernels of the cover with one co-kernel each.

    A kernel is a cube-free quotient of the cover by a cube.  Returns a
    list of ``(kernel_cover, co_kernel_literals)`` pairs (deduplicated on
    the kernel).  The cover itself is included (with empty co-kernel) when
    it is cube-free.
    """
    results: Dict[FrozenSet[FrozenSet[Literal]], Tuple[Cover, FrozenSet[Literal]]] = {}

    def key_of(c: Cover) -> FrozenSet[FrozenSet[Literal]]:
        return frozenset(cube_literals(x) for x in c.cubes)

    def visit(current: Cover, cokernel: FrozenSet[Literal],
              min_index: int) -> None:
        lit_count: Dict[Literal, int] = {}
        for c in current.cubes:
            for lit in cube_literals(c):
                lit_count[lit] = lit_count.get(lit, 0) + 1
        candidates = sorted(
            (lit for lit, cnt in lit_count.items() if cnt >= 2),
            key=lambda lv: (lv[0], lv[1]))
        for idx, lit in enumerate(candidates):
            order = lit[0] * 2 + lit[1]
            if order < min_index:
                continue
            sub = divide_by_cube(current, frozenset([lit]))
            common = common_cube(sub)
            sub_free = make_cube_free(sub)
            new_cokernel = cokernel | {lit} | common
            if len(sub_free.cubes) >= 2:
                results.setdefault(key_of(sub_free),
                                   (sub_free, new_cokernel))
                visit(sub_free, new_cokernel, order + 1)

    base = make_cube_free(cover)
    if is_cube_free(base):
        results.setdefault(
            frozenset(cube_literals(x) for x in base.cubes),
            (base, frozenset()))
    visit(cover, frozenset(), 0)
    return list(results.values())


def kernel_value(cover: Cover, kernel: Cover) -> int:
    """Literal savings from extracting ``kernel`` as a new node in
    ``cover`` (single-cover estimate): each co-kernel occurrence replaces
    lits(kernel) literals with one."""
    quotient, _rem = algebraic_divide(cover, kernel)
    occurrences = len(quotient.cubes)
    if occurrences < 1:
        return 0
    k_lits = kernel.num_literals()
    q_lits = quotient.num_literals()
    k_cubes = len(kernel.cubes)
    # cover = Q*K + R.  Before: every (q, k) cube pair spells out both
    # sides, |Q|·lits(K) + |K|·lits(Q) literals.  After: Q's cubes each
    # gain the new variable, and K is written once.
    before = occurrences * k_lits + k_cubes * q_lits
    after = q_lits + occurrences + k_lits
    return before - after


def best_kernel(cover: Cover) -> Optional[Tuple[Cover, int]]:
    """Kernel with the largest literal savings, or None."""
    best: Optional[Tuple[Cover, int]] = None
    for kern, _cok in kernels(cover):
        val = kernel_value(cover, kern)
        if val > 0 and (best is None or val > best[1]):
            best = (kern, val)
    return best


class FactorNode:
    """A factored-form expression tree (for literal counting / printing)."""

    def __init__(self, op: str, children: Sequence["FactorNode"] = (),
                 literal: Optional[Literal] = None):
        self.op = op  # "lit", "and", "or"
        self.children = list(children)
        self.literal = literal

    def literal_count(self) -> int:
        if self.op == "lit":
            return 1
        return sum(c.literal_count() for c in self.children)

    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        if self.op == "lit":
            var, phase = self.literal
            base = names[var] if names else f"x{var}"
            return base if phase else base + "'"
        sep = " " if self.op == "and" else " + "
        parts = []
        for c in self.children:
            s = c.to_string(names)
            if self.op == "and" and c.op == "or":
                s = f"({s})"
            parts.append(s)
        return sep.join(parts)

    def __repr__(self) -> str:
        return f"Factor({self.to_string()})"


def _cube_factor(num_vars: int, lits: FrozenSet[Literal]) -> FactorNode:
    children = [FactorNode("lit", literal=l) for l in sorted(lits)]
    if len(children) == 1:
        return children[0]
    return FactorNode("and", children)


def factor(cover: Cover) -> FactorNode:
    """Recursive algebraic factoring (quick-factor flavour)."""
    if cover.is_empty():
        return FactorNode("or", [])
    if len(cover.cubes) == 1:
        lits = cube_literals(cover.cubes[0])
        if not lits:
            return FactorNode("and", [])
        return _cube_factor(cover.num_vars, lits)
    common = common_cube(cover)
    if common:
        rest = factor(make_cube_free(cover))
        return FactorNode("and",
                          [_cube_factor(cover.num_vars, common), rest])
    choice = best_kernel(cover)
    if choice is None:
        # No worthwhile kernel: sum of factored cubes.
        return FactorNode("or", [
            _cube_factor(cover.num_vars, cube_literals(c))
            for c in cover.cubes])
    kern, _val = choice
    quotient, remainder = algebraic_divide(cover, kern)
    parts = [FactorNode("and", [factor(quotient), factor(kern)])]
    if not remainder.is_empty():
        parts.append(factor(remainder))
    if len(parts) == 1:
        return parts[0]
    return FactorNode("or", parts)


def factored_literal_count(cover: Cover) -> int:
    """Literal count of the factored form — the MIS area estimate."""
    return factor(cover).literal_count()
