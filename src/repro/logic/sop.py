"""Sum-of-products covers and a compact espresso-style minimizer.

A :class:`Cover` is a list of :class:`~repro.logic.cube.Cube` objects over a
shared variable count.  The module provides the classical unate-recursive
operations (tautology, complement, cube containment) and a two-level
minimizer (`minimize`) implementing the EXPAND / IRREDUNDANT / REDUCE loop
of espresso, adequate for the node sizes seen in multi-level synthesis.
"""

from __future__ import annotations


from typing import Iterable, List, Optional, Sequence

from repro.logic.cube import Cube, _popcount


class Cover:
    """A sum-of-products cover (set of cubes) over ``num_vars`` variables."""

    __slots__ = ("num_vars", "cubes")

    def __init__(self, num_vars: int, cubes: Iterable[Cube] = ()):
        self.num_vars = num_vars
        self.cubes: List[Cube] = []
        for c in cubes:
            if c.num_vars != num_vars:
                raise ValueError("cube arity mismatch")
            self.cubes.append(c)

    # -- constructors -------------------------------------------------

    @classmethod
    def zero(cls, num_vars: int) -> "Cover":
        return cls(num_vars, [])

    @classmethod
    def one(cls, num_vars: int) -> "Cover":
        return cls(num_vars, [Cube.universe(num_vars)])

    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "Cover":
        if not rows:
            raise ValueError("need at least one row (use Cover.zero)")
        n = len(rows[0])
        return cls(n, [Cube.from_string(r) for r in rows])

    @classmethod
    def from_minterms(cls, num_vars: int, minterms: Iterable[int]) -> "Cover":
        return cls(num_vars,
                   [Cube.from_minterm(num_vars, m) for m in minterms])

    def copy(self) -> "Cover":
        return Cover(self.num_vars, list(self.cubes))

    # -- basic queries -------------------------------------------------

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def is_empty(self) -> bool:
        return not self.cubes

    def num_literals(self) -> int:
        return sum(c.num_literals() for c in self.cubes)

    def support(self) -> int:
        """Bit-mask of variables appearing in the cover."""
        s = 0
        for c in self.cubes:
            s |= c.mask
        return s

    def evaluate(self, minterm: int) -> bool:
        return any(c.covers_minterm(minterm) for c in self.cubes)

    def evaluate_words(self, input_words: Sequence[int], width_mask: int) -> int:
        """Bit-parallel evaluation.

        ``input_words[i]`` holds one bit per pattern for variable *i*;
        returns a word with one output bit per pattern.
        """
        out = 0
        for c in self.cubes:
            term = width_mask
            m = c.mask
            while m:
                bit = m & -m
                var = bit.bit_length() - 1
                w = input_words[var]
                term &= w if c.value & bit else (~w & width_mask)
                if not term:
                    break
                m ^= bit
            out |= term
            if out == width_mask:
                break
        return out

    def minterms(self) -> List[int]:
        """All covered minterms (exponential; small covers only)."""
        return [m for m in range(1 << self.num_vars) if self.evaluate(m)]

    # -- structural clean-up -------------------------------------------

    def sccc(self) -> "Cover":
        """Single-cube containment: drop cubes contained in another cube."""
        cubes = sorted(set(self.cubes), key=lambda c: c.num_literals())
        keep: List[Cube] = []
        for c in cubes:
            if not any(k.contains(c) for k in keep):
                keep.append(c)
        return Cover(self.num_vars, keep)

    # -- cofactors ------------------------------------------------------

    def cofactor_literal(self, var: int, phase: int) -> "Cover":
        out = []
        for c in self.cubes:
            cc = c.cofactor_literal(var, phase)
            if cc is not None:
                out.append(cc)
        return Cover(self.num_vars, out)

    def cofactor_cube(self, cube: Cube) -> "Cover":
        out = []
        for c in self.cubes:
            cc = c.cofactor_cube(cube)
            if cc is not None:
                out.append(cc)
        return Cover(self.num_vars, out)

    # -- unate recursion ------------------------------------------------

    def _most_binate_var(self) -> Optional[int]:
        best_var, best_score = None, -1
        pos = [0] * self.num_vars
        neg = [0] * self.num_vars
        for c in self.cubes:
            for var, phase in c.literals():
                if phase:
                    pos[var] += 1
                else:
                    neg[var] += 1
        for v in range(self.num_vars):
            if pos[v] and neg[v]:
                score = min(pos[v], neg[v]) * 1000 + pos[v] + neg[v]
                if score > best_score:
                    best_var, best_score = v, score
        if best_var is None:
            # Unate cover: pick the most frequent variable if any remain.
            for v in range(self.num_vars):
                total = pos[v] + neg[v]
                if total > best_score and total > 0:
                    best_var, best_score = v, total
            return best_var if best_score > 0 else None
        return best_var

    def is_tautology(self) -> bool:
        """Unate-recursive tautology check."""
        if any(c.is_universe() for c in self.cubes):
            return True
        if not self.cubes:
            return False
        # Unate reduction: a variable appearing in a single phase can only
        # help when absent, so cubes depending on it are discarded for the
        # tautology question only if the remaining cover is checked both
        # ways; we rely on plain Shannon recursion which is always correct.
        var = self._most_binate_var()
        if var is None:
            # No literals left and no universe cube.
            return False
        return self.cofactor_literal(var, 1).is_tautology() and \
            self.cofactor_literal(var, 0).is_tautology()

    def contains_cube(self, cube: Cube) -> bool:
        return self.cofactor_cube(cube).is_tautology()

    def contains_cover(self, other: "Cover") -> bool:
        return all(self.contains_cube(c) for c in other.cubes)

    def is_equivalent(self, other: "Cover") -> bool:
        return self.contains_cover(other) and other.contains_cover(self)

    def complement(self) -> "Cover":
        """Recursive-Shannon complement."""
        if not self.cubes:
            return Cover.one(self.num_vars)
        if any(c.is_universe() for c in self.cubes):
            return Cover.zero(self.num_vars)
        if len(self.cubes) == 1:
            # De Morgan on a single cube.
            c = self.cubes[0]
            out = []
            for var, phase in c.literals():
                out.append(Cube.from_literals(self.num_vars,
                                              [(var, 1 - phase)]))
            return Cover(self.num_vars, out)
        var = self._most_binate_var()
        assert var is not None
        hi = self.cofactor_literal(var, 1).complement()
        lo = self.cofactor_literal(var, 0).complement()
        out = []
        for c in hi.cubes:
            out.append(Cube(self.num_vars, c.mask | (1 << var),
                            c.value | (1 << var)))
        for c in lo.cubes:
            out.append(Cube(self.num_vars, c.mask | (1 << var), c.value))
        return Cover(self.num_vars, out).sccc()

    # -- boolean combination --------------------------------------------

    def union(self, other: "Cover") -> "Cover":
        return Cover(self.num_vars, self.cubes + other.cubes).sccc()

    def intersect(self, other: "Cover") -> "Cover":
        out = []
        for a in self.cubes:
            for b in other.cubes:
                c = a.intersect(b)
                if c is not None:
                    out.append(c)
        return Cover(self.num_vars, out).sccc()

    # -- probability ------------------------------------------------------

    def probability(self, probs: Sequence[float]) -> float:
        """Exact probability the cover evaluates to 1.

        ``probs[i]`` is the probability that variable *i* is 1, variables
        independent.  Uses Shannon recursion on the cover.
        """
        if not self.cubes:
            return 0.0
        if any(c.is_universe() for c in self.cubes):
            return 1.0
        var = self._most_binate_var()
        assert var is not None
        p = probs[var]
        hi = self.cofactor_literal(var, 1)
        lo = self.cofactor_literal(var, 0)
        return p * hi.probability(probs) + (1.0 - p) * lo.probability(probs)

    # -- espresso-style minimization ---------------------------------------

    def _expand_cube(self, cube: Cube, offset: "Cover") -> Cube:
        """Remove literals from ``cube`` while avoiding the OFF-set."""
        current = cube
        # Greedy: try dropping literals, rarest-variable first so common
        # variables (likely needed) are kept.
        lits = sorted(current.literals(),
                      key=lambda lv: sum(1 for c in self.cubes
                                         if c.mask >> lv[0] & 1))
        for var, _phase in lits:
            candidate = current.without_var(var)
            if not any(candidate.intersect(off) for off in offset.cubes):
                current = candidate
        return current

    def _irredundant(self, dc: "Cover") -> "Cover":
        cubes = sorted(self.cubes, key=lambda c: -c.num_literals())
        keep = list(cubes)
        i = 0
        while i < len(keep):
            rest = Cover(self.num_vars, keep[:i] + keep[i + 1:] + dc.cubes)
            if rest.contains_cube(keep[i]):
                keep.pop(i)
            else:
                i += 1
        return Cover(self.num_vars, keep)

    def _reduce(self, dc: "Cover") -> "Cover":
        # REDUCE must be *sequential*: each cube is reduced against the
        # current working cover (earlier cubes already reduced), so two
        # cubes can never both shed a minterm only they share.
        work: List[Optional[Cube]] = list(self.cubes)
        for i in range(len(work)):
            c = work[i]
            rest_cubes = [x for j, x in enumerate(work)
                          if j != i and x is not None] + dc.cubes
            rest = Cover(self.num_vars, rest_cubes)
            # Part of c not covered by the rest, as a supercube.
            uncovered = rest.cofactor_cube(c).complement()
            if uncovered.is_empty():
                work[i] = None
                continue
            sup = uncovered.cubes[0]
            for u in uncovered.cubes[1:]:
                sup = sup.supercube(u)
            reduced = c.intersect(Cube(self.num_vars, sup.mask,
                                       sup.value))
            work[i] = reduced if reduced is not None else c
        return Cover(self.num_vars, [c for c in work if c is not None])

    def minimize(self, dc: Optional["Cover"] = None,
                 max_iters: int = 4) -> "Cover":
        """Two-level minimization of this ON-set against a DC-set.

        Returns a cover F with ON \\ DC ⊆ F ⊆ ON ∪ DC and
        (heuristically) minimal cube and literal count — don't-care
        minterms may be covered or dropped, whichever is cheaper.
        """
        dc = dc if dc is not None else Cover.zero(self.num_vars)
        on = self.sccc()
        if on.is_empty():
            return on
        care_union = Cover(self.num_vars, on.cubes + dc.cubes)
        if care_union.is_tautology():
            return Cover.one(self.num_vars)
        offset = care_union.complement()
        best = on
        best_cost = (len(best), best.num_literals())
        current = on
        for _ in range(max_iters):
            expanded = Cover(self.num_vars,
                             [current._expand_cube(c, offset)
                              for c in current.cubes]).sccc()
            irr = expanded._irredundant(dc)
            cost = (len(irr), irr.num_literals())
            if cost < best_cost:
                best, best_cost = irr, cost
            reduced = irr._reduce(dc)
            if not reduced.cubes:
                break
            if reduced.cubes == current.cubes:
                break
            current = reduced
        return best

    # -- misc ---------------------------------------------------------------

    def to_strings(self) -> List[str]:
        return [c.to_string() for c in self.cubes]

    def __repr__(self) -> str:
        return f"Cover({self.to_strings()})"


def minterm_count(cover: Cover) -> int:
    """Number of minterms covered (via complement-free inclusion count)."""
    total = 0
    seen: List[Cube] = []
    for c in cover.cubes:
        total += c.count_minterms()
        # Inclusion-exclusion against previously counted cubes (pairwise and
        # deeper, done recursively on the overlap list).
        overlaps = [c.intersect(s) for s in seen]
        overlaps = [o for o in overlaps if o is not None]
        if overlaps:
            total -= minterm_count(Cover(cover.num_vars, overlaps).sccc())
        seen.append(c)
    return total


def truth_table(cover: Cover) -> int:
    """Truth table of the cover as an integer (bit m = value on minterm m)."""
    tt = 0
    for m in range(1 << cover.num_vars):
        if cover.evaluate(m):
            tt |= 1 << m
    return tt
