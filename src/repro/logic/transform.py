"""Conversions between primitive-gate and SOP views of a network.

Multilevel optimizations (don't-cares, factoring) want SOP nodes;
technology mapping wants a primitive AND/OR/NOT subject graph.  These
helpers convert in both directions without changing network function.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List

from repro.logic.cube import Cube
from repro.logic.gates import GateType
from repro.logic.netlist import Network, Node
from repro.logic.sop import Cover


def gate_cover(gtype: GateType, num_inputs: int) -> Cover:
    """ON-set cover of a primitive gate over its ordered fanins."""
    n = num_inputs
    if gtype is GateType.CONST0:
        return Cover.zero(0)
    if gtype is GateType.CONST1:
        return Cover.one(0)
    if gtype is GateType.BUF:
        return Cover(1, [Cube.from_literals(1, [(0, 1)])])
    if gtype is GateType.NOT:
        return Cover(1, [Cube.from_literals(1, [(0, 0)])])
    if gtype is GateType.AND:
        return Cover(n, [Cube.from_literals(n, [(i, 1) for i in range(n)])])
    if gtype is GateType.NOR:
        return Cover(n, [Cube.from_literals(n, [(i, 0) for i in range(n)])])
    if gtype is GateType.OR:
        return Cover(n, [Cube.from_literals(n, [(i, 1)]) for i in range(n)])
    if gtype is GateType.NAND:
        return Cover(n, [Cube.from_literals(n, [(i, 0)]) for i in range(n)])
    if gtype in (GateType.XOR, GateType.XNOR):
        want = 1 if gtype is GateType.XOR else 0
        cubes = []
        for bits in product((0, 1), repeat=n):
            if sum(bits) % 2 == want:
                cubes.append(Cube.from_literals(
                    n, [(i, bits[i]) for i in range(n)]))
        return Cover(n, cubes)
    if gtype is GateType.MUX:
        # fanins: (sel, d0, d1)
        return Cover(3, [Cube.from_literals(3, [(0, 0), (1, 1)]),
                         Cube.from_literals(3, [(0, 1), (2, 1)])])
    if gtype is GateType.MAJ:
        return Cover(3, [Cube.from_literals(3, [(0, 1), (1, 1)]),
                         Cube.from_literals(3, [(0, 1), (2, 1)]),
                         Cube.from_literals(3, [(1, 1), (2, 1)])])
    raise ValueError(f"no cover for {gtype}")


def node_cover(node: Node) -> Cover:
    """ON-set cover of any internal node over its fanins."""
    if node.kind == "sop":
        assert node.cover is not None
        return node.cover
    if node.kind == "gate":
        assert node.gtype is not None
        return gate_cover(node.gtype, len(node.fanins))
    raise ValueError(f"node {node.name!r} has no cover (kind={node.kind})")


def to_sop_network(net: Network) -> Network:
    """Copy of ``net`` with every internal node expressed as an SOP node."""
    out = net.copy()
    for name in list(out.nodes):
        node = out.nodes[name]
        if node.kind != "gate":
            continue
        cover = gate_cover(node.gtype, len(node.fanins))
        new = Node(name, "sop", fanins=list(node.fanins), cover=cover)
        new.attrs = dict(node.attrs)
        out.nodes[name] = new
    out._invalidate()
    return out


def decompose_to_primitives(net: Network, max_fanin: int = 2,
                            input_probs: Optional[Dict[str, float]]
                            = None,
                            decomposition: str = "balanced"
                            ) -> Network:
    """Copy of ``net`` where every node is an AND/OR/NOT gate with at
    most ``max_fanin`` inputs — the *subject graph* for technology
    mapping.

    ``decomposition`` chooses how wide terms become 2-input trees:

    * ``"balanced"`` — minimum-depth trees (the delay-friendly default);
    * ``"power"`` — probability-ordered *chains* ([48], Tsui et al.):
      for an AND chain, signals most likely to be 0 enter first, so the
      chain's internal nodes settle to 0 early and rarely switch; dually
      for OR chains (likely-1 signals first).  Needs ``input_probs``
      (or assumes 0.5, in which case it degenerates to a chain).
    """
    if decomposition not in ("balanced", "power"):
        raise ValueError("decomposition must be 'balanced' or 'power'")
    probs: Dict[str, float] = {}
    if decomposition == "power":
        from repro.power.activity import \
            signal_probability_propagation

        probs = signal_probability_propagation(net, input_probs)
    out = Network(net.name)
    for pi in net.inputs:
        out.add_input(pi)
    for latch in net.latches:
        out.add_latch(latch.data, latch.output, latch.init, latch.enable)

    counter = [0]
    #: probability of each emitted signal (power mode only; inverters
    #: and tree nodes get derived values assuming independence).
    sig_prob: Dict[str, float] = dict(probs)

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"_{prefix}{counter[0]}"

    def emit_not(src: str) -> str:
        name = fresh("inv")
        out.add_gate(name, GateType.NOT, [src])
        sig_prob[name] = 1.0 - sig_prob.get(src, 0.5)
        return name

    def emit_tree(gtype: GateType, parts: List[str]) -> str:
        if decomposition == "power" and len(parts) > 2:
            # Chain ordered so the controlling value arrives earliest.
            if gtype is GateType.AND:
                ordered = sorted(parts,
                                 key=lambda s: sig_prob.get(s, 0.5))
            else:
                ordered = sorted(parts,
                                 key=lambda s: -sig_prob.get(s, 0.5))
            acc = ordered[0]
            for nxt_sig in ordered[1:]:
                name = fresh(gtype.value)
                out.add_gate(name, gtype, [acc, nxt_sig])
                pa = sig_prob.get(acc, 0.5)
                pb = sig_prob.get(nxt_sig, 0.5)
                sig_prob[name] = pa * pb if gtype is GateType.AND \
                    else pa + pb - pa * pb
                acc = name
            return acc
        while len(parts) > 1:
            nxt = []
            for i in range(0, len(parts) - 1, 2):
                name = fresh(gtype.value)
                out.add_gate(name, gtype, [parts[i], parts[i + 1]])
                pa = sig_prob.get(parts[i], 0.5)
                pb = sig_prob.get(parts[i + 1], 0.5)
                sig_prob[name] = pa * pb if gtype is GateType.AND \
                    else pa + pb - pa * pb
                nxt.append(name)
            if len(parts) % 2:
                nxt.append(parts[-1])
            parts = nxt
        return parts[0]

    def emit_cover(target: str, cover: Cover, fanins: List[str]) -> None:
        if cover.is_empty():
            out.add_gate(target, GateType.CONST0, [])
            sig_prob[target] = 0.0
            return
        if any(c.is_universe() for c in cover.cubes):
            out.add_gate(target, GateType.CONST1, [])
            sig_prob[target] = 1.0
            return
        terms: List[str] = []
        for cube in cover:
            lits: List[str] = []
            for var, phase in cube.literals():
                src = fanins[var]
                lits.append(src if phase else emit_not(src))
            terms.append(lits[0] if len(lits) == 1
                         else emit_tree(GateType.AND, lits))
        result = terms[0] if len(terms) == 1 else emit_tree(GateType.OR,
                                                            terms)
        out.add_gate(target, GateType.BUF, [result])
        sig_prob[target] = sig_prob.get(result, 0.5)

    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            continue
        emit_cover(name, node_cover(node), list(node.fanins))

    out.set_outputs(net.outputs)
    # Collapse the per-node BUF indirection where trivially possible.
    out.check()
    return out


def collapse_to_cover(net: Network, output: str,
                      minimize: bool = True) -> "Cover":
    """Global two-level cover of one output over the primary inputs.

    Collapses the multilevel network through its BDD and re-extracts an
    SOP (optionally minimized) — the "flatten" step of two-level flows.
    Latch outputs are treated as free inputs; the cover's variable
    order is ``sorted(net.inputs) + sorted(latch outputs)``.
    """
    from repro.bdd.circuit import bdd_to_cover, network_bdds

    funcs = network_bdds(net)
    sources = sorted(net.inputs) + sorted(
        l.output for l in net.latches)
    cover = bdd_to_cover(funcs[output], sources)
    return cover.minimize() if minimize else cover


def propagate_constants(net: Network) -> int:
    """Fold constant nodes into their readers (in place).

    Covers are cofactored against constant fanins; nodes that collapse
    to a constant become CONST gates and propagate further.  Returns the
    number of nodes simplified.  Constant primary outputs keep a CONST
    gate; unread constants are swept.
    """
    changed = 0
    const_val: Dict[str, int] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            continue
        if node.kind == "gate" and node.gtype is GateType.CONST0:
            const_val[name] = 0
            continue
        if node.kind == "gate" and node.gtype is GateType.CONST1:
            const_val[name] = 1
            continue
        if not any(fi in const_val for fi in node.fanins):
            continue
        cover = node_cover(node)
        keep_vars = [i for i, fi in enumerate(node.fanins)
                     if fi not in const_val]
        for i, fi in enumerate(node.fanins):
            if fi in const_val:
                cover = cover.cofactor_literal(i, const_val[fi])
        # Re-index the remaining variables compactly.
        from repro.logic.cube import Cube

        remap = {old: new for new, old in enumerate(keep_vars)}
        new_cubes = []
        is_taut = any(c.mask == 0 for c in cover.cubes)
        if is_taut or not cover.cubes:
            gtype = GateType.CONST1 if is_taut else GateType.CONST0
            net.nodes[name] = Node(name, "gate", gtype=gtype, fanins=[])
            net.nodes[name].attrs = dict(node.attrs)
            const_val[name] = 1 if is_taut else 0
            changed += 1
            continue
        for c in cover.cubes:
            lits = [(remap[v], ph) for v, ph in c.literals()]
            new_cubes.append(Cube.from_literals(len(keep_vars), lits))
        new = Node(name, "sop", fanins=[node.fanins[i] for i in keep_vars],
                   cover=Cover(len(keep_vars), new_cubes).sccc())
        new.attrs = dict(node.attrs)
        net.nodes[name] = new
        changed += 1
    net._invalidate()
    net.sweep()
    return changed


def instantiate(target: Network, sub: Network, prefix: str,
                port_map: Dict[str, str]) -> Dict[str, str]:
    """Copy a combinational ``sub`` network into ``target``.

    ``port_map`` connects each of ``sub``'s primary inputs to an
    existing signal of ``target``; internal nodes are renamed with
    ``prefix``.  Returns a map from ``sub``'s node names (including its
    outputs) to the instantiated names.  This is the structural reuse
    primitive the RTL generator builds datapaths from.
    """
    if sub.latches:
        raise ValueError("instantiate supports combinational modules")
    rename: Dict[str, str] = {}
    for pi in sub.inputs:
        if pi not in port_map:
            raise ValueError(f"unconnected port {pi!r}")
        rename[pi] = port_map[pi]
    for name in sub.topo_order():
        node = sub.nodes[name]
        if node.is_source():
            continue
        new_name = prefix + name
        rename[name] = new_name
        fanins = [rename[fi] for fi in node.fanins]
        if node.kind == "gate":
            target.add_gate(new_name, node.gtype, fanins)
        else:
            target.add_sop(new_name, fanins, node.cover.copy())
    return rename


def collapse_buffers(net: Network) -> int:
    """Bypass BUF gates in place (readers connect to the BUF's fanin).
    Buffers feeding primary outputs are kept.  Returns #buffers removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for name in list(net.nodes):
            node = net.nodes.get(name)
            if node is None or node.kind != "gate" or \
                    node.gtype is not GateType.BUF:
                continue
            if name in net.outputs:
                continue
            src = node.fanins[0]
            net.replace_everywhere(name, src)
            net.remove_node(name)
            removed += 1
            changed = True
    return removed
