"""Fail-soft pass manager for the optimization flows.

The flows of :mod:`repro.core.flow` used to be rigid chains: the first
stage exception aborted the whole run, skipped stages left no evidence,
and nothing recorded what each stage actually did.  This module is the
engine underneath them now:

* every optimization runs as a registered :class:`Pass` on a **trial
  copy** of the working network;
* the result is verified (random-simulation equivalence against the
  flow's original, plus an optional power-regression tolerance) and
  either **adopted** or **rolled back** — exceptions, equivalence
  breaks and power regressions all degrade to a ``rolled_back`` /
  ``skipped`` trace entry while the remaining passes still run
  (``strict=True`` preserves the old raise-on-failure behaviour);
* every pass emits a structured :class:`TraceRecord` (wall time, power
  before/after, gate/transistor/depth deltas, verification strength,
  outcome, reason) collected into a :class:`FlowTrace` that serializes
  to JSONL.

Concrete pass adapters live in :mod:`repro.opt.adapters`; declarative
flows (pass list + per-pass params, loadable from JSON) are described
by :class:`FlowSpec` and driven by ``repro flow --spec``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from repro.library.cells import Library
from repro.logic.netlist import Network
from repro.power.activity import activity_from_simulation
from repro.power.model import (PowerParameters, PowerReport,
                               power_report)
from repro.sim.functional import verify_equivalence

# -- outcomes ------------------------------------------------------------

ADOPTED = "adopted"
SKIPPED = "skipped"
ROLLED_BACK = "rolled_back"

#: JSONL fields that vary run to run and are excluded from fingerprints.
VOLATILE_TRACE_FIELDS = ("wall_s",)

TRACE_SCHEMA = 1


class FlowError(RuntimeError):
    """A pass failed while the engine was running in strict mode."""


# -- context and pass description ---------------------------------------

@dataclass
class PassContext:
    """Shared, read-only state every pass sees.

    ``original`` is the flow's input network — the reference for
    equivalence checking.  ``num_vectors``/``seed`` parameterize every
    simulation a pass performs, so one (vectors, seed) pair makes the
    whole flow deterministic.
    """

    original: Network
    library: Optional[Library] = None
    input_probs: Optional[Dict[str, float]] = None
    params: Optional[PowerParameters] = None
    num_vectors: int = 1024
    seed: int = 0
    check_equivalence: bool = True
    #: run the structural invariant linter on every candidate network
    lint: bool = False

    @property
    def verify_vectors(self) -> int:
        """Equivalence-check strength, scaled with the simulation
        effort: high-effort runs must not verify at toy strength."""
        return max(256, self.num_vectors // 4)


#: ``apply(trial, ctx, params)`` mutates ``trial`` in place or returns a
#: replacement network (``None`` means "mutated in place").
PassApply = Callable[[Network, PassContext, Dict[str, Any]],
                     Optional[Network]]
#: ``guard(work, ctx, params)`` returns a skip reason, or ``None`` to run.
PassGuard = Callable[[Network, PassContext, Dict[str, Any]],
                     Optional[str]]


@dataclass
class Pass:
    """One registered optimization step."""

    name: str
    apply: PassApply
    params: Dict[str, Any] = field(default_factory=dict)
    #: equivalence-verify the candidate (combinational networks only)
    verify: bool = True
    #: max tolerated relative power increase (``None``: no power gate;
    #: ``0.0``: reject any regression)
    max_power_regression: Optional[float] = None
    guard: Optional[PassGuard] = None


# -- pass registry -------------------------------------------------------

_REGISTRY: Dict[str, Callable[[Dict[str, Any]], Pass]] = {}


def register_pass(name: str):
    """Decorator: register ``factory(params) -> Pass`` under ``name``."""

    def deco(factory: Callable[[Dict[str, Any]], Pass]):
        _REGISTRY[name] = factory
        return factory

    return deco


def _ensure_adapters() -> None:
    # The standard adapters register themselves on import; imported
    # lazily to keep core free of an opt-layer import cycle.
    import repro.opt.adapters  # noqa: F401


def available_passes() -> List[str]:
    _ensure_adapters()
    return sorted(_REGISTRY)


def make_pass(name: str,
              params: Optional[Dict[str, Any]] = None) -> Pass:
    """Instantiate a registered pass with per-pass parameters."""
    _ensure_adapters()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown pass {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None
    return factory(dict(params or {}))


# -- trace ---------------------------------------------------------------

@dataclass
class TraceRecord:
    """What one pass (or stage) did to the design."""

    index: int
    name: str
    outcome: str                 # adopted | skipped | rolled_back
    reason: str = ""             # "" for adopted
    wall_s: float = 0.0
    power_before: Optional[float] = None
    power_after: Optional[float] = None
    gates_before: Optional[int] = None
    gates_after: Optional[int] = None
    transistors_before: Optional[int] = None
    transistors_after: Optional[int] = None
    depth_before: Optional[float] = None
    depth_after: Optional[float] = None
    verify_vectors: int = 0      # 0: equivalence was not checked
    #: invariant-lint error count on the candidate (None: lint off)
    lint_errors: Optional[int] = None
    #: the offending diagnostics (JSON form) when lint_errors > 0
    lint: List[Dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        d = asdict(self)
        d["type"] = "pass"
        return d

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "TraceRecord":
        d = {k: v for k, v in d.items() if k != "type"}
        return cls(**d)


@dataclass
class FlowTrace:
    """Ordered trace of a whole flow, serializable to JSONL.

    The JSONL form is one header line (``type: "flow"`` — flow name,
    simulation parameters, schema version) followed by one ``type:
    "pass"`` line per :class:`TraceRecord`.
    """

    flow: str = "flow"
    num_vectors: int = 0
    seed: int = 0
    strict: bool = False
    records: List[TraceRecord] = field(default_factory=list)

    def add(self, record: TraceRecord) -> TraceRecord:
        self.records.append(record)
        return record

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.records:
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        header = {"type": "flow", "schema": TRACE_SCHEMA,
                  "flow": self.flow, "num_vectors": self.num_vectors,
                  "seed": self.seed, "strict": self.strict}
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(r.to_json(), sort_keys=True)
                     for r in self.records)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "FlowTrace":
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            kind = d.get("type")
            if kind == "flow":
                trace.flow = d.get("flow", "flow")
                trace.num_vectors = int(d.get("num_vectors", 0))
                trace.seed = int(d.get("seed", 0))
                trace.strict = bool(d.get("strict", False))
            elif kind == "pass":
                trace.records.append(TraceRecord.from_json(d))
            else:
                raise ValueError(
                    f"unknown trace record type {kind!r}")
        return trace

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_jsonl())

    @classmethod
    def load(cls, path: str) -> "FlowTrace":
        with open(path) as f:
            return cls.from_jsonl(f.read())

    def fingerprint(self) -> str:
        """SHA-256 over the JSONL with volatile fields (wall time)
        zeroed — equal across deterministic reruns."""
        lines = []
        for line in self.to_jsonl().splitlines():
            d = json.loads(line)
            for key in VOLATILE_TRACE_FIELDS:
                d.pop(key, None)
            lines.append(json.dumps(d, sort_keys=True))
        blob = "\n".join(lines).encode()
        return hashlib.sha256(blob).hexdigest()


# -- measurement ---------------------------------------------------------

@dataclass
class Snapshot:
    """Power/size measurement of one network state."""

    report: PowerReport
    gates: int
    transistors: int
    depth: float


def measure(net: Network, ctx: PassContext) -> Snapshot:
    activity, _ = activity_from_simulation(net, ctx.num_vectors,
                                           ctx.seed, ctx.input_probs)
    rep = power_report(net, activity, ctx.params)
    return Snapshot(report=rep, gates=net.num_gates(),
                    transistors=net.num_transistors(),
                    depth=net.depth())


# -- the engine ----------------------------------------------------------

@dataclass
class StageOutcome:
    """Engine output per pass: trace record + adopted-state snapshot."""

    record: TraceRecord
    snapshot: Snapshot


def run_network_passes(net: Network, passes: Sequence[Pass],
                       ctx: PassContext, strict: bool = False,
                       trace: Optional[FlowTrace] = None,
                       initial: Optional[Snapshot] = None
                       ) -> Tuple[Network, FlowTrace,
                                  List[StageOutcome]]:
    """Run ``passes`` over ``net`` with trial-copy/adopt semantics.

    ``net`` itself is never mutated: each pass runs on a copy of the
    current working network, and the copy is adopted only when the pass
    succeeds, verifies, and clears its power gate.  Returns the final
    network, the trace, and one :class:`StageOutcome` per pass (the
    snapshot is of the *adopted* state — unchanged when the pass was
    skipped or rolled back).

    With ``strict=True`` any failure raises :class:`FlowError` (or the
    original exception) after recording it, matching the legacy flow.
    """
    trace = trace if trace is not None else FlowTrace(
        num_vectors=ctx.num_vectors, seed=ctx.seed, strict=strict)
    work = net
    if ctx.lint:
        entry_errors = _lint_errors(work)
        if entry_errors:
            raise FlowError(
                "input network fails invariant lint: "
                + "; ".join(d.render() for d in entry_errors[:3]))
    current = initial if initial is not None else measure(work, ctx)
    outcomes: List[StageOutcome] = []

    for p in passes:
        index = len(trace.records)
        rec = TraceRecord(
            index=index, name=p.name, outcome=ADOPTED,
            power_before=current.report.total,
            power_after=current.report.total,
            gates_before=current.gates, gates_after=current.gates,
            transistors_before=current.transistors,
            transistors_after=current.transistors,
            depth_before=current.depth, depth_after=current.depth)
        start = time.perf_counter()

        skip = p.guard(work, ctx, p.params) if p.guard else None
        if skip is not None:
            rec.outcome, rec.reason = SKIPPED, skip
            rec.wall_s = time.perf_counter() - start
            trace.add(rec)
            outcomes.append(StageOutcome(rec, current))
            continue

        try:
            trial = work.copy()
            replacement = p.apply(trial, ctx, p.params)
            candidate = replacement if replacement is not None \
                else trial

            if p.verify and ctx.check_equivalence and \
                    not candidate.latches and not ctx.original.latches:
                rec.verify_vectors = ctx.verify_vectors
                if not verify_equivalence(ctx.original, candidate,
                                          rec.verify_vectors,
                                          ctx.seed):
                    raise _EquivalenceBreak(
                        f"stage {p.name!r} broke equivalence")

            if ctx.lint:
                errors = _lint_errors(candidate)
                rec.lint_errors = len(errors)
                if errors:
                    rec.lint = [d.to_json() for d in errors]
                    raise _LintBreak(
                        f"stage {p.name!r} broke a structural "
                        f"invariant: "
                        + "; ".join(d.render() for d in errors[:3]))

            after = measure(candidate, ctx)
            rec.power_after = after.report.total
            rec.gates_after = after.gates
            rec.transistors_after = after.transistors
            rec.depth_after = after.depth

            tol = p.max_power_regression
            if tol is not None and current.report.total and \
                    after.report.total > \
                    current.report.total * (1.0 + tol):
                raise _PowerRegression(
                    f"stage {p.name!r} regressed power "
                    f"{current.report.total:.4g} -> "
                    f"{after.report.total:.4g} W "
                    f"(tolerance {tol:+.1%})")

        except _EquivalenceBreak as exc:
            rec.outcome = ROLLED_BACK
            rec.reason = "equivalence"
            rec.wall_s = time.perf_counter() - start
            trace.add(rec)
            outcomes.append(StageOutcome(rec, current))
            if strict:
                raise RuntimeError(str(exc)) from None
            continue
        except _LintBreak as exc:
            rec.outcome = ROLLED_BACK
            rec.reason = "lint"
            rec.wall_s = time.perf_counter() - start
            trace.add(rec)
            outcomes.append(StageOutcome(rec, current))
            if strict:
                raise FlowError(str(exc)) from None
            continue
        except _PowerRegression as exc:
            rec.outcome = ROLLED_BACK
            rec.reason = "power-regression"
            rec.wall_s = time.perf_counter() - start
            trace.add(rec)
            outcomes.append(StageOutcome(rec, current))
            if strict:
                raise FlowError(str(exc)) from None
            continue
        except Exception as exc:
            rec.outcome = ROLLED_BACK
            rec.reason = f"exception: {type(exc).__name__}: {exc}"
            # A partial mutation died with the trial copy; the adopted
            # state is untouched.
            rec.power_after = rec.power_before
            rec.gates_after = rec.gates_before
            rec.transistors_after = rec.transistors_before
            rec.depth_after = rec.depth_before
            rec.wall_s = time.perf_counter() - start
            trace.add(rec)
            outcomes.append(StageOutcome(rec, current))
            if strict:
                raise
            continue

        work, current = candidate, after
        rec.wall_s = time.perf_counter() - start
        trace.add(rec)
        outcomes.append(StageOutcome(rec, current))

    return work, trace, outcomes


class _EquivalenceBreak(Exception):
    pass


class _PowerRegression(Exception):
    pass


class _LintBreak(Exception):
    pass


def _lint_errors(net: Network):
    """Error-severity invariant diagnostics (lazy analysis import)."""
    from repro.analysis import check_invariants
    return check_invariants(net)


class StageRunner:
    """Fail-soft execution of arbitrary (non-network) flow stages.

    The sequential flow's stages transform STGs and encodings, not
    networks, so trial-copy/verify does not apply — but the same trace
    discipline does.  ``run`` executes a stage, records it, and on
    failure returns the ``fallback`` value (recording ``rolled_back``)
    instead of aborting the flow; ``strict=True`` re-raises.
    """

    def __init__(self, trace: FlowTrace, strict: bool = False):
        self.trace = trace
        self.strict = strict

    def run(self, name: str, fn: Callable[[], Any],
            fallback: Any = None):
        rec = TraceRecord(index=len(self.trace.records), name=name,
                          outcome=ADOPTED)
        start = time.perf_counter()
        try:
            value = fn()
        except Exception as exc:
            rec.outcome = ROLLED_BACK
            rec.reason = f"exception: {type(exc).__name__}: {exc}"
            rec.wall_s = time.perf_counter() - start
            self.trace.add(rec)
            if self.strict:
                raise
            return fallback() if callable(fallback) else fallback
        rec.wall_s = time.perf_counter() - start
        self.trace.add(rec)
        return value


# -- declarative flow specs ---------------------------------------------

@dataclass
class FlowSpec:
    """A flow as data: ordered pass names with per-pass parameters.

    JSON shape::

        {"name": "my-flow", "num_vectors": 512, "seed": 0,
         "strict": false,
         "passes": ["extract",
                    {"pass": "map", "params": {"objective": "power"}}]}

    A string entry is a pass with default parameters.
    """

    name: str = "flow"
    passes: List[Tuple[str, Dict[str, Any]]] = field(
        default_factory=list)
    num_vectors: int = 1024
    seed: int = 0
    strict: bool = False
    check_equivalence: bool = True
    #: invariant-lint every candidate network (see PassContext.lint)
    strict_lint: bool = False

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FlowSpec":
        if not isinstance(d, dict):
            raise ValueError("flow spec must be a JSON object")
        entries = d.get("passes")
        if not isinstance(entries, list) or not entries:
            raise ValueError(
                "flow spec needs a non-empty 'passes' list")
        passes: List[Tuple[str, Dict[str, Any]]] = []
        for entry in entries:
            if isinstance(entry, str):
                passes.append((entry, {}))
            elif isinstance(entry, dict) and "pass" in entry:
                params = entry.get("params") or {}
                if not isinstance(params, dict):
                    raise ValueError(
                        f"pass {entry['pass']!r}: params must be an "
                        f"object")
                passes.append((str(entry["pass"]), dict(params)))
            else:
                raise ValueError(
                    f"bad pass entry {entry!r}: expected a name or "
                    f"{{'pass': ..., 'params': {{...}}}}")
        return cls(name=str(d.get("name", "flow")), passes=passes,
                   num_vectors=int(d.get("num_vectors", 1024)),
                   seed=int(d.get("seed", 0)),
                   strict=bool(d.get("strict", False)),
                   check_equivalence=bool(
                       d.get("check_equivalence", True)),
                   strict_lint=bool(d.get("strict_lint", False)))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "num_vectors": self.num_vectors, "seed": self.seed,
                "strict": self.strict,
                "check_equivalence": self.check_equivalence,
                "strict_lint": self.strict_lint,
                "passes": [{"pass": n, "params": p}
                           for n, p in self.passes]}

    def build(self) -> List[Pass]:
        return [make_pass(name, params)
                for name, params in self.passes]


def load_flow_spec(path: str) -> FlowSpec:
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") \
                from None
    return FlowSpec.from_dict(data)
