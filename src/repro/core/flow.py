"""The end-to-end low-power logic synthesis flows.

Chains the combinational optimizations of Sections II–III on a netlist
and reports power after every stage.  Both flows run on the fail-soft
pass engine of :mod:`repro.core.passes`: each stage executes on a trial
copy, is verified (equivalence + optional power gate), and is adopted
or rolled back — a crashing stage is recorded in the structured
:class:`~repro.core.passes.FlowTrace` instead of aborting the flow
(``strict=True`` restores the legacy raise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.passes import (ADOPTED, FlowTrace, Pass, PassContext,
                               StageRunner, make_pass, measure,
                               run_network_passes)
from repro.library.cells import Library, generic_library
from repro.logic.netlist import Latch, Network
from repro.power.model import PowerParameters, PowerReport

__all__ = ["FlowStage", "FlowResult", "SequentialFlowResult",
           "low_power_flow", "fsm_low_power_flow", "run_flow"]


@dataclass
class FlowStage:
    """Power snapshot after one optimization stage.

    ``outcome`` records what the engine did: ``adopted`` (the stage's
    result was kept), ``skipped`` (guard fired — e.g. ``size-cap``), or
    ``rolled_back`` (the stage failed; the snapshot is of the unchanged
    adopted state)."""

    name: str
    report: PowerReport
    gates: int
    transistors: int
    depth: float
    outcome: str = ADOPTED
    reason: str = ""


@dataclass
class FlowResult:
    """History of the whole flow."""

    stages: List[FlowStage] = field(default_factory=list)
    final: Optional[Network] = None
    trace: Optional[FlowTrace] = None

    @property
    def total_saving(self) -> float:
        if len(self.stages) < 2:
            return 0.0
        first = self.stages[0].report.total
        last = self.stages[-1].report.total
        return 1.0 - last / first if first else 0.0

    def summary(self) -> str:
        from repro.core.report import format_table

        rows = []
        base = self.stages[0].report.total if self.stages else 0.0
        for s in self.stages:
            outcome = s.outcome if s.outcome == ADOPTED else \
                (f"{s.outcome}: {s.reason}" if s.reason else s.outcome)
            rows.append([s.name, outcome, s.gates, s.transistors,
                         s.depth, s.report.total * 1e6,
                         (1.0 - s.report.total / base) if base
                         else 0.0])
        return format_table(
            ["stage", "outcome", "gates", "transistors", "depth",
             "power (uW)", "saving"], rows)


def _default_passes(use_dontcares: bool, use_extraction: bool,
                    use_mapping: bool, use_sizing: bool,
                    dontcare_size_cap: Optional[int]) -> List[Pass]:
    passes: List[Pass] = []
    if use_dontcares:
        passes.append(make_pass("dontcare",
                                {"size_cap": dontcare_size_cap}))
    if use_extraction:
        passes.append(make_pass("extract"))
    if use_mapping:
        passes.append(make_pass("map"))
    if use_sizing:
        passes.append(make_pass("size"))
    return passes


def _run_engine(net: Network, passes: List[Pass], ctx: PassContext,
                flow_name: str, strict: bool) -> FlowResult:
    """Measure, run the pass list, and fold the engine's outcomes into
    a :class:`FlowResult` (one stage entry per pass, whatever its
    outcome, after the ``initial`` snapshot)."""
    from repro.logic.transform import to_sop_network

    # Enter the technology-independent SOP domain first so every stage
    # is measured under the same capacitance model (gate and SOP nodes
    # carry slightly different transistor-count proxies).
    work = to_sop_network(net)
    trace = FlowTrace(flow=flow_name, num_vectors=ctx.num_vectors,
                      seed=ctx.seed, strict=strict)
    initial = measure(work, ctx)
    result = FlowResult(trace=trace)
    result.stages.append(FlowStage(
        name="initial", report=initial.report, gates=initial.gates,
        transistors=initial.transistors, depth=initial.depth))
    final, trace, outcomes = run_network_passes(
        work, passes, ctx, strict=strict, trace=trace,
        initial=initial)
    for oc in outcomes:
        snap = oc.snapshot
        result.stages.append(FlowStage(
            name=oc.record.name, report=snap.report,
            gates=snap.gates, transistors=snap.transistors,
            depth=snap.depth, outcome=oc.record.outcome,
            reason=oc.record.reason))
    result.final = final
    return result


def low_power_flow(net: Network,
                   library: Optional[Library] = None,
                   input_probs: Optional[Dict[str, float]] = None,
                   params: Optional[PowerParameters] = None,
                   num_vectors: int = 1024, seed: int = 0,
                   use_dontcares: bool = True,
                   use_extraction: bool = True,
                   use_mapping: bool = True,
                   use_sizing: bool = True,
                   check_equivalence: bool = True,
                   dontcare_size_cap: Optional[int] = 120,
                   strict: bool = False,
                   strict_lint: bool = False) -> FlowResult:
    """Run the combinational low-power flow on (a copy of) ``net``.

    Stages: don't-care re-minimization → power-aware kernel extraction
    → power-driven technology mapping → slack-recycling sizing.  Each
    stage runs on a trial copy, is verified against the original by
    random simulation (``max(256, num_vectors // 4)`` vectors), and is
    rolled back — with the failure recorded in ``result.trace`` — when
    it raises or breaks equivalence.  ``dontcare_size_cap`` skips the
    (expensive) don't-care stage above that many gates, recording the
    skip; ``None`` removes the cap.  ``strict=True`` re-raises stage
    failures instead of rolling back.  ``strict_lint=True`` runs the
    structural invariant linter on every candidate network and rolls
    back stages that break an invariant (trace reason ``lint``).
    """
    library = library or generic_library()
    ctx = PassContext(original=net, library=library,
                      input_probs=input_probs, params=params,
                      num_vectors=num_vectors, seed=seed,
                      check_equivalence=check_equivalence,
                      lint=strict_lint)
    passes = _default_passes(use_dontcares, use_extraction,
                             use_mapping, use_sizing,
                             dontcare_size_cap)
    return _run_engine(net, passes, ctx, "low_power_flow", strict)


def run_flow(net: Network, spec, library: Optional[Library] = None,
             input_probs: Optional[Dict[str, float]] = None,
             params: Optional[PowerParameters] = None) -> FlowResult:
    """Run a declarative :class:`~repro.core.passes.FlowSpec`."""
    library = library or generic_library()
    ctx = PassContext(original=net, library=library,
                      input_probs=input_probs, params=params,
                      num_vectors=spec.num_vectors, seed=spec.seed,
                      check_equivalence=spec.check_equivalence,
                      lint=spec.strict_lint)
    return _run_engine(net, spec.build(), ctx, spec.name, spec.strict)


# -- the sequential (FSM) flow ------------------------------------------

@dataclass
class SequentialFlowResult:
    """Outcome of the FSM low-power flow."""

    states_before: int
    states_after: int
    encoding: Dict[str, int]
    activation_probability: float
    power_before: float
    power_after: float
    network: Optional[Network] = None
    baseline: Optional[Network] = None
    trace: Optional[FlowTrace] = None

    @property
    def saving(self) -> float:
        if not self.power_before:
            return 0.0
        return 1.0 - self.power_after / self.power_before


def _enable_rate(trace_values: List[Dict[str, int]],
                 latches: List[Latch]) -> float:
    """Fraction of cycles the state registers are actually clocked.

    The enable nets are taken from the latches themselves (not a
    hard-coded signal name); a renamed or absent enable degrades to
    rate 1.0 (always clocked) rather than a ``KeyError``.
    """
    enables = sorted({l.enable for l in latches
                      if l.enable is not None})
    if not enables:
        return 1.0
    rates = []
    for en in enables:
        samples = [t[en] for t in trace_values if en in t]
        if samples:
            rates.append(sum(samples) / len(samples))
    if not rates:
        return 1.0
    return sum(rates) / len(rates)


def fsm_low_power_flow(stg, sequence_length: int = 1500, seed: int = 0,
                       anneal_iterations: int = 2500,
                       params: Optional[PowerParameters] = None,
                       strict: bool = False) -> SequentialFlowResult:
    """The sequential flow: minimize states → low-power encoding →
    self-loop clock gating, measured against the naturally-encoded,
    un-gated baseline (clock-tree power included).

    Runs on the fail-soft stage engine: a stage that raises is recorded
    in the trace and replaced by its safe fallback (unminimized STG,
    natural encoding, un-gated machine) so the flow still produces a
    result; ``strict=True`` re-raises.
    """
    from repro.opt.seq.encoding import encode_anneal, encode_natural
    from repro.opt.seq.gated_clock import (clock_power,
                                           self_loop_clock_gating)
    from repro.opt.seq.minimize_fsm import minimize_stg
    from repro.opt.seq.stg import synthesize_fsm
    from repro.power.activity import sequential_activity
    from repro.power.model import power_report
    from repro.sim.functional import sequential_transitions

    trace = FlowTrace(flow="fsm_low_power_flow",
                      num_vectors=sequence_length, seed=seed,
                      strict=strict)
    runner = StageRunner(trace, strict=strict)

    reduced = runner.run("minimize", lambda: minimize_stg(stg),
                         fallback=stg)
    encoding = runner.run(
        "encode",
        lambda: encode_anneal(reduced, iterations=anneal_iterations,
                              seed=seed),
        fallback=lambda: encode_natural(reduced))
    gres = runner.run(
        "clock-gate",
        lambda: self_loop_clock_gating(reduced, encoding),
        fallback=None)
    if gres is not None:
        gated_net = gres.network
        activation = gres.activation_probability
    else:
        gated_net = synthesize_fsm(reduced, encoding,
                                   name="fsm_gated")
        activation = 0.0
    baseline = synthesize_fsm(stg, encode_natural(stg),
                              name="fsm_reference")

    seq = stg.random_input_sequence(sequence_length, seed)
    vectors = [{f"x{i}": (v >> i) & 1 for i in range(stg.num_inputs)}
               for v in seq]

    def simulate():
        _, values = sequential_transitions(gated_net, vectors)
        return _enable_rate(values, gated_net.latches)

    enable_rate = runner.run("simulate", simulate, fallback=1.0)

    def power_pair():
        p_before = power_report(
            baseline, sequential_activity(baseline, vectors),
            params).total + clock_power(baseline, {}, params)
        p_after = power_report(
            gated_net, sequential_activity(gated_net, vectors),
            params).total + clock_power(
                gated_net,
                {l.output: enable_rate for l in gated_net.latches},
                params)
        return p_before, p_after

    p_before, p_after = runner.run("measure", power_pair,
                                   fallback=(0.0, 0.0))
    return SequentialFlowResult(
        states_before=len(stg.states),
        states_after=len(reduced.states),
        encoding=encoding,
        activation_probability=activation,
        power_before=p_before, power_after=p_after,
        network=gated_net, baseline=baseline, trace=trace)
