"""The end-to-end low-power logic synthesis flow.

Chains the combinational optimizations of Sections II–III on a netlist
and reports power after every stage, verifying functional equivalence
along the way.  This is what the quickstart example drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.library.cells import Library, generic_library
from repro.logic.netlist import Network
from repro.opt.circuit.sizing import size_for_power
from repro.opt.logic.dontcare import dontcare_power_optimization
from repro.opt.logic.kernels import extract_kernels
from repro.opt.logic.mapping import tech_map
from repro.power.activity import activity_from_simulation
from repro.power.model import PowerParameters, PowerReport, power_report
from repro.sim.functional import verify_equivalence


@dataclass
class FlowStage:
    """Power snapshot after one optimization stage."""

    name: str
    report: PowerReport
    gates: int
    transistors: int
    depth: float


@dataclass
class FlowResult:
    """History of the whole flow."""

    stages: List[FlowStage] = field(default_factory=list)
    final: Optional[Network] = None

    @property
    def total_saving(self) -> float:
        if len(self.stages) < 2:
            return 0.0
        first = self.stages[0].report.total
        last = self.stages[-1].report.total
        return 1.0 - last / first if first else 0.0

    def summary(self) -> str:
        from repro.core.report import format_table

        rows = []
        base = self.stages[0].report.total if self.stages else 0.0
        for s in self.stages:
            rows.append([s.name, s.gates, s.transistors, s.depth,
                         s.report.total * 1e6,
                         (1.0 - s.report.total / base) if base else 0.0])
        return format_table(
            ["stage", "gates", "transistors", "depth", "power (uW)",
             "saving"], rows)


def _snapshot(name: str, net: Network, num_vectors: int, seed: int,
              input_probs: Optional[Dict[str, float]],
              params: Optional[PowerParameters]) -> FlowStage:
    activity, _ = activity_from_simulation(net, num_vectors, seed,
                                           input_probs)
    rep = power_report(net, activity, params)
    return FlowStage(name=name, report=rep, gates=net.num_gates(),
                     transistors=net.num_transistors(),
                     depth=net.depth())


@dataclass
class SequentialFlowResult:
    """Outcome of the FSM low-power flow."""

    states_before: int
    states_after: int
    encoding: Dict[str, int]
    activation_probability: float
    power_before: float
    power_after: float
    network: Optional[Network] = None
    baseline: Optional[Network] = None

    @property
    def saving(self) -> float:
        if not self.power_before:
            return 0.0
        return 1.0 - self.power_after / self.power_before


def fsm_low_power_flow(stg, sequence_length: int = 1500, seed: int = 0,
                       anneal_iterations: int = 2500,
                       params: Optional[PowerParameters] = None
                       ) -> SequentialFlowResult:
    """The sequential flow: minimize states → low-power encoding →
    self-loop clock gating, measured against the naturally-encoded,
    un-gated baseline (clock-tree power included)."""
    from repro.opt.seq.encoding import encode_anneal, encode_natural
    from repro.opt.seq.gated_clock import (clock_power,
                                           self_loop_clock_gating)
    from repro.opt.seq.minimize_fsm import minimize_stg
    from repro.opt.seq.stg import synthesize_fsm
    from repro.power.activity import sequential_activity
    from repro.power.model import power_report

    reduced = minimize_stg(stg)
    encoding = encode_anneal(reduced, iterations=anneal_iterations,
                             seed=seed)
    gated = self_loop_clock_gating(reduced, encoding)
    baseline = synthesize_fsm(stg, encode_natural(stg),
                              name="fsm_reference")

    seq = stg.random_input_sequence(sequence_length, seed)
    vectors = [{f"x{i}": (v >> i) & 1 for i in range(stg.num_inputs)}
               for v in seq]
    from repro.sim.functional import sequential_transitions

    _, trace = sequential_transitions(gated.network, vectors)
    enable_rate = sum(t["_fa_n"] for t in trace) / max(1, len(trace))

    p_before = power_report(
        baseline, sequential_activity(baseline, vectors),
        params).total + clock_power(baseline, {}, params)
    p_after = power_report(
        gated.network, sequential_activity(gated.network, vectors),
        params).total + clock_power(
            gated.network,
            {l.output: enable_rate for l in gated.network.latches},
            params)
    return SequentialFlowResult(
        states_before=len(stg.states),
        states_after=len(reduced.states),
        encoding=encoding,
        activation_probability=gated.activation_probability,
        power_before=p_before, power_after=p_after,
        network=gated.network, baseline=baseline)


def low_power_flow(net: Network,
                   library: Optional[Library] = None,
                   input_probs: Optional[Dict[str, float]] = None,
                   params: Optional[PowerParameters] = None,
                   num_vectors: int = 1024, seed: int = 0,
                   use_dontcares: bool = True,
                   use_extraction: bool = True,
                   use_mapping: bool = True,
                   use_sizing: bool = True,
                   check_equivalence: bool = True) -> FlowResult:
    """Run the combinational low-power flow on (a copy of) ``net``.

    Stages: don't-care re-minimization → power-aware kernel extraction →
    power-driven technology mapping → slack-recycling sizing.  Each
    stage is verified against the original by random simulation.
    """
    from repro.logic.transform import to_sop_network

    library = library or generic_library()
    result = FlowResult()
    original = net
    # Enter the technology-independent SOP domain first so every stage
    # is measured under the same capacitance model (gate and SOP nodes
    # carry slightly different transistor-count proxies).
    work = to_sop_network(net)
    result.stages.append(_snapshot("initial", work, num_vectors, seed,
                                   input_probs, params))

    def verify(stage: str, candidate: Network) -> None:
        if check_equivalence and not candidate.latches and \
                not original.latches:
            if not verify_equivalence(original, candidate, 256, seed):
                raise RuntimeError(f"stage {stage!r} broke equivalence")

    if use_dontcares and work.num_gates() <= 120:
        dontcare_power_optimization(work, input_probs)
        verify("dontcare", work)
        result.stages.append(_snapshot("dontcare", work, num_vectors,
                                       seed, input_probs, params))
    if use_extraction:
        extract_kernels(work, "power", input_probs)
        verify("extract", work)
        result.stages.append(_snapshot("extract", work, num_vectors,
                                       seed, input_probs, params))
    if use_mapping:
        mres = tech_map(work, library, "power", seed=seed)
        work = mres.mapped
        verify("map", work)
        result.stages.append(_snapshot("map", work, num_vectors, seed,
                                       input_probs, params))
    if use_sizing:
        from repro.opt.circuit.sizing import critical_path_delay

        activity, _ = activity_from_simulation(work, num_vectors, seed,
                                               input_probs)
        # Hold the unsized design's delay: sizing may only recycle slack.
        ones = {n: 1.0 for n in work.nodes}
        target = critical_path_delay(work, ones, params)
        size_for_power(work, activity, delay_target=target,
                       params=params)
        verify("size", work)
        result.stages.append(_snapshot("size", work, num_vectors, seed,
                                       input_probs, params))
    result.final = work
    return result
