"""Flow drivers and reporting for the low-power optimization system."""

from repro.core.flow import (FlowResult, FlowStage, low_power_flow,
                             SequentialFlowResult, fsm_low_power_flow,
                             run_flow)
from repro.core.passes import (ADOPTED, FlowSpec, FlowTrace, Pass,
                               PassContext, ROLLED_BACK, SKIPPED,
                               TraceRecord, available_passes,
                               load_flow_spec, make_pass,
                               run_network_passes)
from repro.core.report import format_table

__all__ = ["FlowResult", "FlowStage", "low_power_flow",
           "SequentialFlowResult", "fsm_low_power_flow", "run_flow",
           "FlowSpec", "FlowTrace", "TraceRecord", "Pass",
           "PassContext", "ADOPTED", "SKIPPED", "ROLLED_BACK",
           "available_passes", "load_flow_spec", "make_pass",
           "run_network_passes", "format_table"]
