"""Flow drivers and reporting for the low-power optimization system."""

from repro.core.flow import (FlowResult, FlowStage, low_power_flow,
                             SequentialFlowResult, fsm_low_power_flow)
from repro.core.report import format_table

__all__ = ["FlowResult", "FlowStage", "low_power_flow",
           "SequentialFlowResult", "fsm_low_power_flow",
           "format_table"]
