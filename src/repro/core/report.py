"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 precision: int = 4) -> str:
    """Render an aligned plain-text table (floats rounded)."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
