"""Behavioral transformations enabling voltage scaling
(Section IV-B; [7] Chandrakasan et al.).

The central mechanism: a transformation that shortens the critical path
(tree-height reduction) or raises concurrency (unrolling) creates slack
at fixed throughput; the clock can then be slowed and V_DD lowered until
the slack is consumed.  Delay follows the alpha-power law

    d(V) ∝ V / (V − V_t)^α

and switching power C·V²·f falls quadratically with V — more than
paying for the extra capacitance the transformation introduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arch.dfg import DFG, Operation


def delay_factor(vdd: float, vdd_ref: float = 3.3, vt: float = 0.7,
                 alpha: float = 1.6) -> float:
    """Gate delay at ``vdd`` relative to the delay at ``vdd_ref``."""
    if vdd <= vt:
        return float("inf")
    ref = vdd_ref / (vdd_ref - vt) ** alpha
    return (vdd / (vdd - vt) ** alpha) / ref


def voltage_for_slowdown(slowdown: float, vdd_ref: float = 3.3,
                         vt: float = 0.7, alpha: float = 1.6,
                         vdd_min: float = 1.1) -> float:
    """Lowest V_DD whose delay factor stays within ``slowdown`` (≥ 1)."""
    if slowdown < 1.0:
        raise ValueError("slowdown must be >= 1")
    lo, hi = vdd_min, vdd_ref
    if delay_factor(lo, vdd_ref, vt, alpha) <= slowdown:
        return lo
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if delay_factor(mid, vdd_ref, vt, alpha) <= slowdown:
            hi = mid
        else:
            lo = mid
    return hi


def scaled_power(cap_ratio: float, vdd: float, vdd_ref: float = 3.3
                 ) -> float:
    """Power relative to the reference design at fixed throughput.

    ``cap_ratio`` is switched capacitance per *sample* relative to the
    reference (> 1 after a capacitance-increasing transformation).
    """
    return cap_ratio * (vdd / vdd_ref) ** 2


@dataclass
class VoltageScalingResult:
    """Outcome of transform-then-scale."""

    csteps_before: int
    csteps_after: int
    cap_ratio: float
    vdd: float
    vdd_ref: float
    power_ratio: float

    @property
    def saving(self) -> float:
        return 1.0 - self.power_ratio


def tree_height_reduction(dfg: DFG) -> DFG:
    """Rebalance chains of associative ``add`` ops into trees.

    Finds maximal single-use chains of additions and rebuilds them as
    balanced trees, shortening the critical path with no capacitance
    change (same op count).
    """
    out = dfg.copy(dfg.name + "_thr")
    consumers = out.consumers()

    def chain_leaves(root: str) -> Optional[List[str]]:
        """Leaves of a maximal add-chain rooted at ``root``."""
        op = out.ops[root]
        if op.op != "add":
            return None
        leaves: List[str] = []

        def collect(name: str, at_root: bool) -> None:
            o = out.ops[name]
            internal = o.op == "add" and \
                (at_root or len(consumers[name]) == 1)
            if internal:
                collect(o.operands[0], False)
                collect(o.operands[1], False)
            else:
                leaves.append(name)

        collect(root, True)
        return leaves if len(leaves) >= 3 else None

    # Roots: adds whose consumer is not an (absorbing) add chain.
    done = set()
    counter = [0]
    for name in list(out.topo_order()):
        if name in done or name not in out.ops:
            continue
        op = out.ops[name]
        if op.op != "add":
            continue
        used_by_adds = all(out.ops[c].op == "add" for c in consumers[name])
        if consumers[name] and used_by_adds and len(consumers[name]) == 1:
            continue  # interior of a larger chain
        leaves = chain_leaves(name)
        if leaves is None:
            continue
        # Build a balanced tree over the leaves; the root keeps ``name``.
        level = list(leaves)
        while len(level) > 2:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                counter[0] += 1
                nn = f"_thr{counter[0]}"
                out.ops[nn] = Operation(nn, "add",
                                        [level[i], level[i + 1]])
                nxt.append(nn)
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        # Redirect the original root to the final pair and drop the
        # now-dead interior ops.
        interior = set()

        def mark(nm: str, at_root: bool) -> None:
            o = out.ops[nm]
            if o.op == "add" and (at_root or len(consumers[nm]) == 1):
                if not at_root:
                    interior.add(nm)
                mark(o.operands[0], False)
                mark(o.operands[1], False)

        mark(name, True)
        out.ops[name].operands = [level[0], level[1]]
        for nm in interior:
            del out.ops[nm]
        done.add(name)
        consumers = out.consumers()
    return out


def unroll(dfg: DFG, factor: int) -> DFG:
    """Replicate the DFG ``factor`` times (block processing).

    The unrolled graph processes ``factor`` samples per invocation:
    capacitance scales by ~``factor`` but so does the work per
    invocation, and the copies run concurrently, so the *effective*
    control steps per sample drop toward ``csteps / factor`` given
    enough units.
    """
    out = DFG(f"{dfg.name}_x{factor}")
    for k in range(factor):
        for name in dfg.topo_order():
            op = dfg.ops[name]
            out.add(f"{name}__{k}", op.op,
                    [f"{s}__{k}" for s in op.operands], op.value)
    return out


def transform_and_scale(dfg: DFG, transformed: DFG,
                        samples_per_invocation: int = 1,
                        vdd_ref: float = 3.3, vt: float = 0.7,
                        alpha: float = 1.6) -> VoltageScalingResult:
    """Fixed-throughput voltage scaling enabled by a transformation.

    Critical paths are compared per *sample*; the slack ratio becomes
    the permitted slowdown, converted to a V_DD by the alpha-power law.
    Capacitance per sample is approximated by compute-op count weighted
    by op energy class (mul = 10 × add).
    """

    def cap(d: DFG) -> float:
        total = 0.0
        for op in d.compute_ops():
            total += 10.0 if op.op == "mul" else 1.0
        return total

    before = dfg.critical_path()
    after = transformed.critical_path()
    per_sample_after = after / samples_per_invocation
    if per_sample_after <= 0:
        raise ValueError("transformed graph has empty critical path")
    slowdown = before / per_sample_after
    slowdown = max(1.0, slowdown)
    vdd = voltage_for_slowdown(slowdown, vdd_ref, vt, alpha)
    cap_ratio = (cap(transformed) / samples_per_invocation) / cap(dfg)
    power = scaled_power(cap_ratio, vdd, vdd_ref)
    return VoltageScalingResult(
        csteps_before=before, csteps_after=after, cap_ratio=cap_ratio,
        vdd=vdd, vdd_ref=vdd_ref, power_ratio=power)
