"""Architecture / behavioral level (Section IV): DFGs, scheduling,
allocation and binding, module power models, transformations."""

from repro.arch.dfg import DFG, Operation, fir_dfg, iir_biquad_dfg, \
    chained_sum_dfg
from repro.arch.scheduling import asap_schedule, alap_schedule, \
    list_schedule, schedule_length, force_directed_schedule
from repro.arch.selection import select_modules, SelectionResult
from repro.arch.rtl import (synthesize_datapath, run_iteration,
                            RTLResult)
from repro.arch.allocation import (bind_operations, BindingResult,
                                   binding_switched_capacitance,
                                   bind_registers,
                                   RegisterBindingResult,
                                   profile_values)
from repro.arch.power_models import (Module, ModuleLibrary,
                                     default_module_library,
                                     pfa_power, activity_power,
                                     characterize_module)
from repro.arch.transforms import (voltage_for_slowdown, scaled_power,
                                   tree_height_reduction, unroll,
                                   VoltageScalingResult,
                                   transform_and_scale)
from repro.arch.memory import (MemoryHierarchy, loop_access_trace,
                               tiled_access_trace, memory_energy,
                               best_loop_order)

__all__ = ["DFG", "Operation", "fir_dfg", "iir_biquad_dfg",
           "chained_sum_dfg", "asap_schedule", "alap_schedule",
           "list_schedule", "schedule_length", "force_directed_schedule",
           "select_modules", "SelectionResult", "bind_operations",
           "bind_registers", "RegisterBindingResult", "profile_values",
           "synthesize_datapath", "run_iteration", "RTLResult",
           "BindingResult", "binding_switched_capacitance", "Module",
           "ModuleLibrary", "default_module_library", "pfa_power",
           "activity_power", "characterize_module",
           "voltage_for_slowdown", "scaled_power",
           "tree_height_reduction", "unroll", "VoltageScalingResult",
           "transform_and_scale", "MemoryHierarchy", "loop_access_trace", "tiled_access_trace",
           "memory_energy", "best_loop_order"]
