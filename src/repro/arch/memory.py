"""Memory power optimization (Section IV-B; [14] Catthoor et al.).

Memory hits power twice: per-access energy grows with memory size (and
jumps for off-chip), so the goal of control-flow transformations such as
loop reordering is to serve most accesses from a small foreground
buffer.  The model here is a two-level hierarchy with a direct-mapped
buffer; traces are generated from loop nests so the effect of loop
order on locality — and hence on memory energy — is directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class MemoryHierarchy:
    """Energy parameters of a two-level memory system.

    Per-access energies follow the size^0.5 rule of thumb for on-chip
    SRAM; the background store can be flagged off-chip, which multiplies
    its access energy (I/O drivers + board capacitance).
    """

    buffer_words: int = 64
    background_words: int = 65536
    energy_unit: float = 1e-12      # J, energy scale
    offchip: bool = True
    offchip_penalty: float = 10.0

    def buffer_energy(self) -> float:
        return self.energy_unit * (self.buffer_words ** 0.5)

    def background_energy(self) -> float:
        e = self.energy_unit * (self.background_words ** 0.5)
        if self.offchip:
            e *= self.offchip_penalty
        return e


def loop_access_trace(shape: Sequence[int], order: Sequence[int],
                      strides: Optional[Sequence[int]] = None
                      ) -> List[int]:
    """Addresses touched by a row-major array walked in a loop order.

    ``shape`` gives the loop bounds (innermost dimension last in
    declaration order); ``order`` permutes which loop runs innermost
    (last element of ``order`` is innermost).  The array is laid out
    row-major, so ``order == range(len(shape))`` is the unit-stride
    walk.
    """
    dims = len(shape)
    if sorted(order) != list(range(dims)):
        raise ValueError("order must permute the dimensions")
    if strides is None:
        strides = [1] * dims
        for d in range(dims - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
    trace: List[int] = []
    idx = [0] * dims

    def walk(level: int) -> None:
        if level == dims:
            trace.append(sum(idx[d] * strides[d] for d in range(dims)))
            return
        d = order[level]
        for i in range(shape[d]):
            idx[d] = i
            walk(level + 1)

    walk(0)
    return trace


def memory_energy(trace: Sequence[int],
                  hierarchy: Optional[MemoryHierarchy] = None,
                  line_words: int = 4,
                  associative: bool = False) -> Tuple[float, int, int]:
    """Energy of serving a trace through the foreground buffer.

    Returns ``(energy_joules, hits, misses)``.  Every access pays the
    buffer energy; misses additionally pay a ``line_words``-word refill
    from the background memory.  ``associative`` selects a fully
    associative LRU buffer (the software-managed foreground memories of
    [14]); the default is a direct-mapped hardware cache.
    """
    from collections import OrderedDict

    h = hierarchy or MemoryHierarchy()
    lines = max(1, h.buffer_words // line_words)
    hits = misses = 0
    if associative:
        lru: "OrderedDict[int, None]" = OrderedDict()
        for addr in trace:
            line = addr // line_words
            if line in lru:
                hits += 1
                lru.move_to_end(line)
            else:
                misses += 1
                lru[line] = None
                if len(lru) > lines:
                    lru.popitem(last=False)
    else:
        tags: Dict[int, int] = {}
        for addr in trace:
            line = addr // line_words
            slot = line % lines
            if tags.get(slot) == line:
                hits += 1
            else:
                misses += 1
                tags[slot] = line
    energy = len(trace) * h.buffer_energy() + \
        misses * line_words * h.background_energy()
    return energy, hits, misses


def tiled_access_trace(shape: Sequence[int], tile: Sequence[int],
                       order: Optional[Sequence[int]] = None
                       ) -> List[int]:
    """Addresses of a *tiled* (blocked) loop nest over a row-major array.

    Tiling is the other control-flow transformation of [14]: the loop
    nest is split so a ``tile``-shaped block is fully traversed before
    moving on, keeping the working set inside the foreground buffer even
    when no single loop order has locality.
    """
    dims = len(shape)
    if len(tile) != dims:
        raise ValueError("tile rank must match the array rank")
    order = list(order) if order is not None else list(range(dims))
    strides = [1] * dims
    for d in range(dims - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    trace: List[int] = []
    base = [0] * dims

    def walk_tile(level: int, idx: List[int]) -> None:
        if level == dims:
            trace.append(sum(idx[d] * strides[d] for d in range(dims)))
            return
        d = order[level]
        for i in range(base[d], min(base[d] + tile[d], shape[d])):
            idx[d] = i
            walk_tile(level + 1, idx)

    def walk_blocks(level: int) -> None:
        if level == dims:
            walk_tile(0, [0] * dims)
            return
        d = order[level]
        for start in range(0, shape[d], tile[d]):
            base[d] = start
            walk_blocks(level + 1)

    walk_blocks(0)
    return trace


def best_loop_order(shape: Sequence[int],
                    hierarchy: Optional[MemoryHierarchy] = None,
                    line_words: int = 4
                    ) -> Tuple[Tuple[int, ...], Dict[Tuple[int, ...], float]]:
    """Exhaustive loop-order search (the [14] transformation space).

    Returns the minimum-energy order and the energy of every order.
    """
    results: Dict[Tuple[int, ...], float] = {}
    for order in permutations(range(len(shape))):
        trace = loop_access_trace(shape, order)
        energy, _h, _m = memory_energy(trace, hierarchy, line_words)
        results[order] = energy
    best = min(results, key=results.get)
    return best, results
