"""RTL generation: scheduled + bound DFGs become gate-level netlists.

This is the back end of behavioral synthesis (§IV-B): given a schedule
and a functional-unit binding, emit a sequential :class:`Network` with

* one gate-level execution unit per FU instance (ripple adder /
  subtractor / truncated array multiplier),
* operand multiplexers steered by a one-hot control-step decoder,
* a register file from a (read-holding) left-edge allocation,
* a modulo-L control counter.

The generated hardware is bit-exact with ``DFG.evaluate`` modulo
2^width, so binding decisions can be validated by *measuring* the
netlist's power instead of trusting the operand-Hamming cost model.
Inputs are assumed stable for the whole iteration (the usual
registered-input assumption); constants are hard-wired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.dfg import DFG, OP_DELAY
from repro.arch.scheduling import Schedule, schedule_length
from repro.logic.cube import Cube
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.logic.sop import Cover
from repro.logic.transform import instantiate


@dataclass
class RTLResult:
    """The synthesized design plus its structural accounting."""

    network: Network
    width: int
    latency: int
    register_of: Dict[str, int]        # op name -> register index
    num_registers: int
    output_registers: Dict[str, int]   # DFG output name -> register

    def output_bits(self, output: str) -> List[str]:
        reg = self.output_registers[output]
        return [f"reg{reg}_{b}" for b in range(self.width)]

    def read_output(self, values: Dict[str, int], output: str) -> int:
        return sum(values[b] << i
                   for i, b in enumerate(self.output_bits(output)))


def _adder_unit(width: int, subtract: bool) -> Network:
    """Combinational adder/subtractor over a/b inputs (mod 2^width)."""
    from repro.logic.generators import ripple_carry_adder

    net = ripple_carry_adder(width, name="addsub")
    if not subtract:
        return net
    # a - b = a + ~b + 1: rewire b through inverters, tie cin to 1.
    sub = Network("subber")
    for i in range(width):
        sub.add_input(f"a{i}")
    for i in range(width):
        sub.add_input(f"b{i}")
    port = {f"a{i}": f"a{i}" for i in range(width)}
    for i in range(width):
        sub.add_gate(f"nb{i}", GateType.NOT, [f"b{i}"])
        port[f"b{i}"] = f"nb{i}"
    sub.add_gate("one", GateType.CONST1, [])
    port["cin"] = "one"
    rename = instantiate(sub, net, "add_", port)
    for i in range(width):
        sub.set_output(rename[f"s{i}"])
    return sub


def _mul_unit(width: int) -> Network:
    """Truncated (mod 2^width) multiplier."""
    from repro.logic.generators import array_multiplier

    net = array_multiplier(width, name="mul")
    trunc = Network("mul_trunc")
    for i in range(width):
        trunc.add_input(f"a{i}")
    for i in range(width):
        trunc.add_input(f"b{i}")
    port = {f"a{i}": f"a{i}" for i in range(width)}
    port.update({f"b{i}": f"b{i}" for i in range(width)})
    rename = instantiate(trunc, net, "m_", port)
    for i in range(width):
        trunc.set_output(rename[f"p{i}"])
    return trunc


_UNIT_BUILDERS = {
    "add": lambda w: _adder_unit(w, subtract=False),
    "sub": lambda w: _adder_unit(w, subtract=True),
    "mul": _mul_unit,
}


def _rtl_lifetimes(dfg: DFG, schedule: Schedule
                   ) -> Dict[str, Tuple[int, int]]:
    """Value lifetimes that hold through every reader's *occupancy*."""
    consumers = dfg.consumers()
    out: Dict[str, Tuple[int, int]] = {}
    for op in dfg.compute_ops():
        born = schedule[op.name] + OP_DELAY.get(op.op, 1)
        last = born + 1
        for reader in consumers[op.name]:
            r = dfg.ops[reader]
            if r.is_compute():
                last = max(last, schedule[reader] +
                           OP_DELAY.get(r.op, 1))
            else:
                last = float("inf")   # outputs stay live forever
        out[op.name] = (born, last)
    return out


def synthesize_datapath(dfg: DFG, schedule: Schedule,
                        fu_binding: Dict[str, Tuple[str, int]],
                        width: int = 4,
                        name: str = "datapath") -> RTLResult:
    """Emit the gate-level implementation of a scheduled, bound DFG.

    Supported ops: add, sub, mul.  DFG inputs become ``<name>_<bit>``
    primary inputs (stable across the iteration); constants are
    hard-wired from ``int(op.value)``.
    """
    for op in dfg.compute_ops():
        if op.op not in _UNIT_BUILDERS:
            raise ValueError(f"unsupported RTL op {op.op!r}")
    latency = max(1, schedule_length(dfg, schedule))
    net = Network(name)

    # -- control counter + one-hot step decoder -------------------------
    import math

    cbits = max(1, math.ceil(math.log2(latency)))
    count_vars = [f"cnt{j}" for j in range(cbits)]
    for j in range(cbits):
        net.add_latch(f"cnt_next{j}", count_vars[j], init=0)
    for j in range(cbits):
        cubes = []
        for k in range(latency):
            nxt = (k + 1) % latency
            if (nxt >> j) & 1:
                cubes.append(Cube.from_literals(
                    cbits, [(m, (k >> m) & 1) for m in range(cbits)]))
        net.add_sop(f"cnt_next{j}", count_vars, Cover(cbits, cubes))
    step_sig: List[str] = []
    for k in range(latency):
        cube = Cube.from_literals(
            cbits, [(m, (k >> m) & 1) for m in range(cbits)])
        net.add_sop(f"st{k}", count_vars, Cover(cbits, [cube]))
        step_sig.append(f"st{k}")

    zero = net.add_gate("zero", GateType.CONST0, [])
    one = net.add_gate("one", GateType.CONST1, [])

    # -- operand sources -------------------------------------------------
    source_bits: Dict[str, List[str]] = {}
    for op in dfg.ops.values():
        if op.op == "input":
            bits = []
            for b in range(width):
                net.add_input(f"{op.name}_{b}")
                bits.append(f"{op.name}_{b}")
            source_bits[op.name] = bits
        elif op.op == "const":
            value = int(op.value or 0) & ((1 << width) - 1)
            source_bits[op.name] = [one if (value >> b) & 1 else zero
                                    for b in range(width)]

    # -- register allocation (read-holding left edge) ----------------------
    lifetimes = _rtl_lifetimes(dfg, schedule)
    order = sorted(lifetimes, key=lambda n: (lifetimes[n][0],
                                             str(lifetimes[n][1])))
    free_at: List[float] = []
    register_of: Dict[str, int] = {}
    for vname in order:
        born, last = lifetimes[vname]
        slot = None
        for r, t in enumerate(free_at):
            if t <= born:
                slot = r
                break
        if slot is None:
            slot = len(free_at)
            free_at.append(last)
        else:
            free_at[slot] = last
        register_of[vname] = slot
    num_regs = len(free_at)
    for r in range(num_regs):
        for b in range(width):
            net.add_latch(f"regd{r}_{b}", f"reg{r}_{b}", init=0,
                          enable=f"regen{r}")
    for op_name, reg in register_of.items():
        source_bits[op_name] = [f"reg{reg}_{b}" for b in range(width)]

    # -- functional units ----------------------------------------------------
    # Group ops per FU instance.
    per_unit: Dict[Tuple[str, int], List[str]] = {}
    for op_name, inst in fu_binding.items():
        per_unit.setdefault(inst, []).append(op_name)

    def and_or_mux(target_prefix: str,
                   choices: List[Tuple[str, List[str]]]) -> List[str]:
        """AND-OR one-hot mux: choices are (select signal, bits)."""
        bits = []
        for b in range(width):
            terms = []
            for i, (sel, src) in enumerate(choices):
                t = net.add_gate(f"{target_prefix}_t{b}_{i}",
                                 GateType.AND, [sel, src[b]])
                terms.append(t)
            if len(terms) == 1:
                bits.append(terms[0])
            else:
                acc = terms[0]
                for i, t in enumerate(terms[1:]):
                    acc = net.add_gate(f"{target_prefix}_o{b}_{i}",
                                       GateType.OR, [acc, t])
                bits.append(acc)
        return bits

    result_bits: Dict[str, List[str]] = {}
    for (optype, index), op_names in sorted(per_unit.items()):
        unit_prefix = f"fu_{optype}{index}"
        choices_a: List[Tuple[str, List[str]]] = []
        choices_b: List[Tuple[str, List[str]]] = []
        for op_name in op_names:
            op = dfg.ops[op_name]
            start = schedule[op_name]
            dur = OP_DELAY.get(op.op, 1)
            sels = [step_sig[start + d] for d in range(dur)]
            if len(sels) == 1:
                sel = sels[0]
            else:
                sel = sels[0]
                for i, s in enumerate(sels[1:]):
                    sel = net.add_gate(
                        f"{unit_prefix}_{op_name}_sel{i}",
                        GateType.OR, [sel, s])
            choices_a.append((sel, source_bits[op.operands[0]]))
            choices_b.append((sel, source_bits[op.operands[1]]))
        in_a = and_or_mux(f"{unit_prefix}_ma", choices_a)
        in_b = and_or_mux(f"{unit_prefix}_mb", choices_b)
        unit = _UNIT_BUILDERS[optype](width)
        port = {}
        for b in range(width):
            port[f"a{b}"] = in_a[b]
            port[f"b{b}"] = in_b[b]
        if "cin" in unit.inputs:
            port["cin"] = zero
        rename = instantiate(net, unit, unit_prefix + "_", port)
        outs = [rename[unit.outputs[b]] for b in range(width)]
        for op_name in op_names:
            result_bits[op_name] = outs

    # -- register write network -------------------------------------------------
    writes: Dict[int, List[Tuple[str, str]]] = {}
    for op in dfg.compute_ops():
        reg = register_of[op.name]
        finish = schedule[op.name] + OP_DELAY.get(op.op, 1) - 1
        writes.setdefault(reg, []).append((step_sig[finish], op.name))
    for reg in range(num_regs):
        entries = writes.get(reg, [])
        if not entries:
            for b in range(width):
                net.add_gate(f"regd{reg}_{b}", GateType.BUF,
                             [f"reg{reg}_{b}"])
            net.add_gate(f"regen{reg}", GateType.CONST0, [])
            continue
        sels = [sel for sel, _ in entries]
        en = sels[0]
        for i, s in enumerate(sels[1:]):
            en = net.add_gate(f"regen{reg}_o{i}", GateType.OR, [en, s])
        net.add_gate(f"regen{reg}", GateType.BUF, [en])
        choices = [(sel, result_bits[op_name])
                   for sel, op_name in entries]
        bits = and_or_mux(f"regmux{reg}", choices)
        for b in range(width):
            net.add_gate(f"regd{reg}_{b}", GateType.BUF, [bits[b]])

    # -- outputs --------------------------------------------------------------
    output_registers: Dict[str, int] = {}
    for out_name in dfg.outputs:
        src = dfg.ops[out_name].operands[0]
        output_registers[out_name] = register_of[src]
        for b in range(width):
            net.set_output(f"reg{register_of[src]}_{b}")
    net.check()
    return RTLResult(network=net, width=width, latency=latency,
                     register_of=register_of, num_registers=num_regs,
                     output_registers=output_registers)


def run_iteration(rtl: RTLResult, inputs: Dict[str, int]
                  ) -> Dict[str, int]:
    """Clock the datapath through one full iteration; returns the DFG
    outputs (integers mod 2^width)."""
    net = rtl.network
    mask = (1 << rtl.width) - 1
    vec = {}
    for pi in net.inputs:
        base, bit = pi.rsplit("_", 1)
        vec[pi] = (inputs[base] >> int(bit)) & 1
    state = net.initial_state()
    values = None
    for _ in range(rtl.latency):
        state, values = net.step_words(state, vec, 1)
    out = {}
    for name in rtl.output_registers:
        bits = rtl.output_bits(name)
        out[name] = sum(((state[b] & 1) << i)
                        for i, b in enumerate(bits)) & mask
    return out
