"""Operation scheduling (Section IV-B: control-step assignment).

ASAP/ALAP give the mobility range; resource-constrained list scheduling
assigns control steps under functional-unit limits.  Schedules map each
compute operation to the control step in which it *starts*; multi-cycle
operations (``mul``) occupy their unit for their full latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.dfg import DFG, OP_DELAY

Schedule = Dict[str, int]


def asap_schedule(dfg: DFG,
                  delays: Optional[Dict[str, int]] = None) -> Schedule:
    delays = delays or OP_DELAY
    start: Schedule = {}
    for name in dfg.topo_order():
        op = dfg.ops[name]
        t = 0
        for src in op.operands:
            s = dfg.ops[src]
            t = max(t, start[src] + delays.get(s.op, 1))
        start[name] = t
    return start


def alap_schedule(dfg: DFG, latency: Optional[int] = None,
                  delays: Optional[Dict[str, int]] = None) -> Schedule:
    delays = delays or OP_DELAY
    if latency is None:
        latency = dfg.critical_path(delays)
    consumers = dfg.consumers()
    start: Schedule = {}
    for name in reversed(dfg.topo_order()):
        op = dfg.ops[name]
        d = delays.get(op.op, 1)
        readers = consumers[name]
        if not readers:
            start[name] = latency - d
        else:
            start[name] = min(start[r] for r in readers) - d
    return start


def schedule_length(dfg: DFG, schedule: Schedule,
                    delays: Optional[Dict[str, int]] = None) -> int:
    delays = delays or OP_DELAY
    end = 0
    for name, t in schedule.items():
        end = max(end, t + delays.get(dfg.ops[name].op, 1))
    return end


def list_schedule(dfg: DFG, resources: Dict[str, int],
                  delays: Optional[Dict[str, int]] = None) -> Schedule:
    """Resource-constrained list scheduling (priority = ALAP slack).

    ``resources`` maps op type to unit count, e.g. ``{"add": 1,
    "mul": 2}``.  Zero-delay ops (inputs/consts/outputs) are scheduled
    at their dependency frontier and consume no resources.
    """
    delays = delays or OP_DELAY
    alap = alap_schedule(dfg, None, delays)
    start: Schedule = {}
    unscheduled = set(dfg.ops)
    busy: Dict[str, List[int]] = {}  # op type -> finish times in flight
    step = 0
    guard = 0
    while unscheduled:
        guard += 1
        if guard > 10000:
            raise RuntimeError("list scheduling did not converge")
        # Free units whose operations completed.
        for optype in busy:
            busy[optype] = [t for t in busy[optype] if t > step]
        # Fixed point within the step: zero-delay ops scheduled now can
        # immediately unlock their consumers at the same step.
        progressed = True
        while progressed:
            progressed = False
            ready = []
            for name in sorted(unscheduled):
                op = dfg.ops[name]
                ok = True
                for src in op.operands:
                    s = dfg.ops[src]
                    if src in unscheduled or \
                            start[src] + delays.get(s.op, 1) > step:
                        ok = False
                        break
                if ok:
                    ready.append(name)
            # Deterministic priority: ALAP slack, then name (set
            # iteration order must not leak into the schedule).
            ready.sort(key=lambda n: (alap[n], n))
            for name in ready:
                op = dfg.ops[name]
                d = delays.get(op.op, 1)
                if not op.is_compute() or d == 0:
                    start[name] = step
                    unscheduled.discard(name)
                    progressed = True
                    continue
                limit = resources.get(op.op)
                in_use = len(busy.get(op.op, []))
                if limit is None or in_use < limit:
                    start[name] = step
                    unscheduled.discard(name)
                    busy.setdefault(op.op, []).append(step + d)
                    in_use += 1
                    progressed = True
        step += 1
    return start


def force_directed_schedule(dfg: DFG, latency: Optional[int] = None,
                            delays: Optional[Dict[str, int]] = None
                            ) -> Schedule:
    """Force-directed scheduling (Paulin & Knight) under a latency bound.

    Minimizes the peak per-type concurrency — and therefore the number
    of allocated units, the dominant capacitance term — by placing each
    operation at the control step with the lowest "force" against the
    type-distribution graph.  This is the scheduler the [7]-era
    behavioral synthesis systems used.
    """
    delays = delays or OP_DELAY
    if latency is None:
        latency = dfg.critical_path(delays)
    asap = asap_schedule(dfg, delays)
    alap = alap_schedule(dfg, latency, delays)
    start: Schedule = {}
    ops = [o for o in dfg.topo_order()]
    unplaced = [n for n in ops if dfg.ops[n].is_compute() and
                delays.get(dfg.ops[n].op, 1) > 0]
    # Zero-delay ops ride along at their ASAP times.
    for n in ops:
        if n not in unplaced:
            start[n] = asap[n]

    def frames() -> Dict[str, Tuple[int, int]]:
        """Current [earliest, latest] start for every unplaced op,
        narrowed by already-placed predecessors/successors."""
        lo = dict(asap)
        hi = dict(alap)
        for n in ops:
            op = dfg.ops[n]
            for src in op.operands:
                d = delays.get(dfg.ops[src].op, 1)
                base = start[src] if src in start else lo[src]
                lo[n] = max(lo[n], base + d)
        for n in reversed(ops):
            op = dfg.ops[n]
            d = delays.get(op.op, 1)
            for src in op.operands:
                cap = (start[n] if n in start else hi[n]) - \
                    delays.get(dfg.ops[src].op, 1)
                hi[src] = min(hi[src], cap)
        return {n: (lo[n], hi[n]) for n in unplaced}

    while unplaced:
        window = frames()
        # Distribution graph: expected occupancy per (type, step).
        dist: Dict[Tuple[str, int], float] = {}

        def add_occupancy(n: str, lo: int, hi: int, weight_span: int):
            op = dfg.ops[n]
            d = delays.get(op.op, 1)
            span = max(1, weight_span)
            for s in range(lo, hi + 1):
                for k in range(d):
                    key = (op.op, s + k)
                    dist[key] = dist.get(key, 0.0) + 1.0 / span
        for n in unplaced:
            lo, hi = window[n]
            add_occupancy(n, lo, hi, hi - lo + 1)
        for n, s in start.items():
            op = dfg.ops[n]
            if op.is_compute() and delays.get(op.op, 1) > 0:
                add_occupancy(n, s, s, 1)

        # Pick the most constrained op; place at minimum-force step.
        n = min(unplaced, key=lambda m: (window[m][1] - window[m][0],
                                         m))
        lo, hi = window[n]
        op = dfg.ops[n]
        d = delays.get(op.op, 1)
        best_step, best_force = lo, float("inf")
        for s in range(lo, hi + 1):
            force = sum(dist.get((op.op, s + k), 0.0) for k in range(d))
            if force < best_force:
                best_step, best_force = s, force
        start[n] = best_step
        unplaced.remove(n)
    return start


def required_units(dfg: DFG, schedule: Schedule,
                   delays: Optional[Dict[str, int]] = None
                   ) -> Dict[str, int]:
    """Peak concurrency per op type under a schedule (allocation size)."""
    delays = delays or OP_DELAY
    length = schedule_length(dfg, schedule, delays)
    peak: Dict[str, int] = {}
    for t in range(length):
        count: Dict[str, int] = {}
        for name, s in schedule.items():
            op = dfg.ops[name]
            if not op.is_compute():
                continue
            d = delays.get(op.op, 1)
            if s <= t < s + d:
                count[op.op] = count.get(op.op, 0) + 1
        for k, v in count.items():
            peak[k] = max(peak.get(k, 0), v)
    return peak
