"""Architecture-level power models (Section IV-A).

Three model families from the survey, in increasing fidelity:

* **UWN / PFA** ([15], [36]): a fixed effective capacitance per module
  activation, characterized under white-noise inputs; per-module powers
  are summed over the schedule, ignoring inter-module correlation.
* **activity-based / black-box capacitance** ([21], [22] Landman &
  Rabaey): effective capacitance is an affine function of the input
  switching statistics, ``C_eff = C0 + C1 · h`` with ``h`` the average
  input Hamming-distance fraction; characterized by regression against
  gate-level measurements.

`characterize_module` builds both models for any gate-level module by
bit-parallel simulation, so E14 can compare model predictions with
gate-level "ground truth" on arbitrary operand streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.dfg import DFG
from repro.arch.scheduling import Schedule
from repro.logic.netlist import Network
from repro.power.model import PowerParameters, node_capacitance
from repro.sim.functional import simulate_transitions
from repro.sim.vectors import words_from_vectors


@dataclass(frozen=True)
class Module:
    """A datapath execution unit with characterized power."""

    name: str
    op: str
    delay: int                 # control steps
    cap_per_op: float          # UWN effective switched capacitance
    cap_base: float = 0.0      # black-box model intercept (C0)
    cap_slope: float = 0.0     # black-box model slope (C1, per unit h)
    area: float = 1.0

    def energy(self, vdd: float, cap_unit: float,
               hamming_fraction: Optional[float] = None) -> float:
        """Energy per activation (J)."""
        if hamming_fraction is None or self.cap_slope == 0.0:
            cap = self.cap_per_op
        else:
            cap = self.cap_base + self.cap_slope * hamming_fraction
        return 0.5 * cap * cap_unit * vdd ** 2


class ModuleLibrary:
    """Module variants per op type ([17]: power/delay trade-offs)."""

    def __init__(self, modules: Sequence[Module]):
        self.modules = list(modules)

    def variants(self, op: str) -> List[Module]:
        return [m for m in self.modules if m.op == op]

    def fastest(self, op: str) -> Module:
        return min(self.variants(op), key=lambda m: m.delay)

    def lowest_power(self, op: str) -> Module:
        return min(self.variants(op), key=lambda m: m.cap_per_op)


def default_module_library() -> ModuleLibrary:
    """Characterization-shaped defaults (cap in the units of
    repro.power.model; an n-bit ripple adder switches ~an order of
    magnitude less capacitance than an array multiplier)."""
    return ModuleLibrary([
        Module("add_fast", "add", 1, cap_per_op=60.0, cap_base=12.0,
               cap_slope=96.0, area=2.0),
        Module("add_slow", "add", 2, cap_per_op=40.0, cap_base=8.0,
               cap_slope=64.0, area=1.0),
        Module("sub_fast", "sub", 1, cap_per_op=64.0, cap_base=13.0,
               cap_slope=102.0, area=2.0),
        Module("mul_fast", "mul", 2, cap_per_op=600.0, cap_base=120.0,
               cap_slope=960.0, area=10.0),
        Module("mul_slow", "mul", 3, cap_per_op=420.0, cap_base=84.0,
               cap_slope=672.0, area=6.0),
    ])


def pfa_power(dfg: DFG, schedule: Schedule,
              module_for_op: Dict[str, Module],
              params: Optional[PowerParameters] = None,
              samples_per_second: Optional[float] = None) -> float:
    """UWN/PFA power: Σ activations · E_module / sample period (W)."""
    from repro.arch.scheduling import schedule_length

    params = params or PowerParameters()
    length = max(1, schedule_length(dfg, schedule))
    rate = samples_per_second if samples_per_second is not None \
        else params.frequency / length
    energy = 0.0
    for op in dfg.compute_ops():
        module = module_for_op[op.op]
        energy += module.energy(params.vdd, params.cap_unit)
    return energy * rate


def activity_power(dfg: DFG, schedule: Schedule,
                   module_for_op: Dict[str, Module],
                   hamming_fractions: Dict[str, float],
                   params: Optional[PowerParameters] = None,
                   samples_per_second: Optional[float] = None) -> float:
    """Black-box capacitance power using per-op input statistics."""
    from repro.arch.scheduling import schedule_length

    params = params or PowerParameters()
    length = max(1, schedule_length(dfg, schedule))
    rate = samples_per_second if samples_per_second is not None \
        else params.frequency / length
    energy = 0.0
    for op in dfg.compute_ops():
        module = module_for_op[op.op]
        h = hamming_fractions.get(op.name, 0.5)
        energy += module.energy(params.vdd, params.cap_unit, h)
    return energy * rate


@dataclass
class ModuleCharacterization:
    """Measured models for one gate-level module."""

    module: Module
    samples: List[Tuple[float, float]]  # (hamming fraction, cap/op)

    def prediction_error(self, h: float, measured_cap: float,
                         model: str = "blackbox") -> float:
        if model == "uwn":
            pred = self.module.cap_per_op
        else:
            pred = self.module.cap_base + self.module.cap_slope * h
        return abs(pred - measured_cap) / max(measured_cap, 1e-12)


def measure_switched_cap(net: Network, vectors: List[Dict[str, int]],
                         params: Optional[PowerParameters] = None
                         ) -> float:
    """Gate-level ground truth: switched capacitance per input vector."""
    params = params or PowerParameters()
    count = len(vectors)
    words = words_from_vectors(vectors)
    for pi in net.inputs:
        words.setdefault(pi, 0)
    transitions = simulate_transitions(net, words, count)
    total = 0.0
    for name, t in transitions.items():
        total += t * node_capacitance(net, name, params)
    return total / max(1, count - 1)


def characterize_module(net: Network, op: str, name: str, delay: int = 1,
                        num_vectors: int = 512, seed: int = 0,
                        params: Optional[PowerParameters] = None
                        ) -> ModuleCharacterization:
    """Build UWN and black-box models for a gate-level module.

    Sweeps input streams with different temporal correlation (hence
    different average input Hamming fractions) and fits
    ``cap = C0 + C1·h`` by least squares; the UWN capacitance is the
    white-noise (h = 0.5) measurement.
    """
    rng = random.Random(seed)
    pis = list(net.inputs)
    samples: List[Tuple[float, float]] = []
    for correlation in (0.0, 0.25, 0.5, 0.75, 0.9):
        vectors: List[Dict[str, int]] = []
        prev = {pi: rng.getrandbits(1) for pi in pis}
        vectors.append(dict(prev))
        flips = 0
        for _ in range(num_vectors - 1):
            cur = {}
            for pi in pis:
                if rng.random() < correlation:
                    cur[pi] = prev[pi]
                else:
                    cur[pi] = rng.getrandbits(1)
                flips += cur[pi] ^ prev[pi]
            vectors.append(cur)
            prev = cur
        h = flips / ((num_vectors - 1) * len(pis))
        cap = measure_switched_cap(net, vectors, params)
        samples.append((h, cap))
    # Least-squares fit cap = C0 + C1 * h.
    n = len(samples)
    sx = sum(h for h, _ in samples)
    sy = sum(c for _, c in samples)
    sxx = sum(h * h for h, _ in samples)
    sxy = sum(h * c for h, c in samples)
    denom = n * sxx - sx * sx
    c1 = (n * sxy - sx * sy) / denom if denom else 0.0
    c0 = (sy - c1 * sx) / n
    uwn = min(samples, key=lambda s: abs(s[0] - 0.5))[1]
    module = Module(name=name, op=op, delay=delay, cap_per_op=uwn,
                    cap_base=c0, cap_slope=c1)
    return ModuleCharacterization(module=module, samples=samples)
