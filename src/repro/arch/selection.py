"""Automatic module selection under a latency constraint ([17]).

Goodby/Orailoglu/Chau: with a library offering several power/delay
variants per operation type, choose the slowest (lowest-capacitance)
variant for each type that still lets the design meet its latency — the
power analogue of technology selection.  The search is exhaustive over
variant combinations per op type (libraries are small) with list
scheduling as the feasibility oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Optional, Tuple

from repro.arch.dfg import DFG, OP_DELAY
from repro.arch.power_models import Module, ModuleLibrary
from repro.arch.scheduling import Schedule, list_schedule, \
    schedule_length
from repro.power.model import PowerParameters


@dataclass
class SelectionResult:
    """Chosen module per op type plus the resulting schedule."""

    modules: Dict[str, Module]
    schedule: Schedule
    latency: int
    power: float

    def module_names(self) -> Dict[str, str]:
        return {op: m.name for op, m in self.modules.items()}


def select_modules(dfg: DFG, library: ModuleLibrary,
                   latency_bound: Optional[int] = None,
                   resources: Optional[Dict[str, int]] = None,
                   params: Optional[PowerParameters] = None
                   ) -> SelectionResult:
    """Minimum-power module selection meeting ``latency_bound``.

    ``latency_bound`` defaults to the latency achievable with the
    fastest variants (so the result demonstrates pure slack recycling);
    raise it to let slower, lower-power modules in.  ``resources``
    bounds unit counts per type during scheduling.
    """
    from repro.arch.power_models import pfa_power

    params = params or PowerParameters()
    op_types = sorted({o.op for o in dfg.compute_ops()})
    for op in op_types:
        if not library.variants(op):
            raise ValueError(f"library has no module for op {op!r}")
    resources = resources or {}

    def evaluate(combo: Tuple[Module, ...]
                 ) -> Tuple[Schedule, int, float]:
        modules = dict(zip(op_types, combo))
        delays = dict(OP_DELAY)
        for op, m in modules.items():
            delays[op] = m.delay
        schedule = list_schedule(dfg, resources, delays)
        latency = schedule_length(dfg, schedule, delays)
        power = pfa_power(dfg, schedule, modules, params)
        return schedule, latency, power

    if latency_bound is None:
        fastest = tuple(library.fastest(op) for op in op_types)
        _s, latency_bound, _p = evaluate(fastest)

    best: Optional[SelectionResult] = None
    for combo in product(*(library.variants(op) for op in op_types)):
        schedule, latency, power = evaluate(combo)
        if latency > latency_bound:
            continue
        if best is None or power < best.power:
            best = SelectionResult(modules=dict(zip(op_types, combo)),
                                   schedule=schedule, latency=latency,
                                   power=power)
    if best is None:
        raise RuntimeError(
            f"no module combination meets latency {latency_bound}")
    return best
