"""Allocation and binding minimizing switched capacitance
(Section IV-B; [33], [34] Raghunathan & Jha, [17] module selection).

When two operations share a functional unit in consecutive control
steps, the unit's inputs swing by the Hamming distance between the
operand values.  Binding therefore matters: correlated operations should
share units.  `bind_operations` profiles operand values on sample input
streams and greedily assigns ops to unit instances so the summed
inter-operation Hamming switching is minimal; `"naive"` binding
(first-fit in schedule order) is the baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.dfg import DFG, OP_DELAY
from repro.arch.scheduling import Schedule, required_units


def _to_fixed(value: float, width: int = 16, frac: int = 8) -> int:
    mask = (1 << width) - 1
    return int(round(value * (1 << frac))) & mask


def profile_operands(dfg: DFG, num_samples: int = 64, seed: int = 0,
                     width: int = 16) -> Dict[str, List[Tuple[int, int]]]:
    """Fixed-point operand traces per compute op over random inputs."""
    rng = random.Random(seed)
    traces: Dict[str, List[Tuple[int, int]]] = \
        {o.name: [] for o in dfg.compute_ops()}
    for _ in range(num_samples):
        inputs = {name: rng.uniform(-1.0, 1.0) for name in dfg.inputs()}
        values = dfg.evaluate(inputs)
        for op in dfg.compute_ops():
            a = values[op.operands[0]]
            b = values[op.operands[1]] if len(op.operands) > 1 else 0.0
            traces[op.name].append((_to_fixed(a, width),
                                    _to_fixed(b, width)))
    return traces


def _pair_switching(trace_a: Sequence[Tuple[int, int]],
                    trace_b: Sequence[Tuple[int, int]]) -> float:
    """Average Hamming swing when op B follows op A on the same unit."""
    total = 0
    for (a0, a1), (b0, b1) in zip(trace_a, trace_b):
        total += (a0 ^ b0).bit_count() + (a1 ^ b1).bit_count()
    return total / max(1, len(trace_a))


@dataclass
class BindingResult:
    """op name -> (unit type, instance index), plus the cost model."""

    binding: Dict[str, Tuple[str, int]]
    units: Dict[str, int]
    switched_capacitance: float

    def unit_sequences(self, dfg: DFG, schedule: Schedule
                       ) -> Dict[Tuple[str, int], List[str]]:
        seqs: Dict[Tuple[str, int], List[str]] = {}
        for name, inst in self.binding.items():
            seqs.setdefault(inst, []).append(name)
        for inst in seqs:
            seqs[inst].sort(key=lambda n: schedule[n])
        return seqs


def binding_switched_capacitance(dfg: DFG, schedule: Schedule,
                                 binding: Dict[str, Tuple[str, int]],
                                 traces: Dict[str, List[Tuple[int, int]]]
                                 ) -> float:
    """Σ over units of consecutive-op operand Hamming distances."""
    seqs: Dict[Tuple[str, int], List[str]] = {}
    for name, inst in binding.items():
        seqs.setdefault(inst, []).append(name)
    total = 0.0
    for inst, names in seqs.items():
        names.sort(key=lambda n: schedule[n])
        for a, b in zip(names, names[1:]):
            total += _pair_switching(traces[a], traces[b])
    return total


def profile_values(dfg: DFG, num_samples: int = 64, seed: int = 0,
                   width: int = 16) -> Dict[str, List[int]]:
    """Fixed-point *result* traces per compute op (register contents)."""
    import random as _random

    rng = _random.Random(seed)
    traces: Dict[str, List[int]] = {o.name: []
                                    for o in dfg.compute_ops()}
    for _ in range(num_samples):
        inputs = {name: rng.uniform(-1.0, 1.0) for name in dfg.inputs()}
        values = dfg.evaluate(inputs)
        for op in dfg.compute_ops():
            traces[op.name].append(_to_fixed(values[op.name], width))
    return traces


@dataclass
class RegisterBindingResult:
    """Variable-to-register assignment (left-edge allocation)."""

    assignment: Dict[str, int]         # op name -> register index
    num_registers: int
    switching: float                   # Σ Hamming between co-resident values

    def register_sequences(self) -> Dict[int, List[str]]:
        seqs: Dict[int, List[str]] = {}
        for name, reg in self.assignment.items():
            seqs.setdefault(reg, []).append(name)
        return seqs


def _lifetimes(dfg: DFG, schedule: Schedule
               ) -> Dict[str, Tuple[int, int]]:
    """[definition, last-use) interval of every compute op's result."""
    delays = OP_DELAY
    consumers = dfg.consumers()
    lifetimes: Dict[str, Tuple[int, int]] = {}
    for op in dfg.compute_ops():
        born = schedule[op.name] + delays.get(op.op, 1)
        last = born
        for reader in consumers[op.name]:
            last = max(last, schedule[reader] + 1)
        lifetimes[op.name] = (born, last)
    return lifetimes


def _register_switching(assignment: Dict[str, int],
                        lifetimes: Dict[str, Tuple[int, int]],
                        traces: Dict[str, List[int]]) -> float:
    total = 0.0
    seqs: Dict[int, List[str]] = {}
    for name, reg in assignment.items():
        seqs.setdefault(reg, []).append(name)
    for reg, names in seqs.items():
        names.sort(key=lambda n: lifetimes[n][0])
        for a, b in zip(names, names[1:]):
            ta, tb = traces[a], traces[b]
            total += sum((x ^ y).bit_count()
                         for x, y in zip(ta, tb)) / max(1, len(ta))
    return total


def bind_registers(dfg: DFG, schedule: Schedule,
                   strategy: str = "low-power",
                   traces: Optional[Dict[str, List[int]]] = None,
                   num_samples: int = 64, seed: int = 0
                   ) -> RegisterBindingResult:
    """Left-edge register allocation for the scheduled DFG's values.

    ``"naive"`` takes the lowest-numbered free register (the classical
    left-edge rule); ``"low-power"`` picks, among free registers, the
    one whose previous resident value is most correlated with the new
    one (minimum average Hamming distance, [33]'s register objective).
    Both use the minimum register count.
    """
    if strategy not in ("naive", "low-power"):
        raise ValueError("strategy must be 'naive' or 'low-power'")
    if traces is None:
        traces = profile_values(dfg, num_samples, seed)
    lifetimes = _lifetimes(dfg, schedule)
    order = sorted(lifetimes, key=lambda n: (lifetimes[n][0],
                                             lifetimes[n][1]))
    free_at: List[int] = []          # per register: time it frees up
    last_value: List[Optional[str]] = []
    assignment: Dict[str, int] = {}
    for name in order:
        start, end = lifetimes[name]
        candidates = [r for r, t in enumerate(free_at) if t <= start]
        if not candidates:
            reg = len(free_at)
            free_at.append(end)
            last_value.append(name)
        else:
            if strategy == "naive":
                reg = candidates[0]
            else:
                def cost(r: int) -> float:
                    prev = last_value[r]
                    if prev is None:
                        return 0.0
                    ta, tb = traces[prev], traces[name]
                    return sum((x ^ y).bit_count()
                               for x, y in zip(ta, tb)) / \
                        max(1, len(ta))
                reg = min(candidates, key=lambda r: (cost(r), r))
            free_at[reg] = end
            last_value[reg] = name
        assignment[name] = reg
    return RegisterBindingResult(
        assignment=assignment, num_registers=len(free_at),
        switching=_register_switching(assignment, lifetimes, traces))


def bind_operations(dfg: DFG, schedule: Schedule,
                    strategy: str = "low-power",
                    traces: Optional[Dict[str, List[Tuple[int, int]]]]
                    = None,
                    num_samples: int = 64, seed: int = 0
                    ) -> BindingResult:
    """Bind scheduled operations to functional-unit instances.

    ``strategy`` is ``"naive"`` (first-free in schedule order),
    ``"low-power"`` (greedy minimum incremental operand switching, the
    [33] objective), or ``"worst"`` (greedy *maximum* switching — an
    experimental upper bound that brackets how much binding can matter).
    """
    if strategy not in ("naive", "low-power", "worst"):
        raise ValueError("strategy must be 'naive', 'low-power' or "
                         "'worst'")
    if traces is None:
        traces = profile_operands(dfg, num_samples, seed)
    units = required_units(dfg, schedule)
    delays = OP_DELAY
    binding: Dict[str, Tuple[str, int]] = {}
    # Per instance: list of (start, end, opname) intervals and last op.
    occupancy: Dict[Tuple[str, int], List[Tuple[int, int, str]]] = {}
    for optype, count in units.items():
        for k in range(count):
            occupancy[(optype, k)] = []

    ops = sorted((o for o in dfg.compute_ops()),
                 key=lambda o: schedule[o.name])
    for op in ops:
        s = schedule[op.name]
        e = s + delays.get(op.op, 1)
        candidates = []
        for k in range(units[op.op]):
            inst = (op.op, k)
            busy = any(not (e <= bs or s >= be)
                       for bs, be, _n in occupancy[inst])
            if busy:
                continue
            prior = [n for bs, be, n in occupancy[inst] if be <= s]
            if prior:
                last = max(prior,
                           key=lambda n: schedule[n] +
                           delays.get(dfg.ops[n].op, 1))
                cost = _pair_switching(traces[last], traces[op.name])
            else:
                cost = 0.0
            candidates.append((cost, k, inst))
        if not candidates:
            raise RuntimeError(
                f"no free {op.op} unit for {op.name} at step {s}")
        if strategy == "naive":
            _cost, _k, inst = min(candidates, key=lambda c: c[1])
        elif strategy == "worst":
            _cost, _k, inst = max(candidates)
        else:
            _cost, _k, inst = min(candidates)
        occupancy[inst].append((s, e, op.name))
        binding[op.name] = inst
    cap = binding_switched_capacitance(dfg, schedule, binding, traces)
    return BindingResult(binding=binding, units=units,
                         switched_capacitance=cap)
