"""Data-flow graphs — the input representation of behavioral synthesis
(Section IV-B).

Operations are typed (``add``, ``mul``, ``input``, ``const``, ``output``)
and connected by data edges.  Helpers build the DSP kernels the
surveyed papers evaluate on (FIR filters, IIR biquads, reduction sums).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, \
    Tuple


@dataclass
class Operation:
    """One DFG vertex."""

    name: str
    op: str                      # input / const / output / add / sub / mul
    operands: List[str] = field(default_factory=list)
    value: Optional[float] = None   # for const

    def is_compute(self) -> bool:
        return self.op not in ("input", "const", "output")


#: Default operation delays in control steps.
OP_DELAY = {"add": 1, "sub": 1, "mul": 2, "input": 0, "const": 0,
            "output": 0, "cmp": 1, "shift": 1}


class DFG:
    """A directed acyclic data-flow graph."""

    def __init__(self, name: str = "dfg"):
        self.name = name
        self.ops: Dict[str, Operation] = {}
        self.outputs: List[str] = []

    # -- construction ---------------------------------------------------

    def add(self, name: str, op: str,
            operands: Sequence[str] = (),
            value: Optional[float] = None) -> str:
        if name in self.ops:
            raise ValueError(f"operation {name!r} already exists")
        for o in operands:
            if o not in self.ops:
                raise ValueError(f"operand {o!r} undefined")
        self.ops[name] = Operation(name, op, list(operands), value)
        if op == "output":
            self.outputs.append(name)
        return name

    def inputs(self) -> List[str]:
        return [o.name for o in self.ops.values() if o.op == "input"]

    def compute_ops(self) -> List[Operation]:
        return [o for o in self.ops.values() if o.is_compute()]

    def consumers(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {n: [] for n in self.ops}
        for op in self.ops.values():
            for src in op.operands:
                out[src].append(op.name)
        return out

    def topo_order(self) -> List[str]:
        order: List[str] = []
        state: Dict[str, int] = {}

        def visit(name: str) -> None:
            st = state.get(name, 0)
            if st == 2:
                return
            if st == 1:
                raise ValueError(f"cycle through {name!r}")
            state[name] = 1
            for src in self.ops[name].operands:
                visit(src)
            state[name] = 2
            order.append(name)

        for name in self.ops:
            visit(name)
        return order

    def critical_path(self,
                      delays: Optional[Dict[str, int]] = None) -> int:
        delays = delays or OP_DELAY
        finish: Dict[str, int] = {}
        for name in self.topo_order():
            op = self.ops[name]
            d = delays.get(op.op, 1)
            start = max((finish[s] for s in op.operands), default=0)
            finish[name] = start + d
        return max(finish.values(), default=0)

    def evaluate(self, inputs: Dict[str, float]) -> Dict[str, float]:
        """Numeric evaluation (used to profile operand statistics)."""
        values: Dict[str, float] = {}
        for name in self.topo_order():
            op = self.ops[name]
            if op.op == "input":
                values[name] = inputs[name]
            elif op.op == "const":
                values[name] = op.value if op.value is not None else 0.0
            elif op.op == "output":
                values[name] = values[op.operands[0]]
            else:
                a = values[op.operands[0]]
                b = values[op.operands[1]] if len(op.operands) > 1 else 0.0
                if op.op == "add":
                    values[name] = a + b
                elif op.op == "sub":
                    values[name] = a - b
                elif op.op == "mul":
                    values[name] = a * b
                elif op.op == "shift":
                    values[name] = a * 2
                elif op.op == "cmp":
                    values[name] = float(a > b)
                else:
                    raise ValueError(f"unknown op {op.op!r}")
        return values

    def copy(self, name: Optional[str] = None) -> "DFG":
        d = DFG(name or self.name)
        for op in self.ops.values():
            d.ops[op.name] = Operation(op.name, op.op, list(op.operands),
                                       op.value)
        d.outputs = list(self.outputs)
        return d

    def __repr__(self) -> str:
        return (f"DFG({self.name!r}: {len(self.ops)} ops, "
                f"{len(self.compute_ops())} compute)")


# -- standard kernels -------------------------------------------------------


def fir_dfg(taps: int, name: str = "fir") -> DFG:
    """Direct-form FIR filter: y = Σ c_i · x_i (chained accumulation)."""
    dfg = DFG(name)
    acc = None
    for i in range(taps):
        x = dfg.add(f"x{i}", "input")
        c = dfg.add(f"c{i}", "const", value=float(i + 1))
        p = dfg.add(f"p{i}", "mul", [c, x])
        acc = p if acc is None else dfg.add(f"s{i}", "add", [acc, p])
    dfg.add("y", "output", [acc])
    return dfg


def iir_biquad_dfg(name: str = "biquad") -> DFG:
    """One biquad section (feed-forward part of the classic benchmark)."""
    dfg = DFG(name)
    x0 = dfg.add("x0", "input")
    x1 = dfg.add("x1", "input")
    x2 = dfg.add("x2", "input")
    b0 = dfg.add("b0", "const", value=0.5)
    b1 = dfg.add("b1", "const", value=0.25)
    b2 = dfg.add("b2", "const", value=0.125)
    m0 = dfg.add("m0", "mul", [b0, x0])
    m1 = dfg.add("m1", "mul", [b1, x1])
    m2 = dfg.add("m2", "mul", [b2, x2])
    a0 = dfg.add("a0", "add", [m0, m1])
    a1 = dfg.add("a1", "add", [a0, m2])
    dfg.add("y", "output", [a1])
    return dfg


def chained_sum_dfg(n: int, name: str = "chain") -> DFG:
    """Linear chain of additions — the tree-height-reduction workload."""
    dfg = DFG(name)
    acc = dfg.add("x0", "input")
    for i in range(1, n):
        x = dfg.add(f"x{i}", "input")
        acc = dfg.add(f"s{i}", "add", [acc, x])
    dfg.add("y", "output", [acc])
    return dfg
