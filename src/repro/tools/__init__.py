"""Command-line tools: power reporting and optimization of BLIF files.

Run as ``python -m repro.tools.cli`` (see that module for subcommands).
"""
