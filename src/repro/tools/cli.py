"""``python -m repro.tools.cli`` — the framework's command line.

Subcommands:

* ``report <file.blif>``   — Eqn-1 power breakdown and statistics
* ``glitch <file.blif>``   — timed vs zero-delay transition analysis
* ``optimize <file.blif>`` — run the low-power flow, write BLIF out
* ``map <file.blif>``      — technology map (area/power/delay objective)
* ``balance <file.blif>``  — path-balancing buffer insertion

All commands accept ``--vectors`` (simulation length) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.logic.blif import read_blif, write_blif
from repro.logic.netlist import Network


def _load(path: str) -> Network:
    with open(path) as f:
        return read_blif(f)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.power.model import average_power

    net = _load(args.netlist)
    print(f"{net!r}")
    for key, value in net.stats().items():
        print(f"  {key:12s}: {value}")
    rep = average_power(net, num_vectors=args.vectors, seed=args.seed)
    print(rep.summary())
    if args.per_node:
        worst = sorted(rep.per_node.items(), key=lambda kv: -kv[1])
        print("\nhottest nodes:")
        for name, p in worst[:args.per_node]:
            print(f"  {name:20s} {p * 1e6:10.4f} uW "
                  f"(activity {rep.activity.get(name, 0):.3f})")
    return 0


def _cmd_glitch(args: argparse.Namespace) -> int:
    from repro.power.glitch import glitch_report

    net = _load(args.netlist)
    rep = glitch_report(net, num_vectors=args.vectors, seed=args.seed)
    print(f"timed transitions      : {rep.total_timed}")
    print(f"zero-delay transitions : {rep.total_functional}")
    print(f"glitch fraction        : {rep.glitch_fraction:.1%}")
    print(f"glitch power fraction  : {rep.glitch_power_fraction:.1%}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.core.flow import low_power_flow

    net = _load(args.netlist)
    if net.latches:
        print("error: the combinational flow does not take sequential "
              "netlists", file=sys.stderr)
        return 1
    result = low_power_flow(net, num_vectors=args.vectors,
                            seed=args.seed,
                            use_mapping=not args.no_map,
                            use_sizing=not args.no_size)
    print(result.summary())
    if args.output:
        with open(args.output, "w") as f:
            f.write(write_blif(result.final))
        print(f"wrote {args.output}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.library.cells import generic_library
    from repro.opt.logic.mapping import tech_map
    from repro.sim.functional import verify_equivalence

    net = _load(args.netlist)
    res = tech_map(net, generic_library(), args.objective,
                   seed=args.seed)
    if not verify_equivalence(net, res.mapped, 256, args.seed):
        print("error: mapping broke equivalence", file=sys.stderr)
        return 1
    print(f"objective : {res.objective}")
    print(f"area      : {res.total_area:.1f}")
    print(f"arrival   : {res.arrival:.2f}")
    print("cells     :")
    for cell, count in sorted(res.cells_used.items()):
        print(f"  {cell:12s} x{count}")
    if args.output:
        with open(args.output, "w") as f:
            f.write(write_blif(res.mapped))
        print(f"wrote {args.output}")
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    from repro.opt.logic.balance import balance_paths
    from repro.power.glitch import glitch_report

    net = _load(args.netlist)
    before = glitch_report(net, num_vectors=args.vectors,
                           seed=args.seed)
    res = balance_paths(net)
    after = glitch_report(net, num_vectors=args.vectors, seed=args.seed)
    print(f"buffers added          : {res.buffers_added}")
    print(f"glitch power fraction  : {before.glitch_power_fraction:.1%}"
          f" -> {after.glitch_power_fraction:.1%}")
    print(f"depth                  : {res.depth_before:g} -> "
          f"{res.depth_after:g}")
    if args.output:
        with open(args.output, "w") as f:
            f.write(write_blif(net))
        print(f"wrote {args.output}")
    return 0


def _cmd_fsm(args: argparse.Namespace) -> int:
    from repro.core.flow import fsm_low_power_flow
    from repro.opt.seq.fsm_benchmarks import benchmark_names, \
        load_benchmark
    from repro.opt.seq.stg import read_kiss

    if args.kiss in benchmark_names():
        stg = load_benchmark(args.kiss)
    else:
        with open(args.kiss) as f:
            stg = read_kiss(f)
    res = fsm_low_power_flow(stg, sequence_length=args.vectors,
                             seed=args.seed)
    print(f"states               : {res.states_before} -> "
          f"{res.states_after}")
    print(f"self-loop activation : {res.activation_probability:.2f}")
    print(f"power (incl. clock)  : {res.power_before * 1e6:.2f} uW -> "
          f"{res.power_after * 1e6:.2f} uW ({res.saving:+.1%})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Low-power VLSI optimization framework "
                    "(Devadas & Malik, DAC 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("netlist", help="input BLIF file")
        p.add_argument("--vectors", type=int, default=1024,
                       help="simulation vectors (default 1024)")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("report", help="power breakdown")
    common(p)
    p.add_argument("--per-node", type=int, default=0, metavar="N",
                   help="also list the N hottest nodes")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("glitch", help="spurious-transition analysis")
    common(p)
    p.set_defaults(func=_cmd_glitch)

    p = sub.add_parser("optimize", help="run the low-power flow")
    common(p)
    p.add_argument("-o", "--output", help="write optimized BLIF here")
    p.add_argument("--no-map", action="store_true",
                   help="skip technology mapping")
    p.add_argument("--no-size", action="store_true",
                   help="skip transistor sizing")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("map", help="technology mapping")
    common(p)
    p.add_argument("--objective", choices=("area", "power", "delay"),
                   default="power")
    p.add_argument("-o", "--output", help="write mapped BLIF here")
    p.set_defaults(func=_cmd_map)

    p = sub.add_parser("balance", help="path-balancing buffers")
    common(p)
    p.add_argument("-o", "--output", help="write balanced BLIF here")
    p.set_defaults(func=_cmd_balance)

    p = sub.add_parser("fsm", help="FSM low-power flow (minimize + "
                       "encode + clock-gate)")
    p.add_argument("kiss", help="KISS file, or a bundled benchmark "
                   "name (traffic, detector, vending, arbiter, "
                   "redundant, elevator)")
    p.add_argument("--vectors", type=int, default=1500)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fsm)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
