"""``python -m repro.tools.cli`` — the framework's command line.

Subcommands:

* ``report <file.blif>``   — Eqn-1 power breakdown and statistics
* ``glitch <file.blif>``   — timed vs zero-delay transition analysis
* ``lint <file.blif>``     — structural + power static analysis
  (``--rules``, ``--severity``, ``--format json|sarif|text``; exit 1
  when any error-severity diagnostic fires)
* ``optimize <file.blif>`` — run the low-power flow, write BLIF out
  (``--trace out.jsonl`` records the per-pass engine trace;
  ``--strict-lint`` invariant-lints every candidate)
* ``flow <file.blif>``     — run a declarative pass flow from a JSON
  spec (``--spec flow.json``)
* ``map <file.blif>``      — technology map (area/power/delay objective)
* ``balance <file.blif>``  — path-balancing buffer insertion
* ``bench run``            — execute the experiment suite in parallel,
  write a ``BENCH_<timestamp>.json`` artifact
* ``bench compare``        — diff two bench artifacts, fail on drift

All netlist commands accept ``--vectors`` (simulation length) and
``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.logic.blif import read_blif, write_blif
from repro.logic.netlist import NetlistError, Network


def _load(path: str, check: bool = True) -> Network:
    with open(path) as f:
        return read_blif(f, check=check)


def _reject_sequential(net: Network, command: str) -> bool:
    """The combinational commands mis-handle latches (their passes and
    equivalence checks treat latch outputs as free inputs); refuse
    sequential netlists uniformly instead."""
    if net.latches:
        print(f"error: the combinational {command} command does not "
              f"take sequential netlists", file=sys.stderr)
        return True
    return False


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.power.model import average_power

    net = _load(args.netlist)
    print(f"{net!r}")
    for key, value in net.stats().items():
        print(f"  {key:12s}: {value}")
    rep = average_power(net, num_vectors=args.vectors, seed=args.seed)
    print(rep.summary())
    if args.per_node:
        worst = sorted(rep.per_node.items(), key=lambda kv: -kv[1])
        print("\nhottest nodes:")
        for name, p in worst[:args.per_node]:
            print(f"  {name:20s} {p * 1e6:10.4f} uW "
                  f"(activity {rep.activity.get(name, 0):.3f})")
    return 0


def _load_delays(path: Optional[str]):
    """Read a ``{"node": delay}`` JSON map for the timed simulators."""
    if path is None:
        return None
    import json

    with open(path) as f:
        raw = json.load(f)
    if not isinstance(raw, dict):
        raise ValueError("delay file must hold a JSON object "
                         "{node: delay}")
    return {str(k): float(v) for k, v in raw.items()}


def _cmd_glitch(args: argparse.Namespace) -> int:
    from repro.power.glitch import glitch_report

    net = _load(args.netlist)
    if _reject_sequential(net, "glitch"):
        return 1
    try:
        delays = _load_delays(args.delays)
    except (OSError, ValueError) as exc:
        print(f"error: bad --delays file: {exc}", file=sys.stderr)
        return 2
    rep = glitch_report(net, num_vectors=args.vectors, seed=args.seed,
                        delays=delays, engine=args.engine)
    print(f"engine                 : {args.engine}")
    print(f"timed transitions      : {rep.total_timed}")
    print(f"zero-delay transitions : {rep.total_functional}")
    print(f"glitch fraction        : {rep.glitch_fraction:.1%}")
    print(f"glitch power fraction  : {rep.glitch_power_fraction:.1%}")
    return 0


def _write_flow_outputs(result, args: argparse.Namespace) -> None:
    print(result.summary())
    if getattr(args, "trace", None):
        result.trace.write(args.trace)
        print(f"wrote trace {args.trace}")
    if args.output:
        with open(args.output, "w") as f:
            f.write(write_blif(result.final))
        print(f"wrote {args.output}")


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintConfig, Linter, select_rules

    try:
        rules = select_rules(args.rules)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        # check=False: the linter is the validator here — a broken
        # netlist must load so its defects can be reported as
        # diagnostics rather than a parse abort.
        net = _load(args.netlist, check=False)
    except (OSError, NetlistError) as exc:
        print(f"error: cannot read {args.netlist}: {exc}",
              file=sys.stderr)
        return 2
    config = LintConfig(hot_net_top=args.hot_nets)
    report = Linter(rules=rules, config=config).run(net)
    if args.format == "json":
        print(report.to_json(min_severity=args.severity))
    elif args.format == "sarif":
        print(report.to_sarif(min_severity=args.severity))
    else:
        print(report.to_text(min_severity=args.severity))
    return 1 if report.has_errors else 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.core.flow import low_power_flow

    net = _load(args.netlist)
    if _reject_sequential(net, "optimize"):
        return 1
    try:
        result = low_power_flow(net, num_vectors=args.vectors,
                                seed=args.seed,
                                use_mapping=not args.no_map,
                                use_sizing=not args.no_size,
                                dontcare_size_cap=args.dontcare_cap,
                                strict=args.strict,
                                strict_lint=args.strict_lint)
    except Exception as exc:
        print(f"error: flow failed in strict mode: {exc}",
              file=sys.stderr)
        return 1
    _write_flow_outputs(result, args)
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.core.flow import run_flow
    from repro.core.passes import load_flow_spec

    try:
        spec = load_flow_spec(args.spec)
    except (OSError, ValueError) as exc:
        print(f"error: bad flow spec: {exc}", file=sys.stderr)
        return 2
    if args.vectors is not None:
        spec.num_vectors = args.vectors
    if args.seed is not None:
        spec.seed = args.seed
    if args.strict:
        spec.strict = True
    if args.strict_lint:
        spec.strict_lint = True
    net = _load(args.netlist)
    if _reject_sequential(net, "flow"):
        return 1
    try:
        result = run_flow(net, spec)
    except ValueError as exc:
        # unknown pass names surface here, before anything runs
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        print(f"error: flow failed in strict mode: {exc}",
              file=sys.stderr)
        return 1
    _write_flow_outputs(result, args)
    outcomes = result.trace.outcomes()
    print("passes    : " + ", ".join(
        f"{k}={v}" for k, v in sorted(outcomes.items())))
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.library.cells import generic_library
    from repro.opt.logic.mapping import tech_map
    from repro.sim.functional import verify_equivalence

    net = _load(args.netlist)
    if _reject_sequential(net, "map"):
        return 1
    res = tech_map(net, generic_library(), args.objective,
                   seed=args.seed)
    if not verify_equivalence(net, res.mapped, 256, args.seed):
        print("error: mapping broke equivalence", file=sys.stderr)
        return 1
    print(f"objective : {res.objective}")
    print(f"area      : {res.total_area:.1f}")
    print(f"arrival   : {res.arrival:.2f}")
    print("cells     :")
    for cell, count in sorted(res.cells_used.items()):
        print(f"  {cell:12s} x{count}")
    if args.output:
        with open(args.output, "w") as f:
            f.write(write_blif(res.mapped))
        print(f"wrote {args.output}")
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    from repro.opt.logic.balance import balance_paths
    from repro.power.glitch import glitch_report

    net = _load(args.netlist)
    if _reject_sequential(net, "balance"):
        return 1

    def report(version):
        # One glitch_report per network version; its zero-delay and
        # timed runs share the one compiled program cached on the
        # network, so each version is compiled (and its simulator
        # built) exactly once — not once per simulation mode.
        return glitch_report(version, num_vectors=args.vectors,
                             seed=args.seed, engine=args.engine)

    before = report(net)
    res = balance_paths(net, selective=args.selective,
                        max_buffers=args.max_buffers)
    after = report(net)
    print(f"buffers added          : {res.buffers_added}")
    print(f"glitch power fraction  : {before.glitch_power_fraction:.1%}"
          f" -> {after.glitch_power_fraction:.1%}")
    print(f"depth                  : {res.depth_before:g} -> "
          f"{res.depth_after:g}")
    if args.output:
        with open(args.output, "w") as f:
            f.write(write_blif(net))
        print(f"wrote {args.output}")
    return 0


def _cmd_fsm(args: argparse.Namespace) -> int:
    from repro.core.flow import fsm_low_power_flow
    from repro.opt.seq.fsm_benchmarks import benchmark_names, \
        load_benchmark
    from repro.opt.seq.stg import read_kiss

    if args.kiss in benchmark_names():
        stg = load_benchmark(args.kiss)
    else:
        with open(args.kiss) as f:
            stg = read_kiss(f)
    res = fsm_low_power_flow(stg, sequence_length=args.vectors,
                             seed=args.seed)
    print(f"states               : {res.states_before} -> "
          f"{res.states_after}")
    print(f"self-loop activation : {res.activation_probability:.2f}")
    print(f"power (incl. clock)  : {res.power_before * 1e6:.2f} uW -> "
          f"{res.power_after * 1e6:.2f} uW ({res.saving:+.1%})")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import (default_report_filename, discover,
                             run_benchmarks)

    bench_dir = args.bench_dir
    specs = discover(bench_dir, pattern=args.filter)
    if not specs:
        print("error: no benchmarks matched", file=sys.stderr)
        return 2
    if args.list:
        for spec in specs:
            claims = ",".join(spec.claims) or "-"
            print(f"{spec.name:24s} [{claims:4s}] {spec.description}")
        return 0

    params = {"quick": args.quick, "seed": args.seed}
    mode = "quick" if args.quick else "full"
    print(f"running {len(specs)} benchmarks ({mode}, seed "
          f"{args.seed}, jobs {args.jobs}) ...")

    def progress(res):
        marker = "ok " if res.ok else res.status
        print(f"  [{marker:7s}] {res.name:24s} {res.wall_s:7.2f}s")

    report = run_benchmarks(specs, params, jobs=args.jobs,
                            timeout=args.timeout, progress=progress)
    out = args.output or default_report_filename()
    report.write(out)
    print(f"\n{report.num_ok}/{len(report.results)} ok -> {out}")
    if args.phases:
        print("\nper-phase wall time (s):")
        totals: dict = {}
        for r in report.results:
            for name, t in r.phases.items():
                totals[name] = totals.get(name, 0.0) + t
        for name, t in sorted(totals.items(), key=lambda kv: -kv[1]):
            print(f"  {name:14s} {t:8.3f}")
    for r in report.results:
        if not r.ok and r.error:
            print(f"\n--- {r.name} ({r.status}) ---\n{r.error}",
                  file=sys.stderr)
    return 0 if report.all_ok else 1


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import RunReport, compare_reports

    try:
        base = RunReport.load(args.baseline)
        cur = RunReport.load(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for key in ("quick", "seed"):
        if base.params.get(key) != cur.params.get(key):
            print(f"warning: baseline {key}={base.params.get(key)!r} "
                  f"vs current {key}={cur.params.get(key)!r} — "
                  f"metrics are only comparable at equal parameters",
                  file=sys.stderr)
    if args.filter:
        subs = [s.strip() for s in args.filter.split(",") if s.strip()]
        for report in (base, cur):
            report.results = [r for r in report.results
                              if any(s in r.name for s in subs)]
        if not base.results and not cur.results:
            print(f"error: --filter {args.filter!r} matches no "
                  f"benchmark in either report", file=sys.stderr)
            return 2
    cmp = compare_reports(base, cur, rel_tol=args.tol,
                          abs_tol=args.abs_tol)
    print(cmp.summary())
    return 0 if cmp.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Low-power VLSI optimization framework "
                    "(Devadas & Malik, DAC 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("netlist", help="input BLIF file")
        p.add_argument("--vectors", type=int, default=1024,
                       help="simulation vectors (default 1024)")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("report", help="power breakdown")
    common(p)
    p.add_argument("--per-node", type=int, default=0, metavar="N",
                   help="also list the N hottest nodes")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("glitch", help="spurious-transition analysis")
    common(p)
    p.add_argument("--engine", choices=("compiled", "event"),
                   default="compiled",
                   help="timed simulator: word-parallel compiled "
                   "engine (default) or the event-driven oracle")
    p.add_argument("--delays", metavar="FILE.json",
                   help="per-node transport delays as a JSON object "
                   "{node: delay}; unlisted nodes keep attrs/1.0")
    p.set_defaults(func=_cmd_glitch)

    p = sub.add_parser("lint", help="structural + power static "
                       "analysis of a netlist")
    p.add_argument("netlist", help="input BLIF file (loaded "
                   "unvalidated: defects become diagnostics)")
    p.add_argument("--rules", default=None, metavar="ID,ID,...",
                   help="comma-separated rule ids to run "
                   "(default: the full catalog)")
    p.add_argument("--severity", choices=("error", "warning", "info"),
                   default="info",
                   help="report only findings at or above this "
                   "severity (default info: everything)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default text)")
    p.add_argument("--hot-nets", type=int, default=5, metavar="N",
                   help="how many nets the hot-net ranking reports "
                   "(default 5)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("optimize", help="run the low-power flow")
    common(p)
    p.add_argument("-o", "--output", help="write optimized BLIF here")
    p.add_argument("--no-map", action="store_true",
                   help="skip technology mapping")
    p.add_argument("--no-size", action="store_true",
                   help="skip transistor sizing")
    p.add_argument("--trace", metavar="FILE.jsonl",
                   help="write the structured per-pass trace (JSONL)")
    p.add_argument("--strict", action="store_true",
                   help="abort on the first failing pass instead of "
                   "rolling it back")
    p.add_argument("--strict-lint", action="store_true",
                   help="invariant-lint every candidate network; "
                   "passes that break an invariant roll back")
    p.add_argument("--dontcare-cap", type=int, default=120,
                   metavar="N", help="skip the don't-care stage above "
                   "N gates (recorded in the trace; default 120)")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("flow", help="run a declarative pass flow from "
                       "a JSON spec")
    p.add_argument("netlist", help="input BLIF file")
    p.add_argument("--spec", required=True, metavar="FLOW.json",
                   help="flow spec: pass list + per-pass params")
    p.add_argument("--vectors", type=int, default=None,
                   help="override the spec's simulation vectors")
    p.add_argument("--seed", type=int, default=None,
                   help="override the spec's seed")
    p.add_argument("--strict", action="store_true",
                   help="abort on the first failing pass")
    p.add_argument("--strict-lint", action="store_true",
                   help="invariant-lint every candidate network; "
                   "passes that break an invariant roll back")
    p.add_argument("--trace", metavar="FILE.jsonl",
                   help="write the structured per-pass trace (JSONL)")
    p.add_argument("-o", "--output", help="write the final BLIF here")
    p.set_defaults(func=_cmd_flow)

    p = sub.add_parser("map", help="technology mapping")
    common(p)
    p.add_argument("--objective", choices=("area", "power", "delay"),
                   default="power")
    p.add_argument("-o", "--output", help="write mapped BLIF here")
    p.set_defaults(func=_cmd_map)

    p = sub.add_parser("balance", help="path-balancing buffers")
    common(p)
    p.add_argument("--engine", choices=("compiled", "event"),
                   default="compiled",
                   help="timed simulator for the before/after glitch "
                   "comparison (default: compiled)")
    p.add_argument("-o", "--output", help="write balanced BLIF here")
    p.add_argument("--selective", action="store_true",
                   help="only pad skews whose expected glitch saving "
                   "beats the buffer cost")
    p.add_argument("--max-buffers", type=int, default=None,
                   metavar="N", help="spend at most N buffers "
                   "(largest skews first)")
    p.set_defaults(func=_cmd_balance)

    p = sub.add_parser("fsm", help="FSM low-power flow (minimize + "
                       "encode + clock-gate)")
    p.add_argument("kiss", help="KISS file, or a bundled benchmark "
                   "name (traffic, detector, vending, arbiter, "
                   "redundant, elevator)")
    p.add_argument("--vectors", type=int, default=1500)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fsm)

    p = sub.add_parser("bench", help="benchmark harness (run the "
                       "experiment suite, track regressions)")
    bsub = p.add_subparsers(dest="bench_command", required=True)

    b = bsub.add_parser("run", help="execute benchmarks, write "
                        "BENCH_<timestamp>.json")
    b.add_argument("--quick", action="store_true",
                   help="small vector counts (CI smoke mode)")
    b.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel worker processes (default 1: "
                   "in-process)")
    b.add_argument("--filter", default=None, metavar="SUBSTR",
                   help="comma-separated name substrings to select")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--timeout", type=float, default=600.0,
                   metavar="S", help="per-benchmark timeout "
                   "(process mode only, default 600)")
    b.add_argument("-o", "--output", default=None,
                   help="artifact path (default BENCH_<timestamp>"
                   ".json)")
    b.add_argument("--bench-dir", default=None,
                   help="benchmark directory (default: the repo's "
                   "benchmarks/, or $REPRO_BENCH_DIR)")
    b.add_argument("--list", action="store_true",
                   help="list matching benchmarks and exit")
    b.add_argument("--phases", action="store_true",
                   help="print the aggregate per-phase timer table")
    b.set_defaults(func=_cmd_bench_run)

    b = bsub.add_parser("compare", help="diff two bench artifacts; "
                        "non-zero exit on metric drift")
    b.add_argument("baseline", help="baseline BENCH_*.json")
    b.add_argument("current", help="current BENCH_*.json")
    b.add_argument("--tol", type=float, default=0.05, metavar="REL",
                   help="relative drift tolerance (default 0.05)")
    b.add_argument("--abs-tol", type=float, default=1e-9,
                   metavar="ABS", help="absolute tolerance floor")
    b.add_argument("--filter", default=None, metavar="SUBSTR",
                   help="comma-separated name substrings: compare "
                   "only matching benchmarks from both reports")
    b.set_defaults(func=_cmd_bench_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
