"""Exact average-power estimation for sequential circuits ([28]).

Monteiro & Devadas: the average power of a sequential machine under
stationary input statistics is an expectation over the chain's
stationary distribution, not over uniform random states.  This module
enumerates the reachable state space of a :class:`Network`, solves for
the stationary distribution of the (state × input) Markov chain, and
computes *exact* per-node switching activities:

    act(n) = Σ_{s,x} π(s)·P(x) · E_{x'}[ v_n(s,x) ≠ v_n(δ(s,x), x') ]

Feasible whenever ``|reachable states| × 2^inputs`` is small — the
regime in which the surveyed FSM optimizations operate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.netlist import Network


def _popcount(x: int) -> int:
    return x.bit_count()


@dataclass
class SequentialAnalysis:
    """Reachable-state analysis results."""

    states: List[Tuple[int, ...]]          # latch-value vectors
    stationary: List[float]
    activities: Dict[str, float]
    node_probabilities: Dict[str, float]

    @property
    def num_states(self) -> int:
        return len(self.states)


def exact_sequential_activity(net: Network,
                              input_probs: Optional[Dict[str, float]]
                              = None,
                              max_states: int = 4096,
                              iterations: int = 2000
                              ) -> SequentialAnalysis:
    """Exact node activities of a sequential network.

    ``input_probs[pi]`` is P(pi = 1) per cycle (inputs temporally and
    spatially independent).  Raises if the reachable state space
    exceeds ``max_states``.
    """
    input_probs = input_probs or {}
    pis = list(net.inputs)
    latches = [l.output for l in net.latches]
    n_in = len(pis)
    num_minterms = 1 << n_in
    minterm_prob = []
    for m in range(num_minterms):
        p = 1.0
        for i, pi in enumerate(pis):
            q = input_probs.get(pi, 0.5)
            p *= q if (m >> i) & 1 else 1.0 - q
        minterm_prob.append(p)

    mask = (1 << num_minterms) - 1
    input_words = {}
    for i, pi in enumerate(pis):
        w = 0
        for m in range(num_minterms):
            if (m >> i) & 1:
                w |= 1 << m
        input_words[pi] = w

    # BFS over reachable states; per state, evaluate all inputs at once.
    init = tuple(l.init for l in net.latches)
    index: Dict[Tuple[int, ...], int] = {init: 0}
    states: List[Tuple[int, ...]] = [init]
    value_words: List[Dict[str, int]] = []
    successors: List[List[int]] = []       # [state][minterm] -> state idx
    frontier = [init]
    while frontier:
        nxt_frontier = []
        for state in frontier:
            state_words = {name: (mask if bit else 0)
                           for name, bit in zip(latches, state)}
            nxt, values = net.step_words(state_words, input_words, mask)
            value_words.append(values)
            succ_row = []
            for m in range(num_minterms):
                succ = tuple((nxt[l] >> m) & 1 for l in latches)
                if succ not in index:
                    if len(states) >= max_states:
                        raise RuntimeError(
                            f"reachable state space exceeds "
                            f"{max_states} states")
                    index[succ] = len(states)
                    states.append(succ)
                    nxt_frontier.append(succ)
                succ_row.append(index[succ])
            successors.append(succ_row)
        # value_words/successors are appended in BFS discovery order,
        # which matches `states` ordering because each state is
        # processed exactly once.
        frontier = nxt_frontier

    num_states = len(states)
    # Stationary distribution by power iteration.
    pi_dist = [1.0 / num_states] * num_states
    for _ in range(iterations):
        nxt = [0.0] * num_states
        for s in range(num_states):
            ps = pi_dist[s]
            if ps == 0.0:
                continue
            row = successors[s]
            for m in range(num_minterms):
                nxt[row[m]] += ps * minterm_prob[m]
        delta = sum(abs(a - b) for a, b in zip(nxt, pi_dist))
        pi_dist = nxt
        if delta < 1e-13:
            break

    # Per node: W[s] = Σ_x P(x)·v(s, x), then
    # act = Σ_{s,x} π(s) P(x) (v ? 1-W[succ] : W[succ]).
    activities: Dict[str, float] = {}
    probabilities: Dict[str, float] = {}
    node_names = list(net.nodes)
    for name in node_names:
        weighted_ones = []
        for s in range(num_states):
            w = value_words[s][name]
            total = 0.0
            for m in range(num_minterms):
                if (w >> m) & 1:
                    total += minterm_prob[m]
            weighted_ones.append(total)
        act = 0.0
        prob = 0.0
        for s in range(num_states):
            ps = pi_dist[s]
            if ps == 0.0:
                continue
            w = value_words[s][name]
            row = successors[s]
            prob += ps * weighted_ones[s]
            for m in range(num_minterms):
                pm = minterm_prob[m]
                if pm == 0.0:
                    continue
                wo = weighted_ones[row[m]]
                if (w >> m) & 1:
                    act += ps * pm * (1.0 - wo)
                else:
                    act += ps * pm * wo
        activities[name] = act
        probabilities[name] = prob
    return SequentialAnalysis(states=states, stationary=pi_dist,
                              activities=activities,
                              node_probabilities=probabilities)


def exact_sequential_power(net: Network,
                           input_probs: Optional[Dict[str, float]]
                           = None, params=None):
    """Convenience: exact activities followed by the Eqn-1 model."""
    from repro.power.model import power_report

    analysis = exact_sequential_activity(net, input_probs)
    return power_report(net, analysis.activities, params)
