"""Switching-activity estimation.

Three estimators of increasing cost/accuracy, mirroring the survey's
Section IV-A discussion and Najm's estimation survey [31]:

* probability propagation with an independence assumption (fast),
* exact signal probabilities via global BDDs (reconvergence-aware),
* Monte-Carlo bit-parallel simulation (the reference).

Activities are in *transitions per clock cycle* at each node output.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.logic.netlist import Network
from repro.logic.transform import node_cover
from repro.sim.functional import simulate_transitions, node_one_counts
from repro.sim.vectors import random_words


def activity_from_probability(p: float) -> float:
    """Temporal-independence activity: P(0→1) + P(1→0) = 2·p·(1−p)."""
    return 2.0 * p * (1.0 - p)


def signal_probability_propagation(net: Network,
                                   input_probs: Optional[Dict[str, float]]
                                   = None) -> Dict[str, float]:
    """Signal probabilities by forward propagation.

    Fanins of each node are assumed independent (the classical fast
    approximation; exact on trees, optimistic under reconvergence).
    Latch outputs default to probability 0.5 unless given.
    """
    input_probs = input_probs or {}
    probs: Dict[str, float] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            probs[name] = input_probs.get(name, 0.5)
        else:
            cover = node_cover(node)
            fanin_p = [probs[fi] for fi in node.fanins]
            probs[name] = cover.probability(fanin_p)
    return probs


def signal_probability_exact(net: Network,
                             input_probs: Optional[Dict[str, float]] = None
                             ) -> Dict[str, float]:
    """Exact signal probabilities via global BDDs over the PIs."""
    from repro.bdd.circuit import network_bdds

    input_probs = input_probs or {}
    funcs = network_bdds(net)
    return {name: f.probability(input_probs)
            for name, f in funcs.items()}


def transition_density(net: Network,
                       input_probs: Optional[Dict[str, float]] = None,
                       input_densities: Optional[Dict[str, float]] = None
                       ) -> Dict[str, float]:
    """Najm's transition-density propagation.

    D(y) = Σ_i P(∂y/∂x_i) · D(x_i), with Boolean differences computed
    exactly per node and signal probabilities from the independence
    propagation.  Input densities default to 2·p·(1−p).
    """
    probs = signal_probability_propagation(net, input_probs)
    densities: Dict[str, float] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            if input_densities is not None and name in input_densities:
                densities[name] = input_densities[name]
            else:
                densities[name] = activity_from_probability(probs[name])
            continue
        cover = node_cover(node)
        fanin_p = [probs[fi] for fi in node.fanins]
        total = 0.0
        for i, fi in enumerate(node.fanins):
            hi = cover.cofactor_literal(i, 1)
            lo = cover.cofactor_literal(i, 0)
            p_hi = hi.probability(fanin_p)
            p_lo = lo.probability(fanin_p)
            p_both = hi.intersect(lo).probability(fanin_p)
            p_diff = p_hi + p_lo - 2.0 * p_both  # P(hi XOR lo)
            total += p_diff * densities[fi]
        densities[name] = total
    return densities


def activity_from_simulation(net: Network, num_vectors: int = 2048,
                             seed: int = 0,
                             input_probs: Optional[Dict[str, float]] = None
                             ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Monte-Carlo activity and probability estimates.

    Latch outputs are driven as pseudo-inputs with probability 0.5 (use
    ``sequential_activity`` for true sequential behaviour).  Returns
    ``(activity, probability)`` dictionaries.
    """
    sources = [n for n in net.nodes.values() if n.is_source()]
    words = random_words([s.name for s in sources], num_vectors, seed,
                         input_probs)
    transitions = simulate_transitions(net, words, num_vectors)
    ones = node_one_counts(net, words, num_vectors)
    activity = {k: v / (num_vectors - 1) for k, v in transitions.items()}
    probability = {k: v / num_vectors for k, v in ones.items()}
    return activity, probability


def sequential_activity(net: Network,
                        input_sequence: Sequence[Dict[str, int]]
                        ) -> Dict[str, float]:
    """Per-node activity from a clocked simulation of a sequential net."""
    from repro.sim.functional import sequential_transitions

    transitions, _trace = sequential_transitions(net, input_sequence)
    cycles = max(1, len(input_sequence) - 1)
    return {k: v / cycles for k, v in transitions.items()}


def weighted_switching(net: Network, activity: Dict[str, float],
                       caps: Optional[Dict[str, float]] = None) -> float:
    """Σ C(node)·activity(node): the cost function used throughout the
    logic-level optimizations (capacitance defaults to the transistor-count
    model of ``repro.power.model``)."""
    from repro.power.model import node_capacitance

    total = 0.0
    for name in net.nodes:
        cap = caps[name] if caps is not None else node_capacitance(net, name)
        total += cap * activity.get(name, 0.0)
    return total
