"""Switching-activity estimation.

Three estimators of increasing cost/accuracy, mirroring the survey's
Section IV-A discussion and Najm's estimation survey [31]:

* probability propagation with an independence assumption (fast),
* exact signal probabilities via global BDDs (reconvergence-aware),
* Monte-Carlo bit-parallel simulation (the reference).

Activities are in *transitions per clock cycle* at each node output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.logic.netlist import Network
from repro.logic.transform import node_cover
from repro.sim.compiled import get_compiled
from repro.sim.vectors import random_words


def activity_from_probability(p: float) -> float:
    """Temporal-independence activity: P(0→1) + P(1→0) = 2·p·(1−p)."""
    return 2.0 * p * (1.0 - p)


def signal_probability_propagation(net: Network,
                                   input_probs: Optional[Dict[str, float]]
                                   = None) -> Dict[str, float]:
    """Signal probabilities by forward propagation.

    Fanins of each node are assumed independent (the classical fast
    approximation; exact on trees, optimistic under reconvergence).
    Latch outputs default to probability 0.5 unless given.
    """
    input_probs = input_probs or {}
    probs: Dict[str, float] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            probs[name] = input_probs.get(name, 0.5)
        else:
            cover = node_cover(node)
            fanin_p = [probs[fi] for fi in node.fanins]
            probs[name] = cover.probability(fanin_p)
    return probs


def signal_probability_exact(net: Network,
                             input_probs: Optional[Dict[str, float]] = None
                             ) -> Dict[str, float]:
    """Exact signal probabilities via global BDDs over the PIs."""
    from repro.bdd.circuit import network_bdds

    input_probs = input_probs or {}
    funcs = network_bdds(net)
    return {name: f.probability(input_probs)
            for name, f in funcs.items()}


def transition_density(net: Network,
                       input_probs: Optional[Dict[str, float]] = None,
                       input_densities: Optional[Dict[str, float]] = None
                       ) -> Dict[str, float]:
    """Najm's transition-density propagation.

    D(y) = Σ_i P(∂y/∂x_i) · D(x_i), with Boolean differences computed
    exactly per node and signal probabilities from the independence
    propagation.  Input densities default to 2·p·(1−p).
    """
    probs = signal_probability_propagation(net, input_probs)
    densities: Dict[str, float] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            if input_densities is not None and name in input_densities:
                densities[name] = input_densities[name]
            else:
                densities[name] = activity_from_probability(probs[name])
            continue
        cover = node_cover(node)
        fanin_p = [probs[fi] for fi in node.fanins]
        total = 0.0
        for i, fi in enumerate(node.fanins):
            hi = cover.cofactor_literal(i, 1)
            lo = cover.cofactor_literal(i, 0)
            p_hi = hi.probability(fanin_p)
            p_lo = lo.probability(fanin_p)
            p_both = hi.intersect(lo).probability(fanin_p)
            p_diff = p_hi + p_lo - 2.0 * p_both  # P(hi XOR lo)
            total += p_diff * densities[fi]
        densities[name] = total
    return densities


@dataclass
class SimulationCache:
    """Reusable Monte-Carlo simulation state for incremental estimation.

    Pass one instance through repeated ``activity_from_simulation``
    calls over the *same* stimulus (vectors/seed/probabilities) while an
    optimizer edits the network: together with a ``dirty`` node list the
    estimator then re-simulates only the edited nodes' transitive fanout
    cone and reuses the cached words, transition counts and one-counts
    everywhere else.  The cache is keyed on the stimulus parameters and
    silently falls back to a full re-simulation whenever they change.
    """

    key: Optional[Tuple] = None           # stimulus identity
    words: Dict[str, int] = field(default_factory=dict)      # PI stimulus
    values: Dict[str, int] = field(default_factory=dict)     # node words
    transitions: Dict[str, int] = field(default_factory=dict)
    ones: Dict[str, int] = field(default_factory=dict)

    @property
    def warm(self) -> bool:
        return self.key is not None

    def copy(self) -> "SimulationCache":
        """Cheap snapshot (words are immutable ints; dicts are copied)."""
        return SimulationCache(key=self.key, words=dict(self.words),
                               values=dict(self.values),
                               transitions=dict(self.transitions),
                               ones=dict(self.ones))

    def adopt(self, other: "SimulationCache") -> None:
        """Take over another cache's state in place (commit a trial)."""
        self.key = other.key
        self.words = other.words
        self.values = other.values
        self.transitions = other.transitions
        self.ones = other.ones


def activity_from_simulation(net: Network, num_vectors: int = 2048,
                             seed: int = 0,
                             input_probs: Optional[Dict[str, float]] = None,
                             reuse: Optional[SimulationCache] = None,
                             dirty: Optional[Iterable[str]] = None
                             ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Monte-Carlo activity and probability estimates.

    Latch outputs are driven as pseudo-inputs with probability 0.5 (use
    ``sequential_activity`` for true sequential behaviour).  Returns
    ``(activity, probability)`` dictionaries.

    Evaluation runs on the compiled engine (:mod:`repro.sim.compiled`),
    bit-exact with the interpreted path.  ``reuse`` (a
    :class:`SimulationCache`, updated in place) plus ``dirty`` (names of
    nodes whose function or structure changed since the cached
    simulation) enable incremental re-simulation: only the dirty nodes'
    transitive fanout cone is recomputed.  ``dirty=None`` with a warm
    cache means "unknown edits" and forces a full pass; ``dirty=()``
    asserts nothing changed and reuses the cache wholesale.
    """
    sources = [n for n in net.nodes.values() if n.is_source()]
    mask = (1 << num_vectors) - 1
    stim_key = (tuple(s.name for s in sources), num_vectors, seed,
                None if input_probs is None
                else tuple(sorted(input_probs.items())))

    values: Optional[Dict[str, int]] = None
    old_values: Dict[str, int] = {}
    if reuse is not None and reuse.warm and reuse.key == stim_key \
            and dirty is not None:
        words = reuse.words
        old_values = reuse.values
        values = get_compiled(net).evaluate_incremental(
            old_values, dirty, words, mask)
    if values is None:
        words = random_words([s.name for s in sources], num_vectors,
                             seed, input_probs)
        values = get_compiled(net).evaluate_words(words, mask)

    pair_mask = (1 << (num_vectors - 1)) - 1 if num_vectors >= 2 else 0
    old_t, old_o = (reuse.transitions, reuse.ones) if reuse is not None \
        else ({}, {})
    transitions: Dict[str, int] = {}
    ones: Dict[str, int] = {}
    for name, w in values.items():
        old_w = old_values.get(name)
        if (old_w is w or old_w == w) and name in old_t and old_w is not None:
            transitions[name] = old_t[name]
            ones[name] = old_o[name]
        else:
            transitions[name] = ((w ^ (w >> 1)) & pair_mask).bit_count()
            ones[name] = w.bit_count()

    # num_vectors < 2 yields no transition pairs (and 0 patterns no
    # probability samples): define both rates as 0 instead of dividing
    # by zero — consistent with simulate_transitions' count < 2 guard.
    t_denom = num_vectors - 1 if num_vectors >= 2 else 1
    p_denom = num_vectors if num_vectors >= 1 else 1
    activity = {k: v / t_denom for k, v in transitions.items()}
    probability = {k: v / p_denom for k, v in ones.items()}
    if reuse is not None:
        reuse.key = stim_key
        reuse.words = words
        reuse.values = values
        reuse.transitions = transitions
        reuse.ones = ones
    return activity, probability


def sequential_activity(net: Network,
                        input_sequence: Sequence[Dict[str, int]]
                        ) -> Dict[str, float]:
    """Per-node activity from a clocked simulation of a sequential net.

    A sequence of fewer than two vectors exhibits no cycle boundary, so
    every node's activity is 0 (mirroring ``activity_from_simulation``'s
    ``num_vectors < 2`` behaviour) rather than dividing by zero.
    """
    from repro.sim.functional import sequential_transitions

    transitions, _trace = sequential_transitions(net, input_sequence)
    if len(input_sequence) < 2:
        return {k: 0.0 for k in transitions}
    cycles = len(input_sequence) - 1
    return {k: v / cycles for k, v in transitions.items()}


def weighted_switching(net: Network, activity: Dict[str, float],
                       caps: Optional[Dict[str, float]] = None) -> float:
    """Σ C(node)·activity(node): the cost function used throughout the
    logic-level optimizations (capacitance defaults to the transistor-count
    model of ``repro.power.model``)."""
    from repro.power.model import node_capacitance

    total = 0.0
    for name in net.nodes:
        cap = caps[name] if caps is not None else node_capacitance(net, name)
        total += cap * activity.get(name, 0.0)
    return total
