"""Power analysis: switching activity estimation and CMOS power models."""

from repro.power.activity import (SimulationCache,
                                  activity_from_simulation,
                                  signal_probability_propagation,
                                  signal_probability_exact,
                                  transition_density,
                                  activity_from_probability)
from repro.power.model import (PowerParameters, PowerReport,
                               node_capacitance, power_report,
                               average_power)
from repro.power.glitch import GlitchReport, glitch_report

__all__ = ["SimulationCache",
           "activity_from_simulation", "signal_probability_propagation",
           "signal_probability_exact", "transition_density",
           "activity_from_probability", "PowerParameters", "PowerReport",
           "node_capacitance", "power_report", "average_power",
           "GlitchReport", "glitch_report"]
