"""Spurious-transition (glitch) analysis.

Compares event-driven (timed) transition counts with zero-delay counts on
the same stimulus; the excess is the spurious activity that path
balancing (Section III-A.2) attacks.  Fractions are reported both raw and
capacitance-weighted, since power is Σ C·N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.logic.netlist import Network
from repro.power.model import PowerParameters, node_capacitance
from repro.sim.event import timed_transitions
from repro.sim.functional import simulate_transitions
from repro.sim.vectors import random_words, vectors_from_words


@dataclass
class GlitchReport:
    """Timed vs zero-delay transition accounting."""

    timed: Dict[str, int]
    functional: Dict[str, int]
    cap_weighted_timed: float
    cap_weighted_functional: float

    @property
    def total_timed(self) -> int:
        return sum(self.timed.values())

    @property
    def total_functional(self) -> int:
        return sum(self.functional.values())

    @property
    def glitch_fraction(self) -> float:
        """Fraction of raw transitions that are spurious."""
        if not self.total_timed:
            return 0.0
        return 1.0 - self.total_functional / self.total_timed

    @property
    def glitch_power_fraction(self) -> float:
        """Fraction of C·N switching power that is spurious."""
        if not self.cap_weighted_timed:
            return 0.0
        return 1.0 - self.cap_weighted_functional / self.cap_weighted_timed

    def per_node_glitches(self) -> Dict[str, int]:
        return {name: self.timed[name] - self.functional.get(name, 0)
                for name in self.timed}


def timed_average_power(net: Network, num_vectors: int = 256,
                        seed: int = 0,
                        input_probs: Optional[Dict[str, float]] = None,
                        delays: Optional[Dict[str, float]] = None,
                        params: Optional[PowerParameters] = None):
    """Eqn-1 power with *timed* (glitch-inclusive) activities.

    The standard :func:`repro.power.model.average_power` uses zero-delay
    activities and therefore excludes spurious-transition power; this
    variant drives the event-driven simulator so buffer-insertion
    trade-offs (extra capacitance vs removed glitches) are measured in
    watts.
    """
    from repro.power.model import power_report

    params = params or PowerParameters()
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, num_vectors, seed, input_probs)
    vectors = vectors_from_words(words, num_vectors)
    timed = timed_transitions(net, vectors, delays=delays)
    cycles = max(1, num_vectors - 1)
    activity = {name: t / cycles for name, t in timed.items()}
    return power_report(net, activity, params)


def glitch_report(net: Network, num_vectors: int = 256, seed: int = 0,
                  input_probs: Optional[Dict[str, float]] = None,
                  delays: Optional[Dict[str, float]] = None,
                  params: Optional[PowerParameters] = None) -> GlitchReport:
    """Run both simulators on the same random stimulus."""
    params = params or PowerParameters()
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, num_vectors, seed, input_probs)
    functional = simulate_transitions(net, words, num_vectors)
    vectors = vectors_from_words(words, num_vectors)
    timed = timed_transitions(net, vectors, delays=delays)
    caps = {name: node_capacitance(net, name, params)
            for name in net.nodes}
    cw_timed = sum(caps[n] * t for n, t in timed.items())
    cw_func = sum(caps[n] * t for n, t in functional.items())
    return GlitchReport(timed=timed, functional=functional,
                        cap_weighted_timed=cw_timed,
                        cap_weighted_functional=cw_func)
