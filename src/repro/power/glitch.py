"""Spurious-transition (glitch) analysis.

Compares event-driven (timed) transition counts with zero-delay counts on
the same stimulus; the excess is the spurious activity that path
balancing (Section III-A.2) attacks.  Fractions are reported both raw and
capacitance-weighted, since power is Σ C·N.

Both entry points default to the compiled word-parallel timed engine
(``repro.sim.timed``); ``engine="event"`` runs the bit-identical
event-driven oracle instead.  Either way the zero-delay and timed runs
share one compiled program per network, so a before/after comparison
compiles each network version exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.netlist import Network
from repro.power.model import PowerParameters, node_capacitance
from repro.sim.event import _check_engine, timed_transitions
from repro.sim.functional import simulate_transitions
from repro.sim.timed import timed_transitions_from_words
from repro.sim.vectors import random_words, vectors_from_words


@dataclass
class GlitchReport:
    """Timed vs zero-delay transition accounting."""

    timed: Dict[str, int]
    functional: Dict[str, int]
    cap_weighted_timed: float
    cap_weighted_functional: float

    @property
    def total_timed(self) -> int:
        return sum(self.timed.values())

    @property
    def total_functional(self) -> int:
        return sum(self.functional.values())

    @property
    def glitch_fraction(self) -> float:
        """Fraction of raw transitions that are spurious."""
        if not self.total_timed:
            return 0.0
        return 1.0 - self.total_functional / self.total_timed

    @property
    def glitch_power_fraction(self) -> float:
        """Fraction of C·N switching power that is spurious."""
        if not self.cap_weighted_timed:
            return 0.0
        return 1.0 - self.cap_weighted_functional / self.cap_weighted_timed

    def per_node_glitches(self) -> Dict[str, int]:
        return {name: self.timed[name] - self.functional.get(name, 0)
                for name in self.timed}


def timed_stimulus(net: Network, num_vectors: int, seed: int = 0,
                   input_probs: Optional[Dict[str, float]] = None
                   ) -> Tuple[List[str], Dict[str, int]]:
    """The shared stimulus of every timed-power experiment: Bernoulli
    words over all sources (primary inputs and latch outputs)."""
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    return sources, random_words(sources, num_vectors, seed, input_probs)


def _timed_counts(net: Network, words: Dict[str, int], num_vectors: int,
                  delays: Optional[Dict[str, float]],
                  engine: str) -> Dict[str, int]:
    """Dispatch a word-packed stimulus to the selected timed engine."""
    _check_engine(engine)
    if engine == "compiled":
        return timed_transitions_from_words(net, words, num_vectors,
                                            delays=delays)
    vectors = vectors_from_words(words, num_vectors)
    return timed_transitions(net, vectors, delays=delays,
                             engine="event")


def timed_average_power(net: Network, num_vectors: int = 256,
                        seed: int = 0,
                        input_probs: Optional[Dict[str, float]] = None,
                        delays: Optional[Dict[str, float]] = None,
                        params: Optional[PowerParameters] = None,
                        engine: str = "compiled"):
    """Eqn-1 power with *timed* (glitch-inclusive) activities.

    The standard :func:`repro.power.model.average_power` uses zero-delay
    activities and therefore excludes spurious-transition power; this
    variant drives the timed simulator so buffer-insertion trade-offs
    (extra capacitance vs removed glitches) are measured in watts.
    """
    from repro.power.model import power_report

    params = params or PowerParameters()
    _sources, words = timed_stimulus(net, num_vectors, seed, input_probs)
    timed = _timed_counts(net, words, num_vectors, delays, engine)
    cycles = max(1, num_vectors - 1)
    activity = {name: t / cycles for name, t in timed.items()}
    return power_report(net, activity, params)


def glitch_report(net: Network, num_vectors: int = 256, seed: int = 0,
                  input_probs: Optional[Dict[str, float]] = None,
                  delays: Optional[Dict[str, float]] = None,
                  params: Optional[PowerParameters] = None,
                  engine: str = "compiled") -> GlitchReport:
    """Run both simulators on the same random stimulus."""
    params = params or PowerParameters()
    _sources, words = timed_stimulus(net, num_vectors, seed, input_probs)
    functional = simulate_transitions(net, words, num_vectors)
    timed = _timed_counts(net, words, num_vectors, delays, engine)
    caps = {name: node_capacitance(net, name, params)
            for name in net.nodes}
    cw_timed = sum(caps[n] * t for n, t in timed.items())
    cw_func = sum(caps[n] * t for n, t in functional.items())
    return GlitchReport(timed=timed, functional=functional,
                        cap_weighted_timed=cw_timed,
                        cap_weighted_functional=cw_func)
