"""CMOS power model — Equation 1 of the paper.

    P = 1/2 · C · V_DD² · f · N  +  Q_SC · V_DD · f · N  +  I_leak · V_DD

with N the switching activity (transitions per cycle), applied per node
and summed.  Capacitance at a node output is a transistor-count model:
self (drain/wire) capacitance plus the gate capacitance of every fanin
pin it drives.  After technology mapping, cell data from
``repro.library`` overrides the proxy model via ``node.attrs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.logic.netlist import Network


@dataclass(frozen=True)
class PowerParameters:
    """Technology/operating-point parameters.

    Defaults approximate a mid-90s 0.8 µm process at 3.3 V / 20 MHz — the
    paper's era.  ``q_sc_fraction`` expresses the short-circuit charge per
    transition as a fraction of C·V_DD (typically 5–10% for balanced edge
    rates); ``leak_per_transistor`` is the average off-state current.
    """

    vdd: float = 3.3
    frequency: float = 20e6
    cap_unit: float = 10e-15       # F, one "unit" of capacitance
    pin_cap_units: float = 2.0     # gate cap per driven input pin
    self_cap_per_transistor: float = 0.5
    output_load_units: float = 4.0  # load presented by a primary output
    q_sc_fraction: float = 0.05
    leak_per_transistor: float = 0.2e-9  # A

    def scaled(self, vdd: Optional[float] = None,
               frequency: Optional[float] = None) -> "PowerParameters":
        """Copy with a new operating point (for voltage-scaling studies)."""
        return PowerParameters(
            vdd=self.vdd if vdd is None else vdd,
            frequency=self.frequency if frequency is None else frequency,
            cap_unit=self.cap_unit,
            pin_cap_units=self.pin_cap_units,
            self_cap_per_transistor=self.self_cap_per_transistor,
            output_load_units=self.output_load_units,
            q_sc_fraction=self.q_sc_fraction,
            leak_per_transistor=self.leak_per_transistor)


def node_capacitance(net: Network, name: str,
                     params: Optional[PowerParameters] = None) -> float:
    """Capacitance (in cap units) switched when node ``name`` toggles.

    Includes the node's own drain/wire capacitance and the input-pin
    capacitance of everything it drives.  A node's ``attrs["size"]``
    scales its pin and self capacitance (transistor sizing); a mapped
    node's ``attrs["cell"]`` supplies exact per-cell values.
    """
    params = params or PowerParameters()
    node = net.nodes[name]
    cell = node.attrs.get("cell")
    size = float(node.attrs.get("size", 1.0))
    if cell is not None:
        self_cap = cell.output_cap * size
    else:
        self_cap = params.self_cap_per_transistor * \
            node.num_transistors() * size
    load = 0.0
    for reader_name, times in _reader_counts(net, name).items():
        reader = net.nodes[reader_name]
        rcell = reader.attrs.get("cell")
        rsize = float(reader.attrs.get("size", 1.0))
        if rcell is not None:
            load += rcell.input_cap * rsize * times
        else:
            load += params.pin_cap_units * rsize * times
    if name in net.outputs:
        load += params.output_load_units
    for latch in net.latches:
        if latch.data == name or latch.enable == name:
            load += params.pin_cap_units
    return self_cap + load


def _reader_counts(net: Network, name: str) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for node in net.nodes.values():
        times = node.fanins.count(name)
        if times:
            counts[node.name] = times
    return counts


@dataclass
class PowerReport:
    """Breakdown of average power for one operating point."""

    switching: float          # W
    short_circuit: float      # W
    leakage: float            # W
    per_node: Dict[str, float] = field(default_factory=dict)
    activity: Dict[str, float] = field(default_factory=dict)
    params: PowerParameters = field(default_factory=PowerParameters)

    @property
    def total(self) -> float:
        return self.switching + self.short_circuit + self.leakage

    @property
    def switching_fraction(self) -> float:
        return self.switching / self.total if self.total else 0.0

    def summary(self) -> str:
        lines = [
            f"total power       : {self.total * 1e3:10.4f} mW",
            f"  switching       : {self.switching * 1e3:10.4f} mW "
            f"({100 * self.switching_fraction:.1f}%)",
            f"  short-circuit   : {self.short_circuit * 1e3:10.4f} mW",
            f"  leakage         : {self.leakage * 1e3:10.4f} mW",
        ]
        return "\n".join(lines)


def power_report(net: Network, activity: Dict[str, float],
                 params: Optional[PowerParameters] = None) -> PowerReport:
    """Evaluate Eqn 1 over the network given per-node activities."""
    params = params or PowerParameters()
    per_node: Dict[str, float] = {}
    switching = short_circuit = 0.0
    transistors = 0
    for name, node in net.nodes.items():
        transistors += node.num_transistors()
        n_act = activity.get(name, 0.0)
        cap = node_capacitance(net, name, params) * params.cap_unit
        p_sw = 0.5 * cap * params.vdd ** 2 * params.frequency * n_act
        q_sc = params.q_sc_fraction * cap * params.vdd
        p_sc = q_sc * params.vdd * params.frequency * n_act
        per_node[name] = p_sw + p_sc
        switching += p_sw
        short_circuit += p_sc
    leakage = params.leak_per_transistor * transistors * params.vdd
    return PowerReport(switching=switching, short_circuit=short_circuit,
                       leakage=leakage, per_node=per_node,
                       activity=dict(activity), params=params)


def average_power(net: Network, num_vectors: int = 2048, seed: int = 0,
                  input_probs: Optional[Dict[str, float]] = None,
                  params: Optional[PowerParameters] = None) -> PowerReport:
    """Convenience: Monte-Carlo activity followed by Eqn-1 evaluation."""
    from repro.power.activity import activity_from_simulation

    activity, _probs = activity_from_simulation(net, num_vectors, seed,
                                                input_probs)
    return power_report(net, activity, params)
