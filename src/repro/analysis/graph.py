"""Pure graph utilities for the static analyzer.

Everything here operates on a plain adjacency map ``{node: successor
list}`` and imports nothing from the rest of the package, so low
layers (``repro.logic.netlist``) may import it lazily without creating
an import cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set


def tarjan_scc(adj: Dict[str, Sequence[str]]) -> List[List[str]]:
    """Strongly connected components (Tarjan, iterative).

    Edges to nodes absent from ``adj`` are ignored.  Components are
    returned in reverse-topological order (callees first); node order
    inside a component follows discovery order.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for root in adj:
        if root in index:
            continue
        # Frame: (node, iterator position over successors).
        work: List[List[object]] = [[root, 0]]
        while work:
            frame = work[-1]
            node = frame[0]
            assert isinstance(node, str)
            pos = frame[1]
            assert isinstance(pos, int)
            if pos == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            succs = [s for s in adj.get(node, ()) if s in adj]
            recursed = False
            while pos < len(succs):
                succ = succs[pos]
                pos += 1
                frame[1] = pos
                if succ not in index:
                    work.append([succ, 0])
                    recursed = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recursed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                assert isinstance(parent, str)
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                comp.reverse()
                components.append(comp)
    return components


def nontrivial_sccs(adj: Dict[str, Sequence[str]]) -> List[List[str]]:
    """SCCs that contain a cycle: size > 1, or a self-loop."""
    out: List[List[str]] = []
    for comp in tarjan_scc(adj):
        if len(comp) > 1:
            out.append(comp)
        elif comp and comp[0] in adj.get(comp[0], ()):
            out.append(comp)
    return out


def cycle_path(adj: Dict[str, Sequence[str]],
               within: Optional[Sequence[str]] = None
               ) -> Optional[List[str]]:
    """One concrete cycle as ``[a, b, ..., a]``, or ``None`` if acyclic.

    With ``within``, the search is restricted to that node subset
    (used to extract a witness cycle from a non-trivial SCC).
    """
    allowed: Optional[Set[str]] = set(within) if within is not None \
        else None

    def succs(node: str) -> List[str]:
        out: List[str] = []
        for s in adj.get(node, ()):
            if s not in adj:
                continue
            if allowed is not None and s not in allowed:
                continue
            out.append(s)
        return out

    state: Dict[str, int] = {}  # 0/absent=unseen 1=visiting 2=done
    roots = [n for n in adj
             if allowed is None or n in allowed]
    for root in roots:
        if state.get(root, 0) == 2:
            continue
        # Chain of currently-visiting nodes, in visit order.
        chain: List[str] = []
        stack: List[List[object]] = [[root, 0]]
        while stack:
            frame = stack[-1]
            node = frame[0]
            assert isinstance(node, str)
            pos = frame[1]
            assert isinstance(pos, int)
            if pos == 0:
                state[node] = 1
                chain.append(node)
            nxt = succs(node)
            advanced = False
            while pos < len(nxt):
                succ = nxt[pos]
                pos += 1
                frame[1] = pos
                st = state.get(succ, 0)
                if st == 1:
                    cyc = chain[chain.index(succ):] + [succ]
                    return cyc
                if st == 0:
                    stack.append([succ, 0])
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            state[node] = 2
            chain.pop()
    return None


def reachable_from(adj: Dict[str, Sequence[str]],
                   roots: Sequence[str]) -> Set[str]:
    """Nodes reachable from ``roots`` (inclusive) following ``adj``."""
    seen: Set[str] = set()
    work = [r for r in roots if r in adj]
    while work:
        node = work.pop()
        if node in seen:
            continue
        seen.add(node)
        for s in adj.get(node, ()):
            if s in adj and s not in seen:
                work.append(s)
    return seen
