"""Static analysis of Boolean networks: structural + power linting.

This package turns the crash-or-wrong-number failure modes of the
optimization flows into actionable diagnostics.  It provides

* :class:`~repro.analysis.diagnostics.Diagnostic` — one structured
  finding (rule id, severity, node/net site, message, fix hint) with
  JSON, SARIF and text renderings;
* a rule registry (:mod:`repro.analysis.linter`) of **structural**
  rules — combinational cycles via Tarjan SCC, undriven/dangling nets,
  unreachable cones, duplicate latch outputs, invalid SOP covers,
  malformed delay annotations — and **power** rules grounded in the
  survey — single-input-change static hazards (C2), reconvergent
  fanout regions that break the independence assumption of the
  probabilistic activity estimator, zero-delay hot-net ranking, and
  C11 gating-safety of latch enables;
* :func:`check_invariants` — the fast structural-error subset used by
  the pass manager (``PassContext.lint``) to assert legality pre/post
  every flow stage;
* emitters for the ``repro lint`` CLI (``--format json|sarif|text``).
"""

from repro.analysis.diagnostics import (ERROR, INFO, SEVERITIES,
                                        WARNING, Diagnostic,
                                        LintReport)
from repro.analysis.linter import (LintConfig, Linter, Rule,
                                   all_rules, check_invariants,
                                   lint_network, select_rules)

__all__ = [
    "Diagnostic", "LintReport", "SEVERITIES", "ERROR", "WARNING",
    "INFO", "Rule", "LintConfig", "Linter", "all_rules",
    "select_rules", "lint_network", "check_invariants",
]
