"""Power-oriented lint rules grounded in the survey's claims.

* ``static-hazard`` (C2): nodes whose two-level realisation has a
  single-input-change static-1 hazard — the statically detectable
  part of the 10–40 % glitch overhead.
* ``reconvergent-fanout``: fanout stems whose branches reconverge,
  the exact topology under which the probabilistic activity
  estimator's spatial-independence assumption breaks (Najm [31]).
* ``hot-net`` (C1): activity × fanout ranking from *zero-delay static
  probabilities* — no simulation — flagging the nets whose switched
  capacitance dominates Eqn-1 power.
* ``gating-hazard`` (C11): clock gating is only safe when the derived
  enable cannot glitch; any hazard-prone node in a latch enable's
  combinational cone can clock the register spuriously.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import (ERROR, INFO, WARNING,
                                        Diagnostic)
from repro.analysis.hazards import (cone_nodes, node_hazard_variables)
from repro.analysis.linter import POWER, RuleContext, rule
from repro.power.activity import (activity_from_probability,
                                  signal_probability_propagation)


def _hazard_fanins(ctx: RuleContext,
                   cache: Dict[str, Optional[List[int]]],
                   name: str) -> Optional[List[int]]:
    """Memoized hazard-prone fanin indices of a node (None: too wide)."""
    if name not in cache:
        cache[name] = node_hazard_variables(
            ctx.net.nodes[name], ctx.config.hazard_max_vars)
    return cache[name]


@rule(id="static-hazard", severity=WARNING, category=POWER,
      description="two-level realisation has a single-input-change "
                  "static-1 hazard (C2: statically detectable glitch "
                  "source)",
      needs_complete=True, needs_dag=True, needs_covers=True)
def check_static_hazards(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    cache: Dict[str, Optional[List[int]]] = {}
    out: List[Diagnostic] = []
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            continue
        vars_ = _hazard_fanins(ctx, cache, name)
        if not vars_:
            continue
        nets = [node.fanins[v] for v in vars_]
        out.append(Diagnostic(
            rule="static-hazard", severity=WARNING, site=name,
            message=f"node {name!r} has a static-1 hazard on "
                    f"single-input changes of "
                    f"{', '.join(repr(n) for n in nets)}",
            hint="add the consensus term or rebalance the fanin "
                 "paths to absorb the glitch",
            detail={"fanin_nets": nets,
                    "fanin_indices": list(vars_)}))
    return out


@rule(id="reconvergent-fanout", severity=INFO, category=POWER,
      description="fanout branches reconverge; the independence "
                  "assumption of probabilistic activity estimation "
                  "is unreliable in this region",
      needs_complete=True, needs_dag=True)
def check_reconvergence(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    fo = ctx.fanouts()
    order = net.topo_order()
    stems = [n for n in order if len(fo.get(n, ())) >= 2]
    stem_bit = {name: 1 << i for i, name in enumerate(stems)}
    # reach[n]: bitset of stems with a combinational path to n.
    reach: Dict[str, int] = {}
    first_merge: Dict[str, str] = {}
    for name in order:
        node = net.nodes[name]
        if node.is_source():
            reach[name] = 0
            continue
        seen = 0
        dup = 0
        for fi in node.fanins:
            mask = reach.get(fi, 0) | stem_bit.get(fi, 0)
            dup |= seen & mask
            seen |= mask
        reach[name] = seen
        if dup:
            for stem in stems:
                if dup & stem_bit[stem] and stem not in first_merge:
                    first_merge[stem] = name
    out: List[Diagnostic] = []
    for stem in stems:
        merge = first_merge.get(stem)
        if merge is None:
            continue
        out.append(Diagnostic(
            rule="reconvergent-fanout", severity=INFO, site=stem,
            message=f"fanout of {stem!r} reconverges at {merge!r}; "
                    f"probability propagation treats the branches "
                    f"as independent there",
            hint="use the BDD-exact or simulation estimator for "
                 "this region",
            detail={"merge": merge}))
    return out


@rule(id="hot-net", severity=INFO, category=POWER,
      description="highest activity x fanout nets from zero-delay "
                  "static probabilities (C1: switching dominates "
                  "well-designed CMOS power)",
      needs_complete=True, needs_dag=True, needs_covers=True)
def check_hot_nets(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    top = ctx.config.hot_net_top
    if top <= 0 or not net.nodes:
        return []
    probs = signal_probability_propagation(net,
                                           ctx.config.input_probs)
    fo = ctx.fanouts()
    scored: List[Tuple[float, str, float, int]] = []
    for name, p in probs.items():
        fanout = len(fo.get(name, ()))
        if fanout == 0:
            continue
        score = activity_from_probability(p) * fanout
        if score > 0.0:
            scored.append((-score, name, p, fanout))
    scored.sort()
    out: List[Diagnostic] = []
    for rank, (neg_score, name, p, fanout) in \
            enumerate(scored[:top], start=1):
        out.append(Diagnostic(
            rule="hot-net", severity=INFO, site=name,
            message=f"hot net #{rank}: activity*fanout = "
                    f"{-neg_score:.3f} (p={p:.3f}, fanout={fanout})",
            hint="prime candidate for factoring, remapping or "
                 "buffer isolation",
            detail={"rank": rank, "score": -neg_score,
                    "probability": p, "fanout": fanout}))
    return out


@rule(id="gating-hazard", severity=ERROR, category=POWER,
      description="a latch enable (gated clock) must be glitch-free "
                  "in the C11 sense: no hazard-prone node in its "
                  "combinational cone",
      needs_complete=True, needs_dag=True, needs_covers=True)
def check_gating_safety(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    cache: Dict[str, Optional[List[int]]] = {}
    out: List[Diagnostic] = []
    seen_enables: Set[str] = set()
    for latch in net.latches:
        enable = latch.enable
        if enable is None or enable in seen_enables or \
                enable not in net.nodes:
            continue
        seen_enables.add(enable)
        hazardous: List[str] = []
        unchecked: List[str] = []
        for name in cone_nodes(net, enable):
            if net.nodes[name].is_source():
                continue
            vars_ = _hazard_fanins(ctx, cache, name)
            if vars_ is None:
                unchecked.append(name)
            elif vars_:
                hazardous.append(name)
        if hazardous:
            out.append(Diagnostic(
                rule="gating-hazard", severity=ERROR, site=enable,
                message=f"gating enable {enable!r} of latch "
                        f"{latch.output!r} is not hazard-free: its "
                        f"cone contains hazard-prone "
                        f"{', '.join(repr(n) for n in hazardous)}",
                hint="derive the enable hazard-free (C11) or latch "
                     "it before it gates the clock",
                detail={"latch": latch.output,
                        "hazard_nodes": hazardous}))
        elif unchecked:
            out.append(Diagnostic(
                rule="gating-hazard", severity=WARNING, site=enable,
                message=f"gating enable {enable!r} of latch "
                        f"{latch.output!r} could not be fully "
                        f"analysed: {len(unchecked)} cone node(s) "
                        f"exceed the hazard-check width cap",
                detail={"latch": latch.output,
                        "unchecked": unchecked}))
    return out
