"""Structured lint diagnostics and their renderings.

A :class:`Diagnostic` is one finding of one rule at one site (a node
or net name).  A :class:`LintReport` is the ordered collection a
:class:`~repro.analysis.linter.Linter` run produces; it renders to
plain text, JSON, and SARIF 2.1.0 (via :mod:`repro.analysis.sarif`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: All severities, most severe first.  Order is the sort / filter rank.
SEVERITIES: Tuple[str, str, str] = (ERROR, WARNING, INFO)

_RANK: Dict[str, int] = {s: i for i, s in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Rank of a severity (0 = most severe); unknown ranks last."""
    return _RANK.get(severity, len(SEVERITIES))


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of a lint rule.

    ``site`` names the node/net the finding anchors to; ``detail``
    carries optional machine-readable context (e.g. the cycle path or
    the hazard variable) that the emitters pass through verbatim.
    """

    rule: str
    severity: str
    site: str
    message: str
    hint: str = ""
    detail: Dict[str, Any] = field(default_factory=dict, hash=False,
                                   compare=False)

    def to_json(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"rule": self.rule,
                             "severity": self.severity,
                             "site": self.site,
                             "message": self.message}
        if self.hint:
            d["hint"] = self.hint
        if self.detail:
            d["detail"] = self.detail
        return d

    def render(self) -> str:
        text = f"{self.severity:7s} {self.rule:20s} {self.site}: " \
               f"{self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def sort_diagnostics(diags: List[Diagnostic]) -> List[Diagnostic]:
    """Deterministic order: severity, then rule id, then site."""
    return sorted(diags, key=lambda d: (severity_rank(d.severity),
                                        d.rule, d.site, d.message))


@dataclass
class LintReport:
    """Everything one linter run found on one network."""

    network: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: rules that were selected but could not run (e.g. a DAG-only
    #: rule on a cyclic network), with the reason.
    skipped_rules: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        """Diagnostic count per rule id."""
        out: Dict[str, int] = {}
        for d in self.diagnostics:
            out[d.rule] = out.get(d.rule, 0) + 1
        return out

    def severity_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {s: 0 for s in SEVERITIES}
        for d in self.diagnostics:
            out[d.severity] = out.get(d.severity, 0) + 1
        return out

    def at_least(self, severity: str) -> List[Diagnostic]:
        """Diagnostics at or above ``severity`` (error > warning > info)."""
        cutoff = severity_rank(severity)
        return [d for d in self.diagnostics
                if severity_rank(d.severity) <= cutoff]

    # -- emitters ------------------------------------------------------

    def to_text(self, min_severity: str = INFO) -> str:
        lines = [d.render() for d in self.at_least(min_severity)]
        sev = self.severity_counts()
        lines.append(f"{self.network}: {sev[ERROR]} error(s), "
                     f"{sev[WARNING]} warning(s), {sev[INFO]} info")
        for rule, reason in self.skipped_rules:
            lines.append(f"note: rule {rule} skipped ({reason})")
        return "\n".join(lines)

    def to_json_obj(self, min_severity: str = INFO) -> Dict[str, Any]:
        return {
            "network": self.network,
            "diagnostics": [d.to_json()
                            for d in self.at_least(min_severity)],
            "counts": self.counts(),
            "severities": self.severity_counts(),
            "skipped_rules": [{"rule": r, "reason": why}
                              for r, why in self.skipped_rules],
        }

    def to_json(self, min_severity: str = INFO,
                indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_obj(min_severity),
                          indent=indent, sort_keys=True)

    def to_sarif(self, min_severity: str = INFO,
                 indent: Optional[int] = 2) -> str:
        from repro.analysis.linter import all_rules
        from repro.analysis.sarif import sarif_report

        obj = sarif_report(self.at_least(min_severity), all_rules(),
                           artifact=self.network)
        return json.dumps(obj, indent=indent, sort_keys=True)
