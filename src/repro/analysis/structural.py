"""Structural lint rules: is this network a legal netlist at all?

Every rule here converts what used to be an opaque downstream crash
(``topo_order`` failure, ``KeyError`` deep in a simulator) or a
silently wrong number into a sited diagnostic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from repro.analysis.diagnostics import (ERROR, INFO, WARNING,
                                        Diagnostic)
from repro.analysis.graph import cycle_path, nontrivial_sccs
from repro.analysis.linter import STRUCTURAL, RuleContext, rule


@rule(id="combinational-cycle", severity=ERROR, category=STRUCTURAL,
      description="combinational logic must be acyclic; each "
                  "non-trivial SCC is reported as a concrete cycle "
                  "path (latch outputs legally break cycles)",
      invariant=True)
def check_cycles(ctx: RuleContext) -> List[Diagnostic]:
    adj = ctx.adjacency()
    out: List[Diagnostic] = []
    for comp in nontrivial_sccs(adj):
        witness = cycle_path(adj, within=comp) or (comp + comp[:1])
        path = " -> ".join(witness)
        out.append(Diagnostic(
            rule="combinational-cycle", severity=ERROR,
            site=witness[0],
            message=f"combinational cycle: {path}",
            hint="break the loop with a latch or re-derive the "
                 "offending fanin",
            detail={"cycle": witness, "scc_size": len(comp)}))
    return out


@rule(id="undriven-net", severity=ERROR, category=STRUCTURAL,
      description="every fanin, latch data/enable and primary output "
                  "must reference a defined node",
      invariant=True)
def check_undriven(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    out: List[Diagnostic] = []

    def diag(missing: str, reader: str, role: str) -> Diagnostic:
        return Diagnostic(
            rule="undriven-net", severity=ERROR, site=missing,
            message=f"net {missing!r} is read as {role} of "
                    f"{reader!r} but no node drives it",
            hint="add a driver or remove the reference",
            detail={"reader": reader, "role": role})

    for node in net.nodes.values():
        for fi in node.fanins:
            if fi not in net.nodes:
                out.append(diag(fi, node.name, "fanin"))
    for latch in net.latches:
        if latch.data not in net.nodes:
            out.append(diag(latch.data, latch.output, "latch data"))
        if latch.enable is not None and latch.enable not in net.nodes:
            out.append(diag(latch.enable, latch.output,
                            "latch enable"))
    for po in net.outputs:
        if po not in net.nodes:
            out.append(Diagnostic(
                rule="undriven-net", severity=ERROR, site=po,
                message=f"primary output {po!r} is not driven by any "
                        f"node",
                hint="drive the output or drop it from .outputs",
                detail={"reader": po, "role": "primary output"}))
    return out


@rule(id="dangling-node", severity=WARNING, category=STRUCTURAL,
      description="internal node with no readers and no output role "
                  "(dead logic that still burns power in estimates)",
      needs_complete=True)
def check_dangling(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    fo = ctx.fanouts()
    out: List[Diagnostic] = []
    outputs = set(net.outputs)
    for node in net.nodes.values():
        if node.is_source() or node.name in outputs:
            continue
        if not fo.get(node.name):
            out.append(Diagnostic(
                rule="dangling-node", severity=WARNING,
                site=node.name,
                message=f"node {node.name!r} drives nothing and is "
                        f"not a primary output",
                hint="Network.sweep() removes dead nodes"))
    return out


@rule(id="unreachable-cone", severity=WARNING, category=STRUCTURAL,
      description="logic with fanout that still cannot reach any "
                  "primary output or live latch",
      needs_complete=True, needs_dag=True)
def check_unreachable(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    # Live = transitive fanin of the outputs, where a latch's
    # data/enable cones only count once the latch output itself is
    # live (a dead register does not keep its cone alive).
    live: Set[str] = set()
    work: List[str] = [o for o in net.outputs if o in net.nodes]
    latch_by_output = {latch.output: latch for latch in net.latches}
    while work:
        name = work.pop()
        if name in live:
            continue
        live.add(name)
        node = net.nodes[name]
        work.extend(fi for fi in node.fanins if fi not in live)
        latch = latch_by_output.get(name)
        if latch is not None:
            if latch.data not in live:
                work.append(latch.data)
            if latch.enable is not None and latch.enable not in live:
                work.append(latch.enable)
    fo = ctx.fanouts()
    out: List[Diagnostic] = []
    for node in net.nodes.values():
        if node.name in live or node.kind == "input":
            continue
        if not fo.get(node.name):
            continue  # fanout-free dead nodes are dangling-node's
        out.append(Diagnostic(
            rule="unreachable-cone", severity=WARNING,
            site=node.name,
            message=f"node {node.name!r} has readers but no path to "
                    f"any primary output or live latch",
            hint="the whole cone is dead; sweep it or add an output"))
    return out


@rule(id="unused-input", severity=INFO, category=STRUCTURAL,
      description="primary input that nothing reads",
      needs_complete=True)
def check_unused_inputs(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    fo = ctx.fanouts()
    outputs = set(net.outputs)
    out: List[Diagnostic] = []
    for name in net.inputs:
        if not fo.get(name) and name not in outputs:
            out.append(Diagnostic(
                rule="unused-input", severity=INFO, site=name,
                message=f"primary input {name!r} is never read"))
    return out


@rule(id="duplicate-latch", severity=ERROR, category=STRUCTURAL,
      description="latch records must be consistent: unique outputs, "
                  "each backed by a latch-kind node",
      invariant=True)
def check_latches(ctx: RuleContext) -> List[Diagnostic]:
    net = ctx.net
    out: List[Diagnostic] = []
    seen: Dict[str, int] = {}
    for latch in net.latches:
        seen[latch.output] = seen.get(latch.output, 0) + 1
    for name, count in seen.items():
        if count > 1:
            out.append(Diagnostic(
                rule="duplicate-latch", severity=ERROR, site=name,
                message=f"{count} latches drive output {name!r}",
                hint="merge or rename the shadowed registers",
                detail={"count": count}))
    for latch in net.latches:
        node = net.nodes.get(latch.output)
        if node is None:
            out.append(Diagnostic(
                rule="duplicate-latch", severity=ERROR,
                site=latch.output,
                message=f"latch output {latch.output!r} has no "
                        f"backing node"))
        elif node.kind != "latch":
            out.append(Diagnostic(
                rule="duplicate-latch", severity=ERROR,
                site=latch.output,
                message=f"latch output {latch.output!r} is shadowed "
                        f"by a {node.kind} node of the same name",
                hint="a combinational node must not reuse a latch "
                     "output name"))
    declared = {latch.output for latch in net.latches}
    for node in net.nodes.values():
        if node.kind == "latch" and node.name not in declared:
            out.append(Diagnostic(
                rule="duplicate-latch", severity=ERROR,
                site=node.name,
                message=f"latch-kind node {node.name!r} has no latch "
                        f"record (stale reference after an edit)"))
    return out


@rule(id="invalid-cover", severity=ERROR, category=STRUCTURAL,
      description="SOP covers must match their fanin arity and hold "
                  "well-formed cubes",
      invariant=True)
def check_covers(ctx: RuleContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ctx.net.nodes.values():
        if node.kind != "sop":
            continue
        cover = node.cover
        if cover is None:
            out.append(Diagnostic(
                rule="invalid-cover", severity=ERROR, site=node.name,
                message=f"sop node {node.name!r} has no cover"))
            continue
        if cover.num_vars != len(node.fanins):
            out.append(Diagnostic(
                rule="invalid-cover", severity=ERROR, site=node.name,
                message=f"cover arity {cover.num_vars} != "
                        f"{len(node.fanins)} fanins"))
            continue
        for i, cube in enumerate(cover.cubes):
            if cube.num_vars != cover.num_vars:
                out.append(Diagnostic(
                    rule="invalid-cover", severity=ERROR,
                    site=node.name,
                    message=f"cube {i} arity {cube.num_vars} != "
                            f"cover arity {cover.num_vars}"))
            elif cube.value & ~cube.mask:
                out.append(Diagnostic(
                    rule="invalid-cover", severity=ERROR,
                    site=node.name,
                    message=f"cube {i} has polarity bits outside its "
                            f"care mask (contradictory literal "
                            f"encoding)"))
        if node.fanins and cover.is_empty():
            out.append(Diagnostic(
                rule="invalid-cover", severity=INFO, site=node.name,
                message=f"node {node.name!r} has fanins but an empty "
                        f"(constant-0) cover",
                hint="collapse to a fanin-free constant node"))
    return out


@rule(id="malformed-delay", severity=ERROR, category=STRUCTURAL,
      description="attrs['delay'] annotations must be finite "
                  "non-negative numbers (the timed engines read them)",
      invariant=True)
def check_delays(ctx: RuleContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for node in ctx.net.nodes.values():
        if "delay" not in node.attrs:
            continue
        delay = node.attrs["delay"]
        bad = ""
        if isinstance(delay, bool) or \
                not isinstance(delay, (int, float)):
            bad = f"has type {type(delay).__name__}, expected a number"
        elif not math.isfinite(float(delay)):
            bad = f"is not finite ({delay!r})"
        elif float(delay) < 0.0:
            bad = f"is negative ({delay!r})"
        if bad:
            out.append(Diagnostic(
                rule="malformed-delay", severity=ERROR,
                site=node.name,
                message=f"attrs['delay'] of {node.name!r} {bad}",
                hint="the timed simulators require finite "
                     "non-negative delays"))
    return out


@rule(id="duplicate-output", severity=WARNING, category=STRUCTURAL,
      description="the primary-output list must not repeat names",
      invariant=False)
def check_duplicate_outputs(ctx: RuleContext) -> List[Diagnostic]:
    seen: Set[str] = set()
    out: List[Diagnostic] = []
    for name in ctx.net.outputs:
        if name in seen:
            out.append(Diagnostic(
                rule="duplicate-output", severity=WARNING, site=name,
                message=f"primary output {name!r} is listed more "
                        f"than once",
                hint="replace_everywhere deduplicates outputs now; "
                     "rebuild the list"))
        seen.add(name)
    return out
