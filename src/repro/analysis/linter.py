"""Rule registry and lint driver.

A :class:`Rule` couples an id, a default severity and a check function
``check(ctx) -> [Diagnostic]`` running against a :class:`RuleContext`
(the network plus shared lazily-computed facts: fanouts, adjacency,
topological order).  Rules register themselves at import via the
:func:`rule` decorator; the standard catalog lives in
:mod:`repro.analysis.structural` and :mod:`repro.analysis.power_rules`
and is imported lazily so this module stays cycle-free.

The :class:`Linter` establishes two gate facts before anything else —
is every reference *driven* (complete), is the combinational graph
*acyclic* — and skips rules whose prerequisites fail (recorded in
``LintReport.skipped_rules``) instead of crashing on a broken input.

:func:`check_invariants` is the fast structural-error subset the pass
manager runs pre/post every flow stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.diagnostics import (Diagnostic, LintReport,
                                        sort_diagnostics)
from repro.analysis.graph import nontrivial_sccs
from repro.analysis.hazards import DEFAULT_MAX_VARS
from repro.logic.netlist import Network


@dataclass
class LintConfig:
    """Tunables shared by all rules."""

    #: how many hot nets the ranking rule reports
    hot_net_top: int = 5
    #: fanin-count cap for the exponential hazard containment check
    hazard_max_vars: int = DEFAULT_MAX_VARS
    #: PI signal probabilities for the zero-delay hot-net ranking
    input_probs: Optional[Dict[str, float]] = None


class RuleContext:
    """One network under analysis plus shared cached facts."""

    def __init__(self, net: Network, config: LintConfig):
        self.net = net
        self.config = config
        #: every fanin / latch / output reference resolves
        self.complete = True
        #: the combinational graph is a DAG
        self.acyclic = True
        #: every SOP cover matches its arity and is well-formed
        self.covers_ok = True
        self._adjacency: Optional[Dict[str, List[str]]] = None
        self._fanouts: Optional[Dict[str, List[str]]] = None

    def adjacency(self) -> Dict[str, List[str]]:
        """node -> combinational fanins (sources have none; references
        to missing nodes are dropped)."""
        if self._adjacency is None:
            adj: Dict[str, List[str]] = {}
            for node in self.net.nodes.values():
                if node.is_source():
                    adj[node.name] = []
                else:
                    adj[node.name] = [fi for fi in node.fanins
                                      if fi in self.net.nodes]
            self._adjacency = adj
        return self._adjacency

    def fanouts(self) -> Dict[str, List[str]]:
        """Reader map; requires a complete network (``complete``)."""
        if self._fanouts is None:
            self._fanouts = self.net.fanouts()
        return self._fanouts


RuleCheck = Callable[[RuleContext], List[Diagnostic]]

STRUCTURAL = "structural"
POWER = "power"


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    severity: str
    category: str
    description: str
    check: RuleCheck
    #: prerequisite: every reference must resolve
    needs_complete: bool = False
    #: prerequisite: the combinational graph must be a DAG
    needs_dag: bool = False
    #: prerequisite: covers must be well-formed (the rule evaluates
    #: or cofactors them)
    needs_covers: bool = False
    #: member of the fast :func:`check_invariants` subset
    invariant: bool = False


_REGISTRY: Dict[str, Rule] = {}
_LOADED = False


def rule(id: str, severity: str, category: str, description: str,
         needs_complete: bool = False, needs_dag: bool = False,
         needs_covers: bool = False,
         invariant: bool = False) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering ``check(ctx) -> [Diagnostic]`` as a rule."""

    def deco(check: RuleCheck) -> RuleCheck:
        if id in _REGISTRY:
            raise ValueError(f"duplicate rule id {id!r}")
        _REGISTRY[id] = Rule(id=id, severity=severity,
                             category=category,
                             description=description, check=check,
                             needs_complete=needs_complete,
                             needs_dag=needs_dag,
                             needs_covers=needs_covers,
                             invariant=invariant)
        return check

    return deco


def _ensure_rules() -> None:
    """Import the standard catalog (registers itself on import)."""
    global _LOADED
    if _LOADED:
        return
    import repro.analysis.power_rules  # noqa: F401
    import repro.analysis.structural  # noqa: F401
    _LOADED = True


def all_rules() -> List[Rule]:
    _ensure_rules()
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def select_rules(spec: Optional[str]) -> List[Rule]:
    """Resolve a comma-separated id list (``None``/empty: all rules)."""
    rules = all_rules()
    if not spec:
        return rules
    wanted = [s.strip() for s in spec.split(",") if s.strip()]
    by_id = {r.id: r for r in rules}
    out: List[Rule] = []
    for w in wanted:
        if w not in by_id:
            raise ValueError(
                f"unknown rule {w!r}; available: "
                f"{', '.join(sorted(by_id))}")
        if by_id[w] not in out:
            out.append(by_id[w])
    return out


@dataclass
class Linter:
    """Drives a rule set over networks."""

    rules: Sequence[Rule] = field(default_factory=list)
    config: LintConfig = field(default_factory=LintConfig)

    def __post_init__(self) -> None:
        if not self.rules:
            self.rules = all_rules()

    def run(self, net: Network) -> LintReport:
        ctx = RuleContext(net, self.config)
        report = LintReport(network=net.name)
        # Gate facts: completeness and acyclicity are established
        # first so downstream rules never crash on a broken input.
        ctx.complete = not _undriven_references(net)
        ctx.acyclic = ctx.complete and \
            not nontrivial_sccs(ctx.adjacency())
        ctx.covers_ok = not _malformed_covers(net)
        diags: List[Diagnostic] = []
        for r in self.rules:
            if r.needs_complete and not ctx.complete:
                report.skipped_rules.append(
                    (r.id, "network has undriven references"))
                continue
            if r.needs_dag and not (ctx.acyclic and ctx.complete):
                report.skipped_rules.append(
                    (r.id, "network is cyclic or incomplete"))
                continue
            if r.needs_covers and not ctx.covers_ok:
                report.skipped_rules.append(
                    (r.id, "network has malformed covers"))
                continue
            diags.extend(r.check(ctx))
        report.diagnostics = sort_diagnostics(diags)
        return report


def lint_network(net: Network, rules: Optional[Sequence[Rule]] = None,
                 config: Optional[LintConfig] = None) -> LintReport:
    """Lint ``net`` with the given rules (default: the full catalog)."""
    return Linter(rules=list(rules) if rules else [],
                  config=config or LintConfig()).run(net)


def check_invariants(net: Network,
                     config: Optional[LintConfig] = None
                     ) -> List[Diagnostic]:
    """Fast structural legality check for the pass manager.

    Runs the invariant rule subset (cycles, undriven references,
    duplicate latches, invalid covers, malformed delays) and returns
    the *error*-severity findings — empty means structurally legal.
    """
    invariant_rules = [r for r in all_rules() if r.invariant]
    report = lint_network(net, invariant_rules,
                          config or LintConfig())
    return report.errors


def _malformed_covers(net: Network) -> List[str]:
    """SOP nodes whose cover would crash evaluation (mirrors the
    error conditions of the ``invalid-cover`` rule)."""
    bad: List[str] = []
    for node in net.nodes.values():
        if node.kind != "sop":
            continue
        cover = node.cover
        if cover is None or cover.num_vars != len(node.fanins) or \
                any(c.num_vars != cover.num_vars or
                    c.value & ~c.mask for c in cover.cubes):
            bad.append(node.name)
    return bad


def _undriven_references(net: Network) -> List[str]:
    """Names referenced (fanin/latch/output) but not defined."""
    missing: List[str] = []
    for node in net.nodes.values():
        for fi in node.fanins:
            if fi not in net.nodes:
                missing.append(fi)
    for latch in net.latches:
        if latch.data not in net.nodes:
            missing.append(latch.data)
        if latch.enable is not None and latch.enable not in net.nodes:
            missing.append(latch.enable)
    for out in net.outputs:
        if out not in net.nodes:
            missing.append(out)
    return missing
