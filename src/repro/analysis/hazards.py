"""Single-input-change (SIC) static-hazard analysis of SOP covers.

The survey's C2 claim — 10–40 % of transitions in typical
combinational logic are spurious — rests on statically detectable
hazard topologies.  For a two-level AND-OR realisation of a cover the
classical Eichelberger condition applies: the node has a *static-1
hazard* under a single input change in variable ``v`` iff there exist
two adjacent minterms (differing only in ``v``), both in the ON-set,
that no single product term covers.  Cube-level, that is

    (F cofactor v=1) AND (F cofactor v=0)  not contained in  G_v

where ``G_v`` is the sub-cover of cubes independent of ``v``.  Only
binate variables can violate it (for a variable appearing in one
phase, the both-ON region *is* covered by the v-free cubes), so unate
covers — AND, OR, NAND, NOR, MAJ gate covers — are hazard-free, the
XOR ON-set has no adjacent minterm pairs at all, and the classical
offender is the MUX (``sel``'s consensus term is absent).

Two-level AND-OR logic has no SIC static-0 or dynamic hazards, so
this check is complete for the node-local hazard question.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.logic.netlist import Network, Node
from repro.logic.sop import Cover
from repro.logic.transform import node_cover

#: Nodes with more fanins than this are skipped (the unate-recursive
#: containment check is exponential in the worst case).
DEFAULT_MAX_VARS = 12


def hazard_variables(cover: Cover,
                     max_vars: int = DEFAULT_MAX_VARS
                     ) -> Optional[List[int]]:
    """Variables whose single-input change can produce a static-1
    hazard, or ``None`` when the cover is too wide to analyse."""
    n = cover.num_vars
    if n > max_vars:
        return None
    pos = 0
    neg = 0
    for cube in cover.cubes:
        pos |= cube.mask & cube.value
        neg |= cube.mask & ~cube.value
    binate = pos & neg
    out: List[int] = []
    for v in range(n):
        if not (binate >> v) & 1:
            continue
        hi = cover.cofactor_literal(v, 1)
        lo = cover.cofactor_literal(v, 0)
        both_on = hi.intersect(lo)
        if both_on.is_empty():
            continue
        v_free = Cover(n, [c for c in cover.cubes
                           if not (c.mask >> v) & 1])
        if not v_free.contains_cover(both_on):
            out.append(v)
    return out


def node_hazard_variables(node: Node,
                          max_vars: int = DEFAULT_MAX_VARS
                          ) -> Optional[List[int]]:
    """Hazard-prone fanin indices of a gate/SOP node (sources: none)."""
    if node.is_source():
        return []
    return hazard_variables(node_cover(node), max_vars)


def cone_nodes(net: Network, root: str) -> List[str]:
    """Combinational transitive-fanin cone of ``root`` (inclusive),
    stopping at sources.  Deterministic (DFS) order."""
    seen: List[str] = []
    seen_set: Set[str] = set()
    work = [root]
    while work:
        name = work.pop()
        if name in seen_set or name not in net.nodes:
            continue
        seen_set.add(name)
        seen.append(name)
        node = net.nodes[name]
        if node.is_source():
            continue
        for fi in reversed(node.fanins):
            if fi not in seen_set:
                work.append(fi)
    return seen
