"""Minimal SARIF 2.1.0 emitter for lint diagnostics.

Netlist findings have no file/line locations; sites are emitted as
SARIF *logical locations* (the node/net name) so SARIF-aware viewers
still group and filter by rule and site.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.diagnostics import Diagnostic

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: diagnostic severity -> SARIF result level
SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


def sarif_report(diagnostics: Sequence[Diagnostic],
                 rules: Sequence[Any],
                 artifact: str = "network",
                 tool_name: str = "repro-lint") -> Dict[str, Any]:
    """Build a SARIF log object (one run) from diagnostics.

    ``rules`` is the rule catalog (objects with ``id``, ``severity``
    and ``description`` attributes) used to populate the tool-driver
    rule metadata.
    """
    rule_ids = sorted({d.rule for d in diagnostics})
    catalog = {r.id: r for r in rules}
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rule_objs: List[Dict[str, Any]] = []
    for rid in rule_ids:
        entry: Dict[str, Any] = {"id": rid}
        meta = catalog.get(rid)
        if meta is not None:
            entry["shortDescription"] = {"text": meta.description}
            entry["defaultConfiguration"] = {
                "level": SARIF_LEVEL.get(meta.severity, "warning")}
        rule_objs.append(entry)

    results: List[Dict[str, Any]] = []
    for d in diagnostics:
        result: Dict[str, Any] = {
            "ruleId": d.rule,
            "ruleIndex": rule_index[d.rule],
            "level": SARIF_LEVEL.get(d.severity, "warning"),
            "message": {"text": d.message},
            "locations": [{
                "logicalLocations": [{
                    "name": d.site,
                    "fullyQualifiedName": f"{artifact}::{d.site}",
                    "kind": "member",
                }],
            }],
        }
        properties: Dict[str, Any] = {}
        if d.hint:
            properties["hint"] = d.hint
        if d.detail:
            properties["detail"] = d.detail
        if properties:
            result["properties"] = properties
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://github.com/repro/low-power-vlsi",
                "rules": rule_objs,
            }},
            "results": results,
        }],
    }
