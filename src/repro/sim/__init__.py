"""Gate-level simulation: stimulus, zero-delay and timed engines."""

from repro.sim.vectors import random_words, words_from_vectors, \
    vectors_from_words, random_bus_stream, counter_bus_stream
from repro.sim.functional import simulate_transitions, \
    sequential_transitions
from repro.sim.compiled import (CompiledNetwork, compile_network,
                                get_compiled, structural_fingerprint)
from repro.sim.event import (EventSimulator, timed_transitions,
                             timed_sequential_transitions)
from repro.sim.timed import (CompiledTimedNetwork, get_timed,
                             timed_transitions_from_words)

__all__ = ["random_words", "words_from_vectors", "vectors_from_words",
           "random_bus_stream", "counter_bus_stream",
           "simulate_transitions", "sequential_transitions",
           "CompiledNetwork", "compile_network", "get_compiled",
           "structural_fingerprint",
           "EventSimulator", "timed_transitions",
           "timed_sequential_transitions",
           "CompiledTimedNetwork", "get_timed",
           "timed_transitions_from_words"]
