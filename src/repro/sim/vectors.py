"""Stimulus generation with controllable signal statistics.

Patterns are packed bit-parallel: a *word* is a Python int whose bit *k*
is the value in pattern *k*.  This lets the zero-delay simulator evaluate
thousands of patterns per netlist traversal.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence


def random_words(names: Sequence[str], count: int, seed: int = 0,
                 probs: Optional[Dict[str, float]] = None,
                 hold: Optional[Dict[str, float]] = None
                 ) -> Dict[str, int]:
    """Bernoulli stimulus with optional temporal correlation.

    ``probs[name]`` is P(signal = 1), default 0.5.  ``hold[name]`` is
    the per-cycle probability of *keeping* the previous value (lag-one
    correlation, the "known signal statistics" of [21]/[22]); default
    0.0 gives temporally independent patterns.
    """
    rng = random.Random(seed)
    words: Dict[str, int] = {}
    for name in names:
        p = 0.5 if probs is None else probs.get(name, 0.5)
        h = 0.0 if hold is None else hold.get(name, 0.0)
        w = 0
        if h <= 0.0 and p == 0.5:
            w = rng.getrandbits(count) if count else 0
        elif h <= 0.0:
            for k in range(count):
                if rng.random() < p:
                    w |= 1 << k
        else:
            bit = 1 if rng.random() < p else 0
            for k in range(count):
                if k and rng.random() >= h:
                    bit = 1 if rng.random() < p else 0
                if bit:
                    w |= 1 << k
        words[name] = w
    return words


def words_from_vectors(vectors: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Pack a list of scalar input vectors into words."""
    words: Dict[str, int] = {}
    for k, vec in enumerate(vectors):
        for name, val in vec.items():
            if val:
                words[name] = words.get(name, 0) | (1 << k)
            else:
                words.setdefault(name, 0)
    return words


def vectors_from_words(words: Dict[str, int], count: int
                       ) -> List[Dict[str, int]]:
    """Unpack words into a list of scalar vectors."""
    return [{name: (w >> k) & 1 for name, w in words.items()}
            for k in range(count)]


def random_bus_stream(width: int, count: int, seed: int = 0,
                      correlation: float = 0.0) -> List[int]:
    """Stream of exactly ``count`` bus values of ``width`` bits.

    ``correlation`` in [0, 1) is the per-bit probability of *keeping* the
    previous value; 0 gives i.i.d. uniform words (the worst case for bus
    coding experiments), values near 1 give slowly-varying data.
    ``count <= 0`` yields an empty stream.
    """
    if count <= 0:
        return []
    rng = random.Random(seed)
    mask = (1 << width) - 1
    out: List[int] = []
    prev = rng.getrandbits(width)
    out.append(prev)
    for _ in range(count - 1):
        if correlation <= 0.0:
            val = rng.getrandbits(width)
        else:
            keep = 0
            for b in range(width):
                if rng.random() < correlation:
                    keep |= 1 << b
            val = (prev & keep) | (rng.getrandbits(width) & ~keep & mask)
        out.append(val)
        prev = val
    return out


def counter_bus_stream(width: int, count: int, start: int = 0,
                       stride: int = 1) -> List[int]:
    """Sequential address trace (for Gray-coding experiments)."""
    mask = (1 << width) - 1
    return [(start + k * stride) & mask for k in range(count)]


def hamming(a: int, b: int) -> int:
    """Hamming distance between two bus values."""
    return (a ^ b).bit_count()


def stream_transitions(stream: Iterable[int]) -> int:
    """Total bit transitions along a stream of bus values."""
    total = 0
    prev = None
    for v in stream:
        if prev is not None:
            total += hamming(prev, v)
        prev = v
    return total
