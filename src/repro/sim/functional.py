"""Zero-delay (functional) simulation and transition counting.

Zero-delay transition counts give the *useful* switching activity — at
most one transition per node per clock cycle.  The difference between the
event-driven counts (``repro.sim.event``) and these is the spurious
(glitch) activity studied in Section III-A.2 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.netlist import Network


def simulate_transitions(net: Network, input_words: Dict[str, int],
                         count: int) -> Dict[str, int]:
    """Transitions of every node across ``count`` consecutive patterns.

    The patterns in ``input_words`` are treated as a time sequence;
    transition k compares pattern k with pattern k+1, so the result for a
    node is in ``[0, count - 1]`` times at most one per step.
    """
    if count < 2:
        return {name: 0 for name in net.nodes}
    from repro.sim.compiled import get_compiled

    mask = (1 << count) - 1
    values = get_compiled(net).evaluate_words(input_words, mask)
    pair_mask = (1 << (count - 1)) - 1
    return {name: ((w ^ (w >> 1)) & pair_mask).bit_count()
            for name, w in values.items()}


def node_one_counts(net: Network, input_words: Dict[str, int],
                    count: int) -> Dict[str, int]:
    """Number of patterns on which each node evaluates to 1."""
    from repro.sim.compiled import get_compiled

    mask = (1 << count) - 1
    values = get_compiled(net).evaluate_words(input_words, mask)
    return {name: w.bit_count() for name, w in values.items()}


def sequential_transitions(net: Network,
                           input_sequence: Sequence[Dict[str, int]],
                           initial_state: Optional[Dict[str, int]] = None
                           ) -> Tuple[Dict[str, int], List[Dict[str, int]]]:
    """Clock-by-clock simulation of a sequential network.

    Returns ``(transition_counts, value_trace)`` where the trace holds the
    scalar value of every node at each cycle.  Latch clock-enables are
    honoured, so gated registers contribute no transitions while disabled.
    """
    state = dict(initial_state) if initial_state is not None \
        else net.initial_state()
    trace: List[Dict[str, int]] = []
    transitions: Dict[str, int] = {name: 0 for name in net.nodes}
    prev_values: Optional[Dict[str, int]] = None
    for vec in input_sequence:
        state, values = net.step_words(state, vec, 1)
        values = {k: v & 1 for k, v in values.items()}
        trace.append(values)
        if prev_values is not None:
            for name, v in values.items():
                if prev_values.get(name, v) != v:
                    transitions[name] += 1
        prev_values = values
    return transitions, trace


def _matched_outputs(a: Network, b: Network
                     ) -> Optional[List[Tuple[str, str]]]:
    """Pair up two networks' primary outputs for equivalence checking.

    When both networks name the same output set (the common case — the
    optimizations preserve output names), outputs are matched *by name*,
    so a mere reordering of the output list cannot flip the verdict.
    Only when the name sets differ (e.g. a network rebuilt with
    anonymous/fresh output names) does matching fall back to positional
    ``zip``.  Returns ``None`` when the output counts differ.
    """
    if len(a.outputs) != len(b.outputs):
        return None
    if set(a.outputs) == set(b.outputs) and \
            len(set(a.outputs)) == len(a.outputs):
        return [(o, o) for o in a.outputs]
    return list(zip(a.outputs, b.outputs))


def verify_equivalence_exact(a: Network, b: Network) -> bool:
    """Formal combinational equivalence via canonical BDDs.

    Builds both networks' output functions in one shared manager; equal
    functions hash-cons to the same node.  Outputs are matched by name
    when both networks name the same output set, positionally otherwise
    (see :func:`_matched_outputs`).  Exact but exponential in the worst
    case — intended for the netlist sizes the optimizations operate on.
    """
    from repro.bdd.bdd import BDD
    from repro.bdd.circuit import network_bdds

    if set(a.inputs) != set(b.inputs):
        raise ValueError("networks have different inputs")
    pairs = _matched_outputs(a, b)
    if pairs is None:
        return False
    manager = BDD(sorted(a.inputs))
    fa = network_bdds(a, manager)
    fb = network_bdds(b, manager)
    return all(fa[x].node == fb[y].node for x, y in pairs)


def verify_equivalence(a: Network, b: Network, num_vectors: int = 256,
                       seed: int = 0) -> bool:
    """Random simulation check that two combinational networks agree on
    all primary outputs (same PI names required).  Outputs are matched
    by name when both networks name the same output set, positionally
    otherwise (see :func:`_matched_outputs`)."""
    from repro.sim.compiled import get_compiled
    from repro.sim.vectors import random_words

    if set(a.inputs) != set(b.inputs):
        raise ValueError("networks have different inputs")
    pairs = _matched_outputs(a, b)
    if pairs is None:
        return False
    words = random_words(sorted(a.inputs), num_vectors, seed)
    mask = (1 << num_vectors) - 1
    va = get_compiled(a).evaluate_words(words, mask)
    vb = get_compiled(b).evaluate_words(words, mask)
    return all(va[x] == vb[y] for x, y in pairs)
