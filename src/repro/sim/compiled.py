"""Compiled bit-parallel network evaluation with incremental re-simulation.

``Network.evaluate_words`` re-walks the dict-of-:class:`Node` DAG on every
call: per node it does a dict lookup, a kind dispatch, builds a fanin value
list and (for SOP nodes) re-interprets the cover cube by cube.  The
optimizers call it thousands of times inside their Σ C·N cost loops, so
this module compiles a :class:`~repro.logic.netlist.Network` once into a
flat *evaluation program*:

* every node gets an integer **slot** (its topological index);
* every non-source node becomes one **op** — ``(out_slot, fanin_slots,
  kernel)`` where the kernel is a pre-lowered closure over the fanin slot
  indices (specialized per gate type / per cover);
* evaluation is a single pass filling a flat ``list`` of words — no name
  lookups, no dispatch, no per-call cover interpretation.

The compiled program is cached on the network (``Network._compiled``),
invalidated by the structural-mutation hooks (``Network._invalidate``),
and additionally keyed by a :func:`structural_fingerprint` so that
in-place mutations that bypass the hooks (e.g. an optimizer assigning
``node.cover`` directly) are still detected and trigger a recompile
rather than silently evaluating a stale program.  A stale program whose
slot layout is still valid — only node functions changed, the common
optimizer edit — is *repatched*: only the changed kernels are
re-lowered (O(changed) instead of O(network)).

On top of the flat program, :meth:`CompiledNetwork.evaluate_incremental`
re-simulates only the transitive fanout cone of a set of *dirty* nodes,
reusing the previous pattern words everywhere else, with value-based
early cut-off (a recomputed node whose word is unchanged stops the
propagation).  This is the engine behind
``activity_from_simulation(..., reuse=...)``: an optimizer that edits one
node pays only for that node's cone instead of a full re-simulation.

All paths are bit-exact with the interpreted ``Network.evaluate_words``
(pure integer logic, identical cube/literal semantics).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.logic.gates import GateType
from repro.logic.netlist import NetlistError, Network

#: A kernel maps (slot values, width mask) -> output word.
Kernel = Callable[[List[int], int], int]


def structural_fingerprint(net: Network) -> int:
    """Hash of everything combinational evaluation depends on.

    Covers node identity, kind, gate type / cover cubes, fanin lists,
    input/output/latch lists and latch init values.  Order-sensitive (a
    reordered fanin list is a different function).  Collisions are
    possible in principle (it is a hash) but never produced by the
    in-repo mutation patterns; the ``_invalidate`` hooks remain the
    primary invalidation path.
    """
    items: List[object] = [tuple(net.inputs), tuple(net.outputs),
                           tuple((la.data, la.output, la.init, la.enable)
                                 for la in net.latches)]
    for name, node in net.nodes.items():
        items.append((name, node.kind, _function_key(node),
                      tuple(node.fanins)))
    return hash(tuple(items))


def _function_key(node) -> object:
    """Key of a node's local function (the part a kernel lowers)."""
    if node.kind == "sop":
        return tuple((c.mask, c.value) for c in node.cover.cubes)
    return node.gtype


def _topology_key(net: Network) -> int:
    """Hash of everything *except* the node functions: names, kinds,
    fanin lists and the input/output/latch declarations.  Two networks
    with equal topology keys map to the same slot layout, so a compiled
    program for one can be repatched into a program for the other by
    rebuilding only the kernels whose function changed."""
    return hash((tuple(net.inputs), tuple(net.outputs),
                 tuple((la.data, la.output, la.init, la.enable)
                       for la in net.latches),
                 tuple((name, node.kind, tuple(node.fanins))
                       for name, node in net.nodes.items())))


# -- kernel lowering ---------------------------------------------------------


def _gate_kernel(gtype: GateType, slots: Tuple[int, ...]) -> Kernel:
    """Specialized closure for one gate instance.

    Slot values are always pre-masked, so only inverting outputs need
    the ``& mask`` clamp.
    """
    if gtype is GateType.CONST0:
        return lambda v, m: 0
    if gtype is GateType.CONST1:
        return lambda v, m: m
    if gtype is GateType.BUF:
        (i,) = slots
        return lambda v, m: v[i]
    if gtype is GateType.NOT:
        (i,) = slots
        return lambda v, m: ~v[i] & m
    if gtype in (GateType.AND, GateType.NAND):
        if len(slots) == 2:
            i, j = slots
            if gtype is GateType.AND:
                return lambda v, m: v[i] & v[j]
            return lambda v, m: ~(v[i] & v[j]) & m

        def and_wide(v: List[int], m: int) -> int:
            acc = m
            for s in slots:
                acc &= v[s]
            return acc

        if gtype is GateType.AND:
            return and_wide
        return lambda v, m: ~and_wide(v, m) & m
    if gtype in (GateType.OR, GateType.NOR):
        if len(slots) == 2:
            i, j = slots
            if gtype is GateType.OR:
                return lambda v, m: v[i] | v[j]
            return lambda v, m: ~(v[i] | v[j]) & m

        def or_wide(v: List[int], m: int) -> int:
            acc = 0
            for s in slots:
                acc |= v[s]
            return acc

        if gtype is GateType.OR:
            return or_wide
        return lambda v, m: ~or_wide(v, m) & m
    if gtype in (GateType.XOR, GateType.XNOR):
        if len(slots) == 2:
            i, j = slots
            if gtype is GateType.XOR:
                return lambda v, m: v[i] ^ v[j]
            return lambda v, m: ~(v[i] ^ v[j]) & m

        def xor_wide(v: List[int], m: int) -> int:
            acc = 0
            for s in slots:
                acc ^= v[s]
            return acc

        if gtype is GateType.XOR:
            return xor_wide
        return lambda v, m: ~xor_wide(v, m) & m
    if gtype is GateType.MUX:
        sel, d0, d1 = slots
        return lambda v, m: (v[sel] & v[d1]) | (~v[sel] & v[d0] & m)
    if gtype is GateType.MAJ:
        a, b, c = slots
        return lambda v, m: (v[a] & v[b]) | (v[a] & v[c]) | (v[b] & v[c])
    raise NetlistError(f"cannot compile gate type {gtype}")


def _sop_kernel(cube_plan: Tuple[Tuple[Tuple[int, int], ...], ...]) -> Kernel:
    """Closure evaluating a pre-lowered cover.

    ``cube_plan`` holds, per cube, ``(slot, phase)`` literal pairs —
    the cover's variable indices already resolved to value slots.
    """
    def kernel(v: List[int], m: int) -> int:
        out = 0
        for lits in cube_plan:
            term = m
            for s, phase in lits:
                w = v[s]
                term &= w if phase else ~w & m
                if not term:
                    break
            out |= term
            if out == m:
                break
        return out

    return kernel


# -- the compiled program ----------------------------------------------------


class CompiledNetwork:
    """Flat, slot-indexed evaluation program for one network snapshot.

    Instances are immutable snapshots: they never observe later edits of
    the source network.  Obtain one through :func:`get_compiled`, which
    caches on the network and recompiles when the structure changed.
    """

    __slots__ = ("fingerprint", "topo_key", "fn_keys", "names", "slot_of",
                 "num_slots", "input_slots", "latch_slots", "ops")

    def __init__(self, fingerprint: int, topo_key: int,
                 fn_keys: Tuple[object, ...], names: List[str],
                 input_slots: List[Tuple[int, str]],
                 latch_slots: List[Tuple[int, str, int]],
                 ops: List[Tuple[int, Tuple[int, ...], Kernel]]):
        self.fingerprint = fingerprint
        self.topo_key = topo_key
        #: per-op function key (aligned with ``ops``) for repatching
        self.fn_keys = fn_keys
        #: slot index -> node name (topological order)
        self.names = names
        self.slot_of: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self.num_slots = len(names)
        self.input_slots = input_slots
        self.latch_slots = latch_slots
        self.ops = ops

    # -- full evaluation -----------------------------------------------

    def _load_sources(self, values: List[int],
                      input_words: Dict[str, int], mask: int,
                      state_words: Optional[Dict[str, int]]) -> None:
        for slot, name in self.input_slots:
            try:
                values[slot] = input_words[name] & mask
            except KeyError:
                raise NetlistError(
                    f"missing input value for {name!r}") from None
        for slot, name, init in self.latch_slots:
            if state_words is not None and name in state_words:
                values[slot] = state_words[name] & mask
            else:
                values[slot] = mask if init else 0

    def evaluate_slots(self, input_words: Dict[str, int], mask: int,
                       state_words: Optional[Dict[str, int]] = None
                       ) -> List[int]:
        """One full pass; returns the flat slot-value list."""
        values = [0] * self.num_slots
        self._load_sources(values, input_words, mask, state_words)
        for out_slot, _fanins, kernel in self.ops:
            values[out_slot] = kernel(values, mask)
        return values

    def evaluate_words(self, input_words: Dict[str, int], mask: int,
                       state_words: Optional[Dict[str, int]] = None
                       ) -> Dict[str, int]:
        """Drop-in, bit-exact replacement for ``Network.evaluate_words``."""
        return dict(zip(self.names,
                        self.evaluate_slots(input_words, mask,
                                            state_words)))

    # -- incremental evaluation ------------------------------------------

    def evaluate_incremental(self, prev: Dict[str, int],
                             dirty: Iterable[str],
                             input_words: Dict[str, int], mask: int,
                             state_words: Optional[Dict[str, int]] = None
                             ) -> Dict[str, int]:
        """Re-evaluate only the transitive fanout cone of ``dirty``.

        ``prev`` maps node name -> word from a prior evaluation under
        the *same* ``input_words``/``mask``/``state_words`` of a network
        that agrees with this one everywhere outside the cone of the
        dirty set.  Nodes absent from ``prev`` (newly created) are
        implicitly dirty; nodes whose function changed must be named in
        ``dirty`` by the caller — that is the safety contract.

        Value-based early cut-off: a recomputed node whose word equals
        its previous word does not propagate further.
        """
        values = [0] * self.num_slots
        changed = bytearray(self.num_slots)
        dirty_set = set(dirty)
        self._load_sources(values, input_words, mask, state_words)
        for slot, name in self.input_slots:
            if values[slot] != prev.get(name):
                changed[slot] = 1
        for slot, name, _init in self.latch_slots:
            if values[slot] != prev.get(name):
                changed[slot] = 1
        for out_slot, fanin_slots, kernel in self.ops:
            name = self.names[out_slot]
            stale = name in dirty_set or name not in prev
            if not stale:
                for s in fanin_slots:
                    if changed[s]:
                        stale = True
                        break
            if not stale:
                values[out_slot] = prev[name]
                continue
            word = kernel(values, mask)
            values[out_slot] = word
            if word != prev.get(name):
                changed[out_slot] = 1
        return dict(zip(self.names, values))


def _lower_node(node, fanin_slots: Tuple[int, ...]) -> Kernel:
    if node.kind == "gate":
        return _gate_kernel(node.gtype, fanin_slots)
    plan = tuple(
        tuple((fanin_slots[var], phase)
              for var, phase in cube.literals())
        for cube in node.cover.cubes)
    return _sop_kernel(plan)


def compile_network(net: Network) -> CompiledNetwork:
    """Lower ``net`` into a :class:`CompiledNetwork` (no caching)."""
    order = net.topo_order()  # validates acyclicity / dangling refs
    slot_of = {name: i for i, name in enumerate(order)}
    input_slots: List[Tuple[int, str]] = []
    latch_slots: List[Tuple[int, str, int]] = []
    ops: List[Tuple[int, Tuple[int, ...], Kernel]] = []
    fn_keys: List[object] = []
    for name in order:
        node = net.nodes[name]
        if node.kind == "input":
            input_slots.append((slot_of[name], name))
        elif node.kind == "latch":
            latch = net.latch_for_output(name)
            latch_slots.append((slot_of[name], name, latch.init))
        else:
            fanin_slots = tuple(slot_of[fi] for fi in node.fanins)
            ops.append((slot_of[name], fanin_slots,
                        _lower_node(node, fanin_slots)))
            fn_keys.append(_function_key(node))
    return CompiledNetwork(structural_fingerprint(net),
                           _topology_key(net), tuple(fn_keys),
                           list(order), input_slots, latch_slots, ops)


def _repatch(net: Network, cached: CompiledNetwork,
             fingerprint: int) -> Optional[CompiledNetwork]:
    """Incremental recompile: reuse ``cached`` where possible.

    When only node *functions* changed (a flipped gate type, a
    re-minimized cover) the slot layout is intact, so a fresh snapshot
    only needs new kernels for the changed nodes — O(changed) lowering
    instead of O(network).  Returns ``None`` when the topology itself
    changed (node added/removed, fanin rewired) and a full compile is
    required.
    """
    if cached.topo_key != _topology_key(net):
        return None
    ops = list(cached.ops)
    fn_keys = list(cached.fn_keys)
    nodes = net.nodes
    names = cached.names
    for idx, (out_slot, fanin_slots, _kernel) in enumerate(ops):
        node = nodes[names[out_slot]]
        key = _function_key(node)
        if key != fn_keys[idx]:
            ops[idx] = (out_slot, fanin_slots,
                        _lower_node(node, fanin_slots))
            fn_keys[idx] = key
    return CompiledNetwork(fingerprint, cached.topo_key, tuple(fn_keys),
                           names, cached.input_slots, cached.latch_slots,
                           ops)


def get_compiled(net: Network,
                 check_fingerprint: bool = True) -> CompiledNetwork:
    """Cached compile of ``net``.

    The cache lives on the network (cleared by ``Network._invalidate``)
    and is verified against the structural fingerprint on every hit, so
    direct attribute mutations that bypass the ``_invalidate`` hooks
    (``node.cover = ...``) still recompile.  A stale hit whose topology
    is unchanged (only node functions differ — the optimizer inner-loop
    case) is repatched in O(changed) rather than recompiled from
    scratch; either way the caller receives a fresh immutable snapshot.
    ``check_fingerprint=False`` skips the verification for callers that
    guarantee hook discipline.
    """
    cached = getattr(net, "_compiled", None)
    if cached is not None:
        if not check_fingerprint:
            return cached
        fp = structural_fingerprint(net)
        if cached.fingerprint == fp:
            return cached
        patched = _repatch(net, cached, fp)
        if patched is not None:
            net._compiled = patched
            return patched
    compiled = compile_network(net)
    net._compiled = compiled
    return compiled
