"""Event-driven timing simulation (transport-delay model).

Counts *every* output transition of every node, including the spurious
transitions ("glitches") that settle before the clock edge.  Comparing
these counts with the zero-delay counts of ``repro.sim.functional``
reproduces the 10–40% glitch-power claim of Section III-A.2.

Two engines implement the same semantics:

* :class:`EventSimulator` — the reference oracle: one heap of
  ``(time, node)`` events, one bit per vector.  Every node evaluated
  at time *t* sees its fanin values as of *t⁻* — simultaneous events
  are mutually invisible, and zero-delay propagation re-triggers
  within the timestamp (delta cycles, as in VHDL).  That makes the
  result a canonical function of the network, the delays and the
  stimulus — independent of heap insertion order — and it preserves
  the static-hazard pulses that path balancing exists to remove.
* ``repro.sim.timed`` — a compiled, word-parallel engine that buckets
  the same schedule onto a time wheel and evaluates 64 stimulus
  transitions per machine word.  Bit-identical per-node counts, much
  faster; the default for :func:`timed_transitions` and
  :func:`timed_sequential_transitions`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.gates import eval_gate
from repro.logic.netlist import Network

#: engine selector values accepted by the timed entry points
ENGINES = ("compiled", "event")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown timed engine {engine!r}; expected one of {ENGINES}")


class EventSimulator:
    """Transport-delay event-driven simulator for combinational networks.

    Delays come from, in priority order: the ``delays`` constructor map,
    each node's ``attrs["delay"]``, then the 1.0 default.  BUF gates added
    by path balancing carry unit delay like any other gate.

    Simultaneous events (equal timestamps — the common case under
    uniform delays) are evaluated in *reverse* topological order, so a
    node re-evaluated at time *t* sees the *t⁻* (pre-timestamp) values
    of all its fanins; a zero-delay reader of a time-*t* change
    re-evaluates within the same timestamp (a delta cycle).  This
    canonical tie-break — pure transport-delay semantics, under which
    simultaneous arrivals still expose static hazards — is what the
    compiled engine (``repro.sim.timed``) reproduces word-parallel.
    """

    def __init__(self, net: Network,
                 delays: Optional[Dict[str, float]] = None):
        self.net = net
        self.order = net.topo_order()       # cached on the network
        self.fanouts = net.fanouts()        # cached on the network
        self._topo_index = {name: i for i, name in enumerate(self.order)}
        self.delays: Dict[str, float] = {}
        for name in self.order:
            node = net.nodes[name]
            if node.is_source():
                self.delays[name] = 0.0
            elif delays is not None and name in delays:
                self.delays[name] = float(delays[name])
            else:
                self.delays[name] = float(node.attrs.get("delay", 1.0))
        self.values: Dict[str, int] = {}
        self.transition_counts: Dict[str, int] = {name: 0
                                                  for name in net.nodes}

    # -- internals ------------------------------------------------------

    def _evaluate_node(self, name: str) -> int:
        node = self.net.nodes[name]
        ins = [self.values[fi] for fi in node.fanins]
        if node.kind == "gate":
            return eval_gate(node.gtype, ins, 1)
        return node.cover.evaluate_words(ins, 1)

    def settle(self, input_values: Dict[str, int],
               count_transitions: bool = True) -> float:
        """Apply a new input vector and propagate until quiescent.

        Returns the settling time (when the last node changed).  The first
        call establishes the initial state without counting transitions.
        """
        first_time = not self.values
        if first_time:
            for name in self.order:
                node = self.net.nodes[name]
                if node.kind == "input":
                    self.values[name] = input_values.get(name, 0) & 1
                elif node.kind == "latch":
                    self.values[name] = input_values.get(
                        name, self.net.latch_for_output(name).init) & 1
                else:
                    self.values[name] = self._evaluate_node(name)
            return 0.0

        heap: List[Tuple[float, int, str]] = []
        topo = self._topo_index
        changed_sources = []
        for name, node in self.net.nodes.items():
            if not node.is_source():
                continue
            new = input_values.get(name, self.values[name]) & 1
            if new != self.values[name]:
                self.values[name] = new
                if count_transitions:
                    self.transition_counts[name] += 1
                changed_sources.append(name)
        for src in changed_sources:
            for fo in self.fanouts[src]:
                if not self.net.nodes[fo].is_source():
                    heapq.heappush(heap,
                                   (self.delays[fo], -topo[fo], fo))
        last_time = 0.0
        while heap:
            t, _k, name = heapq.heappop(heap)
            new = self._evaluate_node(name)
            if new == self.values[name]:
                continue
            self.values[name] = new
            if count_transitions:
                self.transition_counts[name] += 1
            last_time = max(last_time, t)
            for fo in self.fanouts[name]:
                if not self.net.nodes[fo].is_source():
                    heapq.heappush(heap,
                                   (t + self.delays[fo], -topo[fo], fo))
        return last_time

    def run(self, vectors: Sequence[Dict[str, int]]) -> Dict[str, int]:
        """Run a vector sequence; returns per-node transition counts
        (the first vector only initialises state)."""
        for vec in vectors:
            self.settle(vec)
        return dict(self.transition_counts)

    def run_sequential(self, vectors: Sequence[Dict[str, int]]
                       ) -> Dict[str, int]:
        """Clocked timed simulation of a sequential network.

        Each cycle: primary inputs and latch outputs change together at
        the clock edge, then the combinational logic settles (with
        glitches counted).  Latch data is sampled at the end of the
        settle — i.e. registers *filter* the spurious transitions at
        their inputs, which is exactly the effect low-power retiming
        ([29]) exploits.  Latch enables are honoured.
        """
        state: Dict[str, int] = {
            latch.output: latch.init for latch in self.net.latches}
        first = True
        for vec in vectors:
            drive = dict(vec)
            drive.update(state)
            self.settle(drive, count_transitions=not first)
            first = False
            for latch in self.net.latches:
                new = self.values[latch.data]
                if latch.enable is not None and \
                        not self.values[latch.enable]:
                    continue
                state[latch.output] = new
        return dict(self.transition_counts)


def timed_transitions(net: Network, vectors: Sequence[Dict[str, int]],
                      delays: Optional[Dict[str, float]] = None,
                      engine: str = "compiled") -> Dict[str, int]:
    """Per-node transition counts of a timed run over ``vectors``.

    ``engine="compiled"`` (default) uses the word-parallel time-wheel
    engine of ``repro.sim.timed``; ``engine="event"`` runs the
    event-driven oracle.  Both return bit-identical counts.
    """
    _check_engine(engine)
    if engine == "compiled":
        from repro.sim.timed import get_timed

        words, count = _vectors_to_words(net, vectors)
        return get_timed(net, delays).transition_counts(words, count)
    sim = EventSimulator(net, delays=delays)
    return sim.run(vectors)


def timed_sequential_transitions(net: Network,
                                 vectors: Sequence[Dict[str, int]],
                                 delays: Optional[Dict[str, float]]
                                 = None,
                                 engine: str = "compiled"
                                 ) -> Dict[str, int]:
    """Clocked timed transition counts (glitches included) of a
    sequential network; see :meth:`EventSimulator.run_sequential`.
    ``engine`` selects the word-parallel compiled engine (default) or
    the event-driven oracle."""
    _check_engine(engine)
    if engine == "compiled":
        from repro.sim.timed import get_timed

        return get_timed(net, delays).sequential_transition_counts(
            vectors)
    sim = EventSimulator(net, delays=delays)
    return sim.run_sequential(vectors)


def _vectors_to_words(net: Network, vectors: Sequence[Dict[str, int]]
                      ) -> Tuple[Dict[str, int], int]:
    """Pack a scalar vector sequence into complete per-source words.

    Replicates the event simulator's hold semantics: a source missing
    from a vector keeps its previous value (inputs start at 0, latch
    outputs at their init value).
    """
    words: Dict[str, int] = {}
    cur: Dict[str, int] = {}
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    for name in sources:
        if net.nodes[name].kind == "latch":
            cur[name] = net.latch_for_output(name).init & 1
        else:
            cur[name] = 0
        words[name] = 0
    for k, vec in enumerate(vectors):
        for name in sources:
            v = vec.get(name)
            if v is not None:
                cur[name] = v & 1
            if cur[name]:
                words[name] |= 1 << k
    return words, len(vectors)
