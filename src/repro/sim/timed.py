"""Compiled word-parallel timed (transport-delay) simulation.

The event-driven :class:`~repro.sim.event.EventSimulator` interprets
one bit per vector and pays a heap push/pop, a name-keyed dict lookup
per fanin and a dynamic gate dispatch for every event.  That made timed
(glitch-inclusive) transition counting the last interpreted hot path:
`glitch_report` and the balance / retiming loops re-run it once per
candidate configuration.

This module lowers a :class:`~repro.logic.netlist.Network` plus its
per-node transport delays into a static time-stepped evaluation
program:

* the slot-indexed machinery of ``repro.sim.compiled`` is reused
  verbatim — one integer slot per node, one pre-lowered kernel per
  gate type / cover;
* the event schedule is bucketed onto a **time wheel**: a dict keyed
  by exact event timestamps, each bucket mapping a node slot to the
  set of stimulus *lanes* in which that node must re-evaluate;
* 64 stimulus transitions are simulated per machine word.  Lane *k*
  carries the settle from vector *k* to vector *k+1* — valid because a
  transport-delay settle always quiesces at the zero-delay values of
  its final vector, so consecutive settles decompose exactly, and the
  starting states of all lanes come from one word-parallel zero-delay
  pass;
* transitions are counted with XOR + ``int.bit_count`` popcounts, and
  a node commits a re-evaluated value only in its triggered lanes, so
  untriggered lanes never observe a fanin change "early".

Semantics are **bit-identical per-node transition counts** to
:class:`EventSimulator` for any delay map: both engines give every
evaluation at time *t* the pre-timestamp (*t⁻*) fanin values, with
zero-delay propagation re-triggering inside the timestamp (delta
cycles) — a canonical, order-independent transport-delay semantics —
and both compute event timestamps with the same float additions, so
even path-dependent float sums land in the same buckets.

The compiled timed program is cached on the network
(``Network._timed``, cleared by ``Network._invalidate``) and keyed by
the zero-delay program snapshot — whose structural-fingerprint
verification it therefore inherits — plus the exact resolved per-node
delay tuple, so a mutated ``attrs["delay"]`` or a different ``delays``
argument can never hit a stale program.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.netlist import Network
from repro.sim.compiled import CompiledNetwork, get_compiled

#: retain at most this many delay variants per network snapshot
_MAX_DELAY_VARIANTS = 8


class CompiledTimedNetwork:
    """Immutable time-wheel evaluation program for one network snapshot
    under one resolved delay map.  Obtain through :func:`get_timed`."""

    __slots__ = ("base", "delay_key", "kernel_of", "fanout_plan",
                 "source_slots", "seq_ops", "seq_latches")

    def __init__(self, base: CompiledNetwork,
                 delay_key: Tuple[float, ...]):
        self.base = base
        self.delay_key = delay_key
        num = base.num_slots
        #: slot -> kernel (None for sources)
        kernel_of: List[Optional[object]] = [None] * num
        for out_slot, _fanins, kernel in base.ops:
            kernel_of[out_slot] = kernel
        self.kernel_of = kernel_of
        #: slot -> tuple of (reader_slot, reader_delay); dedup'd per
        #: reader (a doubled fanin triggers one evaluation, like the
        #: event oracle's two same-key events collapsing to one change)
        plan: List[List[Tuple[int, float]]] = [[] for _ in range(num)]
        for out_slot, fanin_slots, _kernel in base.ops:
            d = delay_key[out_slot]
            for fs in dict.fromkeys(fanin_slots):
                plan[fs].append((out_slot, d))
        self.fanout_plan: Tuple[Tuple[Tuple[int, float], ...], ...] = \
            tuple(tuple(p) for p in plan)
        #: (slot, name) for every source, inputs then latch outputs
        self.source_slots: Tuple[Tuple[int, str], ...] = tuple(
            [(s, n) for s, n in base.input_slots]
            + [(s, n) for s, n, _init in base.latch_slots])
        # -- sequential-mode tables (built lazily) ---------------------
        self.seq_ops: Optional[Tuple] = None
        self.seq_latches: Optional[Tuple] = None

    # -- combinational ---------------------------------------------------

    def transition_counts(self, input_words: Dict[str, int],
                          count: int) -> Dict[str, int]:
        """Per-node transition counts over ``count`` consecutive
        vectors, bit-identical to ``EventSimulator.run`` on the same
        stimulus.  ``input_words`` must carry a word for every primary
        input (bit *k* = value in vector *k*); latch-output words are
        optional (a missing one holds the latch's init value, like a
        source never driven by the oracle's vectors)."""
        counts = [0] * self.base.num_slots
        if count >= 2:
            for start in range(0, count - 1, 64):
                lanes = min(64, count - 1 - start)
                self._run_chunk(input_words, start, lanes, counts)
        return dict(zip(self.base.names, counts))

    def _run_chunk(self, input_words: Dict[str, int], start: int,
                   lanes: int, counts: List[int]) -> None:
        """Simulate settles ``start .. start+lanes-1`` (lane *j* is the
        transition from vector ``start+j`` to ``start+j+1``)."""
        base = self.base
        lane_mask = (1 << lanes) - 1
        # Starting state: zero-delay stable values of the previous
        # vectors, one word-parallel pass over the shared compiled
        # program.
        prev_in = {name: input_words[name] >> start
                   for _slot, name in base.input_slots}
        prev_state = {name: input_words[name] >> start
                      for _slot, name, _init in base.latch_slots
                      if name in input_words}
        values = base.evaluate_slots(prev_in, lane_mask,
                                     prev_state or None)

        fanout_plan = self.fanout_plan
        kernel_of = self.kernel_of
        bit_count = int.bit_count
        heappush, heappop = heapq.heappush, heapq.heappop
        pending: Dict[float, Dict[int, int]] = {}
        times: List[float] = []

        # t = 0: the new vectors reach the sources.
        shift = start + 1
        for slot, name in self.source_slots:
            w = input_words.get(name)
            if w is None:
                continue
            new = (w >> shift) & lane_mask
            changed = new ^ values[slot]
            if not changed:
                continue
            values[slot] = new
            counts[slot] += bit_count(changed)
            for fo_slot, fo_d in fanout_plan[slot]:
                b = pending.get(fo_d)
                if b is None:
                    pending[fo_d] = {fo_slot: changed}
                    heappush(times, fo_d)
                else:
                    b[fo_slot] = b.get(fo_slot, 0) | changed

        # Time wheel: pop the earliest bucket, evaluate its slots in
        # *decreasing* slot (= reverse topological) order.  A node's
        # fanins all sit at smaller slots, so every evaluation at time
        # t reads pre-timestamp values — the delta-cycle semantics of
        # the oracle.  A zero-delay reader of a time-t change has a
        # strictly larger slot than its writer and therefore pops
        # immediately after re-insertion, realising the delta cycle.
        while times:
            t = heappop(times)
            bucket = pending.pop(t, None)
            if bucket is None:        # duplicate heap entry
                continue
            slot_heap = [-s for s in bucket]
            heapq.heapify(slot_heap)
            while slot_heap:
                slot = -heappop(slot_heap)
                trig = bucket.pop(slot, 0)
                if not trig:          # duplicate slot entry
                    continue
                word = kernel_of[slot](values, lane_mask)
                changed = (word ^ values[slot]) & trig
                if not changed:
                    continue
                values[slot] ^= changed
                counts[slot] += bit_count(changed)
                for fo_slot, fo_d in fanout_plan[slot]:
                    t2 = t + fo_d
                    if t2 == t:       # delta cycle: current bucket
                        if fo_slot in bucket:
                            bucket[fo_slot] |= changed
                        else:
                            bucket[fo_slot] = changed
                            heappush(slot_heap, -fo_slot)
                    else:
                        b = pending.get(t2)
                        if b is None:
                            pending[t2] = {fo_slot: changed}
                            heappush(times, t2)
                        else:
                            b[fo_slot] = b.get(fo_slot, 0) | changed

    # -- clocked sequential ----------------------------------------------

    def sequential_transition_counts(
            self, vectors: Sequence[Dict[str, int]],
            net: Optional[Network] = None) -> Dict[str, int]:
        """Clocked timed counts, bit-identical to
        ``EventSimulator.run_sequential`` on the same vector sequence.

        Phase 1 recovers the register trajectory with cheap zero-delay
        scalar steps restricted to the latch data/enable cones (the
        settled values a latch samples are exactly the zero-delay
        values).  Phase 2 packs the per-cycle source values — primary
        inputs plus latch outputs — into words and reuses the
        word-parallel combinational engine: every cycle's settle is one
        lane.
        """
        base = self.base
        if self.seq_ops is None:
            self._lower_sequential(net)
        seq_ops = self.seq_ops
        seq_latches = self.seq_latches
        count = len(vectors)
        input_names = [name for _s, name in base.input_slots]
        input_slot = {name: s for s, name in base.input_slots}

        # Phase 1: scalar trajectory (mask = 1).
        num = base.num_slots
        values = [0] * num
        state = {lslot: init for _n, lslot, _d, _e, init in seq_latches}
        drive_words = [0] * num       # per source slot, bit k = cycle k
        cur_in = {name: 0 for name in input_names}
        for k, vec in enumerate(vectors):
            for name in input_names:
                v = vec.get(name)
                if v is not None:
                    cur_in[name] = v & 1
            for name in input_names:
                if cur_in[name]:
                    drive_words[input_slot[name]] |= 1 << k
                values[input_slot[name]] = cur_in[name]
            for _name, lslot, _dslot, _eslot, _init in seq_latches:
                if state[lslot]:
                    drive_words[lslot] |= 1 << k
                values[lslot] = state[lslot]
            for out_slot, _fanins, kernel in seq_ops:
                values[out_slot] = kernel(values, 1)
            for _name, lslot, dslot, eslot, _init in seq_latches:
                if eslot is not None and not values[eslot]:
                    continue
                state[lslot] = values[dslot]

        # Phase 2: word-parallel timed settles across all cycles.
        words = {name: drive_words[slot]
                 for slot, name in self.source_slots}
        return self.transition_counts(words, count)

    def _lower_sequential(self, net: Optional[Network]) -> None:
        """Resolve latch data/enable names to slots and restrict the
        trajectory pass to their transitive fanin cones."""
        base = self.base
        if net is None:
            raise ValueError(
                "sequential lowering needs the source network; call "
                "through get_timed()/timed_sequential_transitions")
        slot_of = base.slot_of
        latches = []
        needed: set = set()
        for latch in net.latches:
            dslot = slot_of[latch.data]
            eslot = slot_of[latch.enable] \
                if latch.enable is not None else None
            latches.append((latch.output, slot_of[latch.output], dslot,
                            eslot, latch.init))
            needed.add(dslot)
            if eslot is not None:
                needed.add(eslot)
        # Transitive fanin closure over the op list (reverse topo).
        for out_slot, fanin_slots, _kernel in reversed(base.ops):
            if out_slot in needed:
                needed.update(fanin_slots)
        self.seq_latches = tuple(latches)
        self.seq_ops = tuple(op for op in base.ops if op[0] in needed)


def _resolve_delays(net: Network, base: CompiledNetwork,
                    delays: Optional[Dict[str, float]]
                    ) -> Tuple[float, ...]:
    """Per-slot transport delays with the oracle's priority: ``delays``
    map, then ``attrs["delay"]``, then 1.0; sources are 0.0."""
    nodes = net.nodes
    out = []
    for name in base.names:
        node = nodes[name]
        if node.is_source():
            out.append(0.0)
        elif delays is not None and name in delays:
            out.append(float(delays[name]))
        else:
            out.append(float(node.attrs.get("delay", 1.0)))
    return tuple(out)


def get_timed(net: Network, delays: Optional[Dict[str, float]] = None
              ) -> "_BoundTimed":
    """Cached compiled timed program for ``net`` under ``delays``.

    The cache lives on the network (``Network._timed``, cleared by
    ``_invalidate``) and is keyed by the zero-delay program snapshot —
    ``get_compiled`` re-verifies that snapshot's structural fingerprint
    on every call, so hook-bypassing mutations recompile here too —
    plus the exact resolved delay tuple (covering both the ``delays``
    argument and in-place ``attrs["delay"]`` edits).  Up to
    ``_MAX_DELAY_VARIANTS`` delay maps are retained per snapshot.
    """
    base = get_compiled(net)
    delay_key = _resolve_delays(net, base, delays)
    cache = getattr(net, "_timed", None)
    if cache is not None and cache[0] is base:
        variants = cache[1]
        prog = variants.get(delay_key)
        if prog is None:
            if len(variants) >= _MAX_DELAY_VARIANTS:
                variants.clear()
            prog = CompiledTimedNetwork(base, delay_key)
            variants[delay_key] = prog
    else:
        prog = CompiledTimedNetwork(base, delay_key)
        net._timed = (base, {delay_key: prog})
    return _BoundTimed(net, prog)


class _BoundTimed:
    """A compiled timed program bound to its source network (the
    sequential path needs the latch declarations once, on first use)."""

    __slots__ = ("net", "program")

    def __init__(self, net: Network, program: CompiledTimedNetwork):
        self.net = net
        self.program = program

    def transition_counts(self, input_words: Dict[str, int],
                          count: int) -> Dict[str, int]:
        return self.program.transition_counts(input_words, count)

    def sequential_transition_counts(
            self, vectors: Sequence[Dict[str, int]]) -> Dict[str, int]:
        return self.program.sequential_transition_counts(vectors,
                                                         self.net)


def timed_transitions_from_words(net: Network,
                                 input_words: Dict[str, int],
                                 count: int,
                                 delays: Optional[Dict[str, float]]
                                 = None) -> Dict[str, int]:
    """Word-stimulus entry point: per-node timed transition counts of
    ``count`` consecutive vectors packed into ``input_words``."""
    return get_timed(net, delays).transition_counts(input_words, count)
