"""VCD (Value Change Dump) export of simulation traces.

Production debugging aid: dump the per-cycle node values produced by
:func:`repro.sim.functional.sequential_transitions` (or any list of
name→bit dictionaries) into a standard VCD file that any waveform
viewer opens.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TextIO


def _identifier(index: int) -> str:
    """Compact VCD identifier codes: !, ", #, ... then two chars."""
    chars = [chr(c) for c in range(33, 127)]
    if index < len(chars):
        return chars[index]
    hi, lo = divmod(index - len(chars), len(chars))
    return chars[hi] + chars[lo]


def write_vcd(trace: Sequence[Dict[str, int]], stream: TextIO,
              module: str = "top",
              signals: Optional[Sequence[str]] = None,
              timescale: str = "1 ns",
              cycle_time: int = 10) -> int:
    """Write a cycle trace as VCD; returns the number of value changes.

    ``trace[t][name]`` is the value of ``name`` at cycle *t*.
    ``signals`` restricts/orders the dumped set (default: sorted keys
    of the first entry).
    """
    if not trace:
        raise ValueError("empty trace")
    names = list(signals) if signals is not None \
        else sorted(trace[0].keys())
    codes = {name: _identifier(i) for i, name in enumerate(names)}

    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {module} $end\n")
    for name in names:
        safe = name.replace(" ", "_")
        stream.write(f"$var wire 1 {codes[name]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    changes = 0
    prev: Dict[str, int] = {}
    for t, values in enumerate(trace):
        emitted_time = False
        for name in names:
            v = int(values.get(name, 0)) & 1
            if prev.get(name) == v:
                continue
            if not emitted_time:
                stream.write(f"#{t * cycle_time}\n")
                emitted_time = True
            if t == 0:
                # Initial values inside a dumpvars block.
                pass
            stream.write(f"{v}{codes[name]}\n")
            prev[name] = v
            changes += 1
    stream.write(f"#{len(trace) * cycle_time}\n")
    return changes


def dump_sequential_vcd(net, input_sequence, path: str,
                        signals: Optional[Sequence[str]] = None) -> int:
    """Simulate a sequential network and write the trace to ``path``."""
    from repro.sim.functional import sequential_transitions

    _, trace = sequential_transitions(net, input_sequence)
    with open(path, "w") as f:
        return write_vcd(trace, f, module=net.name, signals=signals)
