"""Low-power bus coding ([39], Stan & Burleson; Section III-C.1).

Bus wires carry large capacitance, so the cost metric is simply the
number of wire transitions per transfer.  Implemented schemes:

* **bus-invert**: one extra line E; send the complemented word whenever
  that halves the transitions — the paper's worked example.  Bounds the
  per-transfer transitions to ⌈(n+1)/2⌉ and cuts the expected count on
  random data.
* **partitioned bus-invert**: independent invert lines per sub-bus
  (better for wide buses, where one global decision is too coarse).
* **Gray coding** for sequential address streams (single-transition
  steps).
* **limited-weight codes**: transition signalling through a codebook
  that gives frequent symbols low-weight codewords.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


def _popcount(x: int) -> int:
    return x.bit_count()


def uncoded_transitions(stream: Sequence[int]) -> int:
    """Baseline: total bit flips between consecutive words."""
    total = 0
    for prev, cur in zip(stream, stream[1:]):
        total += _popcount(prev ^ cur)
    return total


@dataclass
class BusCodingResult:
    """Transition accounting for one coding scheme on one stream."""

    scheme: str
    width: int
    extra_lines: int
    transfers: int
    transitions_uncoded: int
    transitions_coded: int     # includes the extra lines' own flips
    encoded: List[Tuple[int, int]]  # (word on bus, extra-line value)

    @property
    def saving(self) -> float:
        if not self.transitions_uncoded:
            return 0.0
        return 1.0 - self.transitions_coded / self.transitions_uncoded

    @property
    def per_transfer(self) -> float:
        steps = max(1, self.transfers - 1)
        return self.transitions_coded / steps


def bus_invert(stream: Sequence[int], width: int) -> BusCodingResult:
    """Classic bus-invert coding with a single invert line."""
    mask = (1 << width) - 1
    encoded: List[Tuple[int, int]] = []
    transitions = 0
    prev_bus = 0
    prev_e = 0
    for i, value in enumerate(stream):
        value &= mask
        if i == 0:
            bus, e = value, 0
        else:
            dist = _popcount(prev_bus ^ value)
            if 2 * dist > width:
                bus, e = ~value & mask, 1
            elif 2 * dist == width:
                # Tie: keep the previous E value so the invert line
                # itself does not flip.
                e = prev_e
                bus = ~value & mask if e else value
            else:
                bus, e = value, 0
            transitions += _popcount(prev_bus ^ bus) + (prev_e ^ e)
        encoded.append((bus, e))
        prev_bus, prev_e = bus, e
    return BusCodingResult(
        scheme="bus-invert", width=width, extra_lines=1,
        transfers=len(stream),
        transitions_uncoded=uncoded_transitions(
            [v & mask for v in stream]),
        transitions_coded=transitions, encoded=encoded)


def partitioned_bus_invert(stream: Sequence[int], width: int,
                           partitions: int) -> BusCodingResult:
    """Bus-invert applied independently to ``partitions`` equal slices."""
    if width % partitions:
        raise ValueError("width must divide evenly into partitions")
    slice_w = width // partitions
    slice_mask = (1 << slice_w) - 1
    sub_results = []
    for p in range(partitions):
        sub = [(v >> (p * slice_w)) & slice_mask for v in stream]
        sub_results.append(bus_invert(sub, slice_w))
    total = sum(r.transitions_coded for r in sub_results)
    encoded = []
    for i in range(len(stream)):
        word = 0
        elines = 0
        for p, r in enumerate(sub_results):
            bus, e = r.encoded[i]
            word |= bus << (p * slice_w)
            elines |= e << p
        encoded.append((word, elines))
    return BusCodingResult(
        scheme=f"bus-invert/{partitions}", width=width,
        extra_lines=partitions, transfers=len(stream),
        transitions_uncoded=uncoded_transitions(
            [v & ((1 << width) - 1) for v in stream]),
        transitions_coded=total, encoded=encoded)


def _to_gray(x: int) -> int:
    return x ^ (x >> 1)


def gray_code_stream(stream: Sequence[int], width: int
                     ) -> BusCodingResult:
    """Gray-code the words (ideal for in-order address streams)."""
    mask = (1 << width) - 1
    encoded = [(_to_gray(v & mask), 0) for v in stream]
    return BusCodingResult(
        scheme="gray", width=width, extra_lines=0, transfers=len(stream),
        transitions_uncoded=uncoded_transitions(
            [v & mask for v in stream]),
        transitions_coded=uncoded_transitions([b for b, _ in encoded]),
        encoded=encoded)


def _low_weight_codes(width: int, count: int) -> List[int]:
    """The ``count`` lowest-weight codewords of ``width`` bits."""
    codes = sorted(range(1 << width), key=lambda c: (_popcount(c), c))
    if count > len(codes):
        raise ValueError("alphabet larger than the code space")
    return codes[:count]


def limited_weight_code(stream: Sequence[int], width: int,
                        code_width: Optional[int] = None
                        ) -> BusCodingResult:
    """Limited-weight coding with transition signalling.

    Symbols are ranked by frequency and assigned codewords in increasing
    Hamming weight; the bus carries XOR-accumulated codewords so each
    transfer flips exactly weight(code) wires.  ``code_width`` defaults
    to the bus width (a wider code trades wires for fewer transitions).
    """
    code_width = code_width or width
    freq = Counter(stream)
    symbols = [s for s, _n in freq.most_common()]
    codes = _low_weight_codes(code_width, len(symbols))
    book: Dict[int, int] = dict(zip(symbols, codes))
    encoded: List[Tuple[int, int]] = []
    transitions = 0
    bus = 0
    for i, value in enumerate(stream):
        code = book[value]
        if i > 0:
            bus ^= code          # transition signalling
            transitions += _popcount(code)
        else:
            bus = 0
        encoded.append((bus, 0))
    mask = (1 << width) - 1
    return BusCodingResult(
        scheme="limited-weight", width=code_width,
        extra_lines=max(0, code_width - width), transfers=len(stream),
        transitions_uncoded=uncoded_transitions(
            [v & mask for v in stream]),
        transitions_coded=transitions, encoded=encoded)
