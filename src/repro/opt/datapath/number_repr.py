"""Number-representation effects on datapath switching ([7]-era
observation used by the behavioral transformations of Section IV-B).

Slowly-varying signals (audio, sensor data) cross zero constantly; in
two's complement a sign change flips the whole upper word (sign
extension), whereas sign-magnitude flips only the sign bit plus the
small magnitude difference.  The trade reverses for arithmetic cost —
sign-magnitude adders are messier — which is why the representation
choice is workload-dependent.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple


def to_twos_complement(value: int, width: int) -> int:
    mask = (1 << width) - 1
    return value & mask


def to_sign_magnitude(value: int, width: int) -> int:
    mag_mask = (1 << (width - 1)) - 1
    if value < 0:
        return (1 << (width - 1)) | ((-value) & mag_mask)
    return value & mag_mask


def stream_transitions(values: Sequence[int], width: int,
                       representation: str = "twos") -> int:
    """Total bit flips of a signed-value stream in a representation."""
    if representation == "twos":
        encode = to_twos_complement
    elif representation == "sign-magnitude":
        encode = to_sign_magnitude
    else:
        raise ValueError("representation must be 'twos' or "
                         "'sign-magnitude'")
    total = 0
    prev = None
    for v in values:
        word = encode(v, width)
        if prev is not None:
            total += (prev ^ word).bit_count()
        prev = word
    return total


def sine_stream(count: int, amplitude: float, period: float,
                noise: float = 0.0, seed: int = 0) -> List[int]:
    """A slowly-varying zero-crossing signal (integer samples)."""
    rng = random.Random(seed)
    out = []
    for k in range(count):
        x = amplitude * math.sin(2 * math.pi * k / period)
        if noise:
            x += rng.gauss(0.0, noise)
        out.append(int(round(x)))
    return out


def representation_comparison(values: Sequence[int], width: int
                              ) -> Tuple[int, int, float]:
    """(two's-complement flips, sign-magnitude flips, SM/TC ratio)."""
    tc = stream_transitions(values, width, "twos")
    sm = stream_transitions(values, width, "sign-magnitude")
    return tc, sm, (sm / tc if tc else 1.0)
