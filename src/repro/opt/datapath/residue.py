"""One-hot residue arithmetic coding ([11], Chren; Section III-C.1).

A residue number system represents an integer by its residues modulo a
set of pairwise-coprime moduli; with each digit stored *one-hot*,
addition and multiplication by a constant become cyclic rotations of the
one-hot vector.  Any digit update flips at most two wires (the leaving
and the entering position), giving very low, data-independent switching
activity at the cost of more wires — the delay-power product argument
of [11].
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd, prod
from typing import List, Sequence, Tuple


def residue_moduli_for(max_value: int,
                       candidates: Sequence[int] = (3, 5, 7, 11, 13, 16,
                                                    17, 19, 23)
                       ) -> List[int]:
    """Smallest prefix of pairwise-coprime moduli covering [0, max_value]."""
    chosen: List[int] = []
    rng = 1
    for m in candidates:
        if all(gcd(m, c) == 1 for c in chosen):
            chosen.append(m)
            rng *= m
            if rng > max_value:
                return chosen
    raise ValueError(f"cannot cover {max_value} with default moduli")


@dataclass(frozen=True)
class ResidueWord:
    """One RNS value: a tuple of residues, one per modulus."""

    digits: Tuple[int, ...]

    def wires(self, moduli: Sequence[int]) -> int:
        """Bit-vector of the full one-hot encoding (for flip counting)."""
        word = 0
        offset = 0
        for digit, m in zip(self.digits, moduli):
            word |= 1 << (offset + digit)
            offset += m
        return word


class OneHotResidue:
    """An RNS arithmetic unit over fixed moduli with one-hot digits."""

    def __init__(self, moduli: Sequence[int]):
        if len(set(moduli)) != len(moduli):
            raise ValueError("moduli must be distinct")
        for i, a in enumerate(moduli):
            for b in moduli[i + 1:]:
                if gcd(a, b) != 1:
                    raise ValueError("moduli must be pairwise coprime")
        self.moduli = list(moduli)
        self.range = prod(self.moduli)

    # -- codec -----------------------------------------------------------

    def encode(self, value: int) -> ResidueWord:
        return ResidueWord(tuple(value % m for m in self.moduli))

    def decode(self, word: ResidueWord) -> int:
        """Chinese-remainder reconstruction."""
        x = 0
        for digit, m in zip(word.digits, self.moduli):
            other = self.range // m
            inv = pow(other, -1, m)
            x += digit * other * inv
        return x % self.range

    # -- arithmetic (rotations in hardware) --------------------------------

    def add(self, a: ResidueWord, b: ResidueWord) -> ResidueWord:
        return ResidueWord(tuple((x + y) % m for x, y, m in
                                 zip(a.digits, b.digits, self.moduli)))

    def mul(self, a: ResidueWord, b: ResidueWord) -> ResidueWord:
        return ResidueWord(tuple((x * y) % m for x, y, m in
                                 zip(a.digits, b.digits, self.moduli)))

    def total_wires(self) -> int:
        return sum(self.moduli)

    # -- switching-activity accounting --------------------------------------

    def stream_transitions(self, values: Sequence[int]) -> int:
        """Wire flips when the one-hot datapath carries ``values``.

        Each digit change costs exactly two flips; at most
        2·len(moduli) per step regardless of data.
        """
        total = 0
        prev = None
        for v in values:
            word = self.encode(v).wires(self.moduli)
            if prev is not None:
                total += (prev ^ word).bit_count()
            prev = word
        return total

    @staticmethod
    def binary_transitions(values: Sequence[int], width: int) -> int:
        """Two's-complement datapath flips for the same stream."""
        mask = (1 << width) - 1
        total = 0
        prev = None
        for v in values:
            w = v & mask
            if prev is not None:
                total += (prev ^ w).bit_count()
            prev = w
        return total
