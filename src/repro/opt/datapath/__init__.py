"""Datapath encoding optimizations (Section III-C.1, buses and
arithmetic: [39], [11])."""

from repro.opt.datapath.bus_coding import (BusCodingResult, bus_invert,
                                           partitioned_bus_invert,
                                           gray_code_stream,
                                           limited_weight_code,
                                           uncoded_transitions)
from repro.opt.datapath.residue import OneHotResidue, residue_moduli_for

__all__ = ["BusCodingResult", "bus_invert", "partitioned_bus_invert",
           "gray_code_stream", "limited_weight_code",
           "uncoded_transitions", "OneHotResidue", "residue_moduli_for"]
