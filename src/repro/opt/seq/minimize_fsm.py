"""FSM state minimization (substrate for Section III-C; [2]).

Classical partition refinement for completely-specified machines:
states are equivalent iff they emit the same outputs and transition to
equivalent states for every input.  Fewer states mean fewer flip-flops
and smaller next-state logic — the starting point the encoding and
clock-gating optimizations assume.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.opt.seq.stg import STG


def _behaviour_tables(stg: STG) -> Tuple[Dict[str, List[str]],
                                         Dict[str, List[str]]]:
    """Per state: next-state and output for every input minterm
    (unspecified minterms self-loop with all-zero output, matching
    ``STG.next_state``)."""
    nxt: Dict[str, List[str]] = {}
    out: Dict[str, List[str]] = {}
    for s in stg.states:
        nxt[s] = []
        out[s] = []
        for m in range(1 << stg.num_inputs):
            n, o = stg.next_state(s, m)
            nxt[s].append(n)
            out[s].append(o)
    return nxt, out


def equivalent_state_classes(stg: STG) -> List[List[str]]:
    """Partition of the states into equivalence classes."""
    nxt, out = _behaviour_tables(stg)
    # Initial partition by output signature.
    block_of: Dict[str, int] = {}
    signature_to_block: Dict[Tuple, int] = {}
    for s in stg.states:
        sig = tuple(out[s])
        if sig not in signature_to_block:
            signature_to_block[sig] = len(signature_to_block)
        block_of[s] = signature_to_block[sig]
    # Refine until stable.
    while True:
        signature_to_new: Dict[Tuple, int] = {}
        new_block: Dict[str, int] = {}
        for s in stg.states:
            sig = (block_of[s],
                   tuple(block_of[n] for n in nxt[s]))
            if sig not in signature_to_new:
                signature_to_new[sig] = len(signature_to_new)
            new_block[s] = signature_to_new[sig]
        if new_block == block_of:
            break
        block_of = new_block
    classes: Dict[int, List[str]] = {}
    for s in stg.states:
        classes.setdefault(block_of[s], []).append(s)
    return [classes[b] for b in sorted(classes)]


def minimize_stg(stg: STG) -> STG:
    """Minimized machine over class representatives.

    The representative of each class is its first state in declaration
    order; the reset state's class keeps the reset role.
    """
    classes = equivalent_state_classes(stg)
    rep_of: Dict[str, str] = {}
    for cls in classes:
        rep = cls[0]
        for s in cls:
            rep_of[s] = rep
    reduced = STG(stg.num_inputs, stg.num_outputs,
                  reset_state=rep_of.get(stg.reset_state))
    if reduced.reset_state:
        reduced.add_state(reduced.reset_state)
    seen = set()
    for t in stg.transitions:
        src = rep_of[t.src]
        if t.src != src:
            continue                     # keep one row per class
        key = (t.input_cube, src, rep_of[t.dst], t.output)
        if key in seen:
            continue
        seen.add(key)
        reduced.add_transition(t.input_cube, src, rep_of[t.dst],
                               t.output)
    return reduced


def is_behaviourally_equivalent(a: STG, b: STG, a_start: str,
                                b_start: str, length: int = 200,
                                seed: int = 0) -> bool:
    """Random co-simulation check between two machines."""
    import random

    rng = random.Random(seed)
    sa, sb = a_start, b_start
    for _ in range(length):
        m = rng.getrandbits(a.num_inputs) if a.num_inputs else 0
        sa, oa = a.next_state(sa, m)
        sb, ob = b.next_state(sb, m)
        if oa != ob:
            return False
    return True
