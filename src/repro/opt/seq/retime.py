"""Retiming (Section III-C.2; Leiserson–Saxe [24], low-power [29]).

A sequential network is abstracted into a retiming graph: vertices are
combinational gates plus a HOST vertex standing for the environment
(primary inputs and outputs), edges carry the register count between a
driver and a reader.  Classic results implemented here:

* W/D matrices and the Bellman–Ford feasibility test for a target clock
  period, giving minimum-period retiming by search over candidate
  periods;
* *low-power* retiming ([29]): among the retimings meeting the period,
  locally minimize Σ activity(driver) · registers-on-edge — registers
  are pushed onto low-activity signals, where they also filter glitches.

``apply_retiming`` reconstructs a :class:`Network` with the moved
registers (initial values are reset to 0; the experiments measure
steady-state activity where the transient is irrelevant — see
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.netlist import Network, Node

HOST = "__host__"          # retained alias: the host *source* vertex
HOST_SRC = "__host__"
HOST_SINK = "__host_sink__"


@dataclass
class Edge:
    tail: str
    head: str
    weight: int
    signal: str      # name of the driving signal in the source network


class RetimingGraph:
    """Retiming abstraction of a sequential network (unit gate delays)."""

    def __init__(self, net: Network):
        self.net = net
        # The environment is split into a source and a sink vertex so no
        # spurious combinational path runs PO -> host -> PI; both are
        # pinned to the same retiming lag (see feasible_retiming).
        self.vertices: List[str] = [HOST_SRC, HOST_SINK]
        self.delay: Dict[str, float] = {HOST_SRC: 0.0, HOST_SINK: 0.0}
        self.edges: List[Edge] = []
        self._build()

    def _resolve(self, signal: str) -> Tuple[str, int, str]:
        """Trace latch chains back: returns (driver_vertex, weight,
        root_signal)."""
        weight = 0
        name = signal
        while self.net.nodes[name].kind == "latch":
            latch = self.net.latch_for_output(name)
            if latch.enable is not None:
                raise ValueError(
                    "retiming does not support enable-gated latches")
            weight += 1
            name = latch.data
        node = self.net.nodes[name]
        if node.kind == "input":
            return HOST, weight, name
        return name, weight, name

    def _build(self) -> None:
        net = self.net
        for name, node in net.nodes.items():
            if node.is_source():
                continue
            self.vertices.append(name)
            self.delay[name] = 1.0
        for name, node in net.nodes.items():
            if node.is_source():
                continue
            for fi in node.fanins:
                tail, weight, signal = self._resolve(fi)
                self.edges.append(Edge(tail, name, weight, signal))
        for out in net.outputs:
            tail, weight, signal = self._resolve(out)
            if tail != HOST_SRC:
                self.edges.append(Edge(tail, HOST_SINK, weight, signal))

    # -- W and D matrices ---------------------------------------------------

    def wd_matrices(self) -> Tuple[Dict[Tuple[str, str], int],
                                   Dict[Tuple[str, str], float]]:
        """W(u,v) = min registers u→v; D(u,v) = max delay over
        register-minimal paths (Leiserson–Saxe Lemma 3)."""
        INF = float("inf")
        verts = self.vertices
        dist: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for u in verts:
            for v in verts:
                dist[(u, v)] = (INF, INF)
            # Identity path: no edges, no accumulated tail delay (the
            # head's own delay is added when D is read out).
            dist[(u, u)] = (0.0, 0.0)
        for e in self.edges:
            key = (e.tail, e.head)
            cand = (float(e.weight), -self.delay[e.tail])
            if cand < dist[key]:
                dist[key] = cand
        for k in verts:
            for u in verts:
                duk = dist[(u, k)]
                if duk[0] == INF:
                    continue
                for v in verts:
                    dkv = dist[(k, v)]
                    if dkv[0] == INF:
                        continue
                    cand = (duk[0] + dkv[0], duk[1] + dkv[1])
                    if cand < dist[(u, v)]:
                        dist[(u, v)] = cand
        W: Dict[Tuple[str, str], int] = {}
        D: Dict[Tuple[str, str], float] = {}
        for (u, v), (w, negd) in dist.items():
            if w == INF:
                continue
            W[(u, v)] = int(w)
            D[(u, v)] = -negd + self.delay[v]
        return W, D

    def feasible_retiming(self, period: float,
                          W: Optional[Dict[Tuple[str, str], int]] = None,
                          D: Optional[Dict[Tuple[str, str], float]] = None
                          ) -> Optional[Dict[str, int]]:
        """Bellman–Ford solve of the period constraints; None if
        infeasible."""
        if W is None or D is None:
            W, D = self.wd_matrices()
        constraints: List[Tuple[str, str, int]] = []
        for e in self.edges:
            constraints.append((e.tail, e.head, e.weight))  # r(t)-r(h) <= w
        # Pin the environment: source and sink lag must match so every
        # input-to-output path keeps its total register count.
        constraints.append((HOST_SRC, HOST_SINK, 0))
        constraints.append((HOST_SINK, HOST_SRC, 0))
        for (u, v), d in D.items():
            if d > period:
                constraints.append((u, v, W[(u, v)] - 1))
        r = {v: 0 for v in self.vertices}
        for _ in range(len(self.vertices) + 1):
            changed = False
            for tail, head, bound in constraints:
                if r[tail] - r[head] > bound:
                    r[tail] = r[head] + bound
                    changed = True
            if not changed:
                break
        else:
            return None
        shift = r[HOST_SRC]
        return {v: r[v] - shift for v in self.vertices}

    def clock_period(self, r: Optional[Dict[str, int]] = None) -> float:
        """Max combinational path delay under retiming r (default 0)."""
        r = r or {v: 0 for v in self.vertices}
        # Longest zero-weight path under retimed weights.
        arr = {v: self.delay[v] for v in self.vertices}
        order = list(self.vertices)
        for _ in range(len(order)):
            changed = False
            for e in self.edges:
                w = e.weight + r[e.head] - r[e.tail]
                if w == 0:
                    cand = arr[e.tail] + self.delay[e.head]
                    if cand > arr[e.head]:
                        arr[e.head] = cand
                        changed = True
            if not changed:
                break
        return max(arr.values())

    def register_cost(self, r: Dict[str, int],
                      activity: Optional[Dict[str, float]] = None
                      ) -> float:
        """Σ over edges of (activity-weighted) retimed register count.

        Registers shared among a driver's fanouts are counted once per
        distinct (driver, depth); this matches the shared latch chains
        that ``apply_retiming`` builds.
        """
        per_driver: Dict[str, int] = {}
        for e in self.edges:
            w = e.weight + r[e.head] - r[e.tail]
            per_driver[e.signal] = max(per_driver.get(e.signal, 0), w)
        total = 0.0
        for signal, depth in per_driver.items():
            a = 1.0 if activity is None else activity.get(signal, 0.5)
            total += a * depth
        return total


def min_period_retiming(graph: RetimingGraph
                        ) -> Tuple[float, Dict[str, int]]:
    """Binary search over candidate periods (the distinct D values)."""
    W, D = graph.wd_matrices()
    candidates = sorted(set(D.values()))
    best: Optional[Tuple[float, Dict[str, int]]] = None
    lo, hi = 0, len(candidates) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        r = graph.feasible_retiming(candidates[mid], W, D)
        if r is not None:
            best = (candidates[mid], r)
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise RuntimeError("no feasible retiming at any candidate period")
    return best


def low_power_retiming(graph: RetimingGraph, period: float,
                       activity: Dict[str, float],
                       max_passes: int = 20
                       ) -> Dict[str, int]:
    """Local search minimizing activity-weighted register count at a
    fixed period ([29])."""
    W, D = graph.wd_matrices()
    r = graph.feasible_retiming(period, W, D)
    if r is None:
        raise ValueError(f"period {period} is infeasible")

    def legal(rr: Dict[str, int]) -> bool:
        for e in graph.edges:
            if e.weight + rr[e.head] - rr[e.tail] < 0:
                return False
        return graph.clock_period(rr) <= period + 1e-9

    cost = graph.register_cost(r, activity)
    for _ in range(max_passes):
        improved = False
        for v in graph.vertices:
            if v == HOST:
                continue
            for delta in (+1, -1):
                trial = dict(r)
                trial[v] = r[v] + delta
                if not legal(trial):
                    continue
                c = graph.register_cost(trial, activity)
                if c < cost - 1e-12:
                    r, cost = trial, c
                    improved = True
        if not improved:
            break
    return r


def apply_retiming(net: Network, r: Dict[str, int],
                   name: Optional[str] = None) -> Network:
    """Reconstruct the network with registers placed per retiming ``r``.

    Edge (u, v) receives ``w(u,v) + r(v) − r(u)`` registers; latch
    chains are shared per driver.  All initial values are 0.
    """
    graph = RetimingGraph(net)
    out = Network(name or net.name + "_retimed")
    for pi in net.inputs:
        out.add_input(pi)

    # Gate bodies (fanins patched below).
    for node in net.nodes.values():
        if node.is_source():
            continue
        new = Node(node.name, node.kind, node.gtype, list(node.fanins),
                   node.cover.copy() if node.cover is not None else None)
        new.attrs = dict(node.attrs)
        out.nodes[node.name] = new

    # Required register depth per driving signal.
    depth: Dict[str, int] = {}
    edge_regs: Dict[Tuple[str, str, str], int] = {}
    for e in graph.edges:
        w = e.weight + r[e.head] - r[e.tail]
        if w < 0:
            raise ValueError("illegal retiming (negative edge weight)")
        edge_regs[(e.tail, e.head, e.signal)] = w
        depth[e.signal] = max(depth.get(e.signal, 0), w)

    chain: Dict[Tuple[str, int], str] = {}

    def delayed(signal: str, k: int) -> str:
        if k == 0:
            return signal
        key = (signal, k)
        if key not in chain:
            prev = delayed(signal, k - 1)
            reg = f"_rt_{signal}_{k}"
            out.add_latch(prev, reg, init=0)
            chain[key] = reg
        return chain[key]

    # Patch fanins: reader v reading original signal fi (which resolved
    # to root signal s with weight w0) now reads delayed(s, w_r).
    for node in list(out.nodes.values()):
        if node.is_source() or node.kind == "latch":
            continue
        new_fanins = []
        for fi in node.fanins:
            tail, _w0, signal = graph._resolve(fi)
            w = edge_regs[(tail, node.name, signal)]
            new_fanins.append(delayed(signal, w))
        node.fanins = new_fanins

    for outp in net.outputs:
        tail, _w0, signal = graph._resolve(outp)
        if tail == HOST:
            w = _w0  # PI feeding a PO directly: keep original depth
            out.set_output(delayed(signal, w))
        else:
            w = edge_regs.get((tail, HOST_SINK, signal), 0)
            out.set_output(delayed(signal, w))
    out._invalidate()
    out.check()
    return out
