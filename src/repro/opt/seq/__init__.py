"""Sequential logic optimizations (Section III-C)."""

from repro.opt.seq.stg import STG, Transition, read_kiss, synthesize_fsm
from repro.opt.seq.encoding import (encode_natural, encode_onehot,
                                    encode_greedy, encode_anneal,
                                    encoding_cost, EncodingResult,
                                    evaluate_encoding)
from repro.opt.seq.retime import (RetimingGraph, min_period_retiming,
                                  low_power_retiming, apply_retiming)
from repro.opt.seq.gated_clock import (self_loop_clock_gating,
                                       GatedClockResult)
from repro.opt.seq.precompute import (sequential_precompute,
                                      combinational_precompute,
                                      select_precompute_inputs,
                                      precomputed_comparator,
                                      PrecomputeResult)
from repro.opt.seq.minimize_fsm import (equivalent_state_classes,
                                        minimize_stg)
from repro.opt.seq.guarded import guarded_evaluation, GuardResult
from repro.opt.seq.fsm_benchmarks import (load_benchmark,
                                          benchmark_names,
                                          all_benchmarks)

__all__ = ["STG", "Transition", "read_kiss", "synthesize_fsm",
           "encode_natural", "encode_onehot", "encode_greedy",
           "encode_anneal", "encoding_cost", "EncodingResult",
           "evaluate_encoding", "RetimingGraph", "min_period_retiming",
           "low_power_retiming", "apply_retiming",
           "self_loop_clock_gating", "GatedClockResult",
           "sequential_precompute", "combinational_precompute",
           "equivalent_state_classes", "minimize_stg",
           "select_precompute_inputs",
           "precomputed_comparator", "PrecomputeResult",
           "guarded_evaluation", "GuardResult", "load_benchmark",
           "benchmark_names", "all_benchmarks"]
