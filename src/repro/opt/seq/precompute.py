"""Precomputation-based sequential power-down (Section III-C.4; [1], [30]).

Architecture (Figure 1 of the paper, generalized): the primary inputs of
a combinational block are registered; a chosen *predictor* subset X1
always loads (register R1) while the rest X2 loads only when the output
is **not** already determined by X1 alone (register R2).  The load-enable

    LE = ¬( g1 ∨ g0 ),   g1 = ∀X2 f,   g0 = ∀X2 ¬f

is computed combinationally from the incoming X1 values (via universal
quantification on the circuit BDDs, the method of [30]) and gates R2.
When LE = 0 the held X2 values are stale but harmless — every output is
determined by the fresh X1 — and all switching in the X2 fan-in cone is
suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.bdd import BDDFunction
from repro.bdd.circuit import bdd_to_cover, network_bdds
from repro.logic.netlist import Network, Node

@dataclass
class PrecomputeResult:
    """A constructed precomputation architecture."""

    network: Network            # the sequential, gated design
    baseline: Network           # registered-inputs design without gating
    predictor_inputs: List[str]
    disable_probability: float  # P(LE = 0) under the given input probs
    le_literals: int            # cost of the added precompute logic


def _determination_function(net: Network, predictor: Sequence[str]
                            ) -> Tuple[BDDFunction, List[str]]:
    """BDD of 'all outputs determined by the predictor inputs alone'."""
    funcs = network_bdds(net)
    others = [pi for pi in net.inputs if pi not in predictor]
    manager = next(iter(funcs.values())).bdd
    determined = manager.true
    for out in net.outputs:
        f = funcs[out]
        g1 = f.forall(others)
        g0 = (~f).forall(others)
        determined = determined & (g1 | g0)
    return determined, others


def disable_probability(net: Network, predictor: Sequence[str],
                        input_probs: Optional[Dict[str, float]] = None
                        ) -> float:
    """P(LE = 0): fraction of cycles the non-predictor registers hold."""
    determined, _others = _determination_function(net, predictor)
    return determined.probability(input_probs or {})


def select_precompute_inputs(net: Network, subset_size: int,
                             input_probs: Optional[Dict[str, float]] = None,
                             exhaustive_limit: int = 12) -> List[str]:
    """Choose the predictor subset maximizing the disable probability.

    Exhaustive over input subsets when the input count is small, greedy
    growth otherwise (the search heuristic of [30]).
    """
    pis = list(net.inputs)
    if len(pis) <= exhaustive_limit:
        best: Tuple[float, List[str]] = (-1.0, [])
        for combo in combinations(pis, subset_size):
            p = disable_probability(net, combo, input_probs)
            if p > best[0]:
                best = (p, list(combo))
        return best[1]
    # A single input almost never determines the output, so greedy
    # growth is seeded with the best *pair* before extending singly.
    chosen: List[str] = []
    if subset_size >= 2:
        best_pair, best_p = None, -1.0
        for i, a in enumerate(pis):
            for b in pis[i + 1:]:
                p = disable_probability(net, [a, b], input_probs)
                if p > best_p:
                    best_pair, best_p = [a, b], p
        assert best_pair is not None
        chosen = best_pair
    while len(chosen) < subset_size:
        best_pi, best_p = None, -1.0
        for pi in pis:
            if pi in chosen:
                continue
            p = disable_probability(net, chosen + [pi], input_probs)
            if p > best_p:
                best_pi, best_p = pi, p
        assert best_pi is not None
        chosen.append(best_pi)
    return chosen


def _registered_version(net: Network, enables: Dict[str, Optional[str]]
                        ) -> Network:
    """Copy of a combinational net with every PI put behind a register
    whose enable is ``enables[pi]`` (None = always load)."""
    out = Network(net.name + "_seq")
    for pi in net.inputs:
        out.add_input(pi)
    for pi in net.inputs:
        out.add_latch(pi, pi + "_r", init=0, enable=enables.get(pi))
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            continue
        fanins = [fi + "_r" if fi in net.inputs else fi
                  for fi in node.fanins]
        new = Node(name, node.kind, node.gtype, fanins,
                   node.cover.copy() if node.cover is not None else None)
        new.attrs = dict(node.attrs)
        out.nodes[name] = new
    out.set_outputs(net.outputs)
    out._invalidate()
    # No check here: the caller may still need to add the enable node.
    return out


def sequential_precompute(net: Network, predictor: Sequence[str],
                          input_probs: Optional[Dict[str, float]] = None
                          ) -> PrecomputeResult:
    """Build the Figure-1 architecture around a combinational network.

    Returns both the gated design and an ungated registered baseline so
    experiments compare like with like (both have input registers).
    """
    predictor = list(predictor)
    determined, _others = _determination_function(net, predictor)
    # LE = 0 (hold) exactly when the predictor bits determine the output.
    le_cover = bdd_to_cover(~determined, predictor).minimize()
    p_disable = determined.probability(input_probs or {})

    baseline = _registered_version(net, {})
    baseline.check()

    gated = _registered_version(
        net, {pi: "_le" for pi in net.inputs if pi not in predictor})
    # LE watches the *incoming* predictor values, before the registers.
    gated.add_sop("_le", predictor, le_cover)
    gated._invalidate()
    gated.check()
    return PrecomputeResult(network=gated, baseline=baseline,
                            predictor_inputs=predictor,
                            disable_probability=p_disable,
                            le_literals=le_cover.num_literals())


def combinational_precompute(net: Network, predictor: Sequence[str],
                             input_probs: Optional[Dict[str, float]]
                             = None) -> PrecomputeResult:
    """The combinational (transparent-latch) variant of precomputation.

    For a single-output network f: compute ``det = g1 ∨ g0`` and
    ``g1 = ∀others f`` from the predictor inputs; shield every
    non-predictor input with ``AND(x, ¬det)`` and produce

        out = MUX(det, f(shielded inputs), g1).

    When the predictor determines the output, the shields quiesce the
    main cone and g1 supplies the answer; otherwise the shields are
    transparent.  The returned ``network`` replaces the original output
    in place of a latch-based architecture (no registers involved), and
    ``baseline`` is an untouched copy.
    """
    if len(net.outputs) != 1:
        raise ValueError("combinational precomputation needs a "
                         "single-output network")
    predictor = list(predictor)
    funcs = network_bdds(net)
    others = [pi for pi in net.inputs if pi not in predictor]
    f = funcs[net.outputs[0]]
    g1 = f.forall(others)
    g0 = (~f).forall(others)
    det = g1 | g0
    p_disable = det.probability(input_probs or {})
    det_cover = bdd_to_cover(det, predictor).minimize()
    g1_cover = bdd_to_cover(g1, predictor).minimize()

    baseline = net.copy(net.name + "_plain")
    gated = net.copy(net.name + "_precomp")
    old_out = gated.outputs[0]
    gated.outputs = []
    gated.add_sop("_det", predictor, det_cover)
    gated.add_sop("_g1", predictor, g1_cover)
    from repro.logic.gates import GateType

    gated.add_gate("_ndet", GateType.NOT, ["_det"])
    # Shield every reader of a non-predictor input.
    for pi in others:
        shield = f"_sh_{pi}"
        gated.add_gate(shield, GateType.AND, [pi, "_ndet"])
        for node in gated.nodes.values():
            if node.name == shield or node.is_source():
                continue
            if pi in node.fanins and node.name != shield:
                node.fanins = [shield if x == pi else x
                               for x in node.fanins]
    gated._invalidate()
    gated.add_gate("_out", GateType.MUX, ["_det", old_out, "_g1"])
    gated.set_output("_out")
    gated.check()
    return PrecomputeResult(network=gated, baseline=baseline,
                            predictor_inputs=predictor,
                            disable_probability=p_disable,
                            le_literals=det_cover.num_literals() +
                            g1_cover.num_literals())


def precomputed_comparator(n: int,
                           input_probs: Optional[Dict[str, float]] = None
                           ) -> PrecomputeResult:
    """The paper's Figure 1: an n-bit C > D comparator precomputed on the
    most significant bits C<n−1>, D<n−1>.

    LE = C<n−1> XNOR D<n−1>: when the MSBs differ the output is known and
    the n−1 low-order register pairs are disabled (probability 1/2 on
    uniform inputs).
    """
    from repro.logic.generators import comparator

    net = comparator(n)
    return sequential_precompute(net, [f"c{n - 1}", f"d{n - 1}"],
                                 input_probs)
