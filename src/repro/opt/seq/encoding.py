"""Low-power state encoding (Section III-C.1; [35], [47], [18]).

The register-switching power of an encoded FSM is the expected Hamming
distance between consecutive state codes:

    cost(E) = Σ_{(s,t)} w(s,t) · H(E(s), E(t))

with w the stationary edge weights from the STG's Markov analysis.
High-weight state pairs should get uni-distant codes, balanced against
the combinational logic the encoding induces — `evaluate_encoding`
synthesizes the FSM and measures total power so both effects are seen.

Encoders: natural (enumeration order), one-hot, a weight-greedy
constructive embedding, and simulated annealing over code permutations.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.opt.seq.stg import STG, synthesize_fsm
from repro.power.activity import sequential_activity
from repro.power.model import PowerParameters, PowerReport, power_report


def _hamming(a: int, b: int) -> int:
    return (a ^ b).bit_count()


def encoding_cost(stg: STG, encoding: Dict[str, int],
                  weights: Optional[Dict[Tuple[str, str], float]] = None,
                  input_probs: Optional[Sequence[float]] = None) -> float:
    """Expected flip-flop transitions per cycle under the encoding."""
    if weights is None:
        weights = stg.edge_weights(input_probs)
    return sum(w * _hamming(encoding[s], encoding[t])
               for (s, t), w in weights.items())


def encode_natural(stg: STG) -> Dict[str, int]:
    """States numbered in declaration order (the unoptimized baseline)."""
    return {s: i for i, s in enumerate(stg.states)}


def encode_onehot(stg: STG) -> Dict[str, int]:
    """One-hot encoding: every transition between distinct states costs
    exactly 2 flip-flop toggles, at the price of n flip-flops."""
    return {s: 1 << i for i, s in enumerate(stg.states)}


def encode_greedy(stg: STG,
                  input_probs: Optional[Sequence[float]] = None,
                  num_bits: Optional[int] = None) -> Dict[str, int]:
    """Constructive weight-greedy embedding.

    Edges are visited heaviest-first; each unplaced endpoint takes the
    free code of minimum Hamming distance from its (placed) partner —
    the "uni-distant codes for high-traffic pairs" intuition the paper
    states.
    """
    n = len(stg.states)
    bits = num_bits if num_bits is not None \
        else max(1, math.ceil(math.log2(max(2, n))))
    if (1 << bits) < n:
        raise ValueError("not enough code bits for the state count")
    free = set(range(1 << bits))
    weights = stg.edge_weights(input_probs)
    # Aggregate symmetric pair weights (excluding self-loops).
    pair_w: Dict[Tuple[str, str], float] = {}
    for (s, t), w in weights.items():
        if s == t:
            continue
        key = (min(s, t), max(s, t))
        pair_w[key] = pair_w.get(key, 0.0) + w
    order = sorted(pair_w.items(), key=lambda kv: -kv[1])
    encoding: Dict[str, int] = {}

    def place(state: str, near: Optional[int]) -> None:
        if state in encoding:
            return
        if near is None:
            code = min(free)
        else:
            code = min(free, key=lambda c: (_hamming(c, near), c))
        encoding[state] = code
        free.discard(code)

    for (s, t), _w in order:
        if s not in encoding and t not in encoding:
            place(s, None)
            place(t, encoding[s])
        elif s in encoding:
            place(t, encoding[s])
        else:
            place(s, encoding[t])
    for s in stg.states:
        place(s, None)
    return encoding


def encode_anneal(stg: STG,
                  input_probs: Optional[Sequence[float]] = None,
                  num_bits: Optional[int] = None, seed: int = 0,
                  iterations: int = 4000,
                  start: Optional[Dict[str, int]] = None
                  ) -> Dict[str, int]:
    """Simulated annealing over code assignments (swap / reassign moves),
    minimizing :func:`encoding_cost`."""
    rng = random.Random(seed)
    n = len(stg.states)
    bits = num_bits if num_bits is not None \
        else max(1, math.ceil(math.log2(max(2, n))))
    codes = list(range(1 << bits))
    weights = stg.edge_weights(input_probs)
    encoding = dict(start) if start is not None else encode_greedy(
        stg, input_probs, bits)
    cost = encoding_cost(stg, encoding, weights)
    best = dict(encoding)
    best_cost = cost
    temp = max(cost, 1e-3)
    cooling = 0.999
    states = stg.states
    used = set(encoding.values())
    for _ in range(iterations):
        a = rng.choice(states)
        if rng.random() < 0.5 and len(used) < len(codes):
            # Move a state to a free code.
            free = [c for c in codes if c not in used]
            new_code = rng.choice(free)
            old_code = encoding[a]
            encoding[a] = new_code
            new_cost = encoding_cost(stg, encoding, weights)
            if new_cost <= cost or \
                    rng.random() < math.exp((cost - new_cost) / temp):
                cost = new_cost
                used.discard(old_code)
                used.add(new_code)
            else:
                encoding[a] = old_code
        else:
            b = rng.choice(states)
            if a == b:
                continue
            encoding[a], encoding[b] = encoding[b], encoding[a]
            new_cost = encoding_cost(stg, encoding, weights)
            if new_cost <= cost or \
                    rng.random() < math.exp((cost - new_cost) / temp):
                cost = new_cost
            else:
                encoding[a], encoding[b] = encoding[b], encoding[a]
        if cost < best_cost:
            best, best_cost = dict(encoding), cost
        temp *= cooling
    return best


@dataclass
class EncodingResult:
    """Synthesis + power evaluation of one encoding."""

    encoding: Dict[str, int]
    register_cost: float        # expected FF transitions / cycle
    literals: int               # two-level logic complexity
    report: PowerReport

    @property
    def total_power(self) -> float:
        return self.report.total


def evaluate_encoding(stg: STG, encoding: Dict[str, int],
                      sequence_length: int = 2000, seed: int = 0,
                      input_probs: Optional[Sequence[float]] = None,
                      params: Optional[PowerParameters] = None
                      ) -> EncodingResult:
    """Synthesize the encoded FSM and measure its power on a random
    input sequence (register switching *and* induced logic)."""
    net = synthesize_fsm(stg, encoding)
    seq = stg.random_input_sequence(sequence_length, seed)
    vectors = [{f"x{i}": (v >> i) & 1 for i in range(stg.num_inputs)}
               for v in seq]
    activity = sequential_activity(net, vectors)
    report = power_report(net, activity, params)
    return EncodingResult(
        encoding=dict(encoding),
        register_cost=encoding_cost(stg, encoding,
                                    input_probs=input_probs),
        literals=net.num_literals(),
        report=report)
