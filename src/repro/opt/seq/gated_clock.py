"""Gated clocks (Section III-C.3; [9]) and FSM self-loop gating ([4]).

Two entry points:

* :func:`self_loop_clock_gating` — Benini/De Micheli: detect the STG's
  self-loop edges, synthesize the activation function Fa(x, s) that is 1
  exactly on those edges, and stop the state registers' clock when it
  holds (enable = ¬Fa).  The state cannot change on a self-loop, so the
  transformation is exact.
* :func:`convert_feedback_muxes` — the register-file idiom of [9]: a
  register fed by ``MUX(we, q, d)`` is rewritten as an enable-gated
  register, removing both the recirculating mux power and the clock
  power of idle cycles.

Clock power is modelled explicitly here (the main power model omits the
clock net): every un-gated flip-flop sees two clock-net transitions per
cycle on its clock-pin capacitance; a gated flip-flop sees them only in
enabled cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.logic.cube import Cube
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.logic.sop import Cover
from repro.opt.seq.stg import STG, synthesize_fsm
from repro.power.model import PowerParameters


def clock_power(net: Network, enable_probability: Dict[str, float],
                params: Optional[PowerParameters] = None) -> float:
    """Average clock-distribution power.

    ``enable_probability[latch_output]`` is the fraction of cycles in
    which the latch is actually clocked (1.0 when un-gated).
    """
    params = params or PowerParameters()
    cap = params.pin_cap_units * params.cap_unit
    total = 0.0
    for latch in net.latches:
        p_en = enable_probability.get(latch.output, 1.0)
        # Two clock-net transitions per enabled cycle.
        total += 0.5 * cap * params.vdd ** 2 * params.frequency * \
            2.0 * p_en
    return total


@dataclass
class GatedClockResult:
    """A clock-gated FSM plus its activation statistics."""

    network: Network
    baseline: Network
    activation_probability: float   # P(Fa = 1): cycles with clock stopped
    fa_literals: int


def self_loop_clock_gating(stg: STG, encoding: Dict[str, int],
                           input_probs: Optional[Sequence[float]] = None,
                           minimize: bool = True) -> GatedClockResult:
    """Build baseline and clock-gated implementations of an encoded FSM.

    The activation function Fa is the union of (input cube × state code)
    conditions of the STG's self-loop edges; the state registers get
    ``enable = ¬Fa``.  Holding the state on those cycles is exact, so
    the gated machine is cycle-equivalent to the baseline.
    """
    baseline = synthesize_fsm(stg, encoding, minimize=minimize,
                              name="fsm_base")
    gated = synthesize_fsm(stg, encoding, minimize=minimize,
                           name="fsm_gated")
    num_bits = max(1, max(encoding.values()).bit_length())
    n_in = stg.num_inputs
    n_vars = n_in + num_bits

    fa_cubes: List[Cube] = []
    for t in stg.transitions:
        if t.src != t.dst:
            continue
        lits = list(t.input_cube.literals())
        code = encoding[t.src]
        for j in range(num_bits):
            lits.append((n_in + j, (code >> j) & 1))
        fa_cubes.append(Cube.from_literals(n_vars, lits))
    fa_cover = Cover(n_vars, fa_cubes)
    if minimize:
        fa_cover = fa_cover.minimize()
    enable_cover = fa_cover.complement().minimize()

    fanins = [f"x{i}" for i in range(n_in)] + \
        [f"s{j}" for j in range(num_bits)]
    gated.add_sop("_fa_n", fanins, enable_cover)
    for latch in gated.latches:
        latch.enable = "_fa_n"
    gated._invalidate()
    gated.check()

    p_active = stg.self_loop_probability(input_probs)
    return GatedClockResult(network=gated, baseline=baseline,
                            activation_probability=p_active,
                            fa_literals=fa_cover.num_literals())


def convert_feedback_muxes(net: Network) -> int:
    """Rewrite ``q <- MUX(we, q, d)`` recirculation as enable latches.

    Detects latches whose data input is a MUX whose "hold" leg reads the
    latch output (directly or through BUFs).  Returns the number of
    latches converted; the mux (and feedback buffers) are swept.
    """

    def resolves_to(name: str, target: str) -> bool:
        seen = set()
        while name not in seen:
            seen.add(name)
            if name == target:
                return True
            node = net.nodes.get(name)
            if node is None or node.kind != "gate" or \
                    node.gtype is not GateType.BUF:
                return False
            name = node.fanins[0]
        return False

    converted = 0
    for latch in net.latches:
        data_node = net.nodes.get(latch.data)
        if data_node is None or data_node.kind != "gate" or \
                data_node.gtype is not GateType.MUX:
            continue
        sel, d0, d1 = data_node.fanins
        if resolves_to(d0, latch.output):
            latch.data, latch.enable = d1, sel
            converted += 1
        elif resolves_to(d1, latch.output):
            # Selected-high leg recirculates: enable is the inverted
            # select; reuse an inverter per select signal.
            inv = f"_gcinv_{sel}"
            if inv not in net.nodes:
                net.add_gate(inv, GateType.NOT, [sel])
            latch.data, latch.enable = d0, inv
            converted += 1
    net._invalidate()
    net.sweep()
    return converted
