"""State transition graphs: KISS I/O, Markov analysis, FSM synthesis.

The sequential optimizations of Section III-C.1 work on the STG level:
state encoding needs the *weighted* switching activity between states,
which requires the stationary distribution of the STG viewed as a Markov
chain under given input statistics.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.logic.cube import Cube

from repro.logic.netlist import Network
from repro.logic.sop import Cover


@dataclass(frozen=True)
class Transition:
    """One STG edge: on ``input_cube`` move ``src -> dst`` emitting
    ``output`` (a '01-' string, one char per FSM output)."""

    input_cube: Cube
    src: str
    dst: str
    output: str


class STG:
    """A Moore/Mealy state transition graph (KISS semantics)."""

    def __init__(self, num_inputs: int, num_outputs: int,
                 states: Optional[Sequence[str]] = None,
                 reset_state: Optional[str] = None):
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.states: List[str] = list(states) if states else []
        self.transitions: List[Transition] = []
        self.reset_state = reset_state

    def add_state(self, name: str) -> str:
        if name not in self.states:
            self.states.append(name)
            if self.reset_state is None:
                self.reset_state = name
        return name

    def add_transition(self, input_cube: Union[str, Cube], src: str,
                       dst: str, output: str = "") -> Transition:
        if isinstance(input_cube, str):
            input_cube = Cube.from_string(input_cube)
        if input_cube.num_vars != self.num_inputs:
            raise ValueError("input cube arity mismatch")
        if len(output) != self.num_outputs:
            raise ValueError("output width mismatch")
        self.add_state(src)
        self.add_state(dst)
        t = Transition(input_cube, src, dst, output)
        self.transitions.append(t)
        return t

    def next_state(self, state: str, inputs: int) -> Tuple[str, str]:
        """Simulate one step; unspecified input combinations self-loop
        with all-zero outputs."""
        for t in self.transitions:
            if t.src == state and t.input_cube.covers_minterm(inputs):
                return t.dst, t.output
        return state, "0" * self.num_outputs

    # -- Markov analysis -----------------------------------------------------

    def transition_matrix(self,
                          input_probs: Optional[Sequence[float]] = None
                          ) -> Dict[str, Dict[str, float]]:
        """P(s -> t) under independent input bits (default p=0.5 each)."""
        probs = list(input_probs) if input_probs is not None \
            else [0.5] * self.num_inputs

        def cube_prob(cube: Cube) -> float:
            p = 1.0
            for var, phase in cube.literals():
                p *= probs[var] if phase else 1.0 - probs[var]
            return p

        matrix: Dict[str, Dict[str, float]] = \
            {s: {} for s in self.states}
        specified: Dict[str, float] = {s: 0.0 for s in self.states}
        for t in self.transitions:
            p = cube_prob(t.input_cube)
            matrix[t.src][t.dst] = matrix[t.src].get(t.dst, 0.0) + p
            specified[t.src] += p
        for s in self.states:
            missing = 1.0 - specified[s]
            if missing > 1e-9:
                matrix[s][s] = matrix[s].get(s, 0.0) + missing
        return matrix

    def stationary_distribution(self,
                                input_probs: Optional[Sequence[float]]
                                = None, iterations: int = 500
                                ) -> Dict[str, float]:
        """Stationary state probabilities by power iteration."""
        matrix = self.transition_matrix(input_probs)
        pi = {s: 1.0 / len(self.states) for s in self.states}
        for _ in range(iterations):
            nxt = {s: 0.0 for s in self.states}
            for s, row in matrix.items():
                ps = pi[s]
                for t, p in row.items():
                    nxt[t] += ps * p
            delta = sum(abs(nxt[s] - pi[s]) for s in self.states)
            pi = nxt
            if delta < 1e-12:
                break
        return pi

    def edge_weights(self, input_probs: Optional[Sequence[float]] = None
                     ) -> Dict[Tuple[str, str], float]:
        """w(s, t) = π(s)·P(s→t): expected traversals per cycle."""
        matrix = self.transition_matrix(input_probs)
        pi = self.stationary_distribution(input_probs)
        weights: Dict[Tuple[str, str], float] = {}
        for s, row in matrix.items():
            for t, p in row.items():
                weights[(s, t)] = pi[s] * p
        return weights

    def self_loop_probability(self,
                              input_probs: Optional[Sequence[float]]
                              = None) -> float:
        """Expected fraction of cycles spent on self-loop edges — the
        clock-gating opportunity of [4]."""
        return sum(w for (s, t), w in
                   self.edge_weights(input_probs).items() if s == t)

    def random_input_sequence(self, length: int, seed: int = 0
                              ) -> List[int]:
        rng = random.Random(seed)
        return [rng.getrandbits(self.num_inputs) if self.num_inputs
                else 0 for _ in range(length)]

    def __repr__(self) -> str:
        return (f"STG({len(self.states)} states, "
                f"{len(self.transitions)} transitions, "
                f"{self.num_inputs} in / {self.num_outputs} out)")


def read_kiss(source: Union[str, TextIO]) -> STG:
    """Parse the KISS2 FSM interchange format."""
    if isinstance(source, str):
        source = io.StringIO(source)
    num_inputs = num_outputs = None
    reset = None
    rows: List[Tuple[str, str, str, str]] = []
    for raw in source:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tok = line.split()
        if tok[0] == ".i":
            num_inputs = int(tok[1])
        elif tok[0] == ".o":
            num_outputs = int(tok[1])
        elif tok[0] in (".s", ".p", ".e", ".end"):
            continue
        elif tok[0] == ".r":
            reset = tok[1]
        elif len(tok) == 4:
            rows.append((tok[0], tok[1], tok[2], tok[3]))
        else:
            raise ValueError(f"bad KISS line: {line!r}")
    if num_inputs is None or num_outputs is None:
        raise ValueError("KISS file missing .i/.o")
    stg = STG(num_inputs, num_outputs, reset_state=reset)
    if reset:
        stg.add_state(reset)
    for inp, src, dst, out in rows:
        stg.add_transition(inp, src, dst, out)
    return stg


def write_kiss(stg: STG) -> str:
    lines = [f".i {stg.num_inputs}", f".o {stg.num_outputs}",
             f".s {len(stg.states)}", f".p {len(stg.transitions)}"]
    if stg.reset_state:
        lines.append(f".r {stg.reset_state}")
    for t in stg.transitions:
        lines.append(f"{t.input_cube.to_string()} {t.src} {t.dst} "
                     f"{t.output}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def synthesize_fsm(stg: STG, encoding: Dict[str, int],
                   minimize: bool = True,
                   name: str = "fsm") -> Network:
    """Two-level synthesis of an encoded FSM.

    ``encoding[state]`` is the integer code.  The result is a sequential
    :class:`Network` with inputs ``x0..``, state flip-flops ``s0..`` and
    outputs ``z0..``; next-state and output functions are (optionally
    minimized) SOP nodes over inputs and present-state bits.
    """
    num_bits = max(1, max(encoding.values()).bit_length()) \
        if encoding else 1
    codes = set()
    for state, code in encoding.items():
        if code in codes:
            raise ValueError(f"duplicate code {code} for {state!r}")
        codes.add(code)
    n_in = stg.num_inputs
    n_vars = n_in + num_bits

    net = Network(name)
    for i in range(n_in):
        net.add_input(f"x{i}")
    reset_code = encoding[stg.reset_state] if stg.reset_state else 0
    for j in range(num_bits):
        net.add_latch(f"ns{j}", f"s{j}", init=(reset_code >> j) & 1)

    ns_cubes: List[List[Cube]] = [[] for _ in range(num_bits)]
    out_cubes: List[List[Cube]] = [[] for _ in range(stg.num_outputs)]
    for t in stg.transitions:
        src_code = encoding[t.src]
        dst_code = encoding[t.dst]
        lits = list(t.input_cube.literals())
        for j in range(num_bits):
            lits.append((n_in + j, (src_code >> j) & 1))
        cube = Cube.from_literals(n_vars, lits)
        for j in range(num_bits):
            if (dst_code >> j) & 1:
                ns_cubes[j].append(cube)
        for k, ch in enumerate(t.output):
            if ch == "1":
                out_cubes[k].append(cube)

    fanins = [f"x{i}" for i in range(n_in)] + \
        [f"s{j}" for j in range(num_bits)]
    for j in range(num_bits):
        cover = Cover(n_vars, ns_cubes[j])
        if minimize:
            cover = cover.minimize()
        net.add_sop(f"ns{j}", fanins, cover)
    for k in range(stg.num_outputs):
        cover = Cover(n_vars, out_cubes[k])
        if minimize:
            cover = cover.minimize()
        net.add_sop(f"z{k}", fanins, cover)
        net.set_output(f"z{k}")
    net.check()
    return net
