"""A suite of controller FSMs for the sequential experiments.

Stands in for the MCNC FSM benchmark set (see DESIGN.md substitutions):
small, completely specified controllers with the structural features
the sequential optimizations exploit — heavy self-loops (clock gating),
skewed stationary distributions (encoding), and redundant states
(minimization).  All are given in KISS2 text so they also exercise the
parser.
"""

from __future__ import annotations

from typing import Dict, List

from repro.opt.seq.stg import STG, read_kiss

#: Traffic-light controller: long self-loops on a timer input.
TRAFFIC = """
.i 2
.o 2
.r green
0- green  green  10
1- green  yellow 10
-0 yellow yellow 11
-1 yellow red    11
0- red    red    01
1- red    green  01
"""

#: 1011 sequence detector (Mealy): dense transition structure.
DETECTOR = """
.i 1
.o 1
.r s0
0 s0 s0 0
1 s0 s1 0
0 s1 s2 0
1 s1 s1 0
0 s2 s0 0
1 s2 s3 0
0 s3 s2 0
1 s3 s1 1
"""

#: Vending machine accepting 5/10 cent coins toward 15 cents.
VENDING = """
.i 2
.o 1
.r c0
00 c0  c0  0
01 c0  c5  0
10 c0  c10 0
11 c0  c0  0
00 c5  c5  0
01 c5  c10 0
10 c5  c0  1
11 c5  c5  0
00 c10 c10 0
01 c10 c0  1
10 c10 c0  1
11 c10 c10 0
"""

#: Bus arbiter for two requesters with hold.
ARBITER = """
.i 2
.o 2
.r idle
00 idle idle 00
1- idle g0   00
01 idle g1   00
1- g0   g0   10
0- g0   idle 10
-1 g1   g1   01
-0 g1   idle 01
"""

#: Shift-register-like machine with redundant duplicated states
#: (state-minimization workload: 6 states reduce to 3).
REDUNDANT = """
.i 1
.o 1
.r a0
0 a0 a0 0
1 a0 a1 0
0 a1 a1 0
1 a1 a2 1
0 a2 a2 1
1 a2 a0 0
0 b0 b0 0
1 b0 b1 0
0 b1 b1 0
1 b1 b2 1
0 b2 b2 1
1 b2 b0 0
"""

#: Elevator controller for three floors.
ELEVATOR = """
.i 2
.o 2
.r f1
00 f1 f1 00
01 f1 f2 10
10 f1 f3 10
11 f1 f1 00
00 f2 f2 00
01 f2 f1 01
10 f2 f3 10
11 f2 f2 00
00 f3 f3 00
01 f3 f2 01
10 f3 f1 01
11 f3 f3 00
"""

_SOURCES: Dict[str, str] = {
    "traffic": TRAFFIC,
    "detector": DETECTOR,
    "vending": VENDING,
    "arbiter": ARBITER,
    "redundant": REDUNDANT,
    "elevator": ELEVATOR,
}


def benchmark_names() -> List[str]:
    return sorted(_SOURCES)


def load_benchmark(name: str) -> STG:
    """Parse one of the bundled controller FSMs."""
    try:
        return read_kiss(_SOURCES[name])
    except KeyError:
        raise ValueError(
            f"unknown FSM benchmark {name!r}; available: "
            f"{', '.join(benchmark_names())}") from None


def all_benchmarks() -> Dict[str, STG]:
    return {name: load_benchmark(name) for name in benchmark_names()}
