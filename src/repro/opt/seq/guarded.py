"""Guarded evaluation / operand isolation (Section III-C.4; [44]).

When a multiplexer selects between two subcircuits, the deselected one
is unobservable (its value lies in the mux's observability don't-care
set).  Guarding its inputs — here with shield AND gates that force the
cone to a quiet constant while deselected, the operand-isolation variant
of the transparent-latch scheme in [44] — suppresses all switching
inside the idle cone without changing any output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.logic.gates import GateType
from repro.logic.netlist import Network


@dataclass
class GuardResult:
    """Summary of an operand-isolation pass."""

    cones_isolated: int = 0
    shields_added: int = 0
    nodes_guarded: int = 0
    guards: List[Tuple[str, str]] = field(default_factory=list)
    # (mux node, guarded leg) pairs


def _transitive_fanin(net: Network, root: str) -> Set[str]:
    seen: Set[str] = set()
    stack = [root]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        node = net.nodes[name]
        if not node.is_source():
            stack.extend(node.fanins)
    return seen


def _exclusive_cone(net: Network, leg: str, mux: str,
                    fanouts: Dict[str, List[str]]) -> Set[str]:
    """Gates in leg's fan-in whose every fanout path stays inside the
    cone (so they are unobservable whenever the mux deselects the leg)."""
    tfi = {n for n in _transitive_fanin(net, leg)
           if not net.nodes[n].is_source()}
    exclusive: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in tfi:
            if name in exclusive or name in net.outputs:
                continue
            readers = fanouts[name]
            ok = True
            for r in readers:
                if r == mux and name == leg:
                    continue
                if r not in exclusive:
                    ok = False
                    break
            # Latch data/enable references appear in fanouts too and are
            # never exclusive.
            if ok and readers.count(mux) <= 1:
                exclusive.add(name)
                changed = True
    return exclusive


def guarded_evaluation(net: Network, min_cone_size: int = 2,
                       input_probs: Optional[Dict[str, float]] = None,
                       max_active_probability: float = 0.25
                       ) -> GuardResult:
    """Isolate the exclusive input cones of every MUX leg (in place).

    For a mux ``m = MUX(s, d0, d1)``, the d0-cone is shielded with
    ``AND(x, ¬s)`` on each boundary signal x (active when s = 0) and the
    d1-cone with ``AND(x, s)``.  Only cones of at least
    ``min_cone_size`` gates are worth the shield gates' own power, and a
    leg is only isolated when its selection probability (estimated by
    probability propagation from ``input_probs``) is at most
    ``max_active_probability`` — shielding a frequently-selected cone
    is counter-productive: the shields add capacitance, and every
    select toggle slams the whole cone to zero and back.  The default
    threshold (0.25) is conservative; pass 1.0 to force isolation.
    """
    from repro.power.activity import signal_probability_propagation

    result = GuardResult()
    sel_probs = signal_probability_propagation(net, input_probs)
    muxes = [n.name for n in net.nodes.values()
             if n.kind == "gate" and n.gtype is GateType.MUX]
    claimed: Set[str] = set()
    for mux in muxes:
        sel, d0, d1 = net.nodes[mux].fanins
        p_sel = sel_probs.get(sel, 0.5)
        for leg, active_high in ((d0, False), (d1, True)):
            p_active = p_sel if active_high else 1.0 - p_sel
            if p_active > max_active_probability:
                continue
            fanouts = net.fanouts()
            node = net.nodes[leg]
            if node.is_source() or leg in claimed:
                continue
            cone = _exclusive_cone(net, leg, mux, fanouts)
            if leg not in cone or len(cone) < min_cone_size:
                continue
            if cone & claimed:
                continue
            # Boundary: signals read by cone gates but outside the cone.
            boundary: Set[Tuple[str, str]] = set()
            for name in cone:
                for fi in net.nodes[name].fanins:
                    if fi not in cone:
                        boundary.add((name, fi))
            if not boundary:
                continue
            if active_high:
                guard = sel
            else:
                guard = f"_gd_inv_{mux}"
                if guard not in net.nodes:
                    net.add_gate(guard, GateType.NOT, [sel])
            shields: Dict[str, str] = {}
            for reader, src in sorted(boundary):
                if src == guard:
                    continue
                shield = shields.get(src)
                if shield is None:
                    shield = net.fresh_name(f"_gd_{mux}_")
                    net.add_gate(shield, GateType.AND, [src, guard])
                    shields[src] = shield
                    result.shields_added += 1
                net.replace_fanin(reader, src, shield)
            claimed |= cone
            result.cones_isolated += 1
            result.nodes_guarded += len(cone)
            result.guards.append((mux, leg))
    net._invalidate()
    return result
