"""Standard pass adapters for the flow engine.

Each adapter wraps one optimization entry point as a registered
:class:`repro.core.passes.Pass` so declarative flows (``repro flow
--spec``) and the built-in :func:`repro.core.flow.low_power_flow` can
run it under trial-copy/rollback semantics.  Importing this module
populates the registry.

Adapter contract: ``apply(trial, ctx, params)`` may mutate ``trial`` in
place (return ``None``) or return a replacement network; all simulation
inside an adapter must derive from ``ctx.num_vectors`` / ``ctx.seed``
so a flow is reproducible from its trace header.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.passes import Pass, PassContext, register_pass
from repro.library.cells import generic_library
from repro.logic.netlist import Network
from repro.power.activity import activity_from_simulation


@register_pass("dontcare")
def _dontcare(params: Dict[str, Any]) -> Pass:
    """Don't-care re-minimization (§II-B).  ``size_cap`` skips the pass
    (outcome ``skipped``, reason ``size-cap``) on larger networks
    instead of silently omitting it."""
    from repro.opt.logic.dontcare import dontcare_power_optimization

    size_cap = params.get("size_cap")

    def guard(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> Optional[str]:
        if size_cap is not None and net.num_gates() > int(size_cap):
            return "size-cap"
        return None

    def apply(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> None:
        dontcare_power_optimization(net, ctx.input_probs)

    return Pass(name="dontcare", apply=apply, params=params,
                guard=guard,
                max_power_regression=params.get(
                    "max_power_regression"))


@register_pass("extract")
def _extract(params: Dict[str, Any]) -> Pass:
    """Power-aware kernel extraction (§II-C)."""
    from repro.opt.logic.kernels import extract_kernels

    def apply(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> None:
        extract_kernels(net, p.get("objective", "power"),
                        ctx.input_probs)

    return Pass(name="extract", apply=apply, params=params,
                max_power_regression=params.get(
                    "max_power_regression"))


@register_pass("map")
def _map(params: Dict[str, Any]) -> Pass:
    """Power-driven technology mapping (§II-D)."""
    from repro.opt.logic.mapping import tech_map

    def apply(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> Network:
        library = ctx.library or generic_library()
        res = tech_map(net, library, p.get("objective", "power"),
                       seed=ctx.seed)
        return res.mapped

    return Pass(name="map", apply=apply, params=params,
                max_power_regression=params.get(
                    "max_power_regression"))


@register_pass("size")
def _size(params: Dict[str, Any]) -> Pass:
    """Slack-recycling transistor sizing (§III-B): downsizing may only
    recycle slack, so the unsized design's critical delay is held."""
    from repro.opt.circuit.sizing import (critical_path_delay,
                                          size_for_power)

    def apply(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> None:
        activity, _ = activity_from_simulation(
            net, ctx.num_vectors, ctx.seed, ctx.input_probs)
        ones = {n: 1.0 for n in net.nodes}
        target = critical_path_delay(net, ones, ctx.params)
        size_for_power(net, activity, delay_target=target,
                       params=ctx.params)

    return Pass(name="size", apply=apply, params=params,
                max_power_regression=params.get(
                    "max_power_regression"))


@register_pass("balance")
def _balance(params: Dict[str, Any]) -> Pass:
    """Path-balancing buffer insertion (§III-A.2)."""
    from repro.opt.logic.balance import balance_paths

    def apply(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> None:
        max_buffers = p.get("max_buffers")
        balance_paths(
            net, selective=bool(p.get("selective", False)),
            min_skew=float(p.get("min_skew", 1.0)),
            max_buffers=None if max_buffers is None
            else int(max_buffers),
            buffer_size=float(p.get("buffer_size", 0.25)))

    return Pass(name="balance", apply=apply, params=params,
                max_power_regression=params.get(
                    "max_power_regression"))


@register_pass("reorder")
def _reorder(params: Dict[str, Any]) -> Pass:
    """Transistor stack reordering (§III-B): put the low-probability
    signal nearest the output to cut internal-node switching."""
    from repro.opt.circuit.reorder import reorder_network_stacks

    def apply(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> None:
        reorder_network_stacks(net, input_probs=ctx.input_probs,
                               num_vectors=ctx.num_vectors,
                               seed=ctx.seed)

    return Pass(name="reorder", apply=apply, params=params,
                max_power_regression=params.get(
                    "max_power_regression"))


@register_pass("sweep")
def _sweep(params: Dict[str, Any]) -> Pass:
    """Remove dangling logic left behind by earlier passes."""

    def apply(net: Network, ctx: PassContext,
              p: Dict[str, Any]) -> None:
        net.sweep()

    return Pass(name="sweep", apply=apply, params=params)
