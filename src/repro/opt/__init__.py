"""Low-power optimizations at the circuit, logic, sequential and
datapath levels (Sections II and III of the paper)."""
