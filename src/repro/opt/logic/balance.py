"""Path balancing by unit-delay buffer insertion (Section III-A.2).

Spurious transitions arise when the paths converging at a gate have
unequal delays.  Inserting unit-delay buffers on the early inputs
equalizes path lengths without increasing the critical delay, trading
buffer capacitance for glitch power — exactly the trade studied by the
transition-reduction multiplier of [25].

``balance_paths`` supports full balancing (every skew removed) and a
selective mode that only spends buffers where the expected glitch saving
exceeds the buffer's own switching cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.power.activity import activity_from_simulation

@dataclass
class BalanceResult:
    """Outcome of a balancing pass."""

    buffers_added: int
    skew_before: float      # sum of input-arrival skews over all gates
    skew_after: float
    depth_before: float
    depth_after: float


def _total_skew(net: Network) -> float:
    arr = net.levels()
    total = 0.0
    for node in net.nodes.values():
        if node.is_source() or len(node.fanins) < 2:
            continue
        times = [arr[fi] for fi in node.fanins]
        total += sum(max(times) - t for t in times)
    return total


def balance_paths(net: Network, selective: bool = False,
                  activity: Optional[Dict[str, float]] = None,
                  min_skew: float = 1.0,
                  max_buffers: Optional[int] = None,
                  buffer_size: float = 0.25) -> BalanceResult:
    """Insert unit-delay buffers to equalize converging path delays.

    In selective mode only fanin edges whose skew is at least
    ``min_skew`` *and* whose gate shows nonzero activity (a proxy for
    glitch exposure) are padded, and at most ``max_buffers`` buffers are
    spent, largest skews first.  Modifies ``net`` in place.

    ``buffer_size`` is the transistor-size factor given to the inserted
    buffers (default: minimum-size delay elements).  The paper's caveat
    — "the addition of buffers increases capacitance which may offset
    the reduction in switching activity" — is a real effect here: with
    full-size buffers (size 1.0) the capacitance overhead typically
    exceeds the glitch saving; with minimum-size delay buffers the
    trade depends on how expensive the protected logic is.
    """
    depth_before = net.depth()
    skew_before = _total_skew(net)
    if selective and activity is None:
        activity, _ = activity_from_simulation(net, num_vectors=512)

    arr = net.levels()
    # Collect (skew, gate, fanin, slot) work items from the original
    # arrival profile; insertion is done afterwards so arrival times are
    # consistent while deciding.
    items = []
    for node in list(net.nodes.values()):
        if node.is_source() or len(node.fanins) < 2:
            continue
        latest = max(arr[fi] for fi in node.fanins)
        for slot, fi in enumerate(node.fanins):
            skew = latest - arr[fi]
            if skew <= 0:
                continue
            if selective:
                if skew < min_skew:
                    continue
                if activity is not None and \
                        activity.get(node.name, 0.0) <= 0.0:
                    continue
            items.append((skew, node.name, fi, slot))
    items.sort(key=lambda it: -it[0])

    added = 0
    for skew, gate, fanin, slot in items:
        need = int(round(skew))
        if max_buffers is not None:
            need = min(need, max_buffers - added)
        if need <= 0:
            if max_buffers is not None:
                break
            continue
        src = fanin
        node = net.nodes[gate]
        # The fanin list may have shifted if this gate got earlier edits;
        # re-locate by slot where possible.
        if slot >= len(node.fanins):
            continue
        current = node.fanins[slot]
        if current != fanin and not current.startswith("_bal"):
            continue
        for _ in range(need):
            buf = net.fresh_name("_bal")
            net.add_gate(buf, GateType.BUF, [src])
            net.nodes[buf].attrs["size"] = buffer_size
            src = buf
            added += 1
        node.fanins[slot] = src
        net._invalidate()
        if max_buffers is not None and added >= max_buffers:
            break
    return BalanceResult(buffers_added=added,
                         skew_before=skew_before,
                         skew_after=_total_skew(net),
                         depth_before=depth_before,
                         depth_after=net.depth())
