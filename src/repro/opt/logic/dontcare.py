"""Don't-care based node optimization targeting power (Section III-A.1).

For each internal node we compute its *controllability* don't-cares
(fanin combinations that can never occur) and *observability*
don't-cares (fanin combinations under which the node's value cannot
reach any output), both via global BDDs.  The node's cover is then
re-minimized against the don't-care set, choosing among the legal covers
the one that minimizes the node's expected switching contribution
``2·p·(1−p)·C`` — the power-aware exploitation of don't-cares from
[38] (Shen et al.) refined by [19] (Iman & Pedram).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bdd.bdd import BDD, BDDFunction
from repro.bdd.circuit import network_bdds
from repro.logic.cube import Cube
from repro.logic.netlist import Network, Node
from repro.logic.sop import Cover
from repro.logic.transform import node_cover
from repro.power.activity import (SimulationCache,
                                  activity_from_probability,
                                  activity_from_simulation,
                                  signal_probability_propagation)
from repro.power.model import node_capacitance


def _bdd_to_cover(func: BDDFunction, var_order: List[str]) -> Cover:
    """Enumerate the BDD's paths-to-TRUE as cubes over ``var_order``."""
    bdd = func.bdd
    index = {name: i for i, name in enumerate(var_order)}
    n = len(var_order)
    cubes: List[Cube] = []

    def walk(node: int, lits: List[Tuple[int, int]]) -> None:
        if node == BDD.FALSE:
            return
        if node == BDD.TRUE:
            cubes.append(Cube.from_literals(n, lits))
            return
        name = bdd.var_names[bdd._level[node]]
        var = index[name]
        walk(bdd._lo[node], lits + [(var, 0)])
        walk(bdd._hi[node], lits + [(var, 1)])

    walk(func.node, [])
    return Cover(n, cubes).sccc()


def _fanin_space_image(net: Network, node: Node,
                       funcs: Dict[str, BDDFunction],
                       bdd: BDD, aux_names: List[str]) -> BDDFunction:
    """Image of the reachable input space on the node's fanin space.

    Returns a BDD over the auxiliary variables ``aux_names`` (one per
    fanin) that is 1 exactly on fanin combinations some PI assignment
    produces.
    """
    relation = bdd.true
    for aux, fi in zip(aux_names, node.fanins):
        y = bdd.var(aux)
        f = funcs[fi]
        relation = relation & ~(y ^ f)
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    return relation.exists(sources)


def controllability_dont_cares(net: Network, node_name: str,
                               funcs: Optional[Dict[str, BDDFunction]]
                               = None) -> Cover:
    """CDC set of a node as a cover over its fanins."""
    node = net.node(node_name)
    if funcs is None:
        funcs = network_bdds(net)
    bdd = next(iter(funcs.values())).bdd
    aux = [f"__cdc_{node_name}_{i}" for i in range(len(node.fanins))]
    image = _fanin_space_image(net, node, funcs, bdd, aux)
    return _bdd_to_cover(~image, aux)


def observability_dont_cares(net: Network, node_name: str,
                             funcs: Optional[Dict[str, BDDFunction]]
                             = None) -> BDDFunction:
    """ODC set over the primary inputs: assignments under which flipping
    the node changes no primary output."""
    if funcs is None:
        funcs = network_bdds(net)
    bdd = next(iter(funcs.values())).bdd
    # Rebuild output functions with the node replaced by a free variable,
    # then check insensitivity to that variable.
    shadow = f"__odc_{node_name}"
    y = bdd.var(shadow)
    alt: Dict[str, BDDFunction] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if name == node_name:
            alt[name] = y
            continue
        if node.is_source():
            alt[name] = funcs[name]
            continue
        cover = node_cover(node)
        fanin_funcs = [alt[fi] for fi in node.fanins]
        acc = bdd.false
        for cube in cover:
            term = bdd.true
            for var, phase in cube.literals():
                lit = fanin_funcs[var]
                term = term & (lit if phase else ~lit)
                if term.is_false:
                    break
            acc = acc | term
        alt[name] = acc
    odc = bdd.true
    for out in net.outputs:
        f1 = alt[out].restrict({shadow: 1})
        f0 = alt[out].restrict({shadow: 0})
        odc = odc & ~(f1 ^ f0)
    return odc


@dataclass
class DontCareResult:
    """Summary of a don't-care optimization pass."""

    nodes_changed: int
    switched_cap_before: float
    switched_cap_after: float
    literals_before: int
    literals_after: int

    @property
    def power_saving(self) -> float:
        if self.switched_cap_before == 0.0:
            return 0.0
        return 1.0 - self.switched_cap_after / self.switched_cap_before


def _node_cost(cover: Cover, fanin_probs: List[float],
               load_cap: float) -> float:
    """Local power cost of one candidate cover.

    The node's switched capacitance is its (literal-dependent) self
    capacitance plus the external load it drives; a small literal term
    breaks ties toward smaller covers.
    """
    p = cover.probability(fanin_probs)
    activity = activity_from_probability(p)
    self_cap = 0.5 * (2 * cover.num_literals() + 2)
    return activity * (self_cap + load_cap) + 0.05 * cover.num_literals()


def dontcare_power_optimization(net: Network,
                                input_probs: Optional[Dict[str, float]]
                                = None,
                                use_observability: bool = True,
                                max_fanins: int = 10,
                                estimator: str = "simulation",
                                num_vectors: int = 512,
                                seed: int = 0) -> DontCareResult:
    """In-place don't-care re-minimization of every eligible node.

    Nodes are visited in topological order; candidate covers are scored
    with the fast probability-propagation model, but each rewrite is
    accepted only if the *global* switched-capacitance estimate improves
    (the transitive-fanout awareness of [19]).  ``estimator`` selects
    that global check: ``"simulation"`` (Monte-Carlo, reconvergence-
    aware, the default) or ``"propagation"`` (faster, optimistic).
    """
    if estimator not in ("simulation", "propagation"):
        raise ValueError("estimator must be 'simulation' or "
                         "'propagation'")
    # Work on the SOP view so the new covers can be installed in place.
    for name in list(net.nodes):
        node = net.nodes[name]
        if node.kind == "gate" and node.fanins:
            from repro.logic.transform import gate_cover

            cover = gate_cover(node.gtype, len(node.fanins))
            new = Node(name, "sop", fanins=list(node.fanins), cover=cover)
            new.attrs = dict(node.attrs)
            net.nodes[name] = new
    net._invalidate()

    probs = signal_probability_propagation(net, input_probs)

    # Monte-Carlo state shared across the pass: the global cost check
    # after each candidate rewrite re-simulates only the rewritten
    # node's transitive fanout cone (repro.sim.compiled) instead of the
    # whole network.
    sim_cache = SimulationCache() if estimator == "simulation" else None

    def total_cost(dirty=None,
                   cache: Optional[SimulationCache] = None
                   ) -> Tuple[float, int]:
        if estimator == "simulation":
            act, _p = activity_from_simulation(
                net, num_vectors, seed, input_probs,
                reuse=cache if cache is not None else sim_cache,
                dirty=dirty)
        else:
            p = signal_probability_propagation(net, input_probs)
            act = {n: activity_from_probability(p[n]) for n in p}
        cap = 0.0
        lits = 0
        for name, node in net.nodes.items():
            if node.is_source():
                continue
            cap += act.get(name, 0.0) * node_capacitance(net, name)
            lits += node.cover.num_literals() if node.cover else 0
        return cap, lits

    cap_before, lits_before = total_cost()
    funcs = network_bdds(net)
    changed = 0
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source() or node.kind != "sop" or not node.fanins:
            continue
        if len(node.fanins) > max_fanins:
            continue
        dc = controllability_dont_cares(net, name, funcs)
        if use_observability:
            odc_global = observability_dont_cares(net, name, funcs)
            if not odc_global.is_false:
                bdd = odc_global.bdd
                aux = [f"__odcimg_{name}_{i}"
                       for i in range(len(node.fanins))]
                relation = bdd.true
                for a, fi in zip(aux, node.fanins):
                    y = bdd.var(a)
                    relation = relation & ~(y ^ funcs[fi])
                sources = [n.name for n in net.nodes.values()
                           if n.is_source()]
                img = (relation & odc_global).exists(sources)
                # Fanin combos reachable *only* under the ODC condition.
                reach_all = relation.exists(sources)
                non_odc = (relation & ~odc_global).exists(sources)
                odc_cover = _bdd_to_cover(reach_all & img & ~non_odc, aux)
                dc = dc.union(odc_cover)
        if dc.is_empty():
            continue
        on = node.cover
        fanin_probs = [probs[fi] for fi in node.fanins]
        self_cap = 0.5 * (2 * on.num_literals() + 2)
        load = node_capacitance(net, name) - self_cap
        candidates = [on,
                      on.minimize(dc),
                      on.union(dc).minimize()]
        best = min(candidates,
                   key=lambda c: _node_cost(c, fanin_probs, load))
        if best is not on and not best.is_equivalent(on):
            # Accept only if the *global* estimate improves: a changed
            # node shifts the statistics of its whole transitive fanout
            # (the refinement of [19]).  The trial re-simulates only
            # that cone, on a cache snapshot so a rejected rewrite
            # costs no resynchronization.
            before_cap, _lits = total_cost(dirty=())
            node.cover = best
            trial = sim_cache.copy() if sim_cache is not None else None
            after_cap, _lits = total_cost(dirty=(name,), cache=trial)
            if after_cap < before_cap:
                if sim_cache is not None:
                    sim_cache.adopt(trial)
                changed += 1
                probs = signal_probability_propagation(net, input_probs)
                funcs = network_bdds(net)
            else:
                node.cover = on
    cap_after, lits_after = total_cost()
    return DontCareResult(nodes_changed=changed,
                          switched_cap_before=cap_before,
                          switched_cap_after=cap_after,
                          literals_before=lits_before,
                          literals_after=lits_after)
