"""Technology mapping by cut enumeration and dynamic programming
(Section III-B; DAGON [20] extended to power as in [43], [48], [26]).

The input network is first decomposed into a 2-input AND/OR/NOT subject
graph.  For every node we enumerate k-feasible cuts, compute the cut
function's truth table, and match it against the library (all input
permutations of every cell are pre-tabulated).  A bottom-up dynamic
program then selects, per node, the match minimizing the chosen cost:

* ``"area"``  — Σ cell area (the classical objective),
* ``"power"`` — Σ (activity at the match output) · (cell output cap)
  + Σ (activity at each leaf) · (cell input cap), the zero-delay power
  cost under which tree mapping is optimal (as the paper notes),
* ``"delay"`` — arrival time with the linear cell delay model.

Costs are summed over cut leaves (exact on trees, the usual
approximation on DAGs).  The mapped network consists of SOP nodes
carrying ``attrs["cell"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.library.cells import Cell, Library

from repro.logic.gates import GateType
from repro.logic.netlist import Network, Node
from repro.logic.sop import Cover
from repro.logic.transform import decompose_to_primitives, \
    collapse_buffers, propagate_constants
from repro.power.activity import activity_from_simulation

Cut = Tuple[str, ...]  # ordered leaf names


def _cover_truth_table(cover: Cover, num_vars: int) -> int:
    tt = 0
    for m in range(1 << num_vars):
        if cover.evaluate(m):
            tt |= 1 << m
    return tt


def _permute_tt(tt: int, n: int, perm: Sequence[int]) -> int:
    """Truth table after permuting inputs: new var i = old var perm[i]."""
    out = 0
    for m in range(1 << n):
        src = 0
        for i in range(n):
            if (m >> i) & 1:
                src |= 1 << perm[i]
        if (tt >> src) & 1:
            out |= 1 << m
    return out


def _library_patterns(library: Library, max_inputs: int
                      ) -> Dict[Tuple[int, int], List[Tuple[Cell, Tuple[int, ...]]]]:
    """Map (num_inputs, truth_table) -> [(cell, pin permutation)].

    ``perm`` maps cut-leaf positions to cell pins: leaf i connects to
    cell pin perm[i].
    """
    patterns: Dict[Tuple[int, int], List[Tuple[Cell, Tuple[int, ...]]]] = {}
    for cell in library:
        n = cell.num_inputs
        if n == 0 or n > max_inputs:
            continue
        base_tt = _cover_truth_table(cell.cover, n)
        for perm in permutations(range(n)):
            tt = _permute_tt(base_tt, n, perm)
            patterns.setdefault((n, tt), []).append((cell, perm))
    return patterns


def _enumerate_cuts(net: Network, k: int,
                    max_cuts_per_node: int = 12) -> Dict[str, List[Cut]]:
    """Bottom-up k-feasible cut enumeration (priority: fewer leaves)."""
    cuts: Dict[str, List[Cut]] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source() or not node.fanins:
            cuts[name] = [(name,)]
            continue
        merged: List[FrozenSet[str]] = []
        sets = [[frozenset(c) for c in cuts[fi]] for fi in node.fanins]
        if len(sets) == 1:
            combos = [s for s in sets[0]]
        else:
            combos = []
            for c1 in sets[0]:
                for c2 in sets[1]:
                    u = c1 | c2
                    if len(u) <= k:
                        combos.append(u)
        seen = set()
        out: List[FrozenSet[str]] = [frozenset([name])]
        for u in sorted(combos, key=len):
            if u in seen:
                continue
            seen.add(u)
            out.append(u)
            if len(out) >= max_cuts_per_node:
                break
        cuts[name] = [tuple(sorted(c)) for c in out]
    return cuts


def _cut_function(net: Network, root: str, cut: Cut) -> Optional[int]:
    """Truth table of ``root`` over the cut leaves, or None if the cone
    reads signals outside the cut."""
    n = len(cut)
    leaf_words = {}
    for i, leaf in enumerate(cut):
        w = 0
        for m in range(1 << n):
            if (m >> i) & 1:
                w |= 1 << m
        leaf_words[leaf] = w
    mask = (1 << (1 << n)) - 1
    memo: Dict[str, int] = dict(leaf_words)

    def value(name: str) -> Optional[int]:
        if name in memo:
            return memo[name]
        node = net.nodes[name]
        if node.is_source():
            return None
        from repro.logic.gates import eval_gate

        ins = []
        for fi in node.fanins:
            v = value(fi)
            if v is None:
                return None
            ins.append(v)
        if node.kind == "gate":
            out = eval_gate(node.gtype, ins, mask)
        else:
            out = node.cover.evaluate_words(ins, mask)
        memo[name] = out
        return out

    return value(root)


@dataclass
class MappingResult:
    """Cost summary of a mapping."""

    mapped: Network
    objective: str
    total_area: float
    power_cost: float
    arrival: float
    cells_used: Dict[str, int]


def tech_map(net: Network, library: Library, objective: str = "area",
             activity: Optional[Dict[str, float]] = None,
             k: int = 4, seed: int = 0,
             decomposition: str = "balanced",
             input_probs: Optional[Dict[str, float]] = None
             ) -> MappingResult:
    """Map a network onto ``library`` minimizing ``objective``.

    ``activity`` (per subject-graph node, transitions/cycle) is needed
    for the power objective; it is estimated by simulation of the
    subject graph when absent.  ``decomposition`` selects the subject
    graph style (``"balanced"`` or the probability-ordered ``"power"``
    chains of [48]; the latter uses ``input_probs``).
    """
    if objective not in ("area", "power", "delay"):
        raise ValueError("objective must be area, power or delay")
    subject = decompose_to_primitives(net, input_probs=input_probs,
                                      decomposition=decomposition)
    collapse_buffers(subject)
    propagate_constants(subject)
    collapse_buffers(subject)
    if objective == "power" and activity is None:
        activity, _ = activity_from_simulation(subject, num_vectors=1024,
                                               seed=seed,
                                               input_probs=input_probs)
    activity = activity or {}

    max_inputs = max(c.num_inputs for c in library)
    patterns = _library_patterns(library, min(k, max_inputs))
    cuts = _enumerate_cuts(subject, k)

    INF = float("inf")
    best_cost: Dict[str, float] = {}
    best_match: Dict[str, Tuple[Cell, Tuple[int, ...], Cut]] = {}
    arrival: Dict[str, float] = {}

    for name in subject.topo_order():
        node = subject.nodes[name]
        if node.is_source():
            best_cost[name] = 0.0
            arrival[name] = 0.0
            continue
        if node.kind == "gate" and node.gtype in (GateType.CONST0,
                                                  GateType.CONST1):
            best_cost[name] = 0.0
            arrival[name] = 0.0
            continue
        best_cost[name] = INF
        arrival[name] = INF
        for cut in cuts[name]:
            if cut == (name,):
                continue
            if any(subject.nodes[l].kind == "gate" and
                   subject.nodes[l].gtype in (GateType.CONST0,
                                              GateType.CONST1)
                   for l in cut):
                continue
            tt = _cut_function(subject, name, cut)
            if tt is None:
                continue
            for cell, perm in patterns.get((len(cut), tt), ()):
                if any(l not in best_cost or best_cost[l] == INF
                       for l in cut):
                    continue
                leaf_cost = sum(best_cost[l] for l in cut)
                leaf_arr = max((arrival[l] for l in cut), default=0.0)
                arr = leaf_arr + cell.delay(4.0)
                if objective == "area":
                    cost = leaf_cost + cell.area
                elif objective == "power":
                    own = activity.get(name, 0.0) * cell.output_cap
                    pins = sum(activity.get(l, 0.0) * cell.input_cap
                               for l in cut)
                    cost = leaf_cost + own + pins
                else:
                    cost = arr
                better = cost < best_cost[name] or \
                    (cost == best_cost[name] and arr < arrival[name])
                if better:
                    best_cost[name] = cost
                    arrival[name] = arr
                    best_match[name] = (cell, perm, cut)
        if best_cost[name] == INF:
            raise RuntimeError(
                f"no library match for node {name!r}; the library must "
                f"cover 2-input AND/OR/NOT at minimum")

    # -- reconstruct the mapped netlist from the chosen matches ------------
    mapped = Network(net.name + "_mapped")
    for pi in subject.inputs:
        mapped.add_input(pi)
    for latch in subject.latches:
        mapped.add_latch(latch.data, latch.output, latch.init,
                         latch.enable)

    emitted: Dict[str, bool] = {}
    cells_used: Dict[str, int] = {}
    total_area = 0.0
    power_cost = 0.0

    def emit(name: str) -> None:
        if emitted.get(name):
            return
        node = subject.nodes[name]
        if node.is_source():
            emitted[name] = True
            return
        if node.kind == "gate" and node.gtype in (GateType.CONST0,
                                                  GateType.CONST1):
            mapped.add_gate(name, node.gtype, [])
            emitted[name] = True
            return
        cell, perm, cut = best_match[name]
        for leaf in cut:
            emit(leaf)
        # Cut leaf i drives cell pin perm[i]; the mapped node's fanin
        # list is in pin order.
        pin_src = [""] * cell.num_inputs
        for i, leaf in enumerate(cut):
            pin_src[perm[i]] = leaf
        new = Node(name, "sop", fanins=pin_src, cover=cell.cover.copy())
        new.attrs["cell"] = cell
        mapped.nodes[name] = new
        emitted[name] = True
        nonlocal total_area, power_cost
        total_area += cell.area
        cells_used[cell.name] = cells_used.get(cell.name, 0) + 1
        power_cost += activity.get(name, 0.0) * cell.output_cap + \
            sum(activity.get(l, 0.0) * cell.input_cap for l in cut)

    roots = list(subject.outputs) + [l.data for l in subject.latches] + \
        [l.enable for l in subject.latches if l.enable]
    for root in roots:
        emit(root)
    mapped.set_outputs(subject.outputs)
    mapped._invalidate()
    mapped.check()
    worst_arrival = max((arrival[r] for r in roots), default=0.0)
    return MappingResult(mapped=mapped, objective=objective,
                         total_area=total_area, power_cost=power_cost,
                         arrival=worst_arrival, cells_used=cells_used)
