"""Combinational logic-level optimizations (Section III-A / III-B)."""

from repro.opt.logic.dontcare import dontcare_power_optimization, \
    controllability_dont_cares, observability_dont_cares
from repro.opt.logic.balance import balance_paths, BalanceResult
from repro.opt.logic.kernels import extract_kernels, ExtractionResult
from repro.opt.logic.mapping import tech_map, MappingResult
from repro.opt.logic.share import share_product_terms, SharingResult

__all__ = ["dontcare_power_optimization", "controllability_dont_cares",
           "observability_dont_cares", "balance_paths", "BalanceResult",
           "extract_kernels", "ExtractionResult", "tech_map",
           "MappingResult", "share_product_terms", "SharingResult"]
