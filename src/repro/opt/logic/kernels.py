"""Power-aware kernel extraction (Section III-A.3; [35], SYCLOP).

Classic kernel extraction picks, at each step, the kernel whose
extraction saves the most *literals* (the area objective, [5]).  For low
power the value function is instead the change in expected switched
capacitance: literal savings are weighted by the switching activity of
the signals they remove, and the new node's own activity — which adds a
switching output wire — is charged against the saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.logic.cube import Cube
from repro.logic.factor import algebraic_divide, kernels
from repro.logic.netlist import Network, Node
from repro.logic.sop import Cover

from repro.power.activity import (SimulationCache,
                                  activity_from_probability,
                                  activity_from_simulation,
                                  signal_probability_propagation)


@dataclass
class ExtractionResult:
    """Outcome of an extraction run."""

    extracted: List[str] = field(default_factory=list)
    literals_before: int = 0
    literals_after: int = 0
    switched_cap_before: float = 0.0
    switched_cap_after: float = 0.0

    @property
    def literal_saving(self) -> float:
        if not self.literals_before:
            return 0.0
        return 1.0 - self.literals_after / self.literals_before

    @property
    def power_saving(self) -> float:
        if not self.switched_cap_before:
            return 0.0
        return 1.0 - self.switched_cap_after / self.switched_cap_before


def _network_literal_activity(net: Network,
                              probs: Dict[str, float]) -> float:
    """Σ over literals of the activity of the signal feeding the literal,
    plus one unit of activity per node output — the switched-capacitance
    estimate used as the power objective (each literal is a transistor
    pair whose gate cap is switched by its input signal; each node output
    drives a wire)."""
    total = 0.0
    for node in net.nodes.values():
        if node.is_source() or node.cover is None:
            continue
        counts: Dict[int, int] = {}
        for cube in node.cover:
            for var, _phase in cube.literals():
                counts[var] = counts.get(var, 0) + 1
        for var, times in counts.items():
            fi = node.fanins[var]
            total += times * activity_from_probability(probs[fi])
        total += 2.0 * activity_from_probability(probs[node.name])
    return total


def _kernel_power_value(node: Node, kernel: Cover,
                        probs: Dict[str, float]) -> float:
    """Switched-capacitance saving from extracting ``kernel`` out of
    ``node`` (positive = saves power)."""
    quotient, _rem = algebraic_divide(node.cover, kernel)
    occurrences = len(quotient.cubes)
    if occurrences < 2:
        return 0.0
    fanin_probs = [probs[fi] for fi in node.fanins]
    k_prob = kernel.probability(fanin_probs)
    k_act = activity_from_probability(k_prob)

    def lits_activity(cover: Cover) -> float:
        total = 0.0
        for cube in cover:
            for var, _phase in cube.literals():
                total += activity_from_probability(
                    probs[node.fanins[var]])
        return total

    k_lit_act = lits_activity(kernel)
    q_lit_act = lits_activity(quotient)
    k_cubes = len(kernel.cubes)
    # Before: every (q, k) cube pair spells out both sides, so the
    # kernel's literal activity is paid |Q| times and the quotient's |K|
    # times.  After: each occurrence pays one new literal toggling with
    # the kernel's activity, and the new node's output wire switches.
    saved = (occurrences - 1) * k_lit_act + (k_cubes - 1) * q_lit_act
    cost = (occurrences + 2.0) * k_act
    return saved - cost


def _kernel_area_value(node: Node, kernel: Cover) -> float:
    from repro.logic.factor import kernel_value

    return float(kernel_value(node.cover, kernel))


def _apply_extraction(net: Network, node_name: str, kernel: Cover,
                      new_name: str) -> None:
    """Rewrite ``node = quotient·new + remainder`` with ``new = kernel``."""
    node = net.nodes[node_name]
    quotient, remainder = algebraic_divide(node.cover, kernel)
    old_fanins = list(node.fanins)
    n_old = len(old_fanins)
    # New node over the same fanin list, restricted to kernel support.
    support = sorted({var for cube in kernel
                      for var, _ in cube.literals()})
    remap = {var: i for i, var in enumerate(support)}
    k_cubes = [Cube.from_literals(len(support),
                                  [(remap[v], ph)
                                   for v, ph in cube.literals()])
               for cube in kernel]
    net.add_sop(new_name, [old_fanins[v] for v in support],
                Cover(len(support), k_cubes))
    # Rebuilt cover for the original node: one extra variable (the new
    # node) appended at index n_old.
    new_cubes: List[Cube] = []
    for q in quotient:
        lits = list(q.literals()) + [(n_old, 1)]
        new_cubes.append(Cube.from_literals(n_old + 1, lits))
    for r in remainder:
        new_cubes.append(Cube.from_literals(n_old + 1,
                                            list(r.literals())))
    node.fanins = old_fanins + [new_name]
    node.cover = Cover(n_old + 1, new_cubes)
    net._invalidate()


def extract_kernels(net: Network, objective: str = "area",
                    input_probs: Optional[Dict[str, float]] = None,
                    max_extractions: int = 50,
                    estimator: str = "propagation",
                    num_vectors: int = 512,
                    seed: int = 0) -> ExtractionResult:
    """Greedy kernel extraction over all SOP nodes of the network.

    ``objective`` is ``"area"`` (literal savings, the classical [5]
    value) or ``"power"`` (activity-weighted savings, the [35] value).
    Gate nodes are first converted to SOP form in place.  Returns
    before/after metrics under *both* cost functions so the trade-off is
    visible.

    ``estimator`` selects the signal-probability source feeding the
    power value function: ``"propagation"`` (independence assumption,
    the default) or ``"simulation"`` (compiled Monte-Carlo,
    reconvergence-aware).  In simulation mode each extraction step
    re-simulates only the rewritten node's fanout cone
    (``activity_from_simulation(..., reuse=...)``) rather than the
    whole network.

    Both extractors are greedy, and greedy paths can land in different
    local optima; in power mode the area-greedy decomposition is also
    generated (on a copy) and the better of the two under the
    switched-capacitance metric is kept.
    """
    if objective not in ("area", "power", "_power_greedy"):
        raise ValueError("objective must be 'area' or 'power'")
    if estimator not in ("propagation", "simulation"):
        raise ValueError("estimator must be 'propagation' or "
                         "'simulation'")
    if objective == "power":
        alt = net.copy()
        alt_result = extract_kernels(alt, "area", input_probs,
                                     max_extractions, estimator,
                                     num_vectors, seed)
        main_result = extract_kernels(net, "_power_greedy", input_probs,
                                      max_extractions, estimator,
                                      num_vectors, seed)
        if alt_result.switched_cap_after < \
                main_result.switched_cap_after:
            net.nodes = alt.nodes
            net.inputs = alt.inputs
            net.outputs = alt.outputs
            net.latches = alt.latches
            net._invalidate()
            alt_result.switched_cap_before = \
                main_result.switched_cap_before
            alt_result.literals_before = main_result.literals_before
            return alt_result
        return main_result
    for name in list(net.nodes):
        node = net.nodes[name]
        if node.kind == "gate" and node.fanins:
            from repro.logic.transform import gate_cover

            cover = gate_cover(node.gtype, len(node.fanins))
            new = Node(name, "sop", fanins=list(node.fanins), cover=cover)
            new.attrs = dict(node.attrs)
            net.nodes[name] = new
    net._invalidate()

    sim_cache = SimulationCache() if estimator == "simulation" else None

    def estimate_probs(dirty=None) -> Dict[str, float]:
        if sim_cache is not None:
            _act, p = activity_from_simulation(net, num_vectors, seed,
                                               input_probs,
                                               reuse=sim_cache,
                                               dirty=dirty)
            return p
        return signal_probability_propagation(net, input_probs)

    probs = estimate_probs()
    result = ExtractionResult(
        literals_before=net.num_literals(),
        switched_cap_before=_network_literal_activity(net, probs))

    for step in range(max_extractions):
        best: Optional[Tuple[float, str, Cover]] = None
        for name, node in net.nodes.items():
            if node.is_source() or node.cover is None or \
                    len(node.cover) < 2:
                continue
            for kern, _cok in kernels(node.cover):
                if objective == "area":
                    value = _kernel_area_value(node, kern)
                else:
                    value = _kernel_power_value(node, kern, probs)
                if value > 0 and (best is None or value > best[0]):
                    best = (value, name, kern)
        if best is None:
            break
        _value, name, kern = best
        new_name = net.fresh_name(f"_k{step}_")
        _apply_extraction(net, name, kern, new_name)
        result.extracted.append(new_name)
        # Only the rewritten node and the freshly created kernel node
        # changed; everything outside their fanout cone is reused.
        probs = estimate_probs(dirty=(name, new_name))

    result.literals_after = net.num_literals()
    result.switched_cap_after = _network_literal_activity(net, probs)
    return result
