"""Shared product-term extraction across SOP nodes.

Multi-output two-level implementations (PLAs, FSM next-state logic)
share AND terms between outputs; in a Boolean network this is cube
extraction restricted to *identical* cubes, which is cheap to find and
always area-profitable when a cube is used at least twice.  Sharing
also helps power: the term is computed (and switches) once instead of
per output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.logic.cube import Cube
from repro.logic.netlist import Network, Node
from repro.logic.sop import Cover

Term = FrozenSet[Tuple[str, int]]   # {(signal name, phase)}


@dataclass
class SharingResult:
    """Outcome of a product-sharing pass."""

    terms_extracted: int = 0
    occurrences_replaced: int = 0
    literals_before: int = 0
    literals_after: int = 0

    @property
    def literal_saving(self) -> float:
        if not self.literals_before:
            return 0.0
        return 1.0 - self.literals_after / self.literals_before


def _cube_terms(net: Network, node: Node) -> List[Term]:
    assert node.cover is not None
    out = []
    for cube in node.cover:
        out.append(frozenset((node.fanins[v], ph)
                             for v, ph in cube.literals()))
    return out


def share_product_terms(net: Network, min_literals: int = 2,
                        min_uses: int = 2) -> SharingResult:
    """Extract identical multi-literal cubes shared by several nodes.

    Only SOP nodes participate (run :func:`to_sop_network` or the gate
    conversion of the other passes first if needed).  Each shared term
    becomes a new single-cube SOP node; user nodes replace the cube
    with one positive literal of the new node.  In place.
    """
    result = SharingResult(literals_before=net.num_literals())
    uses: Dict[Term, List[str]] = {}
    for node in net.nodes.values():
        if node.is_source() or node.kind != "sop" or \
                node.cover is None:
            continue
        for term in set(_cube_terms(net, node)):
            if len(term) < min_literals:
                continue
            uses.setdefault(term, []).append(node.name)

    shared = {term: users for term, users in uses.items()
              if len(users) >= min_uses}
    # Extract larger terms first (they save more).
    for term in sorted(shared, key=lambda t: (-len(t), sorted(t))):
        users = [u for u in shared[term] if u in net.nodes]
        # Re-check presence: earlier extractions may have rewritten it.
        live_users = []
        for user in users:
            node = net.nodes[user]
            if node.kind == "sop" and term in _cube_terms(net, node):
                live_users.append(user)
        if len(live_users) < min_uses:
            continue
        signals = sorted({s for s, _ph in term})
        new_name = net.fresh_name("_pt")
        cube = Cube.from_literals(
            len(signals),
            [(signals.index(s), ph) for s, ph in term])
        net.add_sop(new_name, signals, Cover(len(signals), [cube]))
        result.terms_extracted += 1
        for user in live_users:
            node = net.nodes[user]
            new_fanins = list(node.fanins)
            if new_name not in new_fanins:
                new_fanins.append(new_name)
            idx = new_fanins.index(new_name)
            n_vars = len(new_fanins)
            new_cubes = []
            for c in node.cover:
                lits = frozenset((node.fanins[v], ph)
                                 for v, ph in c.literals())
                if lits == term:
                    new_cubes.append(Cube.from_literals(
                        n_vars, [(idx, 1)]))
                    result.occurrences_replaced += 1
                else:
                    new_cubes.append(Cube.from_literals(
                        n_vars,
                        [(new_fanins.index(node.fanins[v]), ph)
                         for v, ph in c.literals()]))
            node.fanins = new_fanins
            node.cover = Cover(n_vars, new_cubes)
        net._invalidate()
    result.literals_after = net.num_literals()
    return result
