"""Circuit-level optimizations: transistor reordering and sizing
(Section II of the paper)."""

from repro.opt.circuit.reorder import ReorderResult, optimize_stack_order
from repro.opt.circuit.sizing import SizingResult, size_for_power, \
    critical_path_delay

__all__ = ["ReorderResult", "optimize_stack_order", "SizingResult",
           "size_for_power", "critical_path_delay"]
