"""Transistor reordering within complex gates (Section II-A; [32], [42]).

Given the signal probabilities and arrival times of a series stack's
inputs, choose the input-to-position assignment minimizing expected
switched energy, optionally under a delay constraint.  Stacks are small
(n ≤ 6 in practice) so exhaustive search is exact; a probability-sorted
greedy order is provided for wider stacks and as a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from repro.library.transistors import SeriesStack, StackEnergyModel


@dataclass
class ReorderResult:
    """Outcome of a reordering search."""

    best_order: List[int]
    best_energy: float
    best_delay: float
    baseline_energy: float     # identity order
    baseline_delay: float
    worst_energy: float

    @property
    def energy_saving(self) -> float:
        if self.baseline_energy == 0.0:
            return 0.0
        return 1.0 - self.best_energy / self.baseline_energy

    @property
    def spread(self) -> float:
        """Best-to-worst energy ratio across orders (search head-room)."""
        if self.worst_energy == 0.0:
            return 1.0
        return self.best_energy / self.worst_energy


def greedy_order(probs: Sequence[float]) -> List[int]:
    """Probability-sorted heuristic.

    Inputs most likely to be ON go nearest ground: the bottom of the
    stack conducts often, keeping internal nodes discharged so they do
    not repeatedly charge from the output.
    """
    return sorted(range(len(probs)), key=lambda i: -probs[i])


def optimize_stack_order(probs: Sequence[float],
                         arrival: Optional[Sequence[float]] = None,
                         delay_limit: Optional[float] = None,
                         model: Optional[StackEnergyModel] = None,
                         exhaustive_limit: int = 7) -> ReorderResult:
    """Search input orders of a series stack for minimum energy.

    ``delay_limit`` (if given) rejects orders whose Elmore settling time
    exceeds it — the power/delay trade the paper describes.  Arrival
    times default to zero (delay then differs only through stack depth,
    which is order-independent, so the search is pure-power).
    """
    n = len(probs)
    arrival = list(arrival) if arrival is not None else [0.0] * n
    model = model or StackEnergyModel()

    def evaluate(order: Sequence[int]) -> Tuple[float, float]:
        stack = SeriesStack(n, order, model)
        return stack.expected_energy(probs), stack.elmore_delay(arrival)

    base_energy, base_delay = evaluate(list(range(n)))
    limit = delay_limit if delay_limit is not None else float("inf")

    if n <= exhaustive_limit:
        candidates = [list(p) for p in permutations(range(n))]
    else:
        candidates = [list(range(n)), greedy_order(probs),
                      greedy_order(probs)[::-1]]

    best: Optional[Tuple[float, float, List[int]]] = None
    worst_energy = base_energy
    for order in candidates:
        energy, delay = evaluate(order)
        worst_energy = max(worst_energy, energy)
        if delay > limit:
            continue
        if best is None or (energy, delay) < (best[0], best[1]):
            best = (energy, delay, order)
    if best is None:
        # No order meets the constraint; fall back to fastest order.
        fastest = min(candidates,
                      key=lambda o: evaluate(o)[1])
        energy, delay = evaluate(fastest)
        best = (energy, delay, fastest)
    return ReorderResult(best_order=best[2], best_energy=best[0],
                         best_delay=best[1], baseline_energy=base_energy,
                         baseline_delay=base_delay,
                         worst_energy=worst_energy)
