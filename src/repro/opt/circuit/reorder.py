"""Transistor reordering within complex gates (Section II-A; [32], [42]).

Given the signal probabilities and arrival times of a series stack's
inputs, choose the input-to-position assignment minimizing expected
switched energy, optionally under a delay constraint.  Stacks are small
(n ≤ 6 in practice) so exhaustive search is exact; a probability-sorted
greedy order is provided for wider stacks and as a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.library.transistors import SeriesStack, StackEnergyModel
from repro.logic.gates import GateType
from repro.logic.netlist import Network


@dataclass
class ReorderResult:
    """Outcome of a reordering search."""

    best_order: List[int]
    best_energy: float
    best_delay: float
    baseline_energy: float     # identity order
    baseline_delay: float
    worst_energy: float

    @property
    def energy_saving(self) -> float:
        if self.baseline_energy == 0.0:
            return 0.0
        return 1.0 - self.best_energy / self.baseline_energy

    @property
    def spread(self) -> float:
        """Best-to-worst energy ratio across orders (search head-room)."""
        if self.worst_energy == 0.0:
            return 1.0
        return self.best_energy / self.worst_energy


def greedy_order(probs: Sequence[float]) -> List[int]:
    """Probability-sorted heuristic.

    Inputs most likely to be ON go nearest ground: the bottom of the
    stack conducts often, keeping internal nodes discharged so they do
    not repeatedly charge from the output.
    """
    return sorted(range(len(probs)), key=lambda i: -probs[i])


def optimize_stack_order(probs: Sequence[float],
                         arrival: Optional[Sequence[float]] = None,
                         delay_limit: Optional[float] = None,
                         model: Optional[StackEnergyModel] = None,
                         exhaustive_limit: int = 7) -> ReorderResult:
    """Search input orders of a series stack for minimum energy.

    ``delay_limit`` (if given) rejects orders whose Elmore settling time
    exceeds it — the power/delay trade the paper describes.  Arrival
    times default to zero (delay then differs only through stack depth,
    which is order-independent, so the search is pure-power).
    """
    n = len(probs)
    arrival = list(arrival) if arrival is not None else [0.0] * n
    model = model or StackEnergyModel()

    def evaluate(order: Sequence[int]) -> Tuple[float, float]:
        stack = SeriesStack(n, order, model)
        return stack.expected_energy(probs), stack.elmore_delay(arrival)

    base_energy, base_delay = evaluate(list(range(n)))
    limit = delay_limit if delay_limit is not None else float("inf")

    if n <= exhaustive_limit:
        candidates = [list(p) for p in permutations(range(n))]
    else:
        candidates = [list(range(n)), greedy_order(probs),
                      greedy_order(probs)[::-1]]

    best: Optional[Tuple[float, float, List[int]]] = None
    worst_energy = base_energy
    for order in candidates:
        energy, delay = evaluate(order)
        worst_energy = max(worst_energy, energy)
        if delay > limit:
            continue
        if best is None or (energy, delay) < (best[0], best[1]):
            best = (energy, delay, order)
    if best is None:
        # No order meets the constraint; fall back to fastest order.
        fastest = min(candidates,
                      key=lambda o: evaluate(o)[1])
        energy, delay = evaluate(fastest)
        best = (energy, delay, fastest)
    return ReorderResult(best_order=best[2], best_energy=best[0],
                         best_delay=best[1], baseline_energy=base_energy,
                         baseline_delay=base_delay,
                         worst_energy=worst_energy)


# -- network-level driver ----------------------------------------------------

#: Gate types realized as a single series transistor stack.  The NMOS
#: pull-down of AND/NAND conducts on input 1; the PMOS pull-up of
#: OR/NOR conducts on input 0, so its conduction probabilities are the
#: complements of the signal probabilities.
STACK_GATES = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR)


@dataclass
class NetworkReorderResult:
    """Aggregate outcome of reordering every eligible stack in a net."""

    per_gate: Dict[str, ReorderResult] = field(default_factory=dict)
    energy_before: float = 0.0
    energy_after: float = 0.0
    gates_considered: int = 0
    gates_improved: int = 0

    @property
    def energy_saving(self) -> float:
        if self.energy_before == 0.0:
            return 0.0
        return 1.0 - self.energy_after / self.energy_before


def reorder_network_stacks(net: Network,
                           input_probs: Optional[Dict[str, float]] = None,
                           num_vectors: int = 512, seed: int = 0,
                           probs: Optional[Dict[str, float]] = None,
                           model: Optional[StackEnergyModel] = None,
                           delay_limit: Optional[float] = None,
                           reuse=None,
                           apply: bool = True) -> NetworkReorderResult:
    """Reorder the series stacks of every AND/NAND/OR/NOR gate.

    Per-gate conduction probabilities come from one compiled Monte-Carlo
    simulation of the whole network
    (:func:`repro.power.activity.activity_from_simulation`; pass a warm
    :class:`~repro.power.activity.SimulationCache` as ``reuse`` to share
    it with an enclosing flow, or precomputed signal probabilities as
    ``probs`` to skip it entirely).  Reordering transistors inside a
    gate never changes its logic function, so a single simulation serves
    every stack.  With ``apply`` the chosen order is recorded in
    ``node.attrs["stack_order"]``.
    """
    if probs is None:
        from repro.power.activity import activity_from_simulation

        _act, probs = activity_from_simulation(net, num_vectors, seed,
                                               input_probs, reuse=reuse)
    model = model or StackEnergyModel()
    arrivals = net.levels()
    result = NetworkReorderResult()
    for node in net.gate_nodes():
        if node.kind != "gate" or node.gtype not in STACK_GATES or \
                len(node.fanins) < 2:
            continue
        fanin_p = [probs[fi] for fi in node.fanins]
        if node.gtype in (GateType.OR, GateType.NOR):
            fanin_p = [1.0 - p for p in fanin_p]
        arrival = [arrivals[fi] for fi in node.fanins]
        res = optimize_stack_order(fanin_p, arrival=arrival,
                                   delay_limit=delay_limit, model=model)
        result.per_gate[node.name] = res
        result.gates_considered += 1
        result.energy_before += res.baseline_energy
        result.energy_after += res.best_energy
        if res.best_energy < res.baseline_energy:
            result.gates_improved += 1
        if apply:
            node.attrs["stack_order"] = list(res.best_order)
    return result
