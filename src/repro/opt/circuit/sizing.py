"""Slack-driven transistor sizing (Section II-B; [42], [3]).

Each gate carries a size factor (``node.attrs["size"]``).  Upsizing a
gate speeds it up (its drive resistance falls) but raises the load it
presents to its fanins and the energy it switches.  The optimizer starts
from a sizing that meets the delay target and walks downhill in power:
it repeatedly downsizes the gate with positive slack whose shrink saves
the most switched capacitance while keeping the circuit at or under the
delay constraint — the "reduce sizes until slack becomes zero" loop the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.logic.netlist import Network
from repro.power.model import PowerParameters


#: Default delay-model constants for unmapped gates.
INTRINSIC_DELAY = 0.5
DRIVE_PER_LOAD = 0.1


def _load_cap(net: Network, name: str, sizes: Dict[str, float],
              params: PowerParameters) -> float:
    """External load capacitance seen by a node (pin caps scale with the
    reader's size)."""
    load = 0.0
    for node in net.nodes.values():
        times = node.fanins.count(name)
        if times:
            load += params.pin_cap_units * sizes.get(node.name, 1.0) * times
    if name in net.outputs:
        load += params.output_load_units
    for latch in net.latches:
        if latch.data == name or latch.enable == name:
            load += params.pin_cap_units
    return load


def _gate_delay(net: Network, name: str, sizes: Dict[str, float],
                params: PowerParameters) -> float:
    node = net.nodes[name]
    if node.is_source():
        return 0.0
    size = sizes.get(name, 1.0)
    load = _load_cap(net, name, sizes, params)
    return INTRINSIC_DELAY + DRIVE_PER_LOAD * load / size


def arrival_times(net: Network, sizes: Dict[str, float],
                  params: PowerParameters) -> Dict[str, float]:
    arr: Dict[str, float] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        if node.is_source():
            arr[name] = 0.0
        else:
            d = _gate_delay(net, name, sizes, params)
            arr[name] = d + max((arr[fi] for fi in node.fanins),
                                default=0.0)
    return arr


def critical_path_delay(net: Network,
                        sizes: Optional[Dict[str, float]] = None,
                        params: Optional[PowerParameters] = None) -> float:
    params = params or PowerParameters()
    sizes = sizes if sizes is not None else \
        {n: float(net.nodes[n].attrs.get("size", 1.0)) for n in net.nodes}
    arr = arrival_times(net, sizes, params)
    sinks = list(net.outputs) + [l.data for l in net.latches]
    return max((arr[s] for s in sinks), default=0.0)


def slacks(net: Network, sizes: Dict[str, float], target: float,
           params: PowerParameters) -> Dict[str, float]:
    """Per-node slack against a required output arrival time."""
    arr = arrival_times(net, sizes, params)
    req: Dict[str, float] = {name: float("inf") for name in net.nodes}
    sinks = set(net.outputs) | {l.data for l in net.latches}
    for s in sinks:
        req[s] = min(req[s], target)
    for name in reversed(net.topo_order()):
        node = net.nodes[name]
        if node.is_source():
            continue
        d = _gate_delay(net, name, sizes, params)
        for fi in node.fanins:
            req[fi] = min(req[fi], req[name] - d)
    return {name: req[name] - arr[name] for name in net.nodes}


def switched_capacitance(net: Network, sizes: Dict[str, float],
                         activity: Dict[str, float],
                         params: PowerParameters) -> float:
    """Σ activity·C with size-scaled capacitances (the power objective)."""
    total = 0.0
    for name, node in net.nodes.items():
        self_cap = params.self_cap_per_transistor * \
            node.num_transistors() * sizes.get(name, 1.0)
        cap = self_cap + _load_cap(net, name, sizes, params)
        total += cap * activity.get(name, 0.0)
    return total


@dataclass
class SizingResult:
    """Outcome of the sizing optimization."""

    sizes: Dict[str, float]
    delay_target: float
    delay_before: float
    delay_after: float
    power_before: float        # switched capacitance at initial sizing
    power_after: float
    moves: int = 0

    @property
    def power_saving(self) -> float:
        if self.power_before == 0.0:
            return 0.0
        return 1.0 - self.power_after / self.power_before


def size_for_power(net: Network,
                   activity: Optional[Dict[str, float]] = None,
                   delay_target: Optional[float] = None,
                   allowed_sizes: Sequence[float] = (1.0, 2.0, 4.0),
                   params: Optional[PowerParameters] = None,
                   apply: bool = True,
                   num_vectors: int = 512,
                   seed: int = 0) -> SizingResult:
    """Greedy slack-recycling downsizer.

    Starts with every gate at the largest allowed size (the
    delay-optimal starting point), then repeatedly takes the downsizing
    move with the best power saving that keeps the critical delay within
    ``delay_target`` (default: the all-max-size delay — i.e. zero
    nominal slack, matching the paper's "given a delay constraint").
    When ``apply`` is set the final sizes are written to node attrs.

    ``activity=None`` estimates switching activity internally with one
    compiled Monte-Carlo simulation (``num_vectors``/``seed``); sizing
    moves never change any node's logic function, so a single
    simulation serves the whole downhill walk.
    """
    params = params or PowerParameters()
    if activity is None:
        from repro.power.activity import activity_from_simulation

        activity, _probs = activity_from_simulation(net, num_vectors,
                                                    seed)
    ordered = sorted(allowed_sizes)
    sizes = {name: float(ordered[-1])
             for name, node in net.nodes.items() if not node.is_source()}
    delay_before = critical_path_delay(net, sizes, params)
    target = delay_target if delay_target is not None \
        else delay_before * 1.05
    power_before = switched_capacitance(net, sizes, activity, params)

    moves = 0
    improved = True
    while improved:
        improved = False
        slk = slacks(net, sizes, target, params)
        # Consider gates with positive slack, largest first.
        candidates = sorted(
            (name for name, s in slk.items()
             if s > 0 and name in sizes and sizes[name] > ordered[0]),
            key=lambda n: -slk[n])
        for name in candidates:
            idx = ordered.index(sizes[name])
            trial = dict(sizes)
            trial[name] = float(ordered[idx - 1])
            if critical_path_delay(net, trial, params) <= target:
                before = switched_capacitance(net, sizes, activity, params)
                after = switched_capacitance(net, trial, activity, params)
                if after < before:
                    sizes = trial
                    moves += 1
                    improved = True
                    break
    # The greedy walk can strand gates at large sizes; if the
    # all-minimum sizing meets the target and beats it, take that.
    ones = {name: float(ordered[0]) for name in sizes}
    if critical_path_delay(net, ones, params) <= target:
        if switched_capacitance(net, ones, activity, params) < \
                switched_capacitance(net, sizes, activity, params):
            sizes = ones
    power_after = switched_capacitance(net, sizes, activity, params)
    delay_after = critical_path_delay(net, sizes, params)
    if apply:
        for name, s in sizes.items():
            net.nodes[name].attrs["size"] = s
    return SizingResult(sizes=sizes, delay_target=target,
                        delay_before=delay_before, delay_after=delay_after,
                        power_before=power_before, power_after=power_after,
                        moves=moves)
