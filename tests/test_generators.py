"""Unit tests for the benchmark-circuit generators (functional
correctness against Python arithmetic)."""

import random

import pytest

from repro.logic.generators import (alu_slice, array_multiplier,
                                    comparator, counter,
                                    equality_checker, mux_tree,
                                    parity_tree, random_logic,
                                    register_file, ripple_carry_adder)


def bits(value, n, prefix):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(n)}


class TestAdder:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_exhaustive(self, n):
        net = ripple_carry_adder(n)
        for a in range(1 << n):
            for b in range(1 << n):
                for cin in (0, 1):
                    vec = {**bits(a, n, "a"), **bits(b, n, "b"),
                           "cin": cin}
                    out = net.evaluate(vec)
                    s = sum(out[f"s{i}"] << i for i in range(n))
                    s += out[f"c{n}"] << n
                    assert s == a + b + cin

    def test_structure(self):
        net = ripple_carry_adder(8)
        assert len(net.inputs) == 17
        assert len(net.outputs) == 9
        net.check()


class TestComparator:
    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_random(self, n):
        net = comparator(n)
        rng = random.Random(n)
        for _ in range(200):
            c = rng.randrange(1 << n)
            d = rng.randrange(1 << n)
            vec = {**bits(c, n, "c"), **bits(d, n, "d")}
            assert net.evaluate(vec)[net.outputs[0]] == int(c > d)


class TestEquality:
    def test_random(self):
        net = equality_checker(6)
        rng = random.Random(1)
        for _ in range(100):
            a = rng.randrange(64)
            b = a if rng.random() < 0.5 else rng.randrange(64)
            vec = {**bits(a, 6, "a"), **bits(b, 6, "b")}
            assert net.evaluate(vec)[net.outputs[0]] == int(a == b)


class TestParity:
    @pytest.mark.parametrize("balanced", [True, False])
    def test_function(self, balanced):
        net = parity_tree(7, balanced=balanced)
        rng = random.Random(2)
        for _ in range(50):
            v = rng.randrange(1 << 7)
            vec = bits(v, 7, "i")
            assert net.evaluate(vec)[net.outputs[0]] == \
                bin(v).count("1") % 2

    def test_chain_is_deeper(self):
        assert parity_tree(8, balanced=False).depth() > \
            parity_tree(8, balanced=True).depth()


class TestMultiplier:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_random(self, n):
        net = array_multiplier(n)
        rng = random.Random(n)
        for _ in range(60):
            a = rng.randrange(1 << n)
            b = rng.randrange(1 << n)
            vec = {**bits(a, n, "a"), **bits(b, n, "b")}
            out = net.evaluate(vec)
            p = sum(out[f"p{k}"] << k for k in range(2 * n))
            assert p == a * b


class TestMuxTree:
    def test_selects_right_input(self):
        net = mux_tree(3)
        rng = random.Random(3)
        for _ in range(50):
            data = rng.randrange(256)
            sel = rng.randrange(8)
            vec = {**bits(data, 8, "d"), **bits(sel, 3, "s")}
            assert net.evaluate(vec)[net.outputs[0]] == (data >> sel) & 1


class TestALU:
    def test_ops(self):
        n = 4
        net = alu_slice(n)
        rng = random.Random(4)
        for _ in range(80):
            a = rng.randrange(1 << n)
            b = rng.randrange(1 << n)
            op = rng.randrange(4)
            vec = {**bits(a, n, "a"), **bits(b, n, "b"),
                   "op0": op & 1, "op1": (op >> 1) & 1}
            out = net.evaluate(vec)
            y = sum(out[f"y{i}"] << i for i in range(n))
            expected = [a & b, a | b, a ^ b, (a + b) % (1 << n)][op]
            assert y == expected, (a, b, op)


class TestRandomLogic:
    def test_reproducible(self):
        a = random_logic(6, 20, seed=1)
        b = random_logic(6, 20, seed=1)
        assert a.evaluate({f"i{k}": 1 for k in range(6)}) == \
            b.evaluate({f"i{k}": 1 for k in range(6)})

    def test_has_outputs(self):
        net = random_logic(5, 15, seed=0)
        assert net.outputs
        net.check()


class TestSequentialGenerators:
    def test_counter_counts(self):
        net = counter(3)
        state = net.initial_state()
        values = []
        for _ in range(10):
            state, vals = net.step_words(state, {"en": 1}, 1)
            values.append(sum(state[f"q{i}_pre"] << i for i in range(3)))
        assert values == [(k + 1) % 8 for k in range(10)]

    def test_counter_enable_holds(self):
        net = counter(3)
        state = net.initial_state()
        state, _ = net.step_words(state, {"en": 1}, 1)
        before = dict(state)
        state, _ = net.step_words(state, {"en": 0}, 1)
        assert state == before

    def test_register_file_write(self):
        net = register_file(2, 4)
        state = net.initial_state()
        vec = {**bits(0b1011, 4, "d"), "we0": 1, "we1": 0}
        state, _ = net.step_words(state, vec, 1)
        assert sum(state[f"r0_{i}"] << i for i in range(4)) == 0b1011
        assert sum(state[f"r1_{i}"] << i for i in range(4)) == 0
