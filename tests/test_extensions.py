"""Tests for the extension features: combinational precomputation,
loop tiling, algorithm-choice software programs."""

import random

import pytest

from repro.arch.memory import (MemoryHierarchy, loop_access_trace,
                               memory_energy, tiled_access_trace)
from repro.logic.generators import comparator, equality_checker
from repro.opt.seq.precompute import combinational_precompute
from repro.power.activity import activity_from_simulation
from repro.power.model import power_report
from repro.sim.functional import verify_equivalence
from repro.sw.cpu import CPU, big_cpu_profile
from repro.sw.programs import binary_search, linear_search


class TestCombinationalPrecompute:
    def test_equivalence(self):
        net = comparator(6)
        pre = combinational_precompute(net, ["c5", "d5"])
        assert verify_equivalence(pre.baseline, pre.network, 512)

    def test_disable_probability(self):
        pre = combinational_precompute(comparator(6), ["c5", "d5"])
        assert pre.disable_probability == pytest.approx(0.5)

    def test_saves_power_with_sticky_predictor(self):
        probs = {"c7": 0.95, "d7": 0.05}
        pre = combinational_precompute(comparator(8), ["c7", "d7"],
                                       input_probs=probs)
        assert pre.disable_probability > 0.85
        a0, _ = activity_from_simulation(pre.baseline, 2048, seed=2,
                                         input_probs=probs)
        a1, _ = activity_from_simulation(pre.network, 2048, seed=2,
                                         input_probs=probs)
        p0 = power_report(pre.baseline, a0).total
        p1 = power_report(pre.network, a1).total
        assert p1 < 0.7 * p0

    def test_multi_output_rejected(self):
        from repro.logic.generators import ripple_carry_adder

        with pytest.raises(ValueError):
            combinational_precompute(ripple_carry_adder(3), ["cin"])

    def test_equality_checker(self):
        """eq(a, b) precomputed on one bit pair: disabled when they
        differ (eq must be 0)."""
        net = equality_checker(5)
        pre = combinational_precompute(net, ["a0", "b0"])
        assert pre.disable_probability == pytest.approx(0.5)
        assert verify_equivalence(pre.baseline, pre.network, 512)


class TestLoopTiling:
    def test_trace_is_permutation_of_flat(self):
        flat = sorted(loop_access_trace((8, 8), (0, 1)))
        tiled = sorted(tiled_access_trace((8, 8), (4, 4)))
        assert flat == tiled

    def test_tile_rank_checked(self):
        with pytest.raises(ValueError):
            tiled_access_trace((8, 8), (4,))

    def test_tiling_restores_locality(self):
        """Column-major order thrashes; tiling confines the working set
        to the (associative) buffer."""
        h = MemoryHierarchy(buffer_words=64)
        bad = loop_access_trace((64, 64), (1, 0))
        tiled = tiled_access_trace((64, 64), (8, 8), (1, 0))
        _, _, m_bad = memory_energy(bad, h, associative=True)
        _, _, m_tiled = memory_energy(tiled, h, associative=True)
        assert m_tiled < m_bad / 2

    def test_associative_never_worse_on_unit_stride(self):
        h = MemoryHierarchy(buffer_words=32)
        trace = loop_access_trace((16, 16), (0, 1))
        _, _, m_dm = memory_energy(trace, h, associative=False)
        _, _, m_fa = memory_energy(trace, h, associative=True)
        assert m_fa <= m_dm

    def test_ragged_tiles(self):
        trace = tiled_access_trace((6, 6), (4, 4))
        assert sorted(trace) == list(range(36))


class TestAlgorithmChoice:
    @pytest.mark.parametrize("n,target", [(32, 20), (32, 0), (32, 31),
                                          (64, 33)])
    def test_both_find_the_key(self, n, target):
        cpu = CPU(big_cpu_profile())
        for maker in (linear_search, binary_search):
            prog, mem, expected = maker(n, target)
            res = cpu.run(prog, memory=dict(mem))
            assert res.memory.get(500) == expected

    def test_binary_lower_energy_at_scale(self):
        """[49]: algorithm choice moves energy; O(log n) wins except on
        lucky early hits."""
        cpu = CPU(big_cpu_profile())
        lp, lm, _ = linear_search(64, 50)
        bp, bm, _ = binary_search(64, 50)
        rl = cpu.run(lp, memory=dict(lm))
        rb = cpu.run(bp, memory=dict(bm))
        assert rb.cycles < rl.cycles
        assert rb.energy < rl.energy

    def test_scaling_gap_widens(self):
        cpu = CPU(big_cpu_profile())
        gaps = []
        for n in (16, 64):
            lp, lm, _ = linear_search(n, n - 2)
            bp, bm, _ = binary_search(n, n - 2)
            rl = cpu.run(lp, memory=dict(lm))
            rb = cpu.run(bp, memory=dict(bm))
            gaps.append(rl.energy / rb.energy)
        assert gaps[1] > gaps[0]
