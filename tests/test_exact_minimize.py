"""Tests for exact two-level minimization (Quine–McCluskey)."""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.logic.cube import Cube
from repro.logic.exact import (is_minimum_size, minimize_exact,
                               prime_implicants)
from repro.logic.sop import Cover


class TestPrimes:
    def test_textbook_example(self):
        # f = Σm(0,1,2,5,6,7) over 3 vars has exactly six primes
        # (cube strings are LSB-first: position 0 = variable x0).
        on = Cover.from_minterms(3, [0, 1, 2, 5, 6, 7])
        primes = prime_implicants(on)
        strings = {p.to_string() for p in primes}
        assert strings == {"-00", "-11", "0-0", "01-", "1-1", "10-"}

    def test_tautology(self):
        on = Cover.from_minterms(2, [0, 1, 2, 3])
        primes = prime_implicants(on)
        assert [p.to_string() for p in primes] == ["--"]

    def test_empty(self):
        assert prime_implicants(Cover.zero(3)) == []

    def test_primes_cover_on_set(self):
        on = Cover.from_minterms(4, [1, 3, 5, 7, 9, 14])
        primes = prime_implicants(on)
        for m in range(16):
            covered = any(p.covers_minterm(m) for p in primes)
            assert covered == on.evaluate(m)

    def test_dc_grows_primes(self):
        on = Cover.from_minterms(3, [1])
        dc = Cover.from_minterms(3, [3, 5, 7])
        with_dc = prime_implicants(on, dc)
        without = prime_implicants(on)
        assert max(8 // p.count_minterms() for p in with_dc) <= \
            max(8 // p.count_minterms() for p in without)


class TestExactCover:
    def test_known_minimum(self):
        # Σm(0,1,2,5,6,7): minimum cover has 3 cubes.
        on = Cover.from_minterms(3, [0, 1, 2, 5, 6, 7])
        mini = minimize_exact(on)
        assert len(mini) == 3
        assert mini.is_equivalent(on)

    def test_respects_dc(self):
        on = Cover.from_strings(["11"])
        dc = Cover.from_strings(["10"])
        mini = minimize_exact(on, dc)
        assert len(mini) == 1
        assert mini.cubes[0].num_literals() == 1

    def test_fully_dc_on_set(self):
        on = Cover.from_strings(["1-"])
        dc = Cover.from_strings(["1-"])
        assert minimize_exact(on, dc).is_empty()

    @pytest.mark.parametrize("seed", range(8))
    def test_heuristic_vs_exact(self, seed):
        """The espresso-style heuristic must produce a legal cover and
        stay within one cube of the exact minimum on small functions."""
        rng = random.Random(seed)
        n = 4
        minterms = [m for m in range(1 << n) if rng.random() < 0.4]
        if not minterms:
            minterms = [seed % (1 << n)]
        on = Cover.from_minterms(n, minterms)
        heur = on.minimize()
        exact = minimize_exact(on)
        assert heur.is_equivalent(on)
        assert exact.is_equivalent(on)
        assert len(heur.sccc()) <= len(exact) + 1


@st.composite
def small_functions(draw):
    n = 3
    minterms = [m for m in range(1 << n) if draw(st.booleans())]
    return Cover.from_minterms(n, minterms) if minterms \
        else Cover.zero(n)


@given(small_functions())
@settings(max_examples=40, deadline=None)
def test_exact_is_equivalent_and_no_bigger(on):
    exact = minimize_exact(on)
    heur = on.minimize()
    if on.is_empty():
        assert exact.is_empty()
        return
    assert exact.is_equivalent(on)
    assert len(exact) <= len(heur.sccc())
