"""Unit tests for bus coding and one-hot residue arithmetic."""

import random

import pytest

from repro.opt.datapath.bus_coding import (bus_invert, gray_code_stream,
                                           limited_weight_code,
                                           partitioned_bus_invert,
                                           uncoded_transitions)
from repro.opt.datapath.residue import OneHotResidue, residue_moduli_for
from repro.sim.vectors import counter_bus_stream, random_bus_stream


class TestBusInvert:
    def test_decodable(self):
        """bus XOR invert-line recovers the original word."""
        stream = random_bus_stream(8, 200, seed=0)
        res = bus_invert(stream, 8)
        mask = 0xFF
        for original, (bus, e) in zip(stream, res.encoded):
            decoded = (~bus & mask) if e else bus
            assert decoded == original & mask

    def test_bounded_per_transfer(self):
        """No transfer flips more than ceil((n+1)/2) wires."""
        stream = random_bus_stream(8, 500, seed=1)
        res = bus_invert(stream, 8)
        prev_bus, prev_e = res.encoded[0]
        for bus, e in res.encoded[1:]:
            flips = bin(prev_bus ^ bus).count("1") + (prev_e ^ e)
            assert flips <= (8 + 1) // 2 + 1
            prev_bus, prev_e = bus, e

    def test_saving_on_random_data(self):
        """~18% expected saving for an 8-bit bus on i.i.d. data."""
        stream = random_bus_stream(8, 5000, seed=2)
        res = bus_invert(stream, 8)
        assert 0.10 < res.saving < 0.25

    def test_never_worse(self):
        for seed in range(5):
            stream = random_bus_stream(16, 500, seed=seed)
            res = bus_invert(stream, 16)
            assert res.transitions_coded <= res.transitions_uncoded

    def test_partitioned_beats_global_on_wide_bus(self):
        stream = random_bus_stream(32, 3000, seed=3)
        full = bus_invert(stream, 32)
        part = partitioned_bus_invert(stream, 32, 4)
        assert part.saving > full.saving

    def test_partition_width_check(self):
        with pytest.raises(ValueError):
            partitioned_bus_invert([1, 2, 3], 10, 3)


class TestGray:
    def test_sequential_addresses_single_flip(self):
        stream = counter_bus_stream(12, 1000)
        res = gray_code_stream(stream, 12)
        assert res.transitions_coded == 999   # exactly one per step

    def test_saving_near_half(self):
        stream = counter_bus_stream(12, 2000)
        res = gray_code_stream(stream, 12)
        assert res.saving == pytest.approx(0.5, abs=0.05)

    def test_random_data_no_help(self):
        stream = random_bus_stream(12, 2000, seed=4)
        res = gray_code_stream(stream, 12)
        assert abs(res.saving) < 0.05


class TestLimitedWeight:
    def test_skewed_alphabet_wins(self):
        """A source dominated by few symbols gets low-weight codes."""
        rng = random.Random(5)
        symbols = [0xAA, 0x55, 0xFF, 0x00]
        weights = [0.7, 0.2, 0.05, 0.05]
        stream = rng.choices(symbols, weights, k=4000)
        res = limited_weight_code(stream, 8)
        assert res.saving > 0.3

    def test_code_space_exhaustion(self):
        with pytest.raises(ValueError):
            limited_weight_code(list(range(16)), 8, code_width=2)

    def test_uncoded_transitions(self):
        assert uncoded_transitions([0b00, 0b11, 0b01]) == 3


class TestResidue:
    def test_moduli_cover_range(self):
        m = residue_moduli_for(255)
        prod = 1
        for x in m:
            prod *= x
        assert prod > 255

    def test_coprimality_enforced(self):
        with pytest.raises(ValueError):
            OneHotResidue([4, 6])
        with pytest.raises(ValueError):
            OneHotResidue([3, 3])

    def test_codec_roundtrip(self):
        ohr = OneHotResidue([3, 5, 7])
        for v in range(105):
            assert ohr.decode(ohr.encode(v)) == v

    def test_arithmetic(self):
        ohr = OneHotResidue([3, 5, 7])
        rng = random.Random(6)
        for _ in range(100):
            a, b = rng.randrange(105), rng.randrange(105)
            assert ohr.decode(ohr.add(ohr.encode(a), ohr.encode(b))) == \
                (a + b) % 105
            assert ohr.decode(ohr.mul(ohr.encode(a), ohr.encode(b))) == \
                (a * b) % 105

    def test_transitions_bounded_per_step(self):
        """One-hot digits flip at most 2 wires each, data-independent."""
        ohr = OneHotResidue([3, 5, 7])
        rng = random.Random(7)
        vals = [rng.randrange(105) for _ in range(300)]
        t = ohr.stream_transitions(vals)
        assert t <= 2 * 3 * 299

    def test_wire_count(self):
        assert OneHotResidue([3, 5, 7]).total_wires() == 15
