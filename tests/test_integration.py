"""Cross-module integration tests: full flows across several
subsystems, checked end-to-end."""

import random

import pytest

from repro.core.flow import low_power_flow
from repro.library.cells import generic_library
from repro.logic.blif import read_blif, write_blif
from repro.logic.generators import (array_multiplier, comparator,
                                    random_logic, ripple_carry_adder)
from repro.opt.logic.balance import balance_paths
from repro.opt.logic.mapping import tech_map
from repro.opt.seq.encoding import (encode_anneal, encode_natural,
                                    evaluate_encoding)
from repro.opt.seq.gated_clock import self_loop_clock_gating
from repro.opt.seq.precompute import precomputed_comparator
from repro.opt.seq.stg import STG
from repro.power.activity import (activity_from_simulation,
                                  sequential_activity,
                                  signal_probability_exact,
                                  signal_probability_propagation)
from repro.power.glitch import glitch_report
from repro.power.model import average_power, power_report
from repro.sim.functional import (sequential_transitions,
                                  verify_equivalence)


class TestBlifThroughFlow:
    def test_blif_netlist_optimized(self):
        """BLIF in -> flow -> equivalent, measurable netlist out."""
        net = random_logic(7, 24, seed=21)
        text = write_blif(net)
        parsed = read_blif(text)
        res = low_power_flow(parsed, num_vectors=256)
        assert verify_equivalence(net, res.final, 512)
        assert res.stages[-1].report.total > 0


class TestMapThenGlitch:
    def test_mapped_multiplier_still_glitches(self):
        """Technology mapping preserves the multiplier's glitchy
        structure; balancing then removes most of it."""
        net = array_multiplier(3)
        mapped = tech_map(net, generic_library(), "area").mapped
        g0 = glitch_report(mapped, 96, seed=2)
        assert g0.glitch_power_fraction > 0.02
        balance_paths(mapped)
        g1 = glitch_report(mapped, 96, seed=2)
        assert g1.glitch_power_fraction < g0.glitch_power_fraction

    def test_balance_then_map_equivalent(self):
        net = array_multiplier(3)
        ref = net.copy()
        balance_paths(net)
        mapped = tech_map(net, generic_library(), "power").mapped
        assert verify_equivalence(ref, mapped, 256)


class TestEstimatorAgreement:
    def test_three_estimators_rank_alike(self):
        """Propagation, exact-BDD and simulation should broadly agree
        on which circuit dissipates more."""
        small = ripple_carry_adder(3)
        big = array_multiplier(3)

        def cost(net):
            p = signal_probability_propagation(net)
            act_prop = sum(2 * v * (1 - v) for v in p.values())
            e = signal_probability_exact(net)
            act_exact = sum(2 * v * (1 - v) for v in e.values())
            a, _ = activity_from_simulation(net, 512, seed=1)
            act_sim = sum(a.values())
            return act_prop, act_exact, act_sim

        s, b = cost(small), cost(big)
        for i in range(3):
            assert b[i] > s[i]

    def test_propagation_vs_exact_error_bounded(self):
        net = comparator(5)
        p = signal_probability_propagation(net)
        e = signal_probability_exact(net)
        errors = [abs(p[n] - e[n]) for n in p]
        assert max(errors) < 0.35
        assert sum(errors) / len(errors) < 0.08


class TestSequentialEndToEnd:
    def make_stg(self):
        stg = STG(1, 1)
        for i in range(8):
            s, nxt = f"s{i}", f"s{(i + 1) % 8}"
            out = "1" if i >= 6 else "0"
            stg.add_transition("0", s, s, out)
            stg.add_transition("1", s, nxt, out)
        return stg

    def test_encode_then_gate_clock(self):
        """Encoding and clock gating compose: the gated, re-encoded
        machine matches the naturally-encoded baseline cycle by cycle
        and uses less total power."""
        stg = self.make_stg()
        nat = encode_natural(stg)
        ann = encode_anneal(stg, iterations=2000, seed=3)
        gated = self_loop_clock_gating(stg, ann)
        baseline = self_loop_clock_gating(stg, nat).baseline

        rng = random.Random(9)
        vecs = [{"x0": rng.getrandbits(1)} for _ in range(600)]
        _, tb = sequential_transitions(baseline, vecs)
        _, tg = sequential_transitions(gated.network, vecs)
        assert [t["z0"] for t in tb] == [t["z0"] for t in tg]

        pb = power_report(baseline,
                          sequential_activity(baseline, vecs)).total
        pg = power_report(gated.network,
                          sequential_activity(gated.network,
                                              vecs)).total
        # Combined encoding + gating should not cost power overall.
        assert pg < pb * 1.1

    def test_precompute_scales_with_width(self):
        """Wider comparators save more: the disabled cone grows."""
        savings = []
        for n in (4, 8):
            pre = precomputed_comparator(n)
            rng = random.Random(n)
            vecs = []
            for _ in range(300):
                c, d = rng.getrandbits(n), rng.getrandbits(n)
                v = {f"c{i}": (c >> i) & 1 for i in range(n)}
                v.update({f"d{i}": (d >> i) & 1 for i in range(n)})
                vecs.append(v)
            pb = power_report(
                pre.baseline,
                sequential_activity(pre.baseline, vecs)).total
            pg = power_report(
                pre.network,
                sequential_activity(pre.network, vecs)).total
            savings.append(1 - pg / pb)
        assert savings[1] > savings[0]


class TestPowerBreakdownShape:
    def test_eqn1_shape_across_circuits(self):
        """Claim C1 holds across circuit families."""
        for net in (ripple_carry_adder(6), comparator(6),
                    array_multiplier(3)):
            rep = average_power(net, 512, seed=4)
            assert rep.switching_fraction > 0.80
            assert rep.leakage < 0.05 * rep.total
