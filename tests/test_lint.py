"""Tests for the static-analysis subsystem (repro.analysis).

Covers: defect injection (each defect class fires exactly its rule at
the expected site), the self-audit (every generator circuit and the
default flow's output lint clean), the emitters (text/JSON/SARIF), the
``lint`` CLI, and the ``--strict-lint`` flow integration.
"""

import json

import pytest

from repro.analysis import (ERROR, INFO, WARNING, LintConfig, Linter,
                            all_rules, check_invariants, lint_network,
                            select_rules)
from repro.analysis.graph import (cycle_path, nontrivial_sccs,
                                  tarjan_scc)
from repro.analysis.hazards import hazard_variables
from repro.core.flow import low_power_flow, run_flow
from repro.core.passes import (FlowError, FlowSpec, Pass, PassContext,
                               run_network_passes)
from repro.logic import generators as G
from repro.logic.blif import write_blif
from repro.logic.cube import Cube
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.logic.sop import Cover
from repro.tools.cli import main as cli_main

ALL_GENERATORS = [
    ("rca", lambda: G.ripple_carry_adder(4)),
    ("cmp", lambda: G.comparator(4)),
    ("eq", lambda: G.equality_checker(4)),
    ("parity", lambda: G.parity_tree(8)),
    ("mult", lambda: G.array_multiplier(3)),
    ("cla", lambda: G.carry_lookahead_adder(8)),
    ("csel", lambda: G.carry_select_adder(8)),
    ("wallace", lambda: G.wallace_multiplier(3)),
    ("muxtree", lambda: G.mux_tree(3)),
    ("barrel", lambda: G.barrel_shifter(4)),
    ("dec", lambda: G.decoder(3)),
    ("prienc", lambda: G.priority_encoder(4)),
    ("alu", lambda: G.alu_slice(4)),
    ("random", lambda: G.random_logic(6, 20, seed=3)),
    ("regfile", lambda: G.register_file(2, 2)),
    ("counter", lambda: G.counter(4)),
]


def rules_fired(report, rule_id):
    return [d for d in report.diagnostics if d.rule == rule_id]


def small_comb():
    net = Network("comb")
    a, b = net.add_input("a"), net.add_input("b")
    net.add_gate("g", GateType.AND, [a, b])
    net.add_gate("h", GateType.NOT, ["g"])
    net.set_output("h")
    return net


# -- graph helpers -------------------------------------------------------

class TestGraph:
    def test_tarjan_partitions(self):
        adj = {"a": ["b"], "b": ["c"], "c": ["a"], "d": ["a"]}
        comps = tarjan_scc(adj)
        assert sorted(map(sorted, comps)) == [["a", "b", "c"], ["d"]]

    def test_nontrivial_needs_cycle(self):
        assert nontrivial_sccs({"a": ["b"], "b": []}) == []
        assert nontrivial_sccs({"a": ["a"]}) == [["a"]]

    def test_cycle_path_closed(self):
        path = cycle_path({"a": ["b"], "b": ["a"], "c": []})
        assert path is not None
        assert path[0] == path[-1]
        assert set(path) == {"a", "b"}
        assert cycle_path({"a": [], "b": ["a"]}) is None


# -- defect injection: structural rules ----------------------------------

class TestStructuralRules:
    def test_clean_network_is_clean(self):
        report = lint_network(small_comb())
        assert not report.has_errors

    def test_cycle_fires_with_path(self):
        net = small_comb()
        net.nodes["g"].fanins = ["a", "h"]   # g <-> h
        net._invalidate()
        report = lint_network(net)
        diags = rules_fired(report, "combinational-cycle")
        assert len(diags) == 1
        d = diags[0]
        assert d.severity == ERROR
        assert set(d.detail["cycle"]) == {"g", "h"}
        assert d.detail["cycle"][0] == d.detail["cycle"][-1]
        # DAG-only rules must be skipped, not crash.
        skipped = [r for r, _ in report.skipped_rules]
        assert "static-hazard" in skipped

    def test_undriven_fires_at_missing_net(self):
        net = small_comb()
        net.nodes["g"].fanins = ["a", "ghost"]
        net._invalidate()
        report = lint_network(net)
        diags = rules_fired(report, "undriven-net")
        assert [d.site for d in diags] == ["ghost"]
        assert diags[0].detail == {"reader": "g", "role": "fanin"}

    def test_undriven_output(self):
        net = small_comb()
        net.outputs.append("nowhere")
        report = lint_network(net)
        sites = [d.site for d in rules_fired(report, "undriven-net")]
        assert sites == ["nowhere"]

    def test_dangling_node(self):
        net = small_comb()
        net.add_gate("dead", GateType.OR, ["a", "b"])
        report = lint_network(net)
        diags = rules_fired(report, "dangling-node")
        assert [d.site for d in diags] == ["dead"]
        assert diags[0].severity == WARNING

    def test_unreachable_cone(self):
        net = small_comb()
        net.add_gate("c1", GateType.OR, ["a", "b"])
        net.add_gate("c2", GateType.NOT, ["c1"])   # c1 has fanout
        report = lint_network(net)
        assert [d.site for d in
                rules_fired(report, "unreachable-cone")] == ["c1"]
        assert [d.site for d in
                rules_fired(report, "dangling-node")] == ["c2"]

    def test_unused_input(self):
        net = small_comb()
        net.add_input("idle")
        diags = rules_fired(lint_network(net), "unused-input")
        assert [d.site for d in diags] == ["idle"]
        assert diags[0].severity == INFO

    def test_duplicate_latch(self):
        net = Network("seq")
        net.add_input("d")
        net.add_latch("d", "q")
        net.latches.append(type(net.latches[0])(data="d", output="q"))
        net.set_output("q")
        diags = rules_fired(lint_network(net), "duplicate-latch")
        assert [d.site for d in diags] == ["q"]
        assert diags[0].detail == {"count": 2}

    def test_shadowed_latch_output(self):
        net = Network("seq")
        net.add_input("d")
        net.add_latch("d", "q")
        net.set_output("q")
        # A later edit replaces the latch node with a gate of the
        # same name: the latch record now points at non-latch logic.
        net.nodes["q"] = net.nodes["q"].__class__(
            "q", "gate", gtype=GateType.BUF, fanins=["d"])
        diags = rules_fired(lint_network(net), "duplicate-latch")
        assert len(diags) == 1 and "shadowed" in diags[0].message

    def test_latch_node_without_record(self):
        net = Network("seq")
        net.add_input("d")
        net.add_latch("d", "q")
        net.set_output("q")
        net.latches.clear()
        diags = rules_fired(lint_network(net), "duplicate-latch")
        assert [d.site for d in diags] == ["q"]

    def test_invalid_cover_arity(self):
        net = small_comb()
        net.add_sop("s", ["a", "b"],
                    Cover(2, [Cube.from_string("11")]))
        net.set_output("s")
        net.nodes["s"].cover = Cover(3, [Cube.from_string("111")])
        diags = rules_fired(lint_network(net), "invalid-cover")
        assert [d.site for d in diags] == ["s"]
        assert "arity" in diags[0].message

    def test_contradictory_cube(self):
        net = small_comb()
        net.add_sop("s", ["a"], Cover(1, [Cube.from_string("1")]))
        net.set_output("s")
        # polarity bit outside the care mask; the constructor
        # normalises value & mask, so corrupt the cube in place
        net.nodes["s"].cover.cubes[0].mask = 0
        diags = rules_fired(lint_network(net), "invalid-cover")
        assert len(diags) == 1 and diags[0].severity == ERROR

    def test_malformed_delay(self):
        net = small_comb()
        net.nodes["g"].attrs["delay"] = -2.0
        net.nodes["h"].attrs["delay"] = float("nan")
        diags = rules_fired(lint_network(net), "malformed-delay")
        assert [d.site for d in diags] == ["g", "h"]
        net.nodes["g"].attrs["delay"] = True   # bool is not a delay
        diags = rules_fired(lint_network(net), "malformed-delay")
        assert any("type bool" in d.message for d in diags)

    def test_duplicate_output(self):
        net = small_comb()
        net.outputs.append("h")
        diags = rules_fired(lint_network(net), "duplicate-output")
        assert [d.site for d in diags] == ["h"]


# -- defect injection: power rules ---------------------------------------

def mux_node_net():
    """f = s'a + sb — the classical static-1 hazard on ``s``."""
    net = Network("mux")
    for n in ("s", "a", "b"):
        net.add_input(n)
    net.add_sop("f", ["s", "a", "b"],
                Cover(3, [Cube.from_string("01-"),
                          Cube.from_string("1-1")]))
    net.set_output("f")
    return net


class TestPowerRules:
    def test_hazard_variables_mux(self):
        cover = Cover(3, [Cube.from_string("01-"),
                          Cube.from_string("1-1")])
        assert hazard_variables(cover) == [0]

    def test_hazard_variables_unate_and_xor_clean(self):
        unate = Cover(2, [Cube.from_string("11")])
        xor = Cover(2, [Cube.from_string("10"),
                        Cube.from_string("01")])
        assert hazard_variables(unate) == []
        assert hazard_variables(xor) == []

    def test_hazard_width_cap(self):
        cover = Cover(3, [Cube.from_string("01-"),
                          Cube.from_string("1-1")])
        assert hazard_variables(cover, max_vars=2) is None

    def test_static_hazard_fires_on_mux(self):
        report = lint_network(mux_node_net())
        diags = rules_fired(report, "static-hazard")
        assert [d.site for d in diags] == ["f"]
        assert diags[0].detail["fanin_nets"] == ["s"]
        assert not report.has_errors   # warning, not error

    def test_static_hazard_silent_on_unate(self):
        report = lint_network(small_comb())
        assert rules_fired(report, "static-hazard") == []

    def test_reconvergent_fanout(self):
        net = Network("reconv")
        a = net.add_input("a")
        net.add_gate("p", GateType.NOT, [a])
        net.add_gate("q", GateType.BUF, [a])
        net.add_gate("m", GateType.AND, ["p", "q"])
        net.set_output("m")
        diags = rules_fired(lint_network(net), "reconvergent-fanout")
        assert [d.site for d in diags] == ["a"]
        assert diags[0].detail["merge"] == "m"

    def test_fanout_without_reconvergence_is_silent(self):
        net = Network("tree")
        a = net.add_input("a")
        net.add_gate("p", GateType.NOT, [a])
        net.add_gate("q", GateType.BUF, [a])
        net.set_outputs(["p", "q"])
        assert rules_fired(lint_network(net),
                           "reconvergent-fanout") == []

    def test_hot_net_ranking(self):
        report = lint_network(G.ripple_carry_adder(4),
                              config=LintConfig(hot_net_top=3))
        diags = rules_fired(report, "hot-net")
        assert len(diags) == 3
        ranked = sorted(diags, key=lambda d: d.detail["rank"])
        scores = [d.detail["score"] for d in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_gating_hazard_fires(self):
        net = mux_node_net()
        net.add_input("d")
        net.add_latch("d", "r", enable="f")
        net.set_output("r")
        report = lint_network(net)
        diags = rules_fired(report, "gating-hazard")
        assert len(diags) == 1
        d = diags[0]
        assert d.severity == ERROR and d.site == "f"
        assert d.detail == {"latch": "r", "hazard_nodes": ["f"]}
        assert report.has_errors

    def test_gating_clean_enable_passes(self):
        net = Network("gated")
        for n in ("d", "e1", "e2"):
            net.add_input(n)
        net.add_gate("en", GateType.AND, ["e1", "e2"])   # unate: safe
        net.add_latch("d", "r", enable="en")
        net.set_output("r")
        assert rules_fired(lint_network(net), "gating-hazard") == []


# -- self-audit ----------------------------------------------------------

class TestSelfAudit:
    @pytest.mark.parametrize("name,build", ALL_GENERATORS,
                             ids=[n for n, _ in ALL_GENERATORS])
    def test_generators_lint_clean(self, name, build):
        report = lint_network(build())
        assert report.errors == []
        assert report.skipped_rules == []

    def test_flow_output_lints_clean(self):
        res = low_power_flow(G.ripple_carry_adder(3), num_vectors=256)
        report = lint_network(res.final)
        assert report.errors == []

    def test_post_sweep_network_has_no_dangling(self):
        net = small_comb()
        net.add_gate("dead", GateType.OR, ["a", "b"])
        net.sweep()
        report = lint_network(net)
        assert rules_fired(report, "dangling-node") == []
        assert report.errors == []

    def test_replace_everywhere_keeps_outputs_clean(self):
        net = small_comb()
        net.add_gate("h2", GateType.NOT, ["g"])
        net.set_output("h2")
        net.replace_everywhere("h2", "h")
        report = lint_network(net)
        assert rules_fired(report, "duplicate-output") == []
        assert net.outputs == ["h"]


# -- registry / driver ---------------------------------------------------

class TestDriver:
    def test_catalog_is_stable(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        assert {"combinational-cycle", "undriven-net",
                "static-hazard", "reconvergent-fanout", "hot-net",
                "gating-hazard"} <= set(ids)

    def test_select_rules(self):
        picked = select_rules("hot-net, undriven-net")
        assert [r.id for r in picked] == ["hot-net", "undriven-net"]
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules("no-such-rule")

    def test_rule_subset_runs_alone(self):
        report = lint_network(mux_node_net(),
                              rules=select_rules("hot-net"))
        assert {d.rule for d in report.diagnostics} <= {"hot-net"}

    def test_check_invariants_fast_path(self):
        assert check_invariants(small_comb()) == []
        net = small_comb()
        net.nodes["g"].fanins = ["a", "ghost"]
        net._invalidate()
        errors = check_invariants(net)
        assert errors and all(d.severity == ERROR for d in errors)

    def test_severity_filter_and_counts(self):
        net = mux_node_net()
        report = lint_network(net)
        assert report.at_least(ERROR) == []
        warnings = report.at_least(WARNING)
        assert all(d.severity in (ERROR, WARNING) for d in warnings)
        counts = report.counts()
        assert counts["static-hazard"] == 1


# -- emitters ------------------------------------------------------------

class TestEmitters:
    def test_json_roundtrip(self):
        obj = json.loads(lint_network(mux_node_net()).to_json())
        assert obj["network"] == "mux"
        assert obj["counts"]["static-hazard"] == 1
        rules = {d["rule"] for d in obj["diagnostics"]}
        assert "static-hazard" in rules

    def test_sarif_shape(self):
        sarif = json.loads(lint_network(mux_node_net()).to_sarif())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        results = run["results"]
        assert results, "expected at least one SARIF result"
        by_rule = {r["ruleId"] for r in results}
        assert "static-hazard" in by_rule
        driver_rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for res in results:
            assert driver_rules[res["ruleIndex"]] == res["ruleId"]
            loc = res["locations"][0]["logicalLocations"][0]
            assert loc["fullyQualifiedName"].startswith("mux::")
        hazard = next(r for r in results
                      if r["ruleId"] == "static-hazard")
        assert hazard["level"] == "warning"

    def test_text_summary_line(self):
        text = lint_network(mux_node_net()).to_text()
        assert "mux: 0 error(s), 1 warning(s)" in text


# -- CLI -----------------------------------------------------------------

BROKEN_BLIF = """\
.model broken
.inputs a
.outputs f
.names a ghost f
11 1
.end
"""


class TestCli:
    def _write(self, tmp_path, net):
        path = tmp_path / f"{net.name}.blif"
        path.write_text(write_blif(net))
        return str(path)

    def test_lint_clean_exit_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, G.ripple_carry_adder(3))
        assert cli_main(["lint", path]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_error_exit_one(self, tmp_path, capsys):
        path = tmp_path / "broken.blif"
        path.write_text(BROKEN_BLIF)
        assert cli_main(["lint", str(path)]) == 1
        assert "undriven-net" in capsys.readouterr().out

    def test_lint_rules_and_severity(self, tmp_path, capsys):
        path = self._write(tmp_path, G.mux_tree(2))
        assert cli_main(["lint", path, "--rules", "static-hazard",
                         "--severity", "warning"]) == 0
        out = capsys.readouterr().out
        assert "static-hazard" in out and "hot-net" not in out

    def test_lint_unknown_rule_exit_two(self, tmp_path, capsys):
        path = self._write(tmp_path, G.ripple_carry_adder(2))
        assert cli_main(["lint", path, "--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_missing_file_exit_two(self, capsys):
        assert cli_main(["lint", "/no/such/file.blif"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_lint_json_format(self, tmp_path, capsys):
        path = self._write(tmp_path, G.mux_tree(2))
        assert cli_main(["lint", path, "--format", "json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["network"] == "muxtree"

    def test_lint_sarif_format(self, tmp_path, capsys):
        path = self._write(tmp_path, G.mux_tree(2))
        assert cli_main(["lint", path, "--format", "sarif"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_optimize_strict_lint_flag(self, tmp_path, capsys):
        path = self._write(tmp_path, G.ripple_carry_adder(2))
        assert cli_main(["optimize", path, "--vectors", "256",
                         "--strict-lint"]) == 0


# -- flow integration ----------------------------------------------------

def _break_invariant(net, ctx, params):
    """A 'pass' that silently corrupts the network."""
    for node in net.nodes.values():
        if not node.is_source():
            node.attrs["delay"] = -1.0
            break
    net._invalidate()


class TestFlowIntegration:
    def test_lint_break_rolls_back(self):
        net = small_comb()
        ctx = PassContext(original=net, num_vectors=256, lint=True)
        bad = Pass(name="corruptor", apply=_break_invariant,
                   verify=False)
        final, trace, _ = run_network_passes(net, [bad], ctx)
        rec = trace.records[0]
        assert rec.outcome == "rolled_back" and rec.reason == "lint"
        assert rec.lint_errors == 1
        assert rec.lint[0]["rule"] == "malformed-delay"
        # the corruption died with the trial copy
        assert "delay" not in final.nodes["g"].attrs

    def test_lint_break_strict_raises(self):
        net = small_comb()
        ctx = PassContext(original=net, num_vectors=256, lint=True)
        bad = Pass(name="corruptor", apply=_break_invariant,
                   verify=False)
        with pytest.raises(FlowError, match="invariant"):
            run_network_passes(net, [bad], ctx, strict=True)

    def test_broken_input_rejected_up_front(self):
        net = small_comb()
        net.nodes["g"].fanins = ["a", "ghost"]
        net._invalidate()
        ctx = PassContext(original=net, num_vectors=256, lint=True)
        with pytest.raises(FlowError, match="input network"):
            run_network_passes(net, [], ctx)

    def test_strict_lint_flow_clean_and_traced(self):
        net = G.ripple_carry_adder(3)
        res = low_power_flow(net, num_vectors=256, strict_lint=True)
        assert res.trace.outcomes() == {"adopted": 4}
        for rec in res.trace.records:
            assert rec.lint_errors == 0
        # the JSONL trace carries the lint evidence
        lines = res.trace.to_jsonl().splitlines()
        passes = [json.loads(ln) for ln in lines[1:]]
        assert all(p["lint_errors"] == 0 for p in passes)

    def test_strict_lint_matches_plain_flow(self):
        net = G.ripple_carry_adder(3)
        plain = low_power_flow(net, num_vectors=256)
        linted = low_power_flow(net, num_vectors=256,
                                strict_lint=True)
        assert [s.report.total for s in plain.stages] == \
            [s.report.total for s in linted.stages]

    def test_flow_spec_strict_lint_roundtrip(self):
        spec = FlowSpec.from_dict({"passes": ["extract"],
                                   "strict_lint": True})
        assert spec.strict_lint
        assert FlowSpec.from_dict(spec.to_dict()).strict_lint
        res = run_flow(small_comb(), spec)
        assert res.trace.records[0].lint_errors == 0
