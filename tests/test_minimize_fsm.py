"""Unit tests for FSM state minimization."""

import pytest

from repro.opt.seq.minimize_fsm import (equivalent_state_classes,
                                        is_behaviourally_equivalent,
                                        minimize_stg)
from repro.opt.seq.stg import STG


def duplicated_ring(copies=2, length=3):
    """`copies` identical rings: all same-position states equivalent."""
    stg = STG(1, 1)
    for c in range(copies):
        for i in range(length):
            s = f"c{c}_{i}"
            nxt = f"c{c}_{(i + 1) % length}"
            out = "1" if i == length - 1 else "0"
            stg.add_transition("1", s, nxt, out)
            stg.add_transition("0", s, s, out)
    return stg


class TestClasses:
    def test_duplicates_merged(self):
        stg = duplicated_ring()
        classes = equivalent_state_classes(stg)
        assert len(classes) == 3
        for cls in classes:
            assert len(cls) == 2

    def test_distinct_states_kept_apart(self):
        stg = STG(1, 1)
        stg.add_transition("1", "a", "b", "0")
        stg.add_transition("0", "a", "a", "0")
        stg.add_transition("1", "b", "a", "1")
        stg.add_transition("0", "b", "b", "1")
        classes = equivalent_state_classes(stg)
        assert len(classes) == 2

    def test_output_difference_splits(self):
        stg = STG(1, 1)
        # Same structure, one state differs in output on one input.
        stg.add_transition("-", "p", "p", "0")
        stg.add_transition("1", "q", "q", "1")
        stg.add_transition("0", "q", "q", "0")
        classes = equivalent_state_classes(stg)
        assert len(classes) == 2


class TestMinimize:
    def test_reduces_and_preserves_behaviour(self):
        stg = duplicated_ring()
        red = minimize_stg(stg)
        assert len(red.states) == 3
        assert is_behaviourally_equivalent(stg, red, "c0_0",
                                           red.reset_state)
        assert is_behaviourally_equivalent(stg, red, "c1_0",
                                           red.reset_state)

    def test_already_minimal_unchanged(self):
        stg = STG(1, 1)
        stg.add_transition("1", "a", "b", "0")
        stg.add_transition("0", "a", "a", "1")
        stg.add_transition("1", "b", "a", "1")
        stg.add_transition("0", "b", "b", "0")
        red = minimize_stg(stg)
        assert len(red.states) == 2
        assert is_behaviourally_equivalent(stg, red, "a",
                                           red.reset_state)

    def test_reset_preserved(self):
        stg = duplicated_ring()
        red = minimize_stg(stg)
        assert red.reset_state in red.states

    def test_fewer_flipflops_after_minimization(self):
        """The point of minimization: fewer states, fewer state bits."""
        import math

        stg = duplicated_ring(copies=3, length=3)   # 9 -> 3 states
        red = minimize_stg(stg)
        bits_before = math.ceil(math.log2(len(stg.states)))
        bits_after = math.ceil(math.log2(len(red.states)))
        assert bits_after < bits_before
