"""Unit tests for repro.sim (vectors, functional, event-driven)."""

import random

import pytest

from repro.logic.gates import GateType
from repro.logic.generators import parity_tree, ripple_carry_adder
from repro.logic.netlist import Network
from repro.sim.event import EventSimulator, timed_transitions
from repro.sim.functional import (node_one_counts, sequential_transitions,
                                  simulate_transitions,
                                  verify_equivalence)
from repro.sim.vectors import (counter_bus_stream, hamming,
                               random_bus_stream, random_words,
                               stream_transitions, vectors_from_words,
                               words_from_vectors)


class TestVectors:
    def test_random_words_width(self):
        w = random_words(["a", "b"], 100, seed=1)
        assert w["a"] < (1 << 100)
        assert w["a"] != w["b"]

    def test_probability_bias(self):
        w = random_words(["a"], 4000, seed=2, probs={"a": 0.9})
        assert 0.85 < bin(w["a"]).count("1") / 4000 < 0.95

    def test_pack_unpack_roundtrip(self):
        vectors = [{"a": 1, "b": 0}, {"a": 0, "b": 0}, {"a": 1, "b": 1}]
        words = words_from_vectors(vectors)
        assert vectors_from_words(words, 3) == vectors

    def test_bus_stream_correlation(self):
        iid = random_bus_stream(16, 500, seed=3, correlation=0.0)
        corr = random_bus_stream(16, 500, seed=3, correlation=0.9)
        assert stream_transitions(corr) < stream_transitions(iid)

    def test_counter_stream(self):
        s = counter_bus_stream(8, 5, start=254)
        assert s == [254, 255, 0, 1, 2]

    def test_hamming(self):
        assert hamming(0b1010, 0b0110) == 2


class TestFunctional:
    def test_transition_counts_bounded(self):
        net = ripple_carry_adder(4)
        words = random_words(net.inputs, 65, seed=0)
        tr = simulate_transitions(net, words, 65)
        assert all(0 <= t <= 64 for t in tr.values())

    def test_constant_input_no_transitions(self):
        net = ripple_carry_adder(2)
        words = {name: 0 for name in net.inputs}
        tr = simulate_transitions(net, words, 32)
        assert all(t == 0 for t in tr.values())

    def test_alternating_input(self):
        net = Network()
        net.add_input("a")
        net.add_gate("o", GateType.NOT, ["a"])
        net.set_output("o")
        words = {"a": 0b0101010101}
        tr = simulate_transitions(net, words, 10)
        assert tr["o"] == 9

    def test_one_counts(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.set_output("g")
        words = {"a": 0b1111, "b": 0b0011}
        ones = node_one_counts(net, words, 4)
        assert ones["g"] == 2

    def test_verify_equivalence_positive(self):
        a = ripple_carry_adder(3)
        b = ripple_carry_adder(3)
        assert verify_equivalence(a, b, 128)

    def test_verify_equivalence_negative(self):
        a = ripple_carry_adder(2)
        b = ripple_carry_adder(2)
        # Corrupt one gate.
        b.nodes["s0"].gtype = GateType.XNOR
        assert not verify_equivalence(a, b, 128)

    def test_verify_different_inputs_raises(self):
        a = ripple_carry_adder(2)
        b = ripple_carry_adder(3)
        with pytest.raises(ValueError):
            verify_equivalence(a, b)

    def test_sequential_transitions_gated_latch(self):
        net = Network()
        net.add_inputs(["d", "en"])
        net.add_latch("d", "q", enable="en")
        net.add_gate("o", GateType.BUF, ["q"])
        net.set_output("o")
        seq = [{"d": k & 1, "en": 0} for k in range(10)]
        tr, _ = sequential_transitions(net, seq)
        assert tr["q"] == 0   # never enabled -> never toggles
        seq = [{"d": k & 1, "en": 1} for k in range(10)]
        tr, _ = sequential_transitions(net, seq)
        assert tr["q"] > 0


class TestEventDriven:
    def test_matches_functional_on_tree(self):
        """On a balanced tree with unit delays there are no glitches, so
        timed and zero-delay counts agree."""
        net = parity_tree(8, balanced=True)
        words = random_words(net.inputs, 64, seed=1)
        func = simulate_transitions(net, words, 64)
        vecs = vectors_from_words(words, 64)
        timed = timed_transitions(net, vecs)
        assert timed == func

    def test_chain_glitches(self):
        """An unbalanced XOR chain glitches: timed > functional."""
        net = parity_tree(8, balanced=False)
        words = random_words(net.inputs, 128, seed=2)
        func = simulate_transitions(net, words, 128)
        vecs = vectors_from_words(words, 128)
        timed = timed_transitions(net, vecs)
        assert sum(timed.values()) > sum(func.values())
        # Glitching never *reduces* transitions at any node.
        for name in func:
            assert timed[name] >= func[name]

    def test_final_values_correct(self):
        net = ripple_carry_adder(4)
        sim = EventSimulator(net)
        rng = random.Random(5)
        vec = {}
        for _ in range(20):
            a, b = rng.randrange(16), rng.randrange(16)
            vec = {f"a{i}": (a >> i) & 1 for i in range(4)}
            vec.update({f"b{i}": (b >> i) & 1 for i in range(4)})
            vec["cin"] = 0
            sim.settle(vec)
            s = sum(sim.values[f"s{i}"] << i for i in range(4))
            s += sim.values["c4"] << 4
            assert s == a + b

    def test_custom_delays(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("x", GateType.XOR, ["a", "b"])
        net.add_gate("slow", GateType.BUF, ["a"])
        net.add_gate("y", GateType.XOR, ["slow", "x"])
        net.set_output("y")
        # With matched delays (slow=1), y sees (a@1 xor x@1): glitchy
        # only through skew; with slow=2 the skew grows.
        vecs = [{"a": 0, "b": 0}, {"a": 1, "b": 1}, {"a": 0, "b": 0}]
        t1 = timed_transitions(net, vecs, delays={"slow": 1.0})
        t2 = timed_transitions(net, vecs, delays={"slow": 5.0})
        assert t2["y"] >= t1["y"]

    def test_settling_time_reported(self):
        net = parity_tree(4, balanced=False)
        sim = EventSimulator(net)
        sim.settle({f"i{k}": 0 for k in range(4)})
        t = sim.settle({f"i{k}": 1 for k in range(4)})
        assert t >= 1.0
