"""Unit tests for repro.logic.gates."""

import pytest

from repro.logic.gates import (GateType, eval_gate, gate_arity_ok,
                               gate_transistors)


class TestEvalGate:
    M = 0b1111

    def test_and_or(self):
        a, b = 0b1100, 0b1010
        assert eval_gate(GateType.AND, [a, b], self.M) == 0b1000
        assert eval_gate(GateType.OR, [a, b], self.M) == 0b1110

    def test_nand_nor(self):
        a, b = 0b1100, 0b1010
        assert eval_gate(GateType.NAND, [a, b], self.M) == 0b0111
        assert eval_gate(GateType.NOR, [a, b], self.M) == 0b0001

    def test_xor_xnor(self):
        a, b = 0b1100, 0b1010
        assert eval_gate(GateType.XOR, [a, b], self.M) == 0b0110
        assert eval_gate(GateType.XNOR, [a, b], self.M) == 0b1001

    def test_not_buf(self):
        assert eval_gate(GateType.NOT, [0b1100], self.M) == 0b0011
        assert eval_gate(GateType.BUF, [0b1100], self.M) == 0b1100

    def test_const(self):
        assert eval_gate(GateType.CONST0, [], self.M) == 0
        assert eval_gate(GateType.CONST1, [], self.M) == self.M

    def test_mux(self):
        sel, d0, d1 = 0b1100, 0b1010, 0b0110
        out = eval_gate(GateType.MUX, [sel, d0, d1], self.M)
        # sel=1 -> d1; sel=0 -> d0
        assert out == (0b0100 | 0b0010)

    def test_maj(self):
        a, b, c = 0b1100, 0b1010, 0b0110
        out = eval_gate(GateType.MAJ, [a, b, c], self.M)
        for k in range(4):
            bits = [(a >> k) & 1, (b >> k) & 1, (c >> k) & 1]
            assert (out >> k) & 1 == (1 if sum(bits) >= 2 else 0)

    def test_wide_gates(self):
        ins = [0b1111, 0b1110, 0b1100]
        assert eval_gate(GateType.AND, ins, self.M) == 0b1100
        assert eval_gate(GateType.XOR, ins, self.M) == \
            0b1111 ^ 0b1110 ^ 0b1100

    def test_mask_confines_result(self):
        assert eval_gate(GateType.NOT, [0], 0b11) == 0b11


class TestArity:
    def test_ok(self):
        assert gate_arity_ok(GateType.AND, 2)
        assert gate_arity_ok(GateType.AND, 5)
        assert gate_arity_ok(GateType.NOT, 1)
        assert gate_arity_ok(GateType.MUX, 3)
        assert gate_arity_ok(GateType.CONST0, 0)

    def test_bad(self):
        assert not gate_arity_ok(GateType.AND, 1)
        assert not gate_arity_ok(GateType.NOT, 2)
        assert not gate_arity_ok(GateType.MUX, 2)
        assert not gate_arity_ok(GateType.CONST1, 1)


class TestTransistors:
    def test_two_input_counts(self):
        assert gate_transistors(GateType.NAND, 2) == 4
        assert gate_transistors(GateType.AND, 2) == 6
        assert gate_transistors(GateType.NOT, 1) == 2

    def test_scaling_with_width(self):
        assert gate_transistors(GateType.NAND, 4) == 8
        assert gate_transistors(GateType.AND, 4) == 10
        assert gate_transistors(GateType.XOR, 3) == 20

    def test_inverting_property(self):
        assert GateType.NAND.is_inverting
        assert not GateType.AND.is_inverting
