"""Tests for the RTL back end (DFG -> gate-level datapath)."""

import random

import pytest

from repro.arch.allocation import bind_operations
from repro.arch.dfg import DFG, chained_sum_dfg, fir_dfg
from repro.arch.rtl import (RTLResult, run_iteration,
                            synthesize_datapath)
from repro.arch.scheduling import list_schedule
from repro.logic.transform import instantiate
from repro.logic.gates import GateType
from repro.logic.netlist import Network


def synth(dfg, resources, width=4, strategy="naive"):
    sched = list_schedule(dfg, resources)
    binding = bind_operations(dfg, sched, strategy).binding
    return synthesize_datapath(dfg, sched, binding, width=width)


def check_bit_exact(dfg, rtl, trials=25, seed=0):
    rng = random.Random(seed)
    mask = (1 << rtl.width) - 1
    for _ in range(trials):
        ints = {n: rng.randrange(1 << rtl.width) for n in dfg.inputs()}
        got = run_iteration(rtl, ints)
        ref = dfg.evaluate({k: float(v) for k, v in ints.items()})
        for out in dfg.outputs:
            assert got[out] == int(round(ref[out])) & mask


class TestInstantiate:
    def test_port_map_required(self):
        from repro.logic.generators import ripple_carry_adder

        target = Network()
        target.add_input("p")
        with pytest.raises(ValueError):
            instantiate(target, ripple_carry_adder(2), "u_", {"a0": "p"})

    def test_sequential_module_rejected(self):
        target = Network()
        seq = Network()
        seq.add_input("d")
        seq.add_latch("d", "q")
        seq.set_output("q")
        with pytest.raises(ValueError):
            instantiate(target, seq, "u_", {"d": "x"})

    def test_two_instances_coexist(self):
        from repro.logic.generators import ripple_carry_adder

        target = Network()
        ins = target.add_inputs([f"i{k}" for k in range(5)])
        add = ripple_carry_adder(2)
        port = {"a0": "i0", "a1": "i1", "b0": "i2", "b1": "i3",
                "cin": "i4"}
        r1 = instantiate(target, add, "u1_", port)
        r2 = instantiate(target, add, "u2_", port)
        target.set_outputs([r1["s0"], r2["s1"]])
        target.check()
        assert r1["s0"] != r2["s0"]


class TestRtlCorrectness:
    def test_chained_sum(self):
        dfg = chained_sum_dfg(5)
        rtl = synth(dfg, {"add": 1})
        check_bit_exact(dfg, rtl)

    def test_parallel_adders(self):
        dfg = chained_sum_dfg(5)
        rtl = synth(dfg, {"add": 2})
        check_bit_exact(dfg, rtl)

    def test_fir_with_multipliers(self):
        dfg = fir_dfg(3)
        rtl = synth(dfg, {"add": 1, "mul": 1})
        check_bit_exact(dfg, rtl)

    def test_fir_two_units(self):
        dfg = fir_dfg(4)
        rtl = synth(dfg, {"add": 2, "mul": 2})
        check_bit_exact(dfg, rtl)

    def test_subtraction(self):
        dfg = DFG()
        a = dfg.add("a", "input")
        b = dfg.add("b", "input")
        c = dfg.add("c", "input")
        s1 = dfg.add("s1", "sub", [a, b])
        s2 = dfg.add("s2", "add", [s1, c])
        dfg.add("y", "output", [s2])
        rtl = synth(dfg, {"add": 1, "sub": 1})
        check_bit_exact(dfg, rtl)

    def test_wider_datapath(self):
        dfg = chained_sum_dfg(4)
        rtl = synth(dfg, {"add": 1}, width=8)
        check_bit_exact(dfg, rtl, trials=15)

    def test_unsupported_op_rejected(self):
        dfg = DFG()
        a = dfg.add("a", "input")
        b = dfg.add("b", "input")
        dfg.add("c", "cmp", [a, b])
        dfg.add("y", "output", ["c"])
        sched = list_schedule(dfg, {})
        with pytest.raises(ValueError):
            synthesize_datapath(dfg, sched, {"c": ("cmp", 0)})


class TestRtlStructure:
    def test_register_sharing(self):
        """A serial chain on one adder reuses a single register."""
        dfg = chained_sum_dfg(6)
        rtl = synth(dfg, {"add": 1})
        assert rtl.num_registers <= 2

    def test_parallel_values_need_registers(self):
        dfg = fir_dfg(4)
        rtl = synth(dfg, {"add": 2, "mul": 4})
        assert rtl.num_registers >= 2

    def test_latency_matches_schedule(self):
        from repro.arch.scheduling import schedule_length

        dfg = fir_dfg(3)
        sched = list_schedule(dfg, {"add": 1, "mul": 1})
        binding = bind_operations(dfg, sched, "naive").binding
        rtl = synthesize_datapath(dfg, sched, binding)
        assert rtl.latency == schedule_length(dfg, sched)

    def test_iterations_are_repeatable(self):
        """The control counter wraps: a second iteration with new
        inputs gives the right answer."""
        dfg = chained_sum_dfg(4)
        rtl = synth(dfg, {"add": 1})
        net = rtl.network
        state = net.initial_state()
        rng = random.Random(3)
        for _round in range(3):
            ints = {n: rng.randrange(16) for n in dfg.inputs()}
            vec = {}
            for pi in net.inputs:
                base, bit = pi.rsplit("_", 1)
                vec[pi] = (ints[base] >> int(bit)) & 1
            for _ in range(rtl.latency):
                state, _v = net.step_words(state, vec, 1)
            got = sum((state[b] & 1) << i for i, b in
                      enumerate(rtl.output_bits("y")))
            ref = dfg.evaluate({k: float(v) for k, v in ints.items()})
            assert got == int(round(ref["y"])) & 15


class TestBindingAtGateLevel:
    def test_worst_vs_low_power_measured(self):
        """The [33] claim, validated on synthesized hardware: the
        low-power binding's netlist burns less than the worst one's."""
        from repro.arch.allocation import profile_operands
        from repro.power.activity import sequential_activity
        from repro.power.model import power_report

        dfg = DFG("corr")
        x = dfg.add("x", "input")
        y = dfg.add("y", "input")
        for i, (src, cval) in enumerate([(x, 3), (x, 5), (y, 7),
                                         (y, 9)]):
            c = dfg.add(f"c{i}", "const", value=float(cval))
            dfg.add(f"m{i}", "mul", [src, c])
        s1 = dfg.add("s1", "add", ["m0", "m1"])
        s2 = dfg.add("s2", "add", ["m2", "m3"])
        s3 = dfg.add("s3", "add", ["s1", "s2"])
        dfg.add("out", "output", [s3])
        # Pin the schedule so both units have a real pairing choice
        # (m0/m3 in step 0, m1/m2 in step 2).
        sched = {name: 0 for name in dfg.ops}
        sched.update({"m0": 0, "m3": 0, "m1": 2, "m2": 2,
                      "s1": 4, "s2": 5, "s3": 6, "out": 7})
        traces = profile_operands(dfg, 64, seed=1)
        worst = bind_operations(dfg, sched, "worst", traces)
        lp = bind_operations(dfg, sched, "low-power", traces)
        assert lp.switched_capacitance < worst.switched_capacitance

        def measure(binding):
            rtl = synthesize_datapath(dfg, sched, binding, width=4)
            net = rtl.network
            rng = random.Random(7)
            vecs = []
            for _ in range(120):
                ints = {n: rng.randrange(16) for n in dfg.inputs()}
                vec = {}
                for pi in net.inputs:
                    base, bit = pi.rsplit("_", 1)
                    vec[pi] = (ints[base] >> int(bit)) & 1
                vecs.extend([vec] * rtl.latency)
            act = sequential_activity(net, vecs)
            return power_report(net, act).total

        assert measure(lp.binding) < measure(worst.binding)
