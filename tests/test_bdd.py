"""Unit tests for the ROBDD package."""

import pytest

from repro.bdd.bdd import BDD


@pytest.fixture
def mgr():
    return BDD(["a", "b", "c"])


class TestBasics:
    def test_terminals(self, mgr):
        assert mgr.true.is_true
        assert mgr.false.is_false
        assert (~mgr.true).is_false

    def test_var(self, mgr):
        a = mgr.var("a")
        assert a.evaluate({"a": 1})
        assert not a.evaluate({"a": 0})

    def test_hash_consing(self, mgr):
        a1 = mgr.var("a")
        a2 = mgr.var("a")
        assert a1.node == a2.node

    def test_new_variable_on_demand(self, mgr):
        d = mgr.var("d")
        assert "d" in mgr.var_level

    def test_duplicate_variable_rejected(self, mgr):
        with pytest.raises(ValueError):
            mgr.add_variable("a")


class TestOperators:
    def test_and_or_not(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        assert f.evaluate({"a": 1, "b": 1})
        assert not f.evaluate({"a": 1, "b": 0})
        g = a | b
        assert g.evaluate({"a": 0, "b": 1})
        assert not g.evaluate({"a": 0, "b": 0})
        assert (~a).evaluate({"a": 0})

    def test_xor(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a ^ b
        assert f.evaluate({"a": 1, "b": 0})
        assert not f.evaluate({"a": 1, "b": 1})

    def test_canonicity(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f1 = ~(a & b)
        f2 = ~a | ~b
        assert f1.node == f2.node   # De Morgan, canonical form

    def test_ite(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = a.ite(b, c)
        assert f.evaluate({"a": 1, "b": 1, "c": 0})
        assert f.evaluate({"a": 0, "b": 0, "c": 1})
        assert not f.evaluate({"a": 1, "b": 0, "c": 1})

    def test_bool_coercion(self, mgr):
        a = mgr.var("a")
        assert (a & True).node == a.node
        assert (a & False).is_false
        assert (a | True).is_true

    def test_implies_equiv(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & b).implies(a)
        assert not a.implies(a & b)
        assert (a & b).equiv(b & a)

    def test_mixing_managers_rejected(self, mgr):
        other = BDD(["x"])
        with pytest.raises(ValueError):
            mgr.var("a") & other.var("x")


class TestQuantification:
    def test_exists(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = (a & b).exists(["b"])
        assert f.node == a.node

    def test_forall(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = (a | b).forall(["b"])
        assert f.node == a.node
        g = (a & b).forall(["b"])
        assert g.is_false

    def test_restrict(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = (a & b).restrict({"a": 1})
        assert f.node == b.node
        assert (a & b).restrict({"a": 0}).is_false

    def test_compose(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = a & b
        g = f.compose("b", c | a)
        assert g.equiv(a & (c | a))


class TestAnalysis:
    def test_probability_uniform(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & b).probability({}) == pytest.approx(0.25)
        assert (a | b).probability({}) == pytest.approx(0.75)
        assert (a ^ b).probability({}) == pytest.approx(0.5)

    def test_probability_biased(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        p = (a & b).probability({"a": 0.9, "b": 0.1})
        assert p == pytest.approx(0.09)

    def test_sat_count(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & b).sat_count() == pytest.approx(2.0)  # 3 vars total
        assert (a | b).sat_count(2) == pytest.approx(3.0)

    def test_support(self, mgr):
        a, c = mgr.var("a"), mgr.var("c")
        assert (a & c).support() == ["a", "c"]
        assert mgr.true.support() == []

    def test_num_nodes_grows(self, mgr):
        before = mgr.num_nodes()
        f = mgr.var("a") ^ mgr.var("b") ^ mgr.var("c")
        assert mgr.num_nodes() > before


class TestCircuitBdds:
    def test_adder_bdds(self):
        from repro.bdd.circuit import network_bdds
        from repro.logic.generators import ripple_carry_adder

        net = ripple_carry_adder(3)
        funcs = network_bdds(net)
        for a in range(8):
            for b in range(8):
                assign = {f"a{i}": (a >> i) & 1 for i in range(3)}
                assign.update({f"b{i}": (b >> i) & 1 for i in range(3)})
                assign["cin"] = 0
                s = sum(funcs[f"s{i}"].evaluate(assign) << i
                        for i in range(3))
                s += funcs["c3"].evaluate(assign) << 3
                assert s == a + b

    def test_bdd_to_cover_roundtrip(self):
        from repro.bdd.circuit import bdd_to_cover

        mgr = BDD(["x", "y", "z"])
        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        f = (x & y) | (~x & z)
        cover = bdd_to_cover(f, ["x", "y", "z"])
        for m in range(8):
            assign = {"x": m & 1, "y": (m >> 1) & 1, "z": (m >> 2) & 1}
            assert cover.evaluate(m) == f.evaluate(assign)
