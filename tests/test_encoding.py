"""Unit tests for low-power state encoding."""

import pytest

from repro.opt.seq.encoding import (encode_anneal, encode_greedy,
                                    encode_natural, encode_onehot,
                                    encoding_cost, evaluate_encoding)
from repro.opt.seq.stg import STG


def ring_stg(n=4):
    """Ring counter with heavy self-loops (p=1/2)."""
    stg = STG(1, 1)
    names = [f"s{i}" for i in range(n)]
    for i, s in enumerate(names):
        nxt = names[(i + 1) % n]
        out = "1" if i == n - 1 else "0"
        stg.add_transition("0", s, s, out)
        stg.add_transition("1", s, nxt, out)
    return stg


def hub_stg():
    """Star-shaped STG: hub <-> each spoke, hub traffic dominates."""
    stg = STG(2, 1)
    for k, spoke in enumerate(["p", "q", "r"]):
        cube = format(k, "02b")
        stg.add_transition(cube, "hub", spoke, "0")
        stg.add_transition("--", spoke, "hub", "1")
    stg.add_transition("11", "hub", "hub", "0")
    return stg


class TestEncoders:
    def test_natural_is_identity_order(self):
        stg = ring_stg()
        assert encode_natural(stg) == {"s0": 0, "s1": 1, "s2": 2,
                                       "s3": 3}

    def test_onehot_codes(self):
        stg = ring_stg()
        enc = encode_onehot(stg)
        assert sorted(enc.values()) == [1, 2, 4, 8]

    def test_greedy_produces_unique_codes(self):
        stg = ring_stg(6)
        enc = encode_greedy(stg)
        assert len(set(enc.values())) == 6
        assert max(enc.values()) < 8   # 3 bits suffice

    def test_greedy_beats_natural_on_ring(self):
        stg = ring_stg(4)
        nat = encoding_cost(stg, encode_natural(stg))
        gre = encoding_cost(stg, encode_greedy(stg))
        assert gre <= nat

    def test_anneal_at_least_as_good_as_greedy(self):
        stg = hub_stg()
        greedy = encode_greedy(stg)
        annealed = encode_anneal(stg, iterations=2000, seed=1)
        assert encoding_cost(stg, annealed) <= \
            encoding_cost(stg, greedy) + 1e-9

    def test_hub_gets_central_code(self):
        """The hub state should be uni-distant from most spokes."""
        stg = hub_stg()
        enc = encode_anneal(stg, iterations=3000, seed=0)
        hub = enc["hub"]
        dists = [bin(hub ^ enc[s]).count("1") for s in ("p", "q", "r")]
        assert sum(dists) <= 4

    def test_num_bits_too_small_rejected(self):
        stg = ring_stg(6)
        with pytest.raises(ValueError):
            encode_greedy(stg, num_bits=2)


class TestCost:
    def test_cost_formula(self):
        stg = ring_stg(2)   # two states, moves with p=0.5
        enc = {"s0": 0, "s1": 1}
        # w(s0->s1) = w(s1->s0) = 0.25 each; Hamming 1.
        assert encoding_cost(stg, enc) == pytest.approx(0.5)

    def test_onehot_cost_is_twice_move_probability(self):
        stg = ring_stg(4)
        cost = encoding_cost(stg, encode_onehot(stg))
        assert cost == pytest.approx(2 * 0.5)


class TestEvaluate:
    def test_evaluation_consistency(self):
        stg = ring_stg(4)
        nat = evaluate_encoding(stg, encode_natural(stg), 600)
        ann = evaluate_encoding(stg, encode_anneal(stg, iterations=1500),
                                600)
        # Lower register cost should translate to lower measured power
        # on this register-dominated machine.
        if ann.register_cost < nat.register_cost:
            assert ann.total_power < nat.total_power * 1.05

    def test_result_fields(self):
        stg = ring_stg(4)
        res = evaluate_encoding(stg, encode_natural(stg), 200)
        assert res.literals > 0
        assert res.report.total > 0
        assert set(res.encoding) == set(stg.states)
