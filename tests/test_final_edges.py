"""Last-mile edge cases across packages."""

import pytest

from repro.logic.exact import is_minimum_size, minimize_exact
from repro.logic.sop import Cover
from repro.opt.datapath.bus_coding import bus_invert
from repro.opt.datapath.number_repr import (to_sign_magnitude,
                                            to_twos_complement)
from repro.opt.datapath.residue import OneHotResidue
from repro.power.glitch import timed_average_power


class TestExactHelpers:
    def test_is_minimum_size(self):
        on = Cover.from_minterms(3, [0, 1, 2, 5, 6, 7])
        assert is_minimum_size(minimize_exact(on), on)
        fat = Cover.from_minterms(3, [0, 1, 2, 5, 6, 7])
        assert not is_minimum_size(fat, on)   # 6 minterm cubes > 3


class TestNumberEncodings:
    @pytest.mark.parametrize("v", [-128, -1, 0, 1, 127])
    def test_twos_complement_roundtrip(self, v):
        enc = to_twos_complement(v, 8)
        dec = enc - 256 if enc >= 128 else enc
        assert dec == v

    @pytest.mark.parametrize("v", [-127, -1, 0, 1, 127])
    def test_sign_magnitude_roundtrip(self, v):
        enc = to_sign_magnitude(v, 8)
        mag = enc & 0x7F
        dec = -mag if enc & 0x80 else mag
        assert dec == v


class TestResidueBinaryBaseline:
    def test_binary_transitions_helper(self):
        t = OneHotResidue.binary_transitions([0b0000, 0b1111, 0b0000],
                                             4)
        assert t == 8


class TestBusResultProperties:
    def test_per_transfer(self):
        res = bus_invert([0, 0xFF, 0, 0xFF], 8)
        assert res.per_transfer == pytest.approx(
            res.transitions_coded / 3)

    def test_single_word_stream(self):
        res = bus_invert([0xAB], 8)
        assert res.transitions_coded == 0
        assert res.saving == 0.0


class TestTimedPowerOptions:
    def test_custom_delays_accepted(self):
        from repro.logic.generators import parity_tree

        net = parity_tree(6, balanced=False)
        fast = timed_average_power(net, 64, seed=1,
                                   delays={n: 1.0 for n in net.nodes})
        slow_map = {}
        for name, node in net.nodes.items():
            if not node.is_source():
                slow_map[name] = 1.0
        # Uniform delays: identical counts either way.
        same = timed_average_power(net, 64, seed=1, delays=slow_map)
        assert fast.total == pytest.approx(same.total)

    def test_input_probs_change_power(self):
        from repro.logic.generators import ripple_carry_adder

        net = ripple_carry_adder(4)
        busy = timed_average_power(net, 128, seed=2).total
        quiet = timed_average_power(
            net, 128, seed=2,
            input_probs={n: 0.02 for n in net.inputs}).total
        assert quiet < busy


class TestCliErrors:
    def test_fsm_missing_file(self, tmp_path):
        from repro.tools.cli import main

        with pytest.raises(FileNotFoundError):
            main(["fsm", str(tmp_path / "nope.kiss")])


class TestRtlWorstStrategyCorrect:
    def test_worst_binding_still_bit_exact(self):
        """The 'worst' binding is a power experiment, never a
        functional one: the hardware must still compute correctly."""
        import random

        from repro.arch.allocation import bind_operations
        from repro.arch.dfg import fir_dfg
        from repro.arch.rtl import run_iteration, synthesize_datapath
        from repro.arch.scheduling import list_schedule

        dfg = fir_dfg(3)
        sched = list_schedule(dfg, {"add": 1, "mul": 2})
        binding = bind_operations(dfg, sched, "worst").binding
        rtl = synthesize_datapath(dfg, sched, binding, width=4)
        rng = random.Random(9)
        for _ in range(15):
            ints = {n: rng.randrange(16) for n in dfg.inputs()}
            got = run_iteration(rtl, ints)["y"]
            ref = dfg.evaluate({k: float(v) for k, v in ints.items()})
            assert got == int(round(ref["y"])) & 15
