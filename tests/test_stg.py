"""Unit tests for STG / KISS / FSM synthesis."""

import pytest

from repro.logic.cube import Cube
from repro.opt.seq.stg import STG, read_kiss, synthesize_fsm, write_kiss


def four_state_counter_stg():
    """Completely specified 4-state up-counter with enable."""
    stg = STG(1, 1)
    names = ["s0", "s1", "s2", "s3"]
    for i, s in enumerate(names):
        nxt = names[(i + 1) % 4]
        out = "1" if s == "s3" else "0"
        stg.add_transition("0", s, s, out)
        stg.add_transition("1", s, nxt, out)
    return stg


class TestSTG:
    def test_states_registered(self):
        stg = four_state_counter_stg()
        assert stg.states == ["s0", "s1", "s2", "s3"]
        assert stg.reset_state == "s0"

    def test_next_state(self):
        stg = four_state_counter_stg()
        assert stg.next_state("s0", 1) == ("s1", "0")
        assert stg.next_state("s0", 0) == ("s0", "0")
        assert stg.next_state("s3", 1) == ("s0", "1")

    def test_arity_checks(self):
        stg = STG(2, 1)
        with pytest.raises(ValueError):
            stg.add_transition("0", "a", "b", "1")       # input width
        with pytest.raises(ValueError):
            stg.add_transition("00", "a", "b", "11")     # output width

    def test_transition_matrix_rows_sum_to_one(self):
        stg = four_state_counter_stg()
        m = stg.transition_matrix()
        for s, row in m.items():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_stationary_uniform_for_symmetric_ring(self):
        stg = four_state_counter_stg()
        pi = stg.stationary_distribution()
        for s in stg.states:
            assert pi[s] == pytest.approx(0.25, abs=1e-6)

    def test_stationary_with_biased_inputs(self):
        stg = four_state_counter_stg()
        pi = stg.stationary_distribution(input_probs=[0.9])
        # Symmetric ring: still uniform, but converges differently.
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_self_loop_probability(self):
        stg = four_state_counter_stg()
        assert stg.self_loop_probability() == pytest.approx(0.5)
        assert stg.self_loop_probability([0.1]) == pytest.approx(0.9)

    def test_unspecified_input_self_loops(self):
        stg = STG(1, 1)
        stg.add_transition("1", "a", "b", "1")
        m = stg.transition_matrix()
        assert m["a"]["a"] == pytest.approx(0.5)   # implicit hold

    def test_edge_weights_sum_to_one(self):
        stg = four_state_counter_stg()
        w = stg.edge_weights()
        assert sum(w.values()) == pytest.approx(1.0)


class TestKiss:
    KISS = """
.i 1
.o 1
.s 2
.p 4
.r off
0 off off 0
1 off on 0
0 on on 1
1 on off 1
.e
"""

    def test_parse(self):
        stg = read_kiss(self.KISS)
        assert stg.num_inputs == 1 and stg.num_outputs == 1
        assert stg.reset_state == "off"
        assert len(stg.transitions) == 4

    def test_roundtrip(self):
        stg = read_kiss(self.KISS)
        back = read_kiss(write_kiss(stg))
        assert back.states == stg.states
        assert len(back.transitions) == len(stg.transitions)

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            read_kiss("0 a b 1\n")


class TestSynthesis:
    def test_synthesized_fsm_tracks_stg(self):
        stg = four_state_counter_stg()
        encoding = {"s0": 0, "s1": 1, "s2": 2, "s3": 3}
        net = synthesize_fsm(stg, encoding)
        state = net.initial_state()
        stg_state = "s0"
        import random
        rng = random.Random(0)
        for _ in range(60):
            x = rng.getrandbits(1)
            state, vals = net.step_words(state, {"x0": x}, 1)
            stg_state, out = stg.next_state(stg_state, x)
            code = encoding[stg_state]
            got = sum(state[f"s{j}"] << j for j in range(2))
            assert got == code
            assert vals["z0"] == int(out)

    def test_onehot_synthesis(self):
        stg = four_state_counter_stg()
        encoding = {"s0": 1, "s1": 2, "s2": 4, "s3": 8}
        net = synthesize_fsm(stg, encoding)
        assert len(net.latches) == 4
        state = net.initial_state()
        state, _ = net.step_words(state, {"x0": 1}, 1)
        assert sum(state[f"s{j}"] << j for j in range(4)) == 2

    def test_duplicate_codes_rejected(self):
        stg = four_state_counter_stg()
        with pytest.raises(ValueError):
            synthesize_fsm(stg, {"s0": 0, "s1": 0, "s2": 1, "s3": 2})

    def test_reset_state_loaded(self):
        stg = four_state_counter_stg()
        encoding = {"s0": 3, "s1": 1, "s2": 2, "s3": 0}
        net = synthesize_fsm(stg, encoding)
        assert net.initial_state() == {"s0": 1, "s1": 1}
