"""Property-based tests over random completely-specified FSMs:
synthesis, encoding, clock gating, minimization and the exact
sequential estimator must all agree with each other."""

import random

from hypothesis import given, settings, strategies as st

from repro.opt.seq.encoding import (encode_anneal, encode_greedy,
                                    encode_natural, encoding_cost)
from repro.opt.seq.gated_clock import self_loop_clock_gating
from repro.opt.seq.minimize_fsm import (is_behaviourally_equivalent,
                                        minimize_stg)
from repro.opt.seq.stg import STG, synthesize_fsm
from repro.power.sequential import exact_sequential_activity
from repro.sim.functional import sequential_transitions
from repro.verify.equivalence import sequential_equivalent

SETTINGS = settings(max_examples=15, deadline=None)


@st.composite
def random_fsms(draw, max_states=5):
    """A random completely-specified 1-input Moore-ish machine."""
    seed = draw(st.integers(0, 10 ** 6))
    n = draw(st.integers(2, max_states))
    rng = random.Random(seed)
    stg = STG(1, 1)
    states = [f"s{i}" for i in range(n)]
    for s in states:
        out = str(rng.getrandbits(1))
        stg.add_transition("0", s, rng.choice(states), out)
        stg.add_transition("1", s, rng.choice(states), out)
    return stg


@given(random_fsms())
@SETTINGS
def test_synthesis_tracks_stg(stg):
    enc = encode_natural(stg)
    net = synthesize_fsm(stg, enc)
    rng = random.Random(1)
    state = net.initial_state()
    stg_state = stg.reset_state
    bits = max(1, max(enc.values()).bit_length())
    for _ in range(40):
        x = rng.getrandbits(1)
        state, vals = net.step_words(state, {"x0": x}, 1)
        stg_state, out = stg.next_state(stg_state, x)
        got = sum(state[f"s{j}"] << j for j in range(bits))
        assert got == enc[stg_state]
        assert vals["z0"] == int(out)


@given(random_fsms())
@SETTINGS
def test_optimized_encodings_never_worse(stg):
    nat = encoding_cost(stg, encode_natural(stg))
    gre = encoding_cost(stg, encode_greedy(stg))
    ann = encoding_cost(stg, encode_anneal(stg, iterations=600,
                                           seed=0))
    assert gre <= nat + 1e-9 or ann <= nat + 1e-9
    assert ann <= gre + 1e-9


@given(random_fsms())
@SETTINGS
def test_clock_gating_formally_equivalent(stg):
    res = self_loop_clock_gating(stg, encode_natural(stg))
    assert sequential_equivalent(res.baseline, res.network,
                                 max_joint_states=5000).equivalent


@given(random_fsms())
@SETTINGS
def test_minimization_preserves_behaviour(stg):
    red = minimize_stg(stg)
    assert len(red.states) <= len(stg.states)
    assert is_behaviourally_equivalent(stg, red, stg.reset_state,
                                       red.reset_state, length=120)


@given(random_fsms())
@SETTINGS
def test_exact_estimator_matches_simulation(stg):
    net = synthesize_fsm(stg, encode_natural(stg))
    analysis = exact_sequential_activity(net)
    rng = random.Random(3)
    vecs = [{"x0": rng.getrandbits(1)} for _ in range(6000)]
    sim_tr, _ = sequential_transitions(net, vecs)
    for name, count in sim_tr.items():
        sim_act = count / (len(vecs) - 1)
        assert abs(analysis.activities[name] - sim_act) < 0.06, name


@given(random_fsms())
@SETTINGS
def test_stationary_distribution_is_stochastic(stg):
    pi = stg.stationary_distribution()
    assert abs(sum(pi.values()) - 1.0) < 1e-6
    assert all(p >= -1e-12 for p in pi.values())
