"""Tests for the formal equivalence checker — and formal verification
of the sequential optimizations themselves."""

import pytest

from repro.logic.gates import GateType
from repro.logic.generators import comparator, ripple_carry_adder
from repro.logic.netlist import Network
from repro.opt.seq.encoding import encode_anneal, encode_natural
from repro.opt.seq.fsm_benchmarks import load_benchmark
from repro.opt.seq.gated_clock import self_loop_clock_gating
from repro.opt.seq.precompute import precomputed_comparator
from repro.opt.seq.stg import synthesize_fsm
from repro.verify.equivalence import (combinational_equivalent,
                                      sequential_equivalent)


class TestCombinational:
    def test_positive(self):
        assert combinational_equivalent(ripple_carry_adder(3),
                                        ripple_carry_adder(3))

    def test_negative(self):
        a = ripple_carry_adder(2)
        b = ripple_carry_adder(2)
        b.nodes["s0"].gtype = GateType.XNOR
        assert not combinational_equivalent(a, b)


class TestSequentialChecker:
    def simple_counter(self, init=0):
        net = Network()
        net.add_input("en")
        net.add_gate("nq", GateType.XOR, ["q", "en"])
        net.add_latch("nq", "q", init=init)
        net.add_gate("o", GateType.BUF, ["q"])
        net.set_output("o")
        return net

    def test_identical_machines(self):
        res = sequential_equivalent(self.simple_counter(),
                                    self.simple_counter())
        assert res.equivalent
        assert res.joint_states_explored >= 1

    def test_different_init_detected(self):
        res = sequential_equivalent(self.simple_counter(0),
                                    self.simple_counter(1))
        assert not res.equivalent
        assert res.counterexample is not None

    def test_different_function_detected(self):
        a = self.simple_counter()
        b = self.simple_counter()
        b.nodes["nq"].gtype = GateType.XNOR
        res = sequential_equivalent(a, b)
        assert not res.equivalent
        # Counterexample names the differing output pair.
        assert res.counterexample["output"] == ("o", "o")

    def test_different_inputs_rejected(self):
        a = self.simple_counter()
        b = Network()
        b.add_input("x")
        b.add_latch("x", "q")
        b.set_output("q")
        with pytest.raises(ValueError):
            sequential_equivalent(a, b)

    def test_state_budget(self):
        net = Network()
        net.add_input("d")
        prev = "d"
        for k in range(10):
            net.add_latch(prev, f"q{k}")
            prev = f"q{k}"
        net.set_output(prev)
        with pytest.raises(RuntimeError):
            sequential_equivalent(net, net.copy(), max_joint_states=8)

    def test_state_mismatch_with_equal_behaviour(self):
        """A re-encoded machine is equivalent despite different state
        bits (the product check only compares outputs)."""
        stg = load_benchmark("detector")
        base = synthesize_fsm(stg, encode_natural(stg),
                              name="fsm_nat")
        ann = synthesize_fsm(stg, encode_anneal(stg, iterations=1500),
                             name="fsm_ann")
        res = sequential_equivalent(base, ann)
        assert res.equivalent


class TestFormalVerificationOfOptimizations:
    def test_clock_gating_formally_verified(self):
        stg = load_benchmark("vending")
        gate = self_loop_clock_gating(stg, encode_natural(stg))
        res = sequential_equivalent(gate.baseline, gate.network)
        assert res.equivalent

    def test_precompute_formally_verified(self):
        pre = precomputed_comparator(3)
        res = sequential_equivalent(pre.baseline, pre.network)
        assert res.equivalent

    def test_shared_fsm_formally_verified(self):
        from repro.opt.logic.share import share_product_terms

        stg = load_benchmark("detector")
        base = synthesize_fsm(stg, encode_natural(stg), minimize=False)
        shared = base.copy()
        share_product_terms(shared)
        res = sequential_equivalent(base, shared)
        assert res.equivalent

    def test_broken_gating_caught(self):
        """Sabotage the enable cover: the checker must find the bug."""
        stg = load_benchmark("vending")
        gate = self_loop_clock_gating(stg, encode_natural(stg))
        bad = gate.network
        # Invert the enable: latches load exactly when they must hold.
        from repro.logic.sop import Cover

        node = bad.nodes["_fa_n"]
        node.cover = node.cover.complement()
        res = sequential_equivalent(gate.baseline, bad)
        assert not res.equivalent
