"""Unit tests for the technology library and switch-level stack model."""

import pytest

from repro.library.cells import Library, generic_library
from repro.library.transistors import SeriesStack, StackEnergyModel


class TestCells:
    def test_library_contents(self):
        lib = generic_library()
        assert len(lib) >= 20
        assert "nand2_x1" in lib.cells
        assert "inv_x2" in lib.cells

    def test_drive_strength_trade(self):
        lib = generic_library()
        x1, x2 = lib["nand2_x1"], lib["nand2_x2"]
        assert x2.area == 2 * x1.area
        assert x2.input_cap == 2 * x1.input_cap
        assert x2.delay(10.0) < x1.delay(10.0)

    def test_cell_functions(self):
        lib = generic_library()
        nand = lib["nand2_x1"]
        assert nand.cover.evaluate(0b00)
        assert not nand.cover.evaluate(0b11)
        aoi = lib["aoi21_x1"]
        # out = !(p0 p1 + p2)
        for m in range(8):
            p0, p1, p2 = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert aoi.cover.evaluate(m) == (not (p0 and p1 or p2))

    def test_smallest_inverter(self):
        lib = generic_library()
        assert lib.smallest_inverter().name == "inv_x1"

    def test_no_inverter_raises(self):
        lib = Library([generic_library()["nand2_x1"]])
        with pytest.raises(ValueError):
            lib.smallest_inverter()


class TestSeriesStack:
    def test_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            SeriesStack(3, [0, 0, 1])

    def test_all_on_discharges_everything(self):
        stack = SeriesStack(3)
        states = stack.node_states([1, 1, 1])
        assert states == [0.0, 0.0, 0.0]

    def test_all_off_output_high(self):
        stack = SeriesStack(3)
        states = stack.node_states([0, 0, 0])
        assert states[0] == 1.0

    def test_internal_node_follows_output(self):
        # Top transistor on, bottom off: internal node 1 charges.
        stack = SeriesStack(2)
        states = stack.node_states([1, 0])
        assert states[0] == 1.0 and states[1] == 1.0

    def test_floating_node_retains(self):
        stack = SeriesStack(3)
        prev = [1.0, 1.0, 0.0]
        # Input pattern leaving node 2 floating (top off, bottom off).
        states = stack.node_states([0, 0, 0], previous=prev)
        assert states[2] == prev[2]

    def test_expected_energy_matches_simulation(self):
        import random
        stack = SeriesStack(3)
        probs = [0.7, 0.5, 0.3]
        analytic = stack.expected_energy(probs)
        rng = random.Random(0)
        vectors = [[int(rng.random() < p) for p in probs]
                   for _ in range(20000)]
        sim = stack.energy_of_sequence(vectors) / (len(vectors) - 1)
        # The analytic value uses a 2-step window; allow modest slack.
        assert sim == pytest.approx(analytic, rel=0.15)

    def test_ordering_changes_energy(self):
        probs = [0.95, 0.5, 0.05]
        e_identity = SeriesStack(3, [0, 1, 2]).expected_energy(probs)
        e_reversed = SeriesStack(3, [2, 1, 0]).expected_energy(probs)
        assert e_identity != e_reversed

    def test_elmore_prefers_late_near_output(self):
        stack = SeriesStack(3)
        # Input 2 arrives last.
        arrival = [0.0, 0.0, 5.0]
        d_bad = SeriesStack(3, [0, 1, 2]).elmore_delay(arrival)
        d_good = SeriesStack(3, [2, 0, 1]).elmore_delay(arrival)
        assert d_good < d_bad

    def test_model_parameters_scale(self):
        big = StackEnergyModel(c_output=8.0)
        e1 = SeriesStack(2, model=StackEnergyModel()).expected_energy(
            [0.5, 0.5])
        e2 = SeriesStack(2, model=big).expected_energy([0.5, 0.5])
        assert e2 > e1
