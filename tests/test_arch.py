"""Unit tests for the architecture level (DFG, scheduling, binding,
module power models, transformations, memory)."""

import pytest

from repro.arch.allocation import (bind_operations,
                                   binding_switched_capacitance,
                                   profile_operands)
from repro.arch.dfg import (DFG, chained_sum_dfg, fir_dfg,
                            iir_biquad_dfg)
from repro.arch.memory import (MemoryHierarchy, best_loop_order,
                               loop_access_trace, memory_energy)
from repro.arch.power_models import (characterize_module,
                                     default_module_library, pfa_power,
                                     activity_power)
from repro.arch.scheduling import (alap_schedule, asap_schedule,
                                   list_schedule, required_units,
                                   schedule_length)
from repro.arch.transforms import (delay_factor, scaled_power,
                                   transform_and_scale,
                                   tree_height_reduction, unroll,
                                   voltage_for_slowdown)


class TestDFG:
    def test_fir_structure(self):
        dfg = fir_dfg(4)
        assert len([o for o in dfg.ops.values() if o.op == "mul"]) == 4
        assert len([o for o in dfg.ops.values() if o.op == "add"]) == 3
        assert dfg.outputs == ["y"]

    def test_duplicate_rejected(self):
        dfg = DFG()
        dfg.add("x", "input")
        with pytest.raises(ValueError):
            dfg.add("x", "input")

    def test_undefined_operand_rejected(self):
        dfg = DFG()
        with pytest.raises(ValueError):
            dfg.add("y", "add", ["a", "b"])

    def test_evaluate_fir(self):
        dfg = fir_dfg(3)
        out = dfg.evaluate({"x0": 1.0, "x1": 2.0, "x2": 3.0})
        # coefficients 1,2,3
        assert out["y"] == pytest.approx(1 * 1 + 2 * 2 + 3 * 3)

    def test_critical_path(self):
        assert chained_sum_dfg(8).critical_path() == 7
        # FIR: mul (2) + chain of adds
        assert fir_dfg(4).critical_path() == 2 + 3

    def test_copy_independent(self):
        dfg = fir_dfg(2)
        cp = dfg.copy()
        cp.ops["y"].operands = []
        assert dfg.ops["y"].operands


class TestScheduling:
    def test_asap_respects_dependencies(self):
        dfg = fir_dfg(4)
        s = asap_schedule(dfg)
        for op in dfg.compute_ops():
            for src in op.operands:
                src_op = dfg.ops[src]
                d = 2 if src_op.op == "mul" else \
                    (1 if src_op.is_compute() else 0)
                assert s[op.name] >= s[src] + d

    def test_alap_within_latency(self):
        dfg = fir_dfg(4)
        latency = dfg.critical_path()
        s = alap_schedule(dfg, latency)
        assert schedule_length(dfg, s) <= latency

    def test_alap_not_before_asap(self):
        dfg = iir_biquad_dfg()
        asap = asap_schedule(dfg)
        alap = alap_schedule(dfg)
        for name in asap:
            assert alap[name] >= asap[name]

    def test_list_schedule_resource_limit(self):
        dfg = fir_dfg(6)
        s = list_schedule(dfg, {"mul": 1, "add": 1})
        units = required_units(dfg, s)
        assert units.get("mul", 0) <= 1
        assert units.get("add", 0) <= 1

    def test_more_units_shorter_schedule(self):
        dfg = fir_dfg(6)
        s1 = list_schedule(dfg, {"mul": 1, "add": 1})
        s2 = list_schedule(dfg, {"mul": 3, "add": 2})
        assert schedule_length(dfg, s2) <= schedule_length(dfg, s1)

    def test_unconstrained_matches_asap_length(self):
        dfg = fir_dfg(5)
        s = list_schedule(dfg, {})
        assert schedule_length(dfg, s) == dfg.critical_path()


class TestBinding:
    def test_low_power_no_worse_than_naive(self):
        dfg = fir_dfg(8)
        sched = list_schedule(dfg, {"mul": 2, "add": 2})
        traces = profile_operands(dfg, 64, seed=1)
        naive = bind_operations(dfg, sched, "naive", traces)
        lp = bind_operations(dfg, sched, "low-power", traces)
        assert lp.switched_capacitance <= \
            naive.switched_capacitance + 1e-9

    def test_binding_is_conflict_free(self):
        dfg = fir_dfg(8)
        sched = list_schedule(dfg, {"mul": 2, "add": 2})
        res = bind_operations(dfg, sched)
        seqs = res.unit_sequences(dfg, sched)
        for inst, names in seqs.items():
            times = [sched[n] for n in names]
            assert times == sorted(times)
            # No two ops start at the same step on one unit.
            assert len(set(times)) == len(times)

    def test_cost_recomputation_matches(self):
        dfg = fir_dfg(6)
        sched = list_schedule(dfg, {"mul": 2, "add": 2})
        traces = profile_operands(dfg, 32, seed=2)
        res = bind_operations(dfg, sched, "low-power", traces)
        again = binding_switched_capacitance(dfg, sched, res.binding,
                                             traces)
        assert again == pytest.approx(res.switched_capacitance)

    def test_bad_strategy_rejected(self):
        dfg = fir_dfg(3)
        sched = list_schedule(dfg, {})
        with pytest.raises(ValueError):
            bind_operations(dfg, sched, "fastest")


class TestModulePower:
    def test_library_variants(self):
        lib = default_module_library()
        assert lib.fastest("add").delay <= lib.lowest_power("add").delay
        assert lib.lowest_power("mul").cap_per_op < \
            lib.fastest("mul").cap_per_op

    def test_pfa_power_positive(self):
        dfg = fir_dfg(4)
        sched = list_schedule(dfg, {"mul": 1, "add": 1})
        lib = default_module_library()
        mods = {"add": lib.fastest("add"), "mul": lib.fastest("mul")}
        p = pfa_power(dfg, sched, mods)
        assert p > 0

    def test_activity_power_tracks_statistics(self):
        dfg = fir_dfg(4)
        sched = list_schedule(dfg, {"mul": 1, "add": 1})
        lib = default_module_library()
        mods = {"add": lib.fastest("add"), "mul": lib.fastest("mul")}
        names = [o.name for o in dfg.compute_ops()]
        quiet = activity_power(dfg, sched, mods,
                               {n: 0.05 for n in names})
        noisy = activity_power(dfg, sched, mods,
                               {n: 0.5 for n in names})
        assert quiet < noisy

    def test_characterize_module_fit(self):
        from repro.logic.generators import ripple_carry_adder

        ch = characterize_module(ripple_carry_adder(4), "add", "rca4",
                                 num_vectors=256)
        assert ch.module.cap_per_op > 0
        assert ch.module.cap_slope > 0      # more input flips, more cap
        # The affine fit should track the measurements closely.
        for h, cap in ch.samples:
            pred = ch.module.cap_base + ch.module.cap_slope * h
            assert pred == pytest.approx(cap, rel=0.35)

    def test_blackbox_beats_uwn_off_nominal(self):
        """At low input activity the UWN model overpredicts; the
        black-box model follows."""
        from repro.logic.generators import ripple_carry_adder

        ch = characterize_module(ripple_carry_adder(4), "add", "rca4",
                                 num_vectors=256)
        low_h = min(ch.samples, key=lambda s: s[0])
        err_uwn = ch.prediction_error(low_h[0], low_h[1], "uwn")
        err_bb = ch.prediction_error(low_h[0], low_h[1], "blackbox")
        assert err_bb < err_uwn


class TestTransforms:
    def test_delay_factor_monotone(self):
        assert delay_factor(3.3) == pytest.approx(1.0)
        assert delay_factor(2.0) > 1.0
        assert delay_factor(1.5) > delay_factor(2.0)

    def test_voltage_for_slowdown_inverts_delay(self):
        v = voltage_for_slowdown(2.0)
        assert delay_factor(v) <= 2.0 + 1e-6
        assert v < 3.3

    def test_scaled_power_quadratic(self):
        assert scaled_power(1.0, 1.65) == pytest.approx(0.25)

    def test_tree_height_reduction(self):
        chain = chained_sum_dfg(8)
        thr = tree_height_reduction(chain)
        assert thr.critical_path() < chain.critical_path()
        # Same op count (no capacitance change).
        assert len(thr.compute_ops()) == len(chain.compute_ops())
        inputs = {f"x{i}": float(i * i - 3) for i in range(8)}
        assert thr.evaluate(inputs)["y"] == pytest.approx(
            chain.evaluate(inputs)["y"])

    def test_unroll_replicates(self):
        dfg = iir_biquad_dfg()
        u = unroll(dfg, 3)
        assert len(u.compute_ops()) == 3 * len(dfg.compute_ops())
        assert u.critical_path() == dfg.critical_path()

    def test_transform_and_scale_saves_power(self):
        """Claim C13: the quadratic V² win beats the capacitance cost."""
        chain = chained_sum_dfg(8)
        thr = tree_height_reduction(chain)
        res = transform_and_scale(chain, thr)
        assert res.vdd < 3.3
        assert res.power_ratio < 0.6
        assert res.cap_ratio == pytest.approx(1.0)

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError):
            voltage_for_slowdown(0.5)


class TestMemory:
    def test_trace_length(self):
        trace = loop_access_trace((4, 8), (0, 1))
        assert len(trace) == 32

    def test_row_major_is_unit_stride(self):
        trace = loop_access_trace((4, 4), (0, 1))
        assert trace == list(range(16))

    def test_column_major_strides(self):
        trace = loop_access_trace((2, 3), (1, 0))
        assert trace == [0, 3, 1, 4, 2, 5]

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            loop_access_trace((2, 2), (0, 0))

    def test_unit_stride_fewer_misses(self):
        h = MemoryHierarchy(buffer_words=32)
        good = loop_access_trace((32, 32), (0, 1))
        bad = loop_access_trace((32, 32), (1, 0))
        _, _, miss_good = memory_energy(good, h)
        _, _, miss_bad = memory_energy(bad, h)
        assert miss_good < miss_bad

    def test_best_loop_order_is_row_major(self):
        best, table = best_loop_order((16, 16))
        assert best == (0, 1)
        assert table[(0, 1)] < table[(1, 0)]

    def test_offchip_penalty(self):
        on = MemoryHierarchy(offchip=False)
        off = MemoryHierarchy(offchip=True)
        trace = loop_access_trace((16, 16), (1, 0))
        e_on, _, _ = memory_energy(trace, on)
        e_off, _, _ = memory_energy(trace, off)
        assert e_off > e_on
