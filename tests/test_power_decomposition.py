"""Tests for probability-ordered technology decomposition ([48])."""

import pytest

from repro.logic.gates import GateType
from repro.logic.generators import decoder, random_logic
from repro.logic.netlist import Network
from repro.logic.transform import decompose_to_primitives
from repro.power.activity import activity_from_simulation
from repro.power.model import node_capacitance
from repro.sim.functional import verify_equivalence_exact


def wide_gate_net():
    net = Network("wide")
    names = [f"x{i}" for i in range(6)]
    net.add_inputs(names)
    net.add_gate("f", GateType.AND, names)
    net.add_gate("g", GateType.OR, names)
    net.set_outputs(["f", "g"])
    probs = {"x0": 0.02, "x1": 0.95, "x2": 0.5, "x3": 0.9,
             "x4": 0.1, "x5": 0.6}
    return net, probs


def switched_cap(net, probs, seed=3):
    act, _ = activity_from_simulation(net, 4096, seed,
                                      input_probs=probs)
    return sum(act.get(n, 0.0) * node_capacitance(net, n)
               for n in net.nodes)


class TestPowerDecomposition:
    def test_function_preserved(self):
        net, probs = wide_gate_net()
        pwr = decompose_to_primitives(net, input_probs=probs,
                                      decomposition="power")
        assert verify_equivalence_exact(net, pwr)

    def test_beats_balanced_on_skewed_inputs(self):
        net, probs = wide_gate_net()
        bal = decompose_to_primitives(net)
        pwr = decompose_to_primitives(net, input_probs=probs,
                                      decomposition="power")
        assert switched_cap(pwr, probs) < 0.8 * switched_cap(bal, probs)

    def test_chain_is_deeper_than_tree(self):
        """The power chains trade depth for activity — the documented
        cost of [48]-style decomposition."""
        net, probs = wide_gate_net()
        bal = decompose_to_primitives(net)
        pwr = decompose_to_primitives(net, input_probs=probs,
                                      decomposition="power")
        assert pwr.depth() >= bal.depth()

    def test_and_chain_order(self):
        """The most-likely-0 input must enter the AND chain first."""
        net = Network()
        net.add_inputs(["a", "b", "c"])
        net.add_gate("f", GateType.AND, ["a", "b", "c"])
        net.set_output("f")
        probs = {"a": 0.9, "b": 0.05, "c": 0.5}
        pwr = decompose_to_primitives(net, input_probs=probs,
                                      decomposition="power")
        # First AND gate in topo order must read 'b' (p=0.05).
        first_and = next(n for n in pwr.topo_order()
                         if pwr.nodes[n].kind == "gate" and
                         pwr.nodes[n].gtype is GateType.AND)
        assert "b" in pwr.nodes[first_and].fanins

    def test_bad_mode_rejected(self):
        net, _ = wide_gate_net()
        with pytest.raises(ValueError):
            decompose_to_primitives(net, decomposition="fast")

    def test_random_networks_preserved(self):
        for seed in (3, 9):
            net = random_logic(6, 16, seed=seed)
            pwr = decompose_to_primitives(net, decomposition="power")
            assert verify_equivalence_exact(net, pwr)

    def test_mapping_with_power_decomposition(self):
        from repro.library.cells import generic_library
        from repro.opt.logic.mapping import tech_map

        net = decoder(3)
        probs = {f"s{i}": 0.1 for i in range(3)}
        probs["en"] = 0.95
        res = tech_map(net, generic_library(), "power",
                       decomposition="power", input_probs=probs)
        assert verify_equivalence_exact(net, res.mapped)
