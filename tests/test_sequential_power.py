"""Unit tests for the exact sequential power estimator ([28])."""

import random

import pytest

from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.opt.seq.encoding import encode_natural
from repro.opt.seq.stg import STG, synthesize_fsm
from repro.power.activity import sequential_activity
from repro.power.sequential import (exact_sequential_activity,
                                    exact_sequential_power)


def counter_fsm(n_states=4):
    stg = STG(1, 1)
    for i in range(n_states):
        s, nxt = f"s{i}", f"s{(i + 1) % n_states}"
        out = "1" if i == n_states - 1 else "0"
        stg.add_transition("1", s, nxt, out)
        stg.add_transition("0", s, s, out)
    return synthesize_fsm(stg, encode_natural(stg))


class TestExactActivity:
    def test_matches_long_simulation(self):
        net = counter_fsm()
        analysis = exact_sequential_activity(net)
        rng = random.Random(0)
        vecs = [{"x0": rng.getrandbits(1)} for _ in range(30000)]
        sim = sequential_activity(net, vecs)
        for name in sim:
            assert analysis.activities[name] == \
                pytest.approx(sim[name], abs=0.02), name

    def test_biased_inputs(self):
        net = counter_fsm()
        analysis = exact_sequential_activity(net, {"x0": 0.9})
        rng = random.Random(1)
        vecs = [{"x0": int(rng.random() < 0.9)} for _ in range(30000)]
        sim = sequential_activity(net, vecs)
        for name in sim:
            assert analysis.activities[name] == \
                pytest.approx(sim[name], abs=0.02), name

    def test_reachable_states_only(self):
        """A 4-state one-hot machine reaches 4 of 16 codes."""
        stg = STG(1, 1)
        for i in range(4):
            stg.add_transition("1", f"s{i}", f"s{(i + 1) % 4}", "0")
            stg.add_transition("0", f"s{i}", f"s{i}", "0")
        net = synthesize_fsm(stg, {f"s{i}": 1 << i for i in range(4)})
        analysis = exact_sequential_activity(net)
        assert analysis.num_states == 4

    def test_stationary_distribution_sums_to_one(self):
        analysis = exact_sequential_activity(counter_fsm())
        assert sum(analysis.stationary) == pytest.approx(1.0)

    def test_frozen_input_freezes_machine(self):
        """With P(advance)=0 the counter never moves: zero activity at
        the state bits."""
        net = counter_fsm()
        analysis = exact_sequential_activity(net, {"x0": 0.0})
        for latch in net.latches:
            assert analysis.activities[latch.output] == \
                pytest.approx(0.0)

    def test_state_explosion_guard(self):
        net = Network()
        net.add_input("d")
        prev = "d"
        for k in range(14):
            net.add_latch(prev, f"q{k}")
            prev = f"q{k}"
        net.set_output(prev)
        with pytest.raises(RuntimeError):
            exact_sequential_activity(net, max_states=100)

    def test_gated_latch_supported(self):
        net = Network()
        net.add_inputs(["d", "en"])
        net.add_latch("d", "q", enable="en")
        net.add_gate("o", GateType.BUF, ["q"])
        net.set_output("o")
        analysis = exact_sequential_activity(net, {"en": 0.0, "d": 0.5})
        assert analysis.activities["q"] == pytest.approx(0.0)

    def test_power_wrapper(self):
        rep = exact_sequential_power(counter_fsm())
        assert rep.total > 0
