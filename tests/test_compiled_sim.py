"""Compiled evaluator (repro.sim.compiled): bit-exactness, cache
invalidation/repatching, incremental re-simulation, and regressions for
the equivalence-matching / stimulus-generation / activity-denominator
bugs fixed alongside it."""

import pytest

from repro.logic.cube import Cube
from repro.logic.gates import GateType
from repro.logic.generators import (array_multiplier, counter, mux_tree,
                                    parity_tree, random_logic,
                                    ripple_carry_adder)
from repro.logic.netlist import NetlistError, Network
from repro.logic.sop import Cover
from repro.power.activity import (SimulationCache,
                                  activity_from_simulation,
                                  sequential_activity)
from repro.sim.compiled import (compile_network, get_compiled,
                                structural_fingerprint)
from repro.sim.functional import verify_equivalence, verify_equivalence_exact
from repro.sim.vectors import random_bus_stream, random_words

VECTORS = 256


def _sim_both(net, vectors=VECTORS, seed=3):
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, vectors, seed)
    mask = (1 << vectors) - 1
    return net.evaluate_words(words, mask), \
        get_compiled(net).evaluate_words(words, mask), words, mask


# -- bit-exactness -----------------------------------------------------------


@pytest.mark.parametrize("make", [
    lambda: ripple_carry_adder(8),
    lambda: array_multiplier(4),
    lambda: parity_tree(9),
    lambda: mux_tree(3),
    lambda: random_logic(10, 60, seed=4),
    lambda: counter(5),                      # latches exercised
])
def test_compiled_matches_interpreted(make):
    net = make()
    interp, compiled, _w, _m = _sim_both(net)
    assert interp == compiled


def test_compiled_matches_interpreted_with_state_words():
    net = counter(4)
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, 64, 1)
    state = {la.output: random_words([la.output], 64, 7)[la.output]
             for la in net.latches}
    mask = (1 << 64) - 1
    assert net.evaluate_words(words, mask, state) == \
        get_compiled(net).evaluate_words(words, mask, state)


def test_compiled_missing_input_raises_like_interpreter():
    net = ripple_carry_adder(2)
    with pytest.raises(NetlistError, match="missing input value"):
        get_compiled(net).evaluate_words({"a0": 1}, 1)


# -- cache invalidation ------------------------------------------------------


def test_invalidate_hook_clears_cache():
    net = ripple_carry_adder(4)
    first = get_compiled(net)
    assert get_compiled(net) is first          # cache hit
    net.add_input("spare")                     # goes through _invalidate
    assert net._compiled is None
    assert get_compiled(net) is not first


def test_direct_cover_mutation_detected_by_fingerprint():
    # The dontcare optimizer assigns node.cover directly, bypassing
    # _invalidate; the fingerprint check must still catch it.
    net = Network("n")
    net.add_inputs(["a", "b"])
    net.add_sop("f", ["a", "b"],
                Cover(2, [Cube.from_literals(2, [(0, 1), (1, 1)])]))
    net.set_output("f")
    before = get_compiled(net)
    w = {"a": 0b0011, "b": 0b0101}
    assert before.evaluate_words(w, 0xF)["f"] == 0b0001  # a AND b
    net.nodes["f"].cover = Cover(2, [Cube.from_literals(2, [(0, 1)]),
                                     Cube.from_literals(2, [(1, 1)])])
    after = get_compiled(net)
    assert after is not before
    assert after.evaluate_words(w, 0xF)["f"] == 0b0111   # a OR b


def test_fingerprint_sensitive_to_fanin_order():
    net = Network("n")
    net.add_inputs(["a", "b"])
    net.add_sop("f", ["a", "b"],
                Cover(2, [Cube.from_literals(2, [(0, 1)])]))
    net.set_output("f")
    fp = structural_fingerprint(net)
    net.nodes["f"].fanins = ["b", "a"]
    assert structural_fingerprint(net) != fp


def test_repatch_on_function_only_edit():
    # Same topology, one gate's function changed: the new snapshot must
    # reuse the old slot layout but evaluate the new function.
    net = parity_tree(5)
    gate = next(n for n in net.gate_nodes()
                if n.gtype in (GateType.XOR, GateType.XNOR))
    before = get_compiled(net)
    gate.gtype = GateType.XNOR if gate.gtype is GateType.XOR \
        else GateType.XOR
    after = get_compiled(net)
    assert after is not before
    assert after.topo_key == before.topo_key
    interp, compiled, _w, _m = _sim_both(net)
    assert interp == compiled


def test_full_recompile_on_topology_edit():
    net = ripple_carry_adder(3)
    before = get_compiled(net)
    # Recompute to clear, then rewire: topology key must differ and the
    # rebuilt program must track the new structure.
    net.add_gate("extra", GateType.NOT, ["a0"])
    net.set_output("extra")
    after = get_compiled(net)
    assert after is not before
    assert after.topo_key != before.topo_key
    interp, compiled, _w, _m = _sim_both(net)
    assert interp == compiled


# -- incremental re-simulation ----------------------------------------------


def test_incremental_matches_full_after_edit():
    net = random_logic(8, 40, seed=11)
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, VECTORS, 5)
    mask = (1 << VECTORS) - 1
    prev = get_compiled(net).evaluate_words(words, mask)
    gate = next(n for n in net.gate_nodes()
                if n.gtype in (GateType.AND, GateType.OR))
    gate.gtype = GateType.NAND if gate.gtype is GateType.AND \
        else GateType.NOR
    inc = get_compiled(net).evaluate_incremental(prev, [gate.name],
                                                 words, mask)
    full = get_compiled(net).evaluate_words(words, mask)
    assert inc == full
    assert inc != prev


def test_incremental_empty_dirty_is_identity():
    net = ripple_carry_adder(4)
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, 32, 0)
    mask = (1 << 32) - 1
    prev = get_compiled(net).evaluate_words(words, mask)
    assert get_compiled(net).evaluate_incremental(prev, (), words,
                                                  mask) == prev


def test_incremental_treats_missing_nodes_as_dirty():
    net = random_logic(6, 20, seed=2)
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, 64, 9)
    mask = (1 << 64) - 1
    full = get_compiled(net).evaluate_words(words, mask)
    partial = dict(full)
    victim = next(n.name for n in net.gate_nodes())
    del partial[victim]
    assert get_compiled(net).evaluate_incremental(partial, (), words,
                                                  mask) == full


# -- activity cache ----------------------------------------------------------


def test_activity_reuse_dirty_matches_fresh():
    net = random_logic(8, 40, seed=3)
    cache = SimulationCache()
    activity_from_simulation(net, 128, 1, reuse=cache)
    gate = next(n for n in net.gate_nodes()
                if n.gtype in (GateType.AND, GateType.OR,
                               GateType.NAND, GateType.NOR))
    gate.gtype = {GateType.AND: GateType.NAND,
                  GateType.NAND: GateType.AND,
                  GateType.OR: GateType.NOR,
                  GateType.NOR: GateType.OR}[gate.gtype]
    inc_act, inc_p = activity_from_simulation(net, 128, 1, reuse=cache,
                                              dirty=(gate.name,))
    fresh_act, fresh_p = activity_from_simulation(net, 128, 1)
    assert inc_act == fresh_act
    assert inc_p == fresh_p


def test_activity_cache_trial_commit_semantics():
    net = ripple_carry_adder(4)
    cache = SimulationCache()
    act0, _ = activity_from_simulation(net, 64, 0, reuse=cache)
    trial = cache.copy()
    trial.values["s0"] = ~trial.values["s0"]     # corrupt the trial only
    assert cache.values["s0"] != trial.values["s0"]
    committed = cache.copy()
    cache.adopt(trial)
    assert cache.values["s0"] == trial.values["s0"]
    cache.adopt(committed)
    act1, _ = activity_from_simulation(net, 64, 0, reuse=cache,
                                       dirty=())
    assert act1 == act0


def test_activity_cache_stimulus_change_forces_full_pass():
    net = ripple_carry_adder(4)
    cache = SimulationCache()
    activity_from_simulation(net, 64, 0, reuse=cache)
    act, _ = activity_from_simulation(net, 64, 1, reuse=cache, dirty=())
    fresh, _ = activity_from_simulation(net, 64, 1)
    assert act == fresh


# -- satellite regressions ---------------------------------------------------


def test_activity_single_vector_no_zero_division():
    net = ripple_carry_adder(2)
    act, prob = activity_from_simulation(net, num_vectors=1, seed=0)
    assert all(v == 0.0 for v in act.values())
    assert all(0.0 <= p <= 1.0 for p in prob.values())
    act0, prob0 = activity_from_simulation(net, num_vectors=0, seed=0)
    assert all(v == 0.0 for v in act0.values())
    assert all(p == 0.0 for p in prob0.values())


def test_sequential_activity_short_sequences():
    net = counter(3)
    assert sequential_activity(net, []) == \
        {name: 0.0 for name in net.nodes}
    one = sequential_activity(net, [{name: 0 for name in net.inputs}])
    assert set(one) == set(net.nodes)
    assert all(v == 0.0 for v in one.values())


def test_random_bus_stream_count_zero():
    assert random_bus_stream(8, 0) == []
    assert random_bus_stream(8, -3) == []
    assert len(random_bus_stream(8, 1)) == 1
    for count in (1, 2, 17):
        assert len(random_bus_stream(8, count, seed=5,
                                     correlation=0.4)) == count


def test_equivalence_matches_outputs_by_name():
    a = ripple_carry_adder(3)
    b = ripple_carry_adder(3)
    b.outputs = list(reversed(b.outputs))      # same functions, reordered
    assert verify_equivalence(a, b)
    assert verify_equivalence_exact(a, b)


def test_equivalence_still_catches_real_differences():
    a = ripple_carry_adder(3)
    b = ripple_carry_adder(3)
    b.outputs = list(reversed(b.outputs))
    sum_gate = b.nodes["s0"]
    sum_gate.gtype = GateType.XNOR             # corrupt one output
    b._invalidate()
    assert not verify_equivalence(a, b)
    assert not verify_equivalence_exact(a, b)


def test_equivalence_positional_fallback_for_distinct_names():
    a = Network("a")
    a.add_inputs(["x", "y"])
    a.add_gate("f", GateType.AND, ["x", "y"])
    a.set_output("f")
    b = Network("b")
    b.add_inputs(["x", "y"])
    b.add_gate("g", GateType.AND, ["x", "y"])
    b.set_output("g")
    assert verify_equivalence(a, b)
    assert verify_equivalence_exact(a, b)
    c = Network("c")
    c.add_inputs(["x", "y"])
    c.add_gate("h", GateType.OR, ["x", "y"])
    c.set_output("h")
    assert not verify_equivalence(a, c)
    assert not verify_equivalence_exact(a, c)


def test_compile_network_is_uncached_snapshot():
    net = ripple_carry_adder(2)
    a = compile_network(net)
    b = compile_network(net)
    assert a is not b
    assert a.fingerprint == b.fingerprint == structural_fingerprint(net)
