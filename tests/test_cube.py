"""Unit tests for repro.logic.cube."""

import pytest

from repro.logic.cube import Cube


class TestConstruction:
    def test_universe_covers_everything(self):
        c = Cube.universe(3)
        assert all(c.covers_minterm(m) for m in range(8))
        assert c.is_universe()
        assert c.num_literals() == 0

    def test_from_string_roundtrip(self):
        for text in ["1-0", "---", "111", "000", "-1-"]:
            assert Cube.from_string(text).to_string() == text

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_from_literals(self):
        c = Cube.from_literals(4, [(0, 1), (2, 0)])
        assert c.to_string() == "1-0-"
        assert c.literal(0) == 1
        assert c.literal(1) is None
        assert c.literal(2) == 0

    def test_from_literals_conflict(self):
        with pytest.raises(ValueError):
            Cube.from_literals(2, [(0, 1), (0, 0)])

    def test_from_literals_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.from_literals(2, [(5, 1)])

    def test_from_minterm(self):
        c = Cube.from_minterm(3, 0b101)
        assert c.covers_minterm(0b101)
        assert not c.covers_minterm(0b100)
        assert c.num_literals() == 3

    def test_mask_beyond_vars_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, mask=0b100)


class TestQueries:
    def test_covers_minterm(self):
        c = Cube.from_string("1-0")
        assert c.covers_minterm(0b001)       # x0=1, x2=0
        assert c.covers_minterm(0b011)
        assert not c.covers_minterm(0b101)   # x2=1
        assert not c.covers_minterm(0b000)   # x0=0

    def test_contains(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_universe_contains_all(self):
        u = Cube.universe(3)
        assert u.contains(Cube.from_string("101"))

    def test_distance(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("01-")
        assert a.distance(b) == 2
        assert a.distance(a) == 0
        assert a.distance(Cube.from_string("1--")) == 0
        assert a.distance(Cube.from_string("11-")) == 1

    def test_count_minterms(self):
        assert Cube.universe(4).count_minterms() == 16
        assert Cube.from_string("1-0-").count_minterms() == 4
        assert Cube.from_string("1111").count_minterms() == 1

    def test_literals_iteration(self):
        c = Cube.from_string("1-0")
        assert sorted(c.literals()) == [(0, 1), (2, 0)]


class TestAlgebra:
    def test_intersect(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        c = a.intersect(b)
        assert c is not None and c.to_string() == "10-"

    def test_intersect_disjoint(self):
        assert Cube.from_string("1--").intersect(
            Cube.from_string("0--")) is None

    def test_supercube(self):
        a = Cube.from_string("110")
        b = Cube.from_string("100")
        assert a.supercube(b).to_string() == "1-0"

    def test_supercube_contains_both(self):
        a = Cube.from_string("101")
        b = Cube.from_string("010")
        s = a.supercube(b)
        assert s.contains(a) and s.contains(b)

    def test_consensus(self):
        a = Cube.from_string("1-1")
        b = Cube.from_string("0-1")   # distance 1 on var 0
        c = a.consensus(b)
        assert c is not None and c.to_string() == "--1"

    def test_consensus_distance_two_is_none(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("00-")
        assert a.consensus(b) is None

    def test_cofactor_literal(self):
        c = Cube.from_string("1-0")
        assert c.cofactor_literal(0, 1).to_string() == "--0"
        assert c.cofactor_literal(0, 0) is None
        assert c.cofactor_literal(1, 1).to_string() == "1-0"

    def test_cofactor_cube(self):
        c = Cube.from_string("1-0")
        other = Cube.from_string("1---"[:3])
        cc = c.cofactor_cube(other)
        assert cc is not None and cc.to_string() == "--0"

    def test_without_var(self):
        assert Cube.from_string("110").without_var(1).to_string() == "1-0"


class TestDunder:
    def test_equality_and_hash(self):
        a = Cube.from_string("1-0")
        b = Cube.from_literals(3, [(0, 1), (2, 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Cube.from_string("1-1")

    def test_value_bits_outside_mask_normalized(self):
        a = Cube(3, mask=0b001, value=0b111)
        b = Cube(3, mask=0b001, value=0b001)
        assert a == b

    def test_repr(self):
        assert "1-0" in repr(Cube.from_string("1-0"))
