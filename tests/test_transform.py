"""Unit tests for repro.logic.transform."""

import pytest

from repro.logic.gates import GateType
from repro.logic.generators import alu_slice, ripple_carry_adder
from repro.logic.netlist import Network
from repro.logic.sop import Cover
from repro.logic.transform import (collapse_buffers,
                                   decompose_to_primitives, gate_cover,
                                   node_cover, propagate_constants,
                                   to_sop_network)
from repro.sim.functional import verify_equivalence


class TestGateCover:
    @pytest.mark.parametrize("gtype,n", [
        (GateType.AND, 2), (GateType.AND, 3), (GateType.OR, 2),
        (GateType.NAND, 2), (GateType.NOR, 3), (GateType.XOR, 2),
        (GateType.XOR, 3), (GateType.XNOR, 2), (GateType.NOT, 1),
        (GateType.BUF, 1), (GateType.MUX, 3), (GateType.MAJ, 3),
    ])
    def test_cover_matches_gate(self, gtype, n):
        from repro.logic.gates import eval_gate

        cover = gate_cover(gtype, n)
        for m in range(1 << n):
            ins = [(m >> i) & 1 for i in range(n)]
            assert cover.evaluate(m) == bool(eval_gate(gtype, ins, 1))

    def test_const_covers(self):
        assert gate_cover(GateType.CONST0, 0).is_empty()
        assert gate_cover(GateType.CONST1, 0).is_tautology()


class TestToSop:
    def test_equivalent(self):
        net = ripple_carry_adder(3)
        sop = to_sop_network(net)
        assert verify_equivalence(net, sop, 256)
        assert all(n.kind != "gate" or not n.fanins
                   for n in sop.nodes.values() if not n.is_source())


class TestDecompose:
    def test_adder(self):
        net = ripple_carry_adder(3)
        prim = decompose_to_primitives(net)
        assert verify_equivalence(net, prim, 256)
        for node in prim.nodes.values():
            if node.is_source():
                continue
            assert node.kind == "gate"
            assert len(node.fanins) <= 2

    def test_alu_with_const(self):
        net = alu_slice(3)
        prim = decompose_to_primitives(net)
        assert verify_equivalence(net, prim, 256)


class TestCollapseBuffers:
    def test_removes_buffers(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("buf", GateType.BUF, ["a"])
        net.add_gate("g", GateType.AND, ["buf", "b"])
        net.set_output("g")
        removed = collapse_buffers(net)
        assert removed == 1
        assert net.nodes["g"].fanins == ["a", "b"]

    def test_keeps_output_buffers(self):
        net = Network()
        net.add_input("a")
        net.add_gate("o", GateType.BUF, ["a"])
        net.set_output("o")
        assert collapse_buffers(net) == 0
        assert "o" in net.nodes

    def test_buffer_chain(self):
        net = Network()
        net.add_input("a")
        net.add_gate("b1", GateType.BUF, ["a"])
        net.add_gate("b2", GateType.BUF, ["b1"])
        net.add_gate("g", GateType.NOT, ["b2"])
        net.set_output("g")
        assert collapse_buffers(net) == 2
        assert net.nodes["g"].fanins == ["a"]


class TestPropagateConstants:
    def test_and_with_zero(self):
        net = Network()
        net.add_input("a")
        net.add_gate("z", GateType.CONST0, [])
        net.add_gate("g", GateType.AND, ["a", "z"])
        net.set_output("g")
        changed = propagate_constants(net)
        assert changed >= 1
        assert net.nodes["g"].gtype is GateType.CONST0
        assert net.evaluate({"a": 1})["g"] == 0

    def test_and_with_one(self):
        net = Network()
        net.add_input("a")
        net.add_gate("one", GateType.CONST1, [])
        net.add_gate("g", GateType.AND, ["a", "one"])
        net.set_output("g")
        propagate_constants(net)
        assert net.evaluate({"a": 1})["g"] == 1
        assert net.evaluate({"a": 0})["g"] == 0
        # g should now depend on a alone
        assert net.nodes["g"].fanins == ["a"]

    def test_cascading(self):
        net = Network()
        net.add_input("a")
        net.add_gate("one", GateType.CONST1, [])
        net.add_gate("x", GateType.NOT, ["one"])      # -> const0
        net.add_gate("g", GateType.OR, ["a", "x"])    # -> a
        net.set_output("g")
        propagate_constants(net)
        assert net.evaluate({"a": 0})["g"] == 0
        assert net.evaluate({"a": 1})["g"] == 1


class TestNodeCover:
    def test_on_source_raises(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(ValueError):
            node_cover(net.nodes["a"])
