"""Tests for the CLI tools, force-directed scheduling, module
selection, and the exact equivalence checker."""

import pytest

from repro.arch.dfg import fir_dfg, iir_biquad_dfg
from repro.arch.power_models import default_module_library
from repro.arch.scheduling import (force_directed_schedule,
                                   list_schedule, required_units,
                                   schedule_length)
from repro.arch.selection import select_modules
from repro.logic.blif import write_blif
from repro.logic.gates import GateType
from repro.logic.generators import ripple_carry_adder, random_logic
from repro.logic.netlist import Network
from repro.sim.functional import (verify_equivalence,
                                  verify_equivalence_exact)
from repro.tools.cli import main


class TestExactEquivalence:
    def test_positive(self):
        a = ripple_carry_adder(4)
        b = ripple_carry_adder(4)
        assert verify_equivalence_exact(a, b)

    def test_negative(self):
        a = ripple_carry_adder(3)
        b = ripple_carry_adder(3)
        b.nodes["s1"].gtype = GateType.XNOR
        assert not verify_equivalence_exact(a, b)

    def test_catches_rare_difference(self):
        """Functions differing on a single minterm — where random
        simulation can miss — are caught exactly."""
        a = Network()
        a.add_inputs([f"x{i}" for i in range(8)])
        a.add_gate("f", GateType.AND, [f"x{i}" for i in range(8)])
        a.set_output("f")
        b = a.copy()
        b.nodes["f"].gtype = GateType.NAND
        assert not verify_equivalence_exact(a, b)

    def test_structurally_different_equal_functions(self):
        a = Network()
        a.add_inputs(["x", "y"])
        a.add_gate("f", GateType.XOR, ["x", "y"])
        a.set_output("f")
        b = Network()
        b.add_inputs(["x", "y"])
        b.add_gate("nx", GateType.NOT, ["x"])
        b.add_gate("ny", GateType.NOT, ["y"])
        b.add_gate("t1", GateType.AND, ["x", "ny"])
        b.add_gate("t2", GateType.AND, ["nx", "y"])
        b.add_gate("f", GateType.OR, ["t1", "t2"])
        b.set_output("f")
        assert verify_equivalence_exact(a, b)

    def test_mapping_formally_verified(self):
        from repro.library.cells import generic_library
        from repro.opt.logic.mapping import tech_map

        net = random_logic(6, 18, seed=13)
        res = tech_map(net, generic_library(), "area")
        assert verify_equivalence_exact(net, res.mapped)


class TestForceDirected:
    def test_respects_latency(self):
        dfg = fir_dfg(6)
        latency = dfg.critical_path() + 2
        sched = force_directed_schedule(dfg, latency)
        assert schedule_length(dfg, sched) <= latency

    def test_dependencies_respected(self):
        from repro.arch.dfg import OP_DELAY

        dfg = iir_biquad_dfg()
        sched = force_directed_schedule(dfg)
        for op in dfg.compute_ops():
            for src in op.operands:
                s = dfg.ops[src]
                d = OP_DELAY.get(s.op, 1)
                assert sched[op.name] >= sched[src] + d

    def test_flattens_resource_profile(self):
        """At relaxed latency, FDS needs no more units than the greedy
        ASAP-priority list schedule and typically fewer multipliers."""
        dfg = fir_dfg(8)
        latency = dfg.critical_path() + 4
        fds = force_directed_schedule(dfg, latency)
        greedy = list_schedule(dfg, {})
        units_fds = required_units(dfg, fds)
        units_greedy = required_units(dfg, greedy)
        assert units_fds.get("mul", 0) <= units_greedy.get("mul", 0)
        assert schedule_length(dfg, fds) <= latency


class TestModuleSelection:
    def test_fast_everywhere_at_tight_latency(self):
        dfg = fir_dfg(4)
        lib = default_module_library()
        res = select_modules(dfg, lib)
        # Default bound = fastest-achievable: multiplier must be fast.
        assert res.modules["mul"].delay == lib.fastest("mul").delay

    def test_slack_buys_low_power_modules(self):
        dfg = fir_dfg(4)
        lib = default_module_library()
        tight = select_modules(dfg, lib)
        relaxed = select_modules(dfg, lib,
                                 latency_bound=tight.latency * 2)
        assert relaxed.power < tight.power
        assert relaxed.modules["mul"].cap_per_op <= \
            tight.modules["mul"].cap_per_op

    def test_latency_bound_respected(self):
        dfg = fir_dfg(5)
        lib = default_module_library()
        res = select_modules(dfg, lib, latency_bound=30)
        assert res.latency <= 30

    def test_missing_module_rejected(self):
        from repro.arch.dfg import DFG
        from repro.arch.power_models import ModuleLibrary

        dfg = DFG()
        a = dfg.add("a", "input")
        b = dfg.add("b", "input")
        dfg.add("c", "cmp", [a, b])
        dfg.add("y", "output", ["c"])
        with pytest.raises(ValueError):
            select_modules(dfg, ModuleLibrary([]))


class TestCLI:
    @pytest.fixture
    def blif_file(self, tmp_path):
        path = tmp_path / "rca.blif"
        path.write_text(write_blif(ripple_carry_adder(3)))
        return str(path)

    def test_report(self, blif_file, capsys):
        assert main(["report", blif_file, "--vectors", "128",
                     "--per-node", "2"]) == 0
        out = capsys.readouterr().out
        assert "total power" in out
        assert "hottest nodes" in out

    def test_glitch(self, blif_file, capsys):
        assert main(["glitch", blif_file, "--vectors", "64"]) == 0
        assert "glitch fraction" in capsys.readouterr().out

    def test_map_roundtrip(self, blif_file, tmp_path, capsys):
        out_path = str(tmp_path / "mapped.blif")
        assert main(["map", blif_file, "--objective", "area",
                     "-o", out_path]) == 0
        from repro.logic.blif import read_blif

        with open(out_path) as f:
            mapped = read_blif(f)
        assert verify_equivalence(ripple_carry_adder(3), mapped, 256)

    def test_optimize(self, blif_file, tmp_path, capsys):
        out_path = str(tmp_path / "opt.blif")
        assert main(["optimize", blif_file, "--vectors", "128",
                     "-o", out_path]) == 0
        from repro.logic.blif import read_blif

        with open(out_path) as f:
            optimized = read_blif(f)
        assert verify_equivalence(ripple_carry_adder(3), optimized, 256)

    def test_balance(self, blif_file, capsys):
        assert main(["balance", blif_file, "--vectors", "64"]) == 0
        assert "buffers added" in capsys.readouterr().out

    def test_optimize_rejects_sequential(self, tmp_path, capsys):
        path = tmp_path / "seq.blif"
        path.write_text(".model s\n.inputs d\n.outputs q\n"
                        ".latch d q 0\n.end\n")
        assert main(["optimize", str(path)]) == 1
