"""Unit tests for the arithmetic-architecture generators (CLA,
carry-select, Wallace) and their power characteristics."""

import random

import pytest

from repro.logic.generators import (array_multiplier,
                                    carry_lookahead_adder,
                                    carry_select_adder,
                                    ripple_carry_adder,
                                    wallace_multiplier)
from repro.power.glitch import glitch_report
from repro.sim.functional import verify_equivalence


def bits(value, n, prefix):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(n)}


class TestCLA:
    @pytest.mark.parametrize("n,block", [(4, 4), (8, 4), (8, 2), (6, 3)])
    def test_functional(self, n, block):
        net = carry_lookahead_adder(n, block)
        net.check()
        rng = random.Random(n * 10 + block)
        for _ in range(200):
            a, b = rng.randrange(1 << n), rng.randrange(1 << n)
            cin = rng.getrandbits(1)
            vec = {**bits(a, n, "a"), **bits(b, n, "b"), "cin": cin}
            out = net.evaluate(vec)
            s = sum(out[f"s{i}"] << i for i in range(n))
            s += out[f"c{n}"] << n
            assert s == a + b + cin

    def test_shallower_than_ripple(self):
        assert carry_lookahead_adder(8).depth() < \
            ripple_carry_adder(8).depth()

    def test_matches_ripple(self):
        assert verify_equivalence(carry_lookahead_adder(5),
                                  ripple_carry_adder(5), 512)


class TestCarrySelect:
    @pytest.mark.parametrize("n,block", [(4, 2), (8, 4), (8, 3)])
    def test_functional(self, n, block):
        net = carry_select_adder(n, block)
        net.check()
        rng = random.Random(n + block)
        for _ in range(200):
            a, b = rng.randrange(1 << n), rng.randrange(1 << n)
            cin = rng.getrandbits(1)
            vec = {**bits(a, n, "a"), **bits(b, n, "b"), "cin": cin}
            out = net.evaluate(vec)
            s = sum(out[f"s{i}"] << i for i in range(n))
            s += out[net.outputs[-1]] << n
            assert s == a + b + cin

    def test_fastest_of_the_three(self):
        d = carry_select_adder(8).depth()
        assert d <= carry_lookahead_adder(8).depth()
        assert d < ripple_carry_adder(8).depth()

    def test_duplication_costs_transistors(self):
        assert carry_select_adder(8).num_transistors() > \
            ripple_carry_adder(8).num_transistors()


class TestWallace:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_functional(self, n):
        net = wallace_multiplier(n)
        net.check()
        rng = random.Random(n)
        for _ in range(150):
            a, b = rng.randrange(1 << n), rng.randrange(1 << n)
            vec = {**bits(a, n, "a"), **bits(b, n, "b")}
            out = net.evaluate(vec)
            p = sum(out[f"p{k}"] << k for k in range(2 * n))
            assert p == a * b

    def test_matches_array(self):
        assert verify_equivalence(wallace_multiplier(4),
                                  array_multiplier(4), 512)

    def test_not_deeper_than_array(self):
        assert wallace_multiplier(5).depth() <= \
            array_multiplier(5).depth()


class TestArchitecturePower:
    def test_speed_costs_glitch_or_area(self):
        """Shallow adders buy delay with duplicated or wide logic; the
        ripple adder has the fewest transistors."""
        rca = ripple_carry_adder(8)
        cla = carry_lookahead_adder(8)
        csel = carry_select_adder(8)
        assert rca.num_transistors() <= cla.num_transistors()
        assert rca.num_transistors() <= csel.num_transistors()

    def test_all_adders_glitch_within_band(self):
        for maker in (ripple_carry_adder, carry_lookahead_adder,
                      carry_select_adder):
            rep = glitch_report(maker(6), num_vectors=96, seed=2)
            assert 0.0 <= rep.glitch_power_fraction < 0.6
