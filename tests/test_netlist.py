"""Unit tests for repro.logic.netlist."""

import pytest

from repro.logic.gates import GateType
from repro.logic.netlist import Latch, NetlistError, Network
from repro.logic.sop import Cover


def small_net():
    net = Network("t")
    net.add_inputs(["a", "b"])
    net.add_gate("g", GateType.AND, ["a", "b"])
    net.add_gate("h", GateType.NOT, ["g"])
    net.set_output("h")
    return net


class TestConstruction:
    def test_duplicate_name_rejected(self):
        net = small_net()
        with pytest.raises(NetlistError):
            net.add_gate("g", GateType.OR, ["a", "b"])
        with pytest.raises(NetlistError):
            net.add_input("a")

    def test_bad_arity_rejected(self):
        net = Network()
        net.add_inputs(["a", "b", "c"])
        with pytest.raises(NetlistError):
            net.add_gate("x", GateType.NOT, ["a", "b"])
        with pytest.raises(NetlistError):
            net.add_gate("y", GateType.MUX, ["a", "b"])

    def test_sop_arity_check(self):
        net = Network()
        net.add_inputs(["a", "b"])
        with pytest.raises(NetlistError):
            net.add_sop("s", ["a", "b"], Cover.from_strings(["1-0"]))

    def test_set_output_idempotent(self):
        net = small_net()
        net.set_output("h")
        assert net.outputs.count("h") == 1

    def test_latch(self):
        net = Network()
        net.add_input("d")
        latch = net.add_latch("d", "q", init=1)
        assert isinstance(latch, Latch)
        assert net.latch_for_output("q").init == 1
        with pytest.raises(NetlistError):
            net.latch_for_output("d")


class TestEvaluation:
    def test_scalar_eval(self):
        net = small_net()
        assert net.evaluate({"a": 1, "b": 1})["h"] == 0
        assert net.evaluate({"a": 1, "b": 0})["h"] == 1

    def test_missing_input_raises(self):
        net = small_net()
        with pytest.raises(NetlistError):
            net.evaluate({"a": 1})

    def test_word_eval_matches_scalar(self):
        net = small_net()
        words = {"a": 0b1100, "b": 0b1010}
        vals = net.evaluate_words(words, 0b1111)
        for k in range(4):
            scalar = net.evaluate({"a": (0b1100 >> k) & 1,
                                   "b": (0b1010 >> k) & 1})
            assert (vals["h"] >> k) & 1 == scalar["h"]

    def test_sop_node_eval(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_sop("x", ["a", "b"], Cover.from_strings(["10", "01"]))
        net.set_output("x")
        assert net.evaluate({"a": 1, "b": 0})["x"] == 1
        assert net.evaluate({"a": 1, "b": 1})["x"] == 0

    def test_latch_defaults_to_init(self):
        net = Network()
        net.add_input("d")
        net.add_latch("d", "q", init=1)
        net.add_gate("o", GateType.BUF, ["q"])
        net.set_output("o")
        assert net.evaluate({"d": 0})["o"] == 1

    def test_step_words_enable(self):
        net = Network()
        net.add_inputs(["d", "en"])
        net.add_latch("d", "q", init=0, enable="en")
        state = net.initial_state()
        state, _ = net.step_words(state, {"d": 1, "en": 0}, 1)
        assert state["q"] == 0          # held
        state, _ = net.step_words(state, {"d": 1, "en": 1}, 1)
        assert state["q"] == 1          # loaded

    def test_sequential_counter_behaviour(self):
        net = Network()
        net.add_input("d")
        net.add_gate("nq", GateType.NOT, ["q"])
        net.add_latch("nq", "q", init=0)
        net.set_output("q")
        state = net.initial_state()
        seen = []
        for _ in range(4):
            state, vals = net.step_words(state, {"d": 0}, 1)
            seen.append(state["q"])
        assert seen == [1, 0, 1, 0]


class TestStructure:
    def test_topo_order(self):
        net = small_net()
        order = net.topo_order()
        assert order.index("g") < order.index("h")
        assert order.index("a") < order.index("g")

    def test_cycle_detected(self):
        net = Network()
        net.add_input("a")
        net.add_gate("x", GateType.AND, ["a", "y"])
        net.add_gate("y", GateType.BUF, ["x"])
        with pytest.raises(NetlistError):
            net.topo_order()

    def test_levels_and_depth(self):
        net = small_net()
        levels = net.levels()
        assert levels["a"] == 0
        assert levels["g"] == 1
        assert levels["h"] == 2
        assert net.depth() == 2

    def test_fanouts(self):
        net = small_net()
        fo = net.fanouts()
        assert fo["g"] == ["h"]
        assert sorted(fo["a"]) == ["g"]

    def test_fanout_count_includes_outputs(self):
        net = small_net()
        assert net.fanout_count("h") == 1   # PO counts

    def test_stats(self):
        s = small_net().stats()
        assert s["inputs"] == 2 and s["gates"] == 2

    def test_replace_fanin(self):
        net = small_net()
        net.add_input("c")
        net.replace_fanin("g", "b", "c")
        assert net.nodes["g"].fanins == ["a", "c"]
        with pytest.raises(NetlistError):
            net.replace_fanin("g", "zz", "a")

    def test_replace_everywhere(self):
        net = small_net()
        net.add_input("c")
        net.replace_everywhere("g", "c")
        assert net.nodes["h"].fanins == ["c"]

    def test_insert_buffer(self):
        net = small_net()
        net.insert_buffer("h", "g", "buf1")
        assert net.nodes["h"].fanins == ["buf1"]
        assert net.evaluate({"a": 1, "b": 1})["h"] == 0

    def test_remove_node_with_fanout_rejected(self):
        net = small_net()
        with pytest.raises(NetlistError):
            net.remove_node("g")

    def test_sweep(self):
        net = small_net()
        net.add_gate("dead", GateType.OR, ["a", "b"])
        removed = net.sweep()
        assert removed == 1
        assert "dead" not in net.nodes

    def test_copy_is_deep(self):
        net = small_net()
        cp = net.copy()
        cp.nodes["g"].fanins[0] = "b"
        assert net.nodes["g"].fanins[0] == "a"

    def test_check_catches_dangling(self):
        net = small_net()
        net.nodes["g"].fanins[0] = "nope"
        with pytest.raises(NetlistError):
            net.check()

    def test_fresh_name(self):
        net = small_net()
        name = net.fresh_name("g")
        assert name not in net.nodes

    def test_transistor_counts(self):
        net = small_net()
        # AND = 6, NOT = 2
        assert net.num_transistors() == 8


class TestCycleDiagnostics:
    def test_cycle_error_names_the_path(self):
        net = Network()
        net.add_input("a")
        net.add_gate("x", GateType.AND, ["a", "y"])
        net.add_gate("y", GateType.BUF, ["x"])
        with pytest.raises(NetlistError,
                           match="combinational cycle: "):
            net.topo_order()
        try:
            net.topo_order()
        except NetlistError as exc:
            msg = str(exc)
        path = msg.split(": ", 1)[1].split(" -> ")
        assert path[0] == path[-1]
        assert set(path) == {"x", "y"}

    def test_self_loop_named(self):
        net = Network()
        net.add_input("a")
        net.add_gate("x", GateType.AND, ["a", "x"])
        with pytest.raises(NetlistError, match="x -> x"):
            net.topo_order()


class TestEditAudit:
    def test_replace_everywhere_dedups_outputs(self):
        net = small_net()
        net.add_gate("h2", GateType.NOT, ["g"])
        net.set_output("h2")
        # both h and h2 are POs; redirecting h2 onto h must not
        # leave h listed twice
        net.replace_everywhere("h2", "h")
        assert net.outputs == ["h"]

    def test_replace_everywhere_plain_rename_keeps_order(self):
        net = small_net()
        net.add_input("c")
        net.set_output("c")
        net.replace_everywhere("c", "h")
        assert net.outputs == ["h"]

    def test_sweep_then_check_is_clean(self):
        net = small_net()
        net.add_gate("d1", GateType.OR, ["a", "b"])
        net.add_gate("d2", GateType.NOT, ["d1"])
        removed = net.sweep()
        assert removed == 2
        net.check()   # no stale references survive the sweep

    def test_remove_latch_drops_record(self):
        net = Network()
        net.add_input("d")
        net.add_latch("d", "q")
        net.remove_node("q")
        assert net.latches == [] and "q" not in net.nodes
