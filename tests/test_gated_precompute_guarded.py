"""Unit tests for gated clocks, precomputation, guarded evaluation."""

import random

import pytest

from repro.logic.gates import GateType
from repro.logic.generators import comparator, register_file
from repro.logic.netlist import Network
from repro.opt.seq.encoding import encode_natural
from repro.opt.seq.gated_clock import (clock_power,
                                       convert_feedback_muxes,
                                       self_loop_clock_gating)
from repro.opt.seq.guarded import guarded_evaluation
from repro.opt.seq.precompute import (disable_probability,
                                      precomputed_comparator,
                                      select_precompute_inputs,
                                      sequential_precompute)
from repro.opt.seq.stg import STG
from repro.power.activity import sequential_activity
from repro.power.model import power_report
from repro.sim.functional import (sequential_transitions,
                                  verify_equivalence)


def idle_heavy_stg():
    """FSM that self-loops with probability 3/4 in every state."""
    stg = STG(2, 1)
    for i, s in enumerate(["s0", "s1", "s2", "s3"]):
        nxt = f"s{(i + 1) % 4}"
        out = "1" if i == 3 else "0"
        stg.add_transition("11", s, nxt, out)
        for cube in ("0-", "10"):
            stg.add_transition(cube, s, s, out)
    return stg


class TestGatedClock:
    def test_gated_fsm_equivalent(self):
        stg = idle_heavy_stg()
        res = self_loop_clock_gating(stg, encode_natural(stg))
        rng = random.Random(0)
        vecs = [{"x0": rng.getrandbits(1), "x1": rng.getrandbits(1)}
                for _ in range(300)]
        _, tb = sequential_transitions(res.baseline, vecs)
        _, tg = sequential_transitions(res.network, vecs)
        assert [t["z0"] for t in tb] == [t["z0"] for t in tg]

    def test_activation_probability(self):
        stg = idle_heavy_stg()
        res = self_loop_clock_gating(stg, encode_natural(stg))
        assert res.activation_probability == pytest.approx(0.75)

    def test_clock_power_reduced(self):
        stg = idle_heavy_stg()
        res = self_loop_clock_gating(stg, encode_natural(stg))
        base = clock_power(res.baseline, {})
        en = {l.output: 0.25 for l in res.network.latches}
        gated = clock_power(res.network, en)
        assert gated < 0.5 * base

    def test_enable_signal_matches_self_loop(self):
        stg = idle_heavy_stg()
        res = self_loop_clock_gating(stg, encode_natural(stg))
        rng = random.Random(1)
        vecs = [{"x0": rng.getrandbits(1), "x1": rng.getrandbits(1)}
                for _ in range(500)]
        _, trace = sequential_transitions(res.network, vecs)
        en_rate = sum(t["_fa_n"] for t in trace) / len(trace)
        assert en_rate == pytest.approx(0.25, abs=0.07)


class TestFeedbackMuxConversion:
    def test_register_file_conversion(self):
        net = register_file(2, 4)
        ref = net.copy()
        converted = convert_feedback_muxes(net)
        assert converted == 8
        assert all(l.enable is not None for l in net.latches)
        rng = random.Random(2)
        vecs = []
        for _ in range(60):
            v = {f"d{i}": rng.getrandbits(1) for i in range(4)}
            v["we0"] = rng.getrandbits(1)
            v["we1"] = rng.getrandbits(1)
            vecs.append(v)
        _, t1 = sequential_transitions(ref, vecs)
        _, t2 = sequential_transitions(net, vecs)
        for a, b in zip(t1, t2):
            for out in ref.outputs:
                assert a[out] == b[out]

    def test_conversion_saves_power(self):
        net = register_file(4, 8)
        ref = net.copy()
        convert_feedback_muxes(net)
        rng = random.Random(3)
        vecs = []
        for _ in range(200):
            v = {f"d{i}": rng.getrandbits(1) for i in range(8)}
            # One-hot, mostly idle writes.
            for w in range(4):
                v[f"we{w}"] = 0
            if rng.random() < 0.3:
                v[f"we{rng.randrange(4)}"] = 1
            vecs.append(v)
        p_ref = power_report(ref, sequential_activity(ref, vecs)).total
        p_new = power_report(net, sequential_activity(net, vecs)).total
        assert p_new < p_ref


class TestPrecompute:
    def test_comparator_disable_probability(self):
        """Figure 1: MSB pair disables the rest half the time."""
        pre = precomputed_comparator(8)
        assert pre.disable_probability == pytest.approx(0.5)

    def test_outputs_match_baseline(self):
        pre = precomputed_comparator(6)
        rng = random.Random(4)
        vecs = []
        for _ in range(200):
            c, d = rng.getrandbits(6), rng.getrandbits(6)
            v = {f"c{i}": (c >> i) & 1 for i in range(6)}
            v.update({f"d{i}": (d >> i) & 1 for i in range(6)})
            vecs.append(v)
        _, tb = sequential_transitions(pre.baseline, vecs)
        _, tg = sequential_transitions(pre.network, vecs)
        out = pre.baseline.outputs[0]
        assert [t[out] for t in tb][1:] == [t[out] for t in tg][1:]

    def test_power_saving(self):
        pre = precomputed_comparator(8)
        rng = random.Random(5)
        vecs = []
        for _ in range(400):
            c, d = rng.getrandbits(8), rng.getrandbits(8)
            v = {f"c{i}": (c >> i) & 1 for i in range(8)}
            v.update({f"d{i}": (d >> i) & 1 for i in range(8)})
            vecs.append(v)
        pb = power_report(pre.baseline,
                          sequential_activity(pre.baseline, vecs)).total
        pg = power_report(pre.network,
                          sequential_activity(pre.network, vecs)).total
        assert pg < pb * 0.9

    def test_selection_finds_msbs(self):
        net = comparator(4)
        sel = select_precompute_inputs(net, 2)
        assert set(sel) == {"c3", "d3"}

    def test_selection_greedy_path(self):
        net = comparator(7)   # 14 inputs > exhaustive_limit
        sel = select_precompute_inputs(net, 2, exhaustive_limit=4)
        assert set(sel) == {"c6", "d6"}

    def test_disable_probability_function(self):
        net = comparator(4)
        p = disable_probability(net, ["c3", "d3"])
        assert p == pytest.approx(0.5)
        p_bad = disable_probability(net, ["c0", "d0"])
        assert p_bad < p

    def test_skewed_inputs_raise_disable_probability(self):
        net = comparator(4)
        probs = {"c3": 0.95, "d3": 0.05}
        p = disable_probability(net, ["c3", "d3"], probs)
        assert p > 0.85


class TestGuarded:
    def make_mux_net(self):
        net = Network("g")
        net.add_inputs(["s", "a", "b", "c", "d"])
        net.add_gate("x1", GateType.XOR, ["a", "b"])
        net.add_gate("x2", GateType.AND, ["x1", "c"])
        net.add_gate("y1", GateType.OR, ["c", "d"])
        net.add_gate("y2", GateType.XNOR, ["y1", "a"])
        net.add_gate("m", GateType.MUX, ["s", "x2", "y2"])
        net.set_output("m")
        return net

    def test_equivalence_preserved(self):
        net = self.make_mux_net()
        ref = net.copy()
        res = guarded_evaluation(net, max_active_probability=1.0)
        assert res.cones_isolated >= 1
        assert verify_equivalence(ref, net, 512)

    def test_idle_cone_stops_switching(self):
        net = self.make_mux_net()
        guarded_evaluation(net, max_active_probability=1.0)
        # Hold s=1 (selects y leg): the x cone must be quiet.
        from repro.sim.functional import simulate_transitions
        from repro.sim.vectors import random_words

        words = random_words(net.inputs, 256, seed=6)
        words["s"] = (1 << 256) - 1
        tr = simulate_transitions(net, words, 256)
        assert tr["x2"] == 0

    def test_shared_signals_not_isolated(self):
        """y1/y2 read inputs also used elsewhere; exclusivity analysis
        must not guard nodes with external fanout."""
        net = self.make_mux_net()
        net.add_gate("extra", GateType.BUF, ["y2"])
        net.set_output("extra")
        ref = net.copy()
        res = guarded_evaluation(net, max_active_probability=1.0)
        assert verify_equivalence(ref, net, 512)
        assert all(leg != "y2" for _m, leg in res.guards)

    def test_min_cone_size(self):
        net = self.make_mux_net()
        res = guarded_evaluation(net, min_cone_size=10, max_active_probability=1.0)
        assert res.cones_isolated == 0

    def test_hot_leg_declined(self):
        """A leg selected most of the time must not be isolated."""
        net = self.make_mux_net()
        res = guarded_evaluation(net, input_probs={"s": 0.95})
        # d1 (selected when s=1) is hot; only the d0 cone qualifies.
        assert all(leg != "y2" for _m, leg in res.guards)

    def test_toggling_select_declined_by_default(self):
        """With p(select)=0.5 both legs exceed the default threshold."""
        net = self.make_mux_net()
        res = guarded_evaluation(net)
        assert res.cones_isolated == 0
