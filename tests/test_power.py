"""Unit tests for repro.power (activity estimation, model, glitch)."""

import pytest

from repro.logic.gates import GateType
from repro.logic.generators import (comparator, parity_tree,
                                    ripple_carry_adder)
from repro.logic.netlist import Network
from repro.power.activity import (activity_from_probability,
                                  activity_from_simulation,
                                  sequential_activity,
                                  signal_probability_exact,
                                  signal_probability_propagation,
                                  transition_density,
                                  weighted_switching)
from repro.power.glitch import glitch_report
from repro.power.model import (PowerParameters, average_power,
                               node_capacitance, power_report)


class TestProbabilities:
    def test_propagation_on_tree_is_exact(self):
        """Without reconvergence the independence assumption is exact."""
        net = parity_tree(4, balanced=True)
        approx = signal_probability_propagation(net)
        exact = signal_probability_exact(net)
        for name in approx:
            assert approx[name] == pytest.approx(exact[name], abs=1e-9)

    def test_exact_handles_reconvergence(self):
        # z = a AND a' == 0; propagation (independence) says 0.25.
        net = Network()
        net.add_input("a")
        net.add_gate("na", GateType.NOT, ["a"])
        net.add_gate("z", GateType.AND, ["a", "na"])
        net.set_output("z")
        assert signal_probability_exact(net)["z"] == 0.0
        assert signal_probability_propagation(net)["z"] == \
            pytest.approx(0.25)

    def test_comparator_output_probability(self):
        """P(C > D) = (1 - 2^-n)/2 for uniform n-bit inputs."""
        net = comparator(4)
        p = signal_probability_exact(net)[net.outputs[0]]
        assert p == pytest.approx((1 - 2 ** -4) / 2)

    def test_input_probs_respected(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.set_output("g")
        p = signal_probability_propagation(net, {"a": 1.0, "b": 0.25})
        assert p["g"] == pytest.approx(0.25)


class TestActivity:
    def test_activity_from_probability(self):
        assert activity_from_probability(0.5) == 0.5
        assert activity_from_probability(0.0) == 0.0
        assert activity_from_probability(1.0) == 0.0

    def test_simulation_close_to_analytic(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.set_output("g")
        act, prob = activity_from_simulation(net, 8000, seed=1)
        # P(g)=0.25, activity = 2*0.25*0.75 = 0.375
        assert prob["g"] == pytest.approx(0.25, abs=0.03)
        assert act["g"] == pytest.approx(0.375, abs=0.03)

    def test_transition_density_inverter_passthrough(self):
        net = Network()
        net.add_input("a")
        net.add_gate("n", GateType.NOT, ["a"])
        net.set_output("n")
        d = transition_density(net, input_densities={"a": 0.3})
        assert d["n"] == pytest.approx(0.3)

    def test_transition_density_and_gate(self):
        """Najm: D(and) = p_b D(a) + p_a D(b)."""
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.set_output("g")
        d = transition_density(net, input_probs={"a": 0.5, "b": 0.5})
        assert d["g"] == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)

    def test_transition_density_xor_sums_input_densities(self):
        """Every input of an XOR tree is always sensitized, so Najm's
        density adds input densities — an upper bound on zero-delay
        activity (it counts glitches from non-coincident arrivals)."""
        net = parity_tree(6, balanced=True)
        d = transition_density(net)
        out = net.outputs[0]
        assert d[out] == pytest.approx(6 * 0.5)
        act, _ = activity_from_simulation(net, 4000, seed=4)
        assert d[out] >= act[out]

    def test_transition_density_bounds_activity_on_and_tree(self):
        net = Network()
        net.add_inputs(["a", "b", "c", "d"])
        net.add_gate("x", GateType.AND, ["a", "b"])
        net.add_gate("y", GateType.AND, ["c", "d"])
        net.add_gate("z", GateType.AND, ["x", "y"])
        net.set_output("z")
        d = transition_density(net)
        act, _ = activity_from_simulation(net, 8000, seed=4)
        # Density treats input transitions as non-coincident, so it
        # upper-bounds the zero-delay activity but stays within ~3x.
        assert act["z"] <= d["z"] <= 3.0 * act["z"]

    def test_sequential_activity_counts_held_registers(self):
        net = Network()
        net.add_inputs(["d", "en"])
        net.add_latch("d", "q", enable="en")
        net.add_gate("o", GateType.BUF, ["q"])
        net.set_output("o")
        seq = [{"d": k & 1, "en": 0} for k in range(20)]
        act = sequential_activity(net, seq)
        assert act["q"] == 0.0


class TestPowerModel:
    def test_capacitance_components(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("g", GateType.AND, ["a", "b"])
        net.add_gate("h", GateType.NOT, ["g"])
        net.set_output("h")
        params = PowerParameters()
        cap_g = node_capacitance(net, "g", params)
        # self (6 transistors * 0.5) + NOT pin (2.0)
        assert cap_g == pytest.approx(3.0 + 2.0)
        cap_h = node_capacitance(net, "h", params)
        # self (2 * 0.5) + PO load (4.0)
        assert cap_h == pytest.approx(1.0 + 4.0)

    def test_size_scales_capacitance(self):
        net = Network()
        net.add_input("a")
        net.add_gate("g", GateType.NOT, ["a"])
        net.set_output("g")
        base = node_capacitance(net, "g")
        net.nodes["g"].attrs["size"] = 2.0
        assert node_capacitance(net, "g") == pytest.approx(
            base + 1.0)   # self cap doubles (1.0 -> 2.0)

    def test_report_totals(self):
        net = ripple_carry_adder(4)
        rep = average_power(net, 512)
        assert rep.total == pytest.approx(
            rep.switching + rep.short_circuit + rep.leakage)
        assert rep.total > 0
        assert "total power" in rep.summary()

    def test_switching_dominates(self):
        """Claim C1: switching activity >90% of total power."""
        net = ripple_carry_adder(8)
        rep = average_power(net, 1024)
        assert rep.switching_fraction > 0.85

    def test_voltage_scaling_quadratic(self):
        net = ripple_carry_adder(4)
        act, _ = activity_from_simulation(net, 512)
        p33 = power_report(net, act, PowerParameters(vdd=3.3))
        p165 = power_report(net, act, PowerParameters(vdd=1.65))
        assert p165.switching == pytest.approx(p33.switching / 4)

    def test_zero_activity_zero_dynamic(self):
        net = ripple_carry_adder(2)
        rep = power_report(net, {})
        assert rep.switching == 0.0
        assert rep.leakage > 0.0

    def test_weighted_switching(self):
        net = Network()
        net.add_input("a")
        net.add_gate("g", GateType.NOT, ["a"])
        net.set_output("g")
        w = weighted_switching(net, {"g": 0.5, "a": 0.0})
        assert w == pytest.approx(0.5 * node_capacitance(net, "g"))


class TestGlitch:
    def test_glitch_fraction_in_paper_band(self):
        """Claim C2: spurious transitions are 10-40% of activity in
        typical (unbalanced, reconvergent) logic."""
        from repro.logic.generators import array_multiplier

        rep = glitch_report(array_multiplier(4), num_vectors=128, seed=1)
        assert 0.05 < rep.glitch_power_fraction < 0.5

    def test_balanced_tree_has_no_glitches(self):
        rep = glitch_report(parity_tree(8, balanced=True),
                            num_vectors=64, seed=0)
        assert rep.glitch_fraction == pytest.approx(0.0)

    def test_per_node_glitches_nonnegative(self):
        rep = glitch_report(parity_tree(6, balanced=False),
                            num_vectors=64, seed=0)
        assert all(v >= 0 for v in rep.per_node_glitches().values())
        assert rep.total_timed >= rep.total_functional
