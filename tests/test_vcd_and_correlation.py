"""Tests for VCD export and temporally-correlated stimulus."""

import io
import random

import pytest

from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.sim.functional import sequential_transitions
from repro.sim.vcd import dump_sequential_vcd, write_vcd
from repro.sim.vectors import random_words


class TestVcd:
    def make_trace(self):
        net = Network("dut")
        net.add_input("d")
        net.add_gate("nq", GateType.XOR, ["q", "d"])
        net.add_latch("nq", "q")
        net.set_output("q")
        vecs = [{"d": k % 2} for k in range(8)]
        _, trace = sequential_transitions(net, vecs)
        return net, vecs, trace

    def test_header_and_changes(self):
        _net, _vecs, trace = self.make_trace()
        buf = io.StringIO()
        changes = write_vcd(trace, buf)
        text = buf.getvalue()
        assert "$timescale" in text
        assert "$enddefinitions" in text
        assert "$var wire 1" in text
        assert changes > 0

    def test_only_changes_emitted(self):
        trace = [{"a": 0, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 1}]
        buf = io.StringIO()
        changes = write_vcd(trace, buf)
        # cycle 0: both initial values; cycle 2: only 'a'.
        assert changes == 3
        assert "#20" in buf.getvalue()

    def test_signal_selection(self):
        trace = [{"a": 0, "b": 1}, {"a": 1, "b": 0}]
        buf = io.StringIO()
        write_vcd(trace, buf, signals=["a"])
        assert " b " not in buf.getvalue()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            write_vcd([], io.StringIO())

    def test_dump_to_file(self, tmp_path):
        net, vecs, _ = self.make_trace()
        path = str(tmp_path / "out.vcd")
        changes = dump_sequential_vcd(net, vecs, path)
        assert changes > 0
        with open(path) as f:
            assert "$scope module dut" in f.read()

    def test_identifier_space(self):
        """More signals than single-char identifiers still works."""
        trace = [{f"s{i}": i % 2 for i in range(120)}]
        buf = io.StringIO()
        write_vcd(trace, buf)
        text = buf.getvalue()
        assert text.count("$var") == 120


class TestCorrelatedStimulus:
    def test_hold_reduces_transitions(self):
        free = random_words(["x"], 4000, seed=1)["x"]
        held = random_words(["x"], 4000, seed=1,
                            hold={"x": 0.9})["x"]

        def flips(w):
            return bin((w ^ (w >> 1)) & ((1 << 3999) - 1)).count("1")

        assert flips(held) < 0.3 * flips(free)

    def test_probability_maintained_under_hold(self):
        w = random_words(["x"], 8000, seed=2, probs={"x": 0.8},
                         hold={"x": 0.7})["x"]
        ones = bin(w).count("1") / 8000
        assert ones == pytest.approx(0.8, abs=0.05)

    def test_zero_hold_matches_default_path(self):
        a = random_words(["x"], 100, seed=3)
        b = random_words(["x"], 100, seed=3, hold={"x": 0.0})
        assert a == b

    def test_correlated_inputs_lower_circuit_activity(self):
        from repro.logic.generators import ripple_carry_adder
        from repro.power.activity import activity_from_simulation

        net = ripple_carry_adder(6)
        # activity_from_simulation has no hold parameter; use words
        # directly through simulate_transitions.
        from repro.sim.functional import simulate_transitions

        free = random_words(net.inputs, 2048, seed=4)
        held = random_words(net.inputs, 2048, seed=4,
                            hold={n: 0.8 for n in net.inputs})
        t_free = sum(simulate_transitions(net, free, 2048).values())
        t_held = sum(simulate_transitions(net, held, 2048).values())
        assert t_held < 0.5 * t_free
