"""Unit tests for circuit-level optimizations (reorder, sizing)."""

import pytest

from repro.logic.generators import ripple_carry_adder
from repro.opt.circuit.reorder import (ReorderResult, greedy_order,
                                       optimize_stack_order)
from repro.opt.circuit.sizing import (critical_path_delay,
                                      size_for_power, slacks,
                                      switched_capacitance)
from repro.power.activity import activity_from_simulation
from repro.power.model import PowerParameters


class TestReorder:
    def test_skewed_probabilities_give_savings(self):
        res = optimize_stack_order([0.95, 0.5, 0.05])
        assert res.best_energy <= res.baseline_energy
        assert res.energy_saving >= 0.0
        assert res.spread <= 1.0

    def test_uniform_probabilities_little_headroom(self):
        res = optimize_stack_order([0.5, 0.5, 0.5])
        # All orders are equivalent by symmetry.
        assert res.energy_saving == pytest.approx(0.0, abs=1e-9)

    def test_high_on_probability_goes_to_ground(self):
        """The input most often ON belongs at the bottom of the stack."""
        res = optimize_stack_order([0.9, 0.5, 0.1])
        # position order[k]: k=0 nearest output... ground is last slot.
        assert res.best_order[-1] == 0

    def test_greedy_order_heuristic(self):
        assert greedy_order([0.9, 0.1, 0.5]) == [0, 2, 1]

    def test_delay_constraint_respected(self):
        arrival = [0.0, 0.0, 10.0]
        unconstrained = optimize_stack_order([0.9, 0.5, 0.1],
                                             arrival=arrival)
        limit = unconstrained.baseline_delay
        res = optimize_stack_order([0.9, 0.5, 0.1], arrival=arrival,
                                   delay_limit=limit)
        assert res.best_delay <= limit

    def test_infeasible_limit_falls_back_to_fastest(self):
        arrival = [0.0, 0.0, 10.0]
        res = optimize_stack_order([0.5, 0.5, 0.5], arrival=arrival,
                                   delay_limit=0.001)
        assert res.best_order is not None

    def test_wide_stack_uses_heuristics(self):
        res = optimize_stack_order([0.1 * k for k in range(1, 9)],
                                   exhaustive_limit=4)
        assert res.best_energy <= res.baseline_energy


class TestSizing:
    @pytest.fixture
    def adder(self):
        net = ripple_carry_adder(6)
        act, _ = activity_from_simulation(net, 512, seed=0)
        return net, act

    def test_downsizing_saves_power(self, adder):
        net, act = adder
        res = size_for_power(net, act, apply=False)
        assert res.power_after < res.power_before
        assert res.power_saving > 0.3
        assert res.delay_after <= res.delay_target

    def test_apply_writes_attrs(self, adder):
        net, act = adder
        size_for_power(net, act, apply=True)
        sized = [n for n in net.nodes.values()
                 if n.attrs.get("size") is not None]
        assert sized

    def test_tight_target_keeps_big_gates(self, adder):
        net, act = adder
        params = PowerParameters()
        sizes_max = {n: 4.0 for n, nd in net.nodes.items()
                     if not nd.is_source()}
        fastest = critical_path_delay(net, sizes_max, params)
        res = size_for_power(net, act, delay_target=fastest,
                             apply=False)
        # At the all-max delay, big sizes must largely remain.
        assert any(s > 1.0 for s in res.sizes.values())
        assert res.delay_after <= fastest + 1e-9

    def test_loose_target_reaches_min_sizes(self, adder):
        net, act = adder
        res = size_for_power(net, act, delay_target=1e9, apply=False)
        assert all(s == 1.0 for s in res.sizes.values())

    def test_never_worse_than_all_min(self, adder):
        net, act = adder
        params = PowerParameters()
        res = size_for_power(net, act, apply=False)
        ones = {n: 1.0 for n in res.sizes}
        if critical_path_delay(net, ones, params) <= res.delay_target:
            assert res.power_after <= switched_capacitance(
                net, ones, act, params) + 1e-9

    def test_slacks_nonnegative_at_own_delay(self, adder):
        net, act = adder
        params = PowerParameters()
        sizes = {n: 1.0 for n, nd in net.nodes.items()
                 if not nd.is_source()}
        target = critical_path_delay(net, sizes, params)
        slk = slacks(net, sizes, target, params)
        assert all(s >= -1e-9 for s in slk.values())
        assert any(s == pytest.approx(0.0, abs=1e-9)
                   for s in slk.values())
