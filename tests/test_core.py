"""Unit tests for repro.core (flow driver and reporting)."""

import pytest

from repro.core.flow import low_power_flow
from repro.core.report import format_table
from repro.logic.generators import random_logic, ripple_carry_adder
from repro.sim.functional import verify_equivalence


class TestReport:
    def test_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.23456], ["bb", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.235" in text or "1.2346" in text

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestFlow:
    def test_stages_recorded(self):
        res = low_power_flow(ripple_carry_adder(3), num_vectors=256)
        names = [s.name for s in res.stages]
        assert names[0] == "initial"
        assert "map" in names
        assert res.final is not None

    def test_final_equivalent_to_input(self):
        net = random_logic(6, 20, seed=3)
        res = low_power_flow(net, num_vectors=256)
        assert verify_equivalence(net, res.final, 512)

    def test_stage_selection_flags(self):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=128,
                             use_dontcares=False, use_extraction=False,
                             use_mapping=False, use_sizing=False)
        assert [s.name for s in res.stages] == ["initial"]

    def test_summary_renders(self):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=128)
        text = res.summary()
        assert "stage" in text and "initial" in text

    def test_dontcare_stage_never_hurts_estimate(self):
        """The simulation-gated don't-care pass must not regress the
        measured power between its own before/after snapshots."""
        net = random_logic(7, 25, seed=11)
        res = low_power_flow(net, num_vectors=512, use_extraction=False,
                             use_mapping=False, use_sizing=False)
        by_name = {s.name: s for s in res.stages}
        if "dontcare" in by_name:
            assert by_name["dontcare"].report.total <= \
                by_name["initial"].report.total * 1.02
