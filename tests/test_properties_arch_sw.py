"""Property-based tests over random DFGs and random programs."""

import random

from hypothesis import given, settings, strategies as st

from repro.arch.dfg import DFG, OP_DELAY
from repro.arch.scheduling import (alap_schedule, asap_schedule,
                                   force_directed_schedule,
                                   list_schedule, required_units,
                                   schedule_length)
from repro.sw.cpu import CPU, dsp_profile
from repro.sw.isa import Instruction, Program
from repro.sw.schedule import cold_schedule, control_path_switching

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def random_dfgs(draw, max_ops=12):
    seed = draw(st.integers(0, 10 ** 6))
    num_ops = draw(st.integers(1, max_ops))
    rng = random.Random(seed)
    dfg = DFG(f"h{seed}")
    pool = [dfg.add(f"i{k}", "input") for k in range(3)]
    for k in range(num_ops):
        op = rng.choice(["add", "sub", "mul"])
        a, b = rng.choice(pool), rng.choice(pool)
        pool.append(dfg.add(f"n{k}", op, [a, b]))
    dfg.add("y", "output", [pool[-1]])
    return dfg


def check_dependencies(dfg, sched):
    for op in dfg.compute_ops():
        for src in op.operands:
            s = dfg.ops[src]
            d = OP_DELAY.get(s.op, 1)
            assert sched[op.name] >= sched[src] + d, (op.name, src)


@given(random_dfgs())
@SETTINGS
def test_asap_is_lower_bound(dfg):
    asap = asap_schedule(dfg)
    check_dependencies(dfg, asap)
    assert schedule_length(dfg, asap) == dfg.critical_path()


@given(random_dfgs())
@SETTINGS
def test_alap_dominates_asap(dfg):
    latency = dfg.critical_path() + 3
    asap = asap_schedule(dfg)
    alap = alap_schedule(dfg, latency)
    check_dependencies(dfg, alap)
    for name in asap:
        assert alap[name] >= asap[name]


@given(random_dfgs(), st.integers(1, 2), st.integers(1, 2))
@SETTINGS
def test_list_schedule_respects_resources(dfg, n_add, n_mul):
    res = {"add": n_add, "sub": n_add, "mul": n_mul}
    sched = list_schedule(dfg, res)
    check_dependencies(dfg, sched)
    units = required_units(dfg, sched)
    for op, limit in res.items():
        assert units.get(op, 0) <= limit


@given(random_dfgs())
@SETTINGS
def test_fds_legal_and_within_latency(dfg):
    latency = dfg.critical_path() + 2
    sched = force_directed_schedule(dfg, latency)
    check_dependencies(dfg, sched)
    assert schedule_length(dfg, sched) <= latency


@st.composite
def straight_line_programs(draw, max_len=14):
    seed = draw(st.integers(0, 10 ** 6))
    length = draw(st.integers(2, max_len))
    rng = random.Random(seed)
    prog = Program(name=f"h{seed}")
    prog.append(Instruction("li", dst="r1", imm=3))
    prog.append(Instruction("li", dst="r2", imm=5))
    regs = ["r1", "r2", "r3", "r4", "r5"]
    for k in range(length):
        op = rng.choice(["add", "sub", "xor", "and", "or", "mul",
                         "ld", "st", "shl"])
        dst = rng.choice(regs)
        a, b = rng.choice(regs), rng.choice(regs)
        if op == "ld":
            prog.append(Instruction("ld", dst=dst, src1=a, imm=k))
        elif op == "st":
            prog.append(Instruction("st", dst=a, src1=b, imm=k))
        elif op == "shl":
            prog.append(Instruction("shl", dst=dst, src1=a, imm=1))
        else:
            prog.append(Instruction(op, dst=dst, src1=a, src2=b))
    prog.append(Instruction("halt"))
    return prog


@given(straight_line_programs())
@SETTINGS
def test_cold_scheduling_preserves_semantics(prog):
    cpu = CPU(dsp_profile())
    cold = cold_schedule(prog)
    a = cpu.run(prog, memory={k: k for k in range(40)})
    b = cpu.run(cold, memory={k: k for k in range(40)})
    assert a.registers == b.registers
    assert a.memory == b.memory
    assert a.instructions == b.instructions


@given(straight_line_programs())
@SETTINGS
def test_cold_scheduling_rarely_increases_switching(prog):
    """Greedy scheduling gives no guarantee, but on straight-line code
    it should stay within a few bit-flips of the original order."""
    cpu = CPU(dsp_profile())
    orig = cpu.run(prog, memory={k: k for k in range(40)})
    cold = cpu.run(cold_schedule(prog), memory={k: k for k in range(40)})
    assert control_path_switching(cold.opcode_trace) <= \
        control_path_switching(orig.opcode_trace) + 4
