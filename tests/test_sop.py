"""Unit tests for repro.logic.sop (covers, tautology, minimization)."""

import pytest

from repro.logic.cube import Cube
from repro.logic.sop import Cover, minterm_count, truth_table


def brute_equal(a: Cover, b: Cover) -> bool:
    n = a.num_vars
    return all(a.evaluate(m) == b.evaluate(m) for m in range(1 << n))


class TestBasics:
    def test_zero_and_one(self):
        z = Cover.zero(3)
        o = Cover.one(3)
        assert not any(z.evaluate(m) for m in range(8))
        assert all(o.evaluate(m) for m in range(8))

    def test_from_strings(self):
        c = Cover.from_strings(["1-", "-1"])
        assert c.evaluate(0b01) and c.evaluate(0b10) and c.evaluate(0b11)
        assert not c.evaluate(0b00)

    def test_from_minterms(self):
        c = Cover.from_minterms(3, [0, 5])
        assert sorted(c.minterms()) == [0, 5]

    def test_num_literals(self):
        assert Cover.from_strings(["1-0", "01-"]).num_literals() == 4

    def test_support(self):
        c = Cover.from_strings(["1--", "--0"])
        assert c.support() == 0b101

    def test_evaluate_words(self):
        c = Cover.from_strings(["11"])  # AND
        # patterns: (0,0) (0,1) (1,0) (1,1)
        words = [0b1100, 0b1010]
        assert c.evaluate_words(words, 0b1111) == 0b1000

    def test_sccc_removes_contained(self):
        c = Cover.from_strings(["1--", "11-", "111"])
        assert len(c.sccc()) == 1


class TestTautologyAndContainment:
    def test_tautology_true(self):
        c = Cover.from_strings(["1-", "0-"])
        assert c.is_tautology()

    def test_tautology_false(self):
        assert not Cover.from_strings(["11", "00"]).is_tautology()

    def test_empty_not_tautology(self):
        assert not Cover.zero(2).is_tautology()

    def test_universe_cube_tautology(self):
        assert Cover.one(4).is_tautology()

    def test_contains_cube(self):
        c = Cover.from_strings(["1-", "-1"])
        assert c.contains_cube(Cube.from_string("11"))
        assert c.contains_cube(Cube.from_string("10"))
        assert not c.contains_cube(Cube.from_string("0-"))

    def test_cover_containment_and_equivalence(self):
        a = Cover.from_strings(["1-", "-1"])
        b = Cover.from_strings(["11", "10", "01"])
        assert a.is_equivalent(b)
        assert a.contains_cover(b) and b.contains_cover(a)

    def test_xor_not_equivalent_to_or(self):
        xor = Cover.from_strings(["10", "01"])
        orr = Cover.from_strings(["1-", "-1"])
        assert not xor.is_equivalent(orr)
        assert orr.contains_cover(xor)
        assert not xor.contains_cover(orr)


class TestComplement:
    @pytest.mark.parametrize("rows", [
        ["11"], ["1-", "-1"], ["10", "01"], ["1-0", "01-", "--1"],
        ["1111"], ["0000"],
    ])
    def test_complement_is_complement(self, rows):
        c = Cover.from_strings(rows)
        comp = c.complement()
        n = c.num_vars
        for m in range(1 << n):
            assert c.evaluate(m) != comp.evaluate(m)

    def test_complement_empty(self):
        assert Cover.zero(2).complement().is_tautology()

    def test_complement_universe(self):
        assert Cover.one(2).complement().is_empty()

    def test_double_complement(self):
        c = Cover.from_strings(["1-0", "-11"])
        assert c.complement().complement().is_equivalent(c)


class TestBooleanOps:
    def test_union(self):
        a = Cover.from_strings(["11"])
        b = Cover.from_strings(["00"])
        u = a.union(b)
        assert u.evaluate(0b11) and u.evaluate(0b00)
        assert not u.evaluate(0b01)

    def test_intersect(self):
        a = Cover.from_strings(["1-"])
        b = Cover.from_strings(["-1"])
        i = a.intersect(b)
        assert i.minterms() == [0b11]

    def test_intersect_disjoint(self):
        a = Cover.from_strings(["1-"])
        b = Cover.from_strings(["0-"])
        assert a.intersect(b).is_empty()


class TestProbability:
    def test_single_literal(self):
        c = Cover.from_strings(["1-"])
        assert c.probability([0.3, 0.9]) == pytest.approx(0.3)

    def test_and_gate(self):
        c = Cover.from_strings(["11"])
        assert c.probability([0.5, 0.5]) == pytest.approx(0.25)

    def test_or_gate(self):
        c = Cover.from_strings(["1-", "-1"])
        assert c.probability([0.5, 0.5]) == pytest.approx(0.75)

    def test_xor_gate(self):
        c = Cover.from_strings(["10", "01"])
        assert c.probability([0.3, 0.4]) == pytest.approx(
            0.3 * 0.6 + 0.7 * 0.4)

    def test_overlapping_cubes_not_double_counted(self):
        c = Cover.from_strings(["1-", "11"])
        assert c.probability([0.5, 0.5]) == pytest.approx(0.5)

    def test_tautology_probability_one(self):
        assert Cover.one(3).probability([0.1, 0.2, 0.3]) == 1.0


class TestMinimize:
    def test_merges_adjacent_cubes(self):
        on = Cover.from_minterms(2, [0b00, 0b01])   # x0' (var0 = 0)
        mini = on.minimize()
        assert len(mini) == 1
        assert mini.is_equivalent(on)

    def test_with_dont_cares(self):
        # ON = {11}, DC = {10}: minimizer may expand to x0.
        on = Cover.from_strings(["11"])
        dc = Cover.from_strings(["10"])
        mini = on.minimize(dc)
        assert mini.num_literals() <= on.num_literals()
        # Result must cover ON and avoid OFF (= {0-}).
        assert mini.contains_cover(on)
        off = Cover.from_strings(["0-"])
        assert mini.intersect(off).is_empty()

    def test_full_dc_becomes_tautology(self):
        on = Cover.from_strings(["11"])
        dc = on.complement()
        assert on.minimize(dc).is_tautology()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_function_preserved(self, seed):
        import random
        rng = random.Random(seed)
        n = 4
        minterms = [m for m in range(1 << n) if rng.random() < 0.4]
        if not minterms:
            minterms = [3]
        on = Cover.from_minterms(n, minterms)
        mini = on.minimize()
        assert mini.is_equivalent(on)
        assert mini.num_literals() <= on.num_literals()

    def test_empty_cover(self):
        assert Cover.zero(3).minimize().is_empty()

    def test_reduce_is_sequential_regression(self):
        """Regression: simultaneous REDUCE let two cubes both shed a
        shared minterm (found by the product-machine checker on a
        clock-gated FSM).  Minterms 000 and 111 are each covered by two
        cubes of this cover."""
        cover = Cover.from_strings(["00-", "11-", "1-1", "0-0"])
        mini = cover.minimize()
        assert mini.is_equivalent(cover)
        assert mini.evaluate(0b000) and mini.evaluate(0b111)

    @pytest.mark.parametrize("seed", range(10))
    def test_minimize_stress_four_vars(self, seed):
        import random
        rng = random.Random(seed * 7 + 1)
        minterms = [m for m in range(16) if rng.random() < 0.55]
        if not minterms:
            minterms = [seed]
        on = Cover.from_minterms(4, minterms)
        mini = on.minimize()
        assert mini.is_equivalent(on)


class TestHelpers:
    def test_minterm_count(self):
        c = Cover.from_strings(["1-", "-1"])
        assert minterm_count(c) == 3

    def test_minterm_count_disjoint(self):
        c = Cover.from_strings(["11", "00"])
        assert minterm_count(c) == 2

    def test_truth_table(self):
        c = Cover.from_strings(["11"])
        assert truth_table(c) == 0b1000
