"""Tests for the unified benchmark harness (``repro.bench``).

Covers registry discovery (static, import-free), the runner's graceful
failure capture (inline and process-pool modes, including a
deliberately-crashing benchmark), JSON round-tripping, and the
``bench compare`` drift detection that gates CI.
"""

import json
import textwrap
import time

import pytest

from repro.bench import (BenchResult, RunReport, compare_reports,
                         default_bench_dir, discover, execute_one,
                         run_benchmarks)
from repro.bench.compare import (DRIFT, MISSING_BENCH, MISSING_METRIC,
                                 NEW_BENCH, STATUS)
from repro.bench.profiling import collect_phases, phase
from repro.bench.registry import claims_index, find, parse_spec
from repro.bench.result import (STATUS_ERROR, STATUS_OK,
                                STATUS_TIMEOUT, is_volatile_metric,
                                merge_claim_coverage)

GOOD_BENCH = textwrap.dedent('''
    """A tiny well-behaved benchmark."""
    CLAIMS = ("C1",)

    def run(params=None):
        p = dict(params or {})
        n = 4 if p.get("quick") else 16
        return {"metrics": {"answer": 42.0, "n": n,
                            "noise_ms": 1.25},
                "vectors": n}
''')

CRASH_BENCH = textwrap.dedent('''
    """A benchmark that always explodes."""
    CLAIMS = ("C2",)

    def run(params=None):
        raise RuntimeError("kaboom")
''')

NO_ENTRY_BENCH = textwrap.dedent('''
    """Legacy module without a run() entry point."""
    CLAIMS = ()
''')


@pytest.fixture
def suite_dir(tmp_path):
    (tmp_path / "bench_alpha.py").write_text(GOOD_BENCH)
    (tmp_path / "bench_boom.py").write_text(CRASH_BENCH)
    (tmp_path / "bench_legacy.py").write_text(NO_ENTRY_BENCH)
    return tmp_path


# ---------------------------------------------------------------- registry

def test_discover_real_suite():
    specs = discover()
    names = [s.name for s in specs]
    assert len(specs) == 24
    assert "power_breakdown" in names
    assert "compiled_sim" in names
    assert "flow_engine" in names
    assert "timed_sim" in names
    assert "lint" in names
    assert all(s.has_run for s in specs)
    index = claims_index(specs)
    # Every paper claim C1..C15 is reproduced by exactly one bench.
    assert set(index) == {f"C{i}" for i in range(1, 16)}
    assert index["C1"] == "power_breakdown"
    assert index["C12"] == "precompute"


def test_discover_is_static_and_filtered(suite_dir):
    # A module raising at import time must not break discovery...
    (suite_dir / "bench_badimport.py").write_text(
        "raise ImportError('nope')\n\ndef run(params=None):\n"
        "    return {'metrics': {}}\n")
    specs = discover(suite_dir)
    assert [s.name for s in specs] == ["alpha", "badimport", "boom",
                                      "legacy"]
    # ...and filtering is comma-separated substring match.
    assert [s.name for s in discover(suite_dir, pattern="alp,boo")] \
        == ["alpha", "boom"]
    assert find("alpha", suite_dir) is not None
    assert find("zzz", suite_dir) is None


def test_parse_spec_metadata(suite_dir):
    spec = parse_spec(suite_dir / "bench_alpha.py")
    assert spec.name == "alpha"
    assert spec.claims == ("C1",)
    assert spec.description == "A tiny well-behaved benchmark."
    assert spec.has_run
    legacy = parse_spec(suite_dir / "bench_legacy.py")
    assert not legacy.has_run


def test_default_bench_dir_points_at_repo_suite():
    assert (default_bench_dir() / "bench_power_breakdown.py").exists()


# ------------------------------------------------------------------ runner

def test_execute_one_success_and_params(suite_dir):
    res = BenchResult.from_dict(execute_one(
        "alpha", str(suite_dir / "bench_alpha.py"), ("C1",),
        {"quick": True, "seed": 7}))
    assert res.ok and res.status == STATUS_OK
    assert res.metrics["answer"] == 42.0
    assert res.metrics["n"] == 4          # quick honored
    assert res.vectors == 4
    assert res.seed == 7
    assert res.wall_s >= 0


def test_execute_one_captures_crash(suite_dir):
    res = BenchResult.from_dict(execute_one(
        "boom", str(suite_dir / "bench_boom.py"), ("C2",), {}))
    assert res.status == STATUS_ERROR
    assert "kaboom" in res.error


def test_execute_one_rejects_bad_payloads(tmp_path):
    (tmp_path / "bench_flat.py").write_text(
        "def run(params=None):\n    return {'answer': 1}\n")
    res = BenchResult.from_dict(execute_one(
        "flat", str(tmp_path / "bench_flat.py"), (), {}))
    assert res.status == STATUS_ERROR and "metrics" in res.error
    (tmp_path / "bench_str.py").write_text(
        "def run(params=None):\n"
        "    return {'metrics': {'bad': 'oops'}}\n")
    res = BenchResult.from_dict(execute_one(
        "str", str(tmp_path / "bench_str.py"), (), {}))
    assert res.status == STATUS_ERROR and "non-numeric" in res.error


def test_run_benchmarks_inline_is_crash_proof(suite_dir):
    report = run_benchmarks(discover(suite_dir),
                            {"quick": True, "seed": 0}, jobs=1)
    by = report.by_name()
    assert by["alpha"].ok
    assert by["boom"].status == STATUS_ERROR
    assert "kaboom" in by["boom"].error
    assert by["legacy"].status == STATUS_ERROR  # no run() entry point
    assert not report.all_ok and report.num_ok == 1
    assert report.params["seed"] == 0 and report.params["jobs"] == 1


def test_run_benchmarks_process_pool(suite_dir):
    report = run_benchmarks(discover(suite_dir),
                            {"quick": True, "seed": 0}, jobs=2,
                            timeout=60)
    by = report.by_name()
    assert by["alpha"].ok and by["alpha"].metrics["answer"] == 42.0
    assert by["boom"].status == STATUS_ERROR
    assert "kaboom" in by["boom"].error


def test_run_benchmarks_timeout_kills_worker(tmp_path):
    (tmp_path / "bench_slow.py").write_text(
        "import time\n\ndef run(params=None):\n"
        "    time.sleep(30)\n    return {'metrics': {'x': 1.0}}\n")
    t0 = time.perf_counter()
    report = run_benchmarks(discover(tmp_path), {}, jobs=2,
                            timeout=0.5)
    # The runaway worker must be killed, not awaited.
    assert time.perf_counter() - t0 < 20
    (res,) = report.results
    assert res.status == STATUS_TIMEOUT
    assert "timeout" in res.error


def test_real_benchmark_through_harness():
    spec = find("power_breakdown")
    res = BenchResult.from_dict(execute_one(
        spec.name, spec.path, spec.claims,
        {"quick": True, "seed": 0}))
    assert res.ok, res.error
    assert res.claims == ("C1",)
    # The C1 shape survives even at quick vector counts.
    for key, value in res.metrics.items():
        if key.endswith("sw_fraction"):
            assert value > 0.85
    assert "estimation" in res.phases


# --------------------------------------------------------------- profiling

def test_phase_collection_nests_and_accumulates():
    with collect_phases() as acc:
        with phase("simulation"):
            pass
        with phase("simulation"):
            pass
        with phase("optimization"):
            with phase("estimation"):
                pass
    assert set(acc) == {"simulation", "optimization", "estimation"}
    assert acc["simulation"] >= 0
    # phase() outside a collector is a silent no-op.
    with phase("ignored"):
        pass


# -------------------------------------------------------------------- JSON

def test_report_json_round_trip(tmp_path):
    report = RunReport.new({"quick": True, "seed": 3})
    report.results.append(BenchResult(
        name="alpha", claims=("C1",), status=STATUS_OK, wall_s=0.5,
        seed=3, vectors=64, metrics={"m": 1.5, "t_ms": 9.0},
        phases={"simulation": 0.4}))
    report.results.append(BenchResult(
        name="boom", status=STATUS_ERROR, error="Traceback ..."))
    path = tmp_path / "BENCH_test.json"
    report.write(str(path))
    loaded = RunReport.load(str(path))
    assert loaded.to_dict() == report.to_dict()
    assert loaded.by_name()["alpha"].metrics == {"m": 1.5, "t_ms": 9.0}
    assert loaded.by_name()["alpha"].claims == ("C1",)
    # the artifact is plain JSON, consumable without repro installed
    raw = json.loads(path.read_text())
    assert raw["schema"] == 1 and len(raw["results"]) == 2
    assert merge_claim_coverage(loaded.results) == {"C1": STATUS_OK}


def test_volatile_metric_convention():
    assert is_volatile_metric("montecarlo_ms")
    assert is_volatile_metric("wall_s")
    assert not is_volatile_metric("saving")
    assert not is_volatile_metric("misses")


# ----------------------------------------------------------------- compare

def _report(**benches):
    rep = RunReport.new({"quick": True, "seed": 0})
    for name, spec in benches.items():
        status = spec.get("status", STATUS_OK)
        rep.results.append(BenchResult(
            name=name, status=status,
            metrics=spec.get("metrics", {}),
            error=spec.get("error")))
    return rep


def test_compare_identical_is_ok():
    base = _report(a={"metrics": {"x": 1.0, "y": 2.0}})
    cur = _report(a={"metrics": {"x": 1.0, "y": 2.0}})
    cmp = compare_reports(base, cur)
    assert cmp.ok and cmp.metrics_compared == 2
    assert "OK" in cmp.summary()


def test_compare_flags_drift_beyond_tolerance():
    base = _report(a={"metrics": {"x": 1.0}})
    within = _report(a={"metrics": {"x": 1.04}})
    beyond = _report(a={"metrics": {"x": 1.2}})
    assert compare_reports(base, within, rel_tol=0.05).ok
    cmp = compare_reports(base, beyond, rel_tol=0.05)
    assert not cmp.ok
    (finding,) = cmp.regressions
    assert finding.kind == DRIFT and finding.bench == "a"
    assert finding.metric == "x"
    assert "DRIFT" in finding.describe()


def test_compare_volatile_metrics_never_gate():
    base = _report(a={"metrics": {"t_run_ms": 10.0, "x": 1.0}})
    cur = _report(a={"metrics": {"t_run_ms": 900.0, "x": 1.0}})
    assert compare_reports(base, cur).ok


def test_compare_structural_findings():
    base = _report(a={"metrics": {"x": 1.0, "gone": 5.0}},
                   b={"metrics": {"y": 1.0}})
    cur = _report(a={"metrics": {"x": 1.0, "fresh": 2.0}},
                  c={"metrics": {"z": 3.0}})
    cmp = compare_reports(base, cur)
    kinds = {(f.kind, f.bench) for f in cmp.findings}
    assert (MISSING_BENCH, "b") in kinds
    assert (NEW_BENCH, "c") in kinds
    assert (MISSING_METRIC, "a") in kinds
    assert not cmp.ok
    # new bench/metric alone must NOT fail the comparison
    grow = compare_reports(_report(a={"metrics": {"x": 1.0}}),
                           _report(a={"metrics": {"x": 1.0,
                                                  "fresh": 2.0}},
                                   c={"metrics": {"z": 3.0}}))
    assert grow.ok and len(grow.findings) == 2


def test_compare_status_degradation_fails():
    base = _report(a={"metrics": {"x": 1.0}})
    cur = _report(a={"status": STATUS_ERROR,
                     "error": "RuntimeError: kaboom"})
    cmp = compare_reports(base, cur)
    assert not cmp.ok
    (finding,) = cmp.regressions
    assert finding.kind == STATUS and "kaboom" in finding.detail
    # A broken *baseline* bench gates nothing (nothing to compare to).
    assert compare_reports(cur, base).ok


def test_compare_tolerates_tiny_absolute_noise():
    base = _report(a={"metrics": {"zeroish": 0.0}})
    cur = _report(a={"metrics": {"zeroish": 1e-12}})
    assert compare_reports(base, cur, abs_tol=1e-9).ok
    assert not compare_reports(base, cur, abs_tol=0.0).ok
