"""Property-based tests over random netlists: every network
transformation in the toolkit must preserve function, and the
simulators must agree with each other under their contracts."""

import random

from hypothesis import given, settings, strategies as st

from repro.library.cells import generic_library
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.logic.transform import (collapse_buffers,
                                   decompose_to_primitives,
                                   propagate_constants, to_sop_network)
from repro.opt.logic.balance import balance_paths
from repro.opt.logic.kernels import extract_kernels
from repro.opt.logic.mapping import tech_map
from repro.sim.functional import (simulate_transitions,
                                  verify_equivalence,
                                  verify_equivalence_exact)
from repro.sim.vectors import random_words, vectors_from_words
from repro.sim.event import timed_transitions


@st.composite
def random_networks(draw, max_inputs=5, max_gates=14):
    """A random combinational DAG of primitive gates (+ constants)."""
    num_inputs = draw(st.integers(2, max_inputs))
    num_gates = draw(st.integers(1, max_gates))
    seed = draw(st.integers(0, 10 ** 6))
    rng = random.Random(seed)
    net = Network(f"h{seed}")
    pool = net.add_inputs([f"i{k}" for k in range(num_inputs)])
    if draw(st.booleans()):
        pool.append(net.add_gate("one", GateType.CONST1, []))
    two_in = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
              GateType.XOR, GateType.XNOR]
    for g in range(num_gates):
        r = rng.random()
        if r < 0.15:
            node = net.add_gate(f"g{g}", GateType.NOT,
                                [rng.choice(pool)])
        elif r < 0.25 and len(pool) >= 3:
            node = net.add_gate(f"g{g}", GateType.MUX,
                                [rng.choice(pool) for _ in range(3)])
        else:
            node = net.add_gate(f"g{g}", rng.choice(two_in),
                                [rng.choice(pool), rng.choice(pool)])
        pool.append(node)
    fo = net.fanouts()
    sinks = [n for n in pool if not fo[n] and
             not net.nodes[n].is_source()]
    for s in sinks or pool[-1:]:
        net.set_output(s)
    if not net.outputs:
        net.set_output(pool[-1])
    return net


SETTINGS = settings(max_examples=25, deadline=None)


@given(random_networks())
@SETTINGS
def test_to_sop_preserves_function(net):
    sop = to_sop_network(net)
    assert verify_equivalence_exact(net, sop)


@given(random_networks())
@SETTINGS
def test_decompose_preserves_function(net):
    prim = decompose_to_primitives(net)
    assert verify_equivalence_exact(net, prim)
    for node in prim.nodes.values():
        if not node.is_source():
            assert len(node.fanins) <= 2


@given(random_networks())
@SETTINGS
def test_constant_propagation_preserves_function(net):
    work = net.copy()
    propagate_constants(work)
    collapse_buffers(work)
    assert verify_equivalence(net, work, 128)


@given(random_networks())
@SETTINGS
def test_balancing_preserves_function_and_depth(net):
    work = net.copy()
    d0 = work.depth()
    balance_paths(work)
    assert work.depth() == d0
    assert verify_equivalence(net, work, 128)


@given(random_networks())
@SETTINGS
def test_extraction_preserves_function(net):
    work = net.copy()
    extract_kernels(work, "area", max_extractions=10)
    assert verify_equivalence(net, work, 128)


@given(random_networks())
@SETTINGS
def test_mapping_preserves_function(net):
    res = tech_map(net, generic_library(), "area")
    assert verify_equivalence_exact(net, res.mapped)


@given(random_networks(), st.integers(0, 1000))
@SETTINGS
def test_timed_transitions_dominate_functional(net, seed):
    """The event-driven count is a per-node upper bound on the
    zero-delay count for any stimulus (glitches only add)."""
    count = 48
    words = random_words(net.inputs, count, seed)
    func = simulate_transitions(net, words, count)
    vecs = vectors_from_words(words, count)
    timed = timed_transitions(net, vecs)
    for name in func:
        assert timed[name] >= func[name]


@given(random_networks())
@SETTINGS
def test_exact_equivalence_is_reflexive_and_detects_negation(net):
    assert verify_equivalence_exact(net, net.copy())
    mutated = net.copy()
    out = mutated.outputs[0]
    inv = mutated.fresh_name("_neg")
    mutated.add_gate(inv, GateType.NOT, [out])
    mutated.outputs = [inv if o == out else o for o in mutated.outputs]
    # Negating one output breaks equivalence unless it was constant…
    from repro.bdd.circuit import network_bdds

    funcs = network_bdds(net)
    if not (funcs[out].is_true or funcs[out].is_false):
        assert not verify_equivalence_exact(net, mutated)
