"""Tests for the FSM benchmark suite, product sharing, and the newer
datapath generators (barrel shifter, decoder, priority encoder)."""

import random

import pytest

from repro.logic.generators import (barrel_shifter, decoder,
                                    priority_encoder)
from repro.logic.netlist import Network
from repro.logic.sop import Cover
from repro.opt.logic.share import share_product_terms
from repro.opt.seq.fsm_benchmarks import (all_benchmarks,
                                          benchmark_names,
                                          load_benchmark)
from repro.opt.seq.minimize_fsm import minimize_stg
from repro.opt.seq.stg import synthesize_fsm
from repro.opt.seq.encoding import encode_natural
from repro.sim.functional import verify_equivalence


class TestFsmSuite:
    def test_all_load(self):
        machines = all_benchmarks()
        assert len(machines) == 6
        for name, stg in machines.items():
            assert stg.states, name
            assert stg.reset_state in stg.states

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_benchmark("nonexistent")

    def test_rows_sum_to_one(self):
        """All bundled machines are completely specified."""
        for name, stg in all_benchmarks().items():
            for s, row in stg.transition_matrix().items():
                assert sum(row.values()) == pytest.approx(1.0), \
                    (name, s)

    def test_redundant_minimizes(self):
        stg = load_benchmark("redundant")
        red = minimize_stg(stg)
        assert len(stg.states) == 6
        assert len(red.states) == 3

    def test_others_already_minimal(self):
        for name in ("detector", "vending", "traffic"):
            stg = load_benchmark(name)
            red = minimize_stg(stg)
            assert len(red.states) == len(stg.states), name

    def test_detector_detects(self):
        stg = load_benchmark("detector")
        state = stg.reset_state
        outs = []
        for bit in [1, 0, 1, 1, 1, 0, 1, 1]:
            state, o = stg.next_state(state, bit)
            outs.append(o)
        # "1011" completes at index 3 and (overlapping) at index 7.
        assert outs[3] == "1" and outs[7] == "1"
        assert outs[0] == "0" and outs[4] == "0"

    def test_all_synthesizable(self):
        for name, stg in all_benchmarks().items():
            net = synthesize_fsm(stg, encode_natural(stg))
            net.check()
            assert len(net.outputs) == stg.num_outputs


class TestProductSharing:
    def make_net(self):
        net = Network()
        net.add_inputs(["a", "b", "c", "d", "e"])
        # a·b·c shared by three functions.
        net.add_sop("f", ["a", "b", "c", "d"],
                    Cover.from_strings(["111-", "---1"]))
        net.add_sop("g", ["a", "b", "c", "e"],
                    Cover.from_strings(["111-", "---0"]))
        net.add_sop("h", ["a", "b", "c"],
                    Cover.from_strings(["111"]))
        net.set_outputs(["f", "g", "h"])
        return net

    def test_extracts_and_preserves(self):
        net = self.make_net()
        ref = net.copy()
        res = share_product_terms(net)
        assert res.terms_extracted == 1
        assert res.occurrences_replaced == 3
        assert verify_equivalence(ref, net, 256)
        assert res.literals_after < res.literals_before

    def test_min_uses_respected(self):
        net = self.make_net()
        res = share_product_terms(net, min_uses=4)
        assert res.terms_extracted == 0

    def test_single_literal_terms_skipped(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_sop("f", ["a"], Cover.from_strings(["1"]))
        net.add_sop("g", ["a", "b"], Cover.from_strings(["1-", "-1"]))
        net.set_outputs(["f", "g"])
        res = share_product_terms(net)
        assert res.terms_extracted == 0

    def test_fsm_logic_sharing(self):
        """FSM next-state bits share (input x state) product terms."""
        from repro.opt.seq.fsm_benchmarks import load_benchmark

        stg = load_benchmark("detector")
        net = synthesize_fsm(stg, encode_natural(stg), minimize=False)
        ref = net.copy()
        res = share_product_terms(net)
        assert res.terms_extracted > 0
        assert res.literals_after < res.literals_before
        # Sequential equivalence: same output trace.
        import random

        from repro.sim.functional import sequential_transitions

        rng = random.Random(4)
        vecs = [{"x0": rng.getrandbits(1)} for _ in range(300)]
        _, t1 = sequential_transitions(ref, vecs)
        _, t2 = sequential_transitions(net, vecs)
        assert [t["z0"] for t in t1] == [t["z0"] for t in t2]


class TestNewGenerators:
    def test_barrel_shifter(self):
        net = barrel_shifter(8)
        rng = random.Random(1)
        for _ in range(100):
            d, s = rng.randrange(256), rng.randrange(8)
            vec = {f"d{i}": (d >> i) & 1 for i in range(8)}
            vec.update({f"s{i}": (s >> i) & 1 for i in range(3)})
            out = net.evaluate(vec)
            y = sum(out[f"y{i}"] << i for i in range(8))
            assert y == ((d << s) | (d >> (8 - s))) & 255

    def test_barrel_power_of_two_only(self):
        with pytest.raises(ValueError):
            barrel_shifter(6)

    def test_decoder(self):
        net = decoder(3)
        for code in range(8):
            for en in (0, 1):
                vec = {f"s{i}": (code >> i) & 1 for i in range(3)}
                vec["en"] = en
                out = net.evaluate(vec)
                onehot = sum(out[f"o{k}"] << k for k in range(8))
                assert onehot == ((1 << code) if en else 0)

    def test_priority_encoder(self):
        net = priority_encoder(8)
        rng = random.Random(2)
        for _ in range(200):
            r = rng.randrange(256)
            vec = {f"r{i}": (r >> i) & 1 for i in range(8)}
            out = net.evaluate(vec)
            if r == 0:
                assert out["valid"] == 0
            else:
                y = sum(out[f"y{b}"] << b for b in range(3))
                assert out["valid"] == 1
                assert y == r.bit_length() - 1

    def test_priority_encoder_width_one(self):
        net = priority_encoder(2)
        assert net.evaluate({"r0": 1, "r1": 0})["valid"] == 1


class TestCliFsm:
    def test_bundled_benchmark(self, capsys):
        from repro.tools.cli import main

        assert main(["fsm", "redundant", "--vectors", "300"]) == 0
        out = capsys.readouterr().out
        assert "states" in out and "6 -> 3" in out

    def test_kiss_file(self, tmp_path, capsys):
        from repro.opt.seq.fsm_benchmarks import TRAFFIC
        from repro.tools.cli import main

        path = tmp_path / "t.kiss"
        path.write_text(TRAFFIC)
        assert main(["fsm", str(path), "--vectors", "300"]) == 0
