"""Tests for the FSM flow driver, register binding, and timed power."""

import pytest

from repro.arch.allocation import (bind_registers, profile_values)
from repro.arch.dfg import fir_dfg
from repro.arch.scheduling import list_schedule
from repro.core.flow import fsm_low_power_flow
from repro.logic.generators import parity_tree, ripple_carry_adder
from repro.opt.logic.balance import balance_paths
from repro.opt.seq.stg import STG
from repro.power.glitch import timed_average_power
from repro.power.model import average_power


class TestTimedPower:
    def test_timed_at_least_zero_delay(self):
        net = parity_tree(8, balanced=False)
        p_zero = average_power(net, 128, seed=1).switching
        p_timed = timed_average_power(net, 128, seed=1).switching
        assert p_timed >= p_zero

    def test_balanced_tree_matches(self):
        net = parity_tree(8, balanced=True)
        p_zero = average_power(net, 128, seed=1).switching
        p_timed = timed_average_power(net, 128, seed=1).switching
        assert p_timed == pytest.approx(p_zero, rel=1e-6)

    def test_balancing_saves_net_power_on_glitchy_logic(self):
        net = parity_tree(10, balanced=False)
        before = timed_average_power(net, 128, seed=2).total
        balance_paths(net)
        after = timed_average_power(net, 128, seed=2).total
        assert after < before


class TestRegisterBinding:
    @pytest.fixture
    def scheduled(self):
        dfg = fir_dfg(8)
        sched = list_schedule(dfg, {"mul": 2, "add": 2})
        traces = profile_values(dfg, 48, seed=3)
        return dfg, sched, traces

    def test_no_lifetime_overlap_in_register(self, scheduled):
        dfg, sched, traces = scheduled
        from repro.arch.allocation import _lifetimes

        res = bind_registers(dfg, sched, "naive", traces)
        lifetimes = _lifetimes(dfg, sched)
        for reg, names in res.register_sequences().items():
            names.sort(key=lambda n: lifetimes[n][0])
            for a, b in zip(names, names[1:]):
                assert lifetimes[a][1] <= lifetimes[b][0], (a, b)

    def test_minimum_register_count(self, scheduled):
        dfg, sched, traces = scheduled
        naive = bind_registers(dfg, sched, "naive", traces)
        lp = bind_registers(dfg, sched, "low-power", traces)
        # Left-edge is optimal in register count for both strategies.
        assert lp.num_registers == naive.num_registers

    def test_low_power_no_worse_switching(self, scheduled):
        dfg, sched, traces = scheduled
        naive = bind_registers(dfg, sched, "naive", traces)
        lp = bind_registers(dfg, sched, "low-power", traces)
        assert lp.switching <= naive.switching + 1e-9

    def test_bad_strategy(self, scheduled):
        dfg, sched, traces = scheduled
        with pytest.raises(ValueError):
            bind_registers(dfg, sched, "random", traces)


class TestFsmFlow:
    def make_stg(self):
        """Duplicated idle-heavy ring: minimization + gating both
        matter."""
        stg = STG(2, 1)
        for c in range(2):
            for i in range(4):
                s = f"c{c}_{i}"
                nxt = f"c{c}_{(i + 1) % 4}"
                out = "1" if i == 3 else "0"
                stg.add_transition("11", s, nxt, out)
                stg.add_transition("0-", s, s, out)
                stg.add_transition("10", s, s, out)
        return stg

    def test_flow_minimizes_and_saves(self):
        stg = self.make_stg()
        res = fsm_low_power_flow(stg, sequence_length=800, seed=1)
        assert res.states_before == 8
        assert res.states_after == 4
        assert 0.0 <= res.activation_probability <= 1.0
        assert res.power_after < res.power_before
        assert res.saving > 0.05

    def test_gated_machine_matches_reference_outputs(self):
        import random

        from repro.sim.functional import sequential_transitions

        stg = self.make_stg()
        res = fsm_low_power_flow(stg, sequence_length=400, seed=2)
        rng = random.Random(5)
        vecs = [{"x0": rng.getrandbits(1), "x1": rng.getrandbits(1)}
                for _ in range(300)]
        _, tb = sequential_transitions(res.baseline, vecs)
        _, tg = sequential_transitions(res.network, vecs)
        assert [t["z0"] for t in tb] == [t["z0"] for t in tg]
