"""Unit tests for logic-level optimizations (don't-cares, balancing,
kernel extraction, technology mapping)."""

import pytest

from repro.library.cells import generic_library
from repro.logic.gates import GateType
from repro.logic.generators import (alu_slice, array_multiplier,
                                    comparator, parity_tree,
                                    random_logic, ripple_carry_adder)
from repro.logic.netlist import Network
from repro.logic.sop import Cover
from repro.opt.logic.balance import balance_paths
from repro.opt.logic.dontcare import (controllability_dont_cares,
                                      dontcare_power_optimization,
                                      observability_dont_cares)
from repro.opt.logic.kernels import extract_kernels
from repro.opt.logic.mapping import tech_map
from repro.power.glitch import glitch_report
from repro.sim.functional import verify_equivalence


def reconvergent_net():
    net = Network()
    net.add_inputs(["a", "b"])
    net.add_gate("x", GateType.AND, ["a", "b"])
    net.add_gate("y", GateType.OR, ["a", "b"])
    net.add_gate("z", GateType.AND, ["x", "y"])
    net.set_output("z")
    return net


class TestDontCares:
    def test_cdc_finds_unreachable_combo(self):
        net = reconvergent_net()
        cdc = controllability_dont_cares(net, "z")
        # (x=1, y=0) can never occur.
        assert cdc.to_strings() == ["10"]

    def test_cdc_empty_when_all_reachable(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", GateType.AND, ["a", "b"])
        net.set_output("z")
        assert controllability_dont_cares(net, "z").is_empty()

    def test_odc_of_masked_node(self):
        # out = g AND a: when a=0, g is unobservable.
        net = Network()
        net.add_inputs(["a", "b", "c"])
        net.add_gate("g", GateType.OR, ["b", "c"])
        net.add_gate("out", GateType.AND, ["g", "a"])
        net.set_output("out")
        odc = observability_dont_cares(net, "g")
        assert odc.evaluate({"a": 0, "b": 0, "c": 0})
        assert not odc.evaluate({"a": 1, "b": 0, "c": 0})

    def test_optimization_preserves_outputs(self):
        net = reconvergent_net()
        ref = net.copy()
        res = dontcare_power_optimization(net)
        assert verify_equivalence(ref, net, 64)
        assert res.switched_cap_before > 0

    @pytest.mark.parametrize("seed", [2, 7])
    def test_random_networks_preserved(self, seed):
        net = random_logic(6, 18, seed=seed)
        ref = net.copy()
        res = dontcare_power_optimization(net, num_vectors=256)
        assert verify_equivalence(ref, net, 512, seed=seed)
        # The simulation-gated loop never accepts a worsening move.
        assert res.switched_cap_after <= res.switched_cap_before + 1e-9


class TestBalance:
    def test_full_balance_kills_glitches(self):
        net = parity_tree(8, balanced=False)
        before = glitch_report(net, 128, seed=3)
        res = balance_paths(net)
        after = glitch_report(net, 128, seed=3)
        assert before.glitch_fraction > 0.1
        assert after.glitch_fraction == pytest.approx(0.0, abs=1e-9)
        assert res.buffers_added > 0
        assert res.skew_after == pytest.approx(0.0)

    def test_function_preserved(self):
        net = parity_tree(6, balanced=False)
        ref = net.copy()
        balance_paths(net)
        assert verify_equivalence(ref, net, 256)

    def test_critical_path_unchanged(self):
        net = parity_tree(8, balanced=False)
        d0 = net.depth()
        res = balance_paths(net)
        assert res.depth_after == d0

    def test_budgeted_balance(self):
        net = array_multiplier(3)
        res = balance_paths(net, max_buffers=5)
        assert res.buffers_added <= 5

    def test_selective_balance_spends_less(self):
        full = parity_tree(8, balanced=False)
        sel = parity_tree(8, balanced=False)
        r_full = balance_paths(full)
        r_sel = balance_paths(sel, selective=True, min_skew=3.0)
        assert r_sel.buffers_added < r_full.buffers_added

    def test_already_balanced_noop(self):
        net = parity_tree(8, balanced=True)
        res = balance_paths(net)
        assert res.buffers_added == 0


class TestKernelExtraction:
    def make_net(self):
        net = Network()
        net.add_inputs(["a", "b", "c", "d", "e"])
        cov = Cover.from_strings(["1-1--", "1--1-", "-11--", "-1-1-",
                                  "----1"])
        net.add_sop("f", ["a", "b", "c", "d", "e"], cov)
        net.set_output("f")
        return net

    def test_area_extraction_reduces_literals(self):
        net = self.make_net()
        ref = net.copy()
        res = extract_kernels(net, "area")
        assert res.literals_after < res.literals_before
        assert verify_equivalence(ref, net, 32)

    def test_power_extraction_reduces_cost(self):
        net = self.make_net()
        ref = net.copy()
        res = extract_kernels(
            net, "power",
            input_probs={"a": 0.9, "b": 0.9, "c": 0.5, "d": 0.5})
        assert res.switched_cap_after < res.switched_cap_before
        assert verify_equivalence(ref, net, 32)

    def test_objectives_can_differ(self):
        """With skewed probabilities the power objective may pick a
        different decomposition than the area objective."""
        probs = {"a": 0.99, "b": 0.99, "c": 0.5, "d": 0.5, "e": 0.5}
        net_a = self.make_net()
        net_p = self.make_net()
        res_a = extract_kernels(net_a, "area", input_probs=probs)
        res_p = extract_kernels(net_p, "power", input_probs=probs)
        # Power-driven extraction is at least as good on power cost.
        assert res_p.switched_cap_after <= res_a.switched_cap_after + 1e-9

    def test_bad_objective_rejected(self):
        with pytest.raises(ValueError):
            extract_kernels(self.make_net(), "delay")

    def test_gate_network_converted(self):
        net = ripple_carry_adder(3)
        ref = net.copy()
        extract_kernels(net, "area")
        assert verify_equivalence(ref, net, 256)


class TestTechMapping:
    @pytest.fixture(scope="class")
    def lib(self):
        return generic_library()

    @pytest.mark.parametrize("objective", ["area", "power", "delay"])
    def test_mapping_preserves_function(self, lib, objective):
        net = ripple_carry_adder(3)
        res = tech_map(net, lib, objective)
        assert verify_equivalence(net, res.mapped, 256)

    def test_all_nodes_carry_cells(self, lib):
        net = comparator(4)
        res = tech_map(net, lib, "area")
        for node in res.mapped.nodes.values():
            if node.is_source() or node.kind != "sop":
                continue
            assert "cell" in node.attrs

    def test_area_objective_minimizes_area(self, lib):
        net = ripple_carry_adder(4)
        res_a = tech_map(net, lib, "area")
        res_d = tech_map(net, lib, "delay")
        assert res_a.total_area <= res_d.total_area

    def test_power_objective_minimizes_power_cost(self, lib):
        from repro.power.activity import activity_from_simulation

        net = comparator(6)
        # Shared activity so the two mappings are costed identically.
        from repro.logic.transform import (collapse_buffers,
                                           decompose_to_primitives,
                                           propagate_constants)

        res_p = tech_map(net, lib, "power", seed=1)
        res_a = tech_map(net, lib, "area", seed=1)
        # Power cost of the power-mapped netlist must not exceed the
        # area-mapped one under the same stimulus.
        from repro.power.model import average_power

        p_power = average_power(res_p.mapped, 512, seed=2).total
        p_area = average_power(res_a.mapped, 512, seed=2).total
        assert p_power <= p_area * 1.1

    def test_delay_objective_is_fastest(self, lib):
        net = ripple_carry_adder(4)
        res_d = tech_map(net, lib, "delay")
        res_a = tech_map(net, lib, "area")
        assert res_d.arrival <= res_a.arrival + 1e-9

    def test_constants_survive(self, lib):
        net = alu_slice(3)
        res = tech_map(net, lib, "area")
        assert verify_equivalence(net, res.mapped, 256)

    def test_cells_used_accounting(self, lib):
        net = ripple_carry_adder(3)
        res = tech_map(net, lib, "area")
        assert sum(res.cells_used.values()) == \
            sum(1 for n in res.mapped.nodes.values()
                if n.attrs.get("cell"))

    def test_bad_objective_rejected(self, lib):
        with pytest.raises(ValueError):
            tech_map(ripple_carry_adder(2), lib, "speed")
