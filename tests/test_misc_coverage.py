"""Small-surface tests: utility functions and result-object behaviour
not covered elsewhere."""

import pytest

from repro.core.report import format_table
from repro.library.cells import generic_library
from repro.logic.gates import GateType
from repro.logic.generators import comparator, ripple_carry_adder
from repro.logic.netlist import Network
from repro.logic.transform import collapse_to_cover
from repro.power.model import PowerParameters
from repro.opt.circuit.reorder import ReorderResult
from repro.opt.seq.stg import STG


class TestCollapseToCover:
    def test_collapse_comparator(self):
        net = comparator(3)
        cover = collapse_to_cover(net, net.outputs[0])
        order = sorted(net.inputs)
        for m in range(1 << 6):
            assign = {name: (m >> i) & 1
                      for i, name in enumerate(order)}
            expect = net.evaluate(assign)[net.outputs[0]]
            assert cover.evaluate(m) == bool(expect), m

    def test_collapse_is_minimized(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("x", GateType.AND, ["a", "b"])
        net.add_gate("y", GateType.OR, ["x", "a"])   # y == a
        net.set_output("y")
        cover = collapse_to_cover(net, "y")
        assert cover.num_literals() == 1


class TestPowerParameters:
    def test_scaled_copy(self):
        p = PowerParameters()
        q = p.scaled(vdd=1.5)
        assert q.vdd == 1.5
        assert q.frequency == p.frequency
        assert p.vdd == 3.3   # original untouched (frozen)

    def test_frozen(self):
        with pytest.raises(Exception):
            PowerParameters().vdd = 5.0


class TestReportFormatting:
    def test_mixed_types(self):
        text = format_table(["a", "b"], [[1, 0.123456789],
                                         ["xx", 2.0]])
        assert "0.1235" in text
        assert "xx" in text

    def test_column_width_tracks_content(self):
        text = format_table(["h"], [["wide-content-cell"]])
        first, second = text.splitlines()[:2]
        assert len(second) >= len("wide-content-cell")


class TestLibraryAccess:
    def test_getitem_len_iter(self):
        lib = generic_library()
        assert lib["inv_x1"].num_inputs == 1
        assert len(list(iter(lib))) == len(lib)

    def test_cell_delay_model(self):
        inv = generic_library()["inv_x1"]
        assert inv.delay(10.0) > inv.delay(1.0)
        assert "inv_x1" in repr(inv)


class TestStgUtilities:
    def test_random_sequence_deterministic(self):
        stg = STG(3, 0)
        stg.add_state("s")
        a = stg.random_input_sequence(20, seed=5)
        b = stg.random_input_sequence(20, seed=5)
        assert a == b
        assert all(0 <= v < 8 for v in a)

    def test_zero_input_machine(self):
        # A machine without inputs: the stimulus is all zeros.
        stg = STG(0, 1)
        stg.add_state("a")
        assert stg.random_input_sequence(5) == [0] * 5

    def test_repr(self):
        stg = STG(1, 1)
        stg.add_transition("1", "a", "b", "0")
        assert "2 states" in repr(stg)


class TestReorderResultProperties:
    def test_zero_baseline(self):
        r = ReorderResult(best_order=[0], best_energy=0.0,
                          best_delay=0.0, baseline_energy=0.0,
                          baseline_delay=0.0, worst_energy=0.0)
        assert r.energy_saving == 0.0
        assert r.spread == 1.0


class TestNetworkEdgeCases:
    def test_repr(self):
        net = ripple_carry_adder(2)
        text = repr(net)
        assert "rca" in text and "gates" in text

    def test_empty_network_stats(self):
        net = Network("empty")
        assert net.depth() == 0.0
        assert net.num_gates() == 0
        assert net.topo_order() == []

    def test_node_repr_variants(self):
        net = Network()
        net.add_input("a")
        net.add_gate("g", GateType.NOT, ["a"])
        from repro.logic.sop import Cover

        net.add_sop("s", ["a"], Cover.from_strings(["1"]))
        assert "not" in repr(net.nodes["g"])
        assert "SOP" in repr(net.nodes["s"])
        assert "input" in repr(net.nodes["a"])

    def test_fanout_count_enable(self):
        net = Network()
        net.add_inputs(["d", "en"])
        net.add_latch("d", "q", enable="en")
        net.set_output("q")
        assert net.fanout_count("en") == 1
        assert net.fanout_count("d") == 1
