"""Unit tests for repro.logic.factor (division, kernels, factoring)."""

import pytest

from repro.logic.cube import Cube
from repro.logic.factor import (algebraic_divide, best_kernel,
                                common_cube, factor,
                                factored_literal_count, is_cube_free,
                                kernel_value, kernels, make_cube_free)
from repro.logic.sop import Cover


def cover_ab_cd():
    # (a + b)(c + d) = ac + ad + bc + bd over vars a,b,c,d
    return Cover.from_strings(["1-1-", "1--1", "-11-", "-1-1"])


class TestCubeFree:
    def test_common_cube(self):
        c = Cover.from_strings(["11-", "1-1"])
        assert common_cube(c) == frozenset([(0, 1)])

    def test_make_cube_free(self):
        c = Cover.from_strings(["11-", "1-1"])
        cf = make_cube_free(c)
        assert common_cube(cf) == frozenset()
        assert cf.to_strings() in (["-1-", "--1"], ["--1", "-1-"])

    def test_is_cube_free(self):
        assert is_cube_free(Cover.from_strings(["1-", "-1"]))
        assert not is_cube_free(Cover.from_strings(["11", "1-"]))
        assert not is_cube_free(Cover.from_strings(["11"]))


class TestDivision:
    def test_exact_division(self):
        f = cover_ab_cd()
        divisor = Cover.from_strings(["--1-", "---1"])  # c + d
        q, r = algebraic_divide(f, divisor)
        assert sorted(q.to_strings()) == ["-1--", "1---"]  # a + b
        assert r.is_empty()

    def test_division_with_remainder(self):
        # f = ac + ad + e
        f = Cover.from_strings(["1-1--", "1--1-", "----1"])
        divisor = Cover.from_strings(["--1--", "---1-"])
        q, r = algebraic_divide(f, divisor)
        assert q.to_strings() == ["1----"]
        assert r.to_strings() == ["----1"]

    def test_non_divisor(self):
        f = Cover.from_strings(["11"])
        divisor = Cover.from_strings(["0-"])
        q, r = algebraic_divide(f, divisor)
        assert q.is_empty()
        assert r.to_strings() == f.to_strings()

    def test_divide_by_empty_raises(self):
        with pytest.raises(ValueError):
            algebraic_divide(cover_ab_cd(), Cover.zero(4))

    def test_reconstruction(self):
        """quotient * divisor + remainder == original."""
        f = Cover.from_strings(["1-1--", "1--1-", "-11--", "-1-1-",
                                "----1"])
        divisor = Cover.from_strings(["--1--", "---1-"])
        q, r = algebraic_divide(f, divisor)
        product = q.intersect(divisor)   # algebraic product == AND here
        rebuilt = product.union(r)
        assert rebuilt.is_equivalent(f)


class TestKernels:
    def test_finds_c_plus_d(self):
        ks = [set(k.to_strings()) for k, _ in kernels(cover_ab_cd())]
        assert {"--1-", "---1"} in ks      # c + d
        assert {"1---", "-1--"} in ks      # a + b

    def test_kernels_are_cube_free(self):
        for k, _cok in kernels(cover_ab_cd()):
            assert common_cube(k) == frozenset()

    def test_single_cube_has_no_kernels(self):
        assert kernels(Cover.from_strings(["111"])) == []

    def test_kernel_value_positive(self):
        f = cover_ab_cd()
        kern = Cover.from_strings(["--1-", "---1"])
        assert kernel_value(f, kern) > 0

    def test_best_kernel(self):
        choice = best_kernel(cover_ab_cd())
        assert choice is not None
        kern, value = choice
        assert value > 0

    def test_no_worthwhile_kernel(self):
        # x0 x1 + x2 x3: kernels exist but save nothing.
        f = Cover.from_strings(["11--", "--11"])
        assert best_kernel(f) is None


class TestFactor:
    def test_factored_form_correct(self):
        f = cover_ab_cd()
        tree = factor(f)
        assert tree.literal_count() == 4
        text = tree.to_string(["a", "b", "c", "d"])
        assert "a" in text and "d" in text

    def test_factor_preserves_function(self):
        """Factored literal count <= flat count; structure checked by
        re-evaluating the expression tree."""
        f = Cover.from_strings(["1-1--", "1--1-", "-11--", "-1-1-",
                                "----1"])
        tree = factor(f)

        def eval_tree(node, minterm):
            if node.op == "lit":
                var, phase = node.literal
                bit = (minterm >> var) & 1
                return bit == phase
            if node.op == "and":
                return all(eval_tree(c, minterm) for c in node.children)
            return any(eval_tree(c, minterm) for c in node.children)

        for m in range(1 << 5):
            assert eval_tree(tree, m) == f.evaluate(m)

    def test_factored_literal_count(self):
        assert factored_literal_count(cover_ab_cd()) == 4
        flat = cover_ab_cd().num_literals()
        assert factored_literal_count(cover_ab_cd()) < flat

    def test_single_cube(self):
        tree = factor(Cover.from_strings(["110"]))
        assert tree.literal_count() == 3
