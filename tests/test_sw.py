"""Unit tests for the software level (ISA, CPU, model, compile,
scheduling)."""

import pytest

from repro.sw.compile import (linear_scan_allocate, peephole_mac,
                              strength_reduce)
from repro.sw.cpu import CPU, big_cpu_profile, dsp_profile
from repro.sw.isa import Instruction, OPCODES, Program, assemble
from repro.sw.power_model import fit_instruction_model
from repro.sw.programs import (dot_product, fir_kernel, mixed_block,
                               scale_by_constant)
from repro.sw.schedule import (basic_blocks, cold_schedule,
                               control_path_switching)


class TestISA:
    def test_assemble_roundtrip(self):
        prog = assemble("""
        start: li r1, 10
               li r2, 0
        loop:  add r2, r2, r1
               li r3, 1
               sub r1, r1, r3
               bne r1, r2, loop
               halt
        """)
        assert len(prog) == 7
        assert prog[0].label == "start"
        assert prog.labels()["loop"] == 2

    def test_assemble_rejects_bad_opcode(self):
        with pytest.raises(ValueError):
            assemble("frobnicate r1, r2")

    def test_assemble_rejects_bad_register(self):
        with pytest.raises(ValueError):
            assemble("add r1, r2, x9")

    def test_reads_writes(self):
        i = Instruction("add", dst="r1", src1="r2", src2="r3")
        assert set(i.reads()) == {"r2", "r3"}
        assert i.writes() == ["r1"]
        st = Instruction("st", dst="r1", src1="r2", imm=0)
        assert set(st.reads()) == {"r1", "r2"}
        assert st.writes() == []
        mac = Instruction("mac", dst="r1", src1="r2", src2="r3")
        assert "r1" in mac.reads()     # accumulator

    def test_opcode_encodings_distinct(self):
        assert len(set(OPCODES.values())) == len(OPCODES)


class TestCPU:
    def test_loop_execution(self):
        prog = assemble("""
               li r1, 5
               li r2, 0
               li r3, 1
        loop:  add r2, r2, r1
               sub r1, r1, r3
               bne r1, r0, loop
               halt
        """)
        res = CPU().run(prog)
        assert res.registers["r2"] == 5 + 4 + 3 + 2 + 1

    def test_memory_ops(self):
        prog = assemble("""
               li r1, 100
               ld r2, r1, 0
               shl r3, r2, 2
               st r3, r1, 4
               halt
        """)
        res = CPU().run(prog, memory={100: 7})
        assert res.memory[104] == 28

    def test_runaway_guard(self):
        prog = assemble("loop: jmp loop\n")
        with pytest.raises(RuntimeError):
            CPU().run(prog, max_instructions=100)

    def test_energy_components(self):
        prog = assemble("li r1, 1\nld r2, r1, 0\nhalt\n")
        res = CPU().run(prog)
        assert res.energy == pytest.approx(
            res.base_energy + res.overhead_energy + res.memory_energy)
        assert res.memory_energy > 0

    def test_profiles_differ(self):
        prog = mixed_block()
        big = CPU(big_cpu_profile()).run(prog)
        dsp = CPU(dsp_profile()).run(prog)
        assert dsp.overhead_energy / dsp.energy > \
            big.overhead_energy / big.energy


class TestModelFit:
    @pytest.fixture(scope="class")
    def model(self):
        return fit_instruction_model(CPU(dsp_profile()), 60)

    def test_base_costs_recovered(self, model):
        prof = dsp_profile()
        for op in ("add", "mul", "nop"):
            assert model.base[op] == pytest.approx(prof.base_energy[op],
                                                   rel=0.05)

    def test_overhead_recovered(self, model):
        prof = dsp_profile()
        h = bin(OPCODES["add"] ^ OPCODES["ld"]).count("1")
        assert model.pair_overhead("add", "ld") == pytest.approx(
            prof.overhead_per_bit * h, rel=0.1)

    def test_program_prediction(self, model):
        cpu = CPU(dsp_profile())
        prog, mem, _ = dot_product(5)
        prog = linear_scan_allocate(prog, 8)
        err = model.prediction_error(cpu, prog)
        assert err < 0.05

    def test_faster_is_lower_energy(self):
        """Claim C15: faster code is almost always lower-energy code."""
        cpu = CPU(big_cpu_profile())
        prog, mem, expected = dot_product(6)
        few = linear_scan_allocate(prog, 4)
        many = linear_scan_allocate(prog, 10)
        r_few = cpu.run(few, memory=dict(mem))
        r_many = cpu.run(many, memory=dict(mem))
        assert r_many.cycles < r_few.cycles
        assert r_many.energy < r_few.energy


class TestCompile:
    def test_allocation_correct_all_pressures(self):
        prog, mem, expected = dot_product(5)
        for regs in (3, 4, 6, 12):
            alloc = linear_scan_allocate(prog, regs)
            res = CPU().run(alloc, memory=dict(mem))
            assert res.memory.get(200) == expected, regs

    def test_spilling_costs_energy(self):
        prog, mem, _ = dot_product(6)
        tight = CPU().run(linear_scan_allocate(prog, 3),
                          memory=dict(mem))
        roomy = CPU().run(linear_scan_allocate(prog, 10),
                          memory=dict(mem))
        assert tight.energy > roomy.energy
        assert tight.memory_energy > roomy.memory_energy

    def test_strength_reduce(self):
        prog, mem, expected = scale_by_constant(4, 8)
        reduced = strength_reduce(prog)
        assert not any(i.op == "mul" for i in reduced)
        res = CPU().run(linear_scan_allocate(reduced, 8),
                        memory=dict(mem))
        got = [res.memory.get(300 + i) for i in range(4)]
        assert got == expected

    def test_strength_reduce_skips_non_powers(self):
        prog, _, _ = scale_by_constant(2, 5)
        reduced = strength_reduce(prog)
        assert any(i.op == "mul" for i in reduced)

    def test_mac_packing(self):
        prog, mem, expected = fir_kernel(5)
        packed = peephole_mac(prog)
        assert sum(1 for i in packed if i.op == "mac") == 5
        assert len(packed) == len(prog) - 5
        res = CPU(dsp_profile()).run(linear_scan_allocate(packed, 8),
                                     memory=dict(mem))
        assert res.memory.get(99) == expected

    def test_mac_packing_saves_on_dsp(self):
        prog, mem, _ = fir_kernel(6)
        dsp = CPU(dsp_profile())
        plain = dsp.run(linear_scan_allocate(prog, 8),
                        memory=dict(mem))
        packed = dsp.run(linear_scan_allocate(peephole_mac(prog), 8),
                         memory=dict(mem))
        assert packed.cycles < plain.cycles
        assert packed.energy < plain.energy


class TestColdScheduling:
    def test_switching_reduced(self):
        prog = mixed_block()
        cold = cold_schedule(prog)
        res_orig = CPU(dsp_profile()).run(prog)
        res_cold = CPU(dsp_profile()).run(cold)
        assert control_path_switching(res_cold.opcode_trace) < \
            control_path_switching(res_orig.opcode_trace)

    def test_semantics_preserved(self):
        prog = mixed_block()
        cold = cold_schedule(prog)
        a = CPU().run(prog)
        b = CPU().run(cold)
        assert a.registers == b.registers
        assert a.memory == b.memory

    def test_matters_on_dsp_not_cpu(self):
        """Claim C15/[40]: scheduling saves real energy on the DSP but
        is marginal on the big CPU."""
        prog = mixed_block()
        cold = cold_schedule(prog)
        dsp, big = CPU(dsp_profile()), CPU(big_cpu_profile())
        s_dsp = 1 - dsp.run(cold).energy / dsp.run(prog).energy
        s_big = 1 - big.run(cold).energy / big.run(prog).energy
        assert s_dsp > 0.1
        assert s_big < 0.05
        assert s_dsp > 3 * s_big

    def test_basic_blocks_split_on_branch_and_label(self):
        prog = assemble("""
               li r1, 1
        loop:  add r1, r1, r1
               bne r1, r0, loop
               halt
        """)
        blocks = basic_blocks(prog)
        assert (0, 1) in blocks
        assert any(s == 1 for s, _e in blocks)

    def test_dependencies_respected(self):
        prog = assemble("""
               li r1, 3
               add r2, r1, r1
               mul r3, r2, r2
               st r3, r1, 0
               halt
        """)
        cold = cold_schedule(prog)
        res = CPU().run(cold)
        assert res.memory[3] == 36
