"""Property-based tests (hypothesis) on the core data structures and
invariants: cubes, covers, BDDs, bus codes, simulators, RNS."""

import random

from hypothesis import given, settings, strategies as st

from repro.bdd.bdd import BDD
from repro.logic.cube import Cube
from repro.logic.sop import Cover
from repro.opt.datapath.bus_coding import bus_invert
from repro.opt.datapath.residue import OneHotResidue
from repro.sim.vectors import words_from_vectors, vectors_from_words

# -- strategies --------------------------------------------------------------

NVARS = 4


@st.composite
def cubes(draw, num_vars=NVARS):
    mask = draw(st.integers(0, (1 << num_vars) - 1))
    value = draw(st.integers(0, (1 << num_vars) - 1))
    return Cube(num_vars, mask, value)


@st.composite
def covers(draw, num_vars=NVARS, max_cubes=5):
    n = draw(st.integers(0, max_cubes))
    return Cover(num_vars, [draw(cubes(num_vars)) for _ in range(n)])


# -- cube properties ----------------------------------------------------------


@given(cubes(), cubes())
def test_intersection_covers_common_minterms(a, b):
    c = a.intersect(b)
    for m in range(1 << NVARS):
        both = a.covers_minterm(m) and b.covers_minterm(m)
        assert both == (c is not None and c.covers_minterm(m))


@given(cubes(), cubes())
def test_supercube_contains_both(a, b):
    s = a.supercube(b)
    assert s.contains(a) and s.contains(b)


@given(cubes(), cubes())
def test_containment_is_minterm_subsumption(a, b):
    claim = a.contains(b)
    subset = all(a.covers_minterm(m)
                 for m in range(1 << NVARS) if b.covers_minterm(m))
    assert claim == subset


@given(cubes())
def test_minterm_count_matches_enumeration(c):
    count = sum(1 for m in range(1 << NVARS) if c.covers_minterm(m))
    assert count == c.count_minterms()


# -- cover properties --------------------------------------------------------


@given(covers())
def test_complement_partitions_space(cover):
    comp = cover.complement()
    for m in range(1 << NVARS):
        assert cover.evaluate(m) != comp.evaluate(m)


@given(covers())
def test_sccc_preserves_function(cover):
    reduced = cover.sccc()
    for m in range(1 << NVARS):
        assert cover.evaluate(m) == reduced.evaluate(m)
    assert len(reduced) <= len(cover)


@given(covers())
@settings(max_examples=40)
def test_minimize_preserves_function(cover):
    mini = cover.minimize()
    for m in range(1 << NVARS):
        assert cover.evaluate(m) == mini.evaluate(m)
    assert mini.num_literals() <= max(cover.num_literals(),
                                      cover.sccc().num_literals())


@given(covers(), covers())
@settings(max_examples=40)
def test_minimize_with_dc_stays_in_band(on, dc):
    mini = on.minimize(dc)
    for m in range(1 << NVARS):
        if on.evaluate(m) and not dc.evaluate(m):
            assert mini.evaluate(m)            # covers the care ON-set
        elif not on.evaluate(m) and not dc.evaluate(m):
            assert not mini.evaluate(m)        # avoids the OFF-set


@given(covers())
def test_tautology_matches_enumeration(cover):
    assert cover.is_tautology() == \
        all(cover.evaluate(m) for m in range(1 << NVARS))


@given(covers(),
       st.lists(st.floats(0.01, 0.99), min_size=NVARS, max_size=NVARS))
def test_probability_matches_enumeration(cover, probs):
    expected = 0.0
    for m in range(1 << NVARS):
        if cover.evaluate(m):
            p = 1.0
            for i in range(NVARS):
                p *= probs[i] if (m >> i) & 1 else 1 - probs[i]
            expected += p
    assert abs(cover.probability(probs) - expected) < 1e-9


# -- BDD properties -----------------------------------------------------------


@st.composite
def bool_exprs(draw, depth=3):
    """Random expression tree over 3 variables as (fn, evaluator)."""
    if depth == 0 or draw(st.booleans()):
        var = draw(st.sampled_from(["a", "b", "c"]))
        return ("var", var)
    op = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if op == "not":
        return ("not", draw(bool_exprs(depth=depth - 1)))
    return (op, draw(bool_exprs(depth=depth - 1)),
            draw(bool_exprs(depth=depth - 1)))


def build_bdd(expr, mgr):
    if expr[0] == "var":
        return mgr.var(expr[1])
    if expr[0] == "not":
        return ~build_bdd(expr[1], mgr)
    l, r = build_bdd(expr[1], mgr), build_bdd(expr[2], mgr)
    return {"and": l & r, "or": l | r, "xor": l ^ r}[expr[0]]


def eval_expr(expr, env):
    if expr[0] == "var":
        return env[expr[1]]
    if expr[0] == "not":
        return 1 - eval_expr(expr[1], env)
    l, r = eval_expr(expr[1], env), eval_expr(expr[2], env)
    return {"and": l & r, "or": l | r, "xor": l ^ r}[expr[0]]


@given(bool_exprs())
@settings(max_examples=60)
def test_bdd_agrees_with_direct_evaluation(expr):
    mgr = BDD(["a", "b", "c"])
    f = build_bdd(expr, mgr)
    for m in range(8):
        env = {"a": m & 1, "b": (m >> 1) & 1, "c": (m >> 2) & 1}
        assert f.evaluate(env) == bool(eval_expr(expr, env))


@given(bool_exprs(), bool_exprs())
@settings(max_examples=40)
def test_bdd_canonicity(e1, e2):
    """Equal functions get equal node ids; different functions don't."""
    mgr = BDD(["a", "b", "c"])
    f1, f2 = build_bdd(e1, mgr), build_bdd(e2, mgr)
    same = all(
        f1.evaluate({"a": m & 1, "b": (m >> 1) & 1, "c": (m >> 2) & 1})
        == f2.evaluate({"a": m & 1, "b": (m >> 1) & 1,
                        "c": (m >> 2) & 1})
        for m in range(8))
    assert (f1.node == f2.node) == same


# -- bus coding ---------------------------------------------------------------


@given(st.lists(st.integers(0, 255), min_size=2, max_size=60))
def test_bus_invert_decodable_and_never_worse(stream):
    res = bus_invert(stream, 8)
    for original, (bus, e) in zip(stream, res.encoded):
        decoded = (~bus & 0xFF) if e else bus
        assert decoded == original
    assert res.transitions_coded <= res.transitions_uncoded + \
        (len(stream) - 1)  # invert line overhead is bounded by 1/step


@given(st.lists(st.integers(0, 104), min_size=1, max_size=40))
def test_residue_roundtrip_and_add(stream):
    ohr = OneHotResidue([3, 5, 7])
    for v in stream:
        assert ohr.decode(ohr.encode(v)) == v
    acc = ohr.encode(0)
    total = 0
    for v in stream:
        acc = ohr.add(acc, ohr.encode(v))
        total = (total + v) % 105
    assert ohr.decode(acc) == total


# -- simulation packing --------------------------------------------------------


@given(st.lists(st.fixed_dictionaries(
    {"a": st.integers(0, 1), "b": st.integers(0, 1)}),
    min_size=1, max_size=30))
def test_pack_unpack_roundtrip(vectors):
    words = words_from_vectors(vectors)
    assert vectors_from_words(words, len(vectors)) == vectors


# -- network invariants ---------------------------------------------------------


@given(st.integers(0, 2 ** 16 - 1), st.integers(0, 2 ** 16 - 1))
@settings(max_examples=30)
def test_adder_network_is_an_adder(a, b):
    from repro.logic.generators import ripple_carry_adder

    net = ripple_carry_adder(16)
    vec = {f"a{i}": (a >> i) & 1 for i in range(16)}
    vec.update({f"b{i}": (b >> i) & 1 for i in range(16)})
    vec["cin"] = 0
    out = net.evaluate(vec)
    s = sum(out[f"s{i}"] << i for i in range(16)) + (out["c16"] << 16)
    assert s == a + b


@given(st.integers(0, 10 ** 9))
@settings(max_examples=50)
def test_gray_code_adjacent_single_flip(n):
    from repro.opt.datapath.bus_coding import _to_gray

    g1, g2 = _to_gray(n), _to_gray(n + 1)
    assert bin(g1 ^ g2).count("1") == 1


# -- compiled simulation -------------------------------------------------------


@given(st.integers(0, 10 ** 6), st.integers(4, 9), st.integers(10, 40),
       st.integers(0, 10 ** 6))
@settings(max_examples=25, deadline=None)
def test_compiled_and_interpreted_agree_on_random_networks(
        net_seed, num_inputs, num_gates, stim_seed):
    from repro.logic.generators import random_logic
    from repro.sim.compiled import get_compiled
    from repro.sim.vectors import random_words

    net = random_logic(num_inputs, num_gates, seed=net_seed)
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, 64, stim_seed)
    mask = (1 << 64) - 1
    assert net.evaluate_words(words, mask) == \
        get_compiled(net).evaluate_words(words, mask)


@given(st.integers(0, 10 ** 6), st.integers(0, 10 ** 6),
       st.integers(0, 10 ** 6))
@settings(max_examples=25, deadline=None)
def test_incremental_resimulation_agrees_after_random_edit(
        net_seed, stim_seed, edit_seed):
    from repro.logic.gates import GateType
    from repro.logic.generators import random_logic
    from repro.sim.compiled import get_compiled
    from repro.sim.vectors import random_words

    flip = {GateType.AND: GateType.NAND, GateType.NAND: GateType.AND,
            GateType.OR: GateType.NOR, GateType.NOR: GateType.OR,
            GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR}
    net = random_logic(8, 30, seed=net_seed)
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, 64, stim_seed)
    mask = (1 << 64) - 1
    prev = get_compiled(net).evaluate_words(words, mask)
    gates = [n for n in net.gate_nodes() if n.gtype in flip]
    gate = gates[random.Random(edit_seed).randrange(len(gates))]
    gate.gtype = flip[gate.gtype]
    inc = get_compiled(net).evaluate_incremental(prev, [gate.name],
                                                 words, mask)
    assert inc == net.evaluate_words(words, mask)


@given(st.integers(0, 10 ** 6), st.permutations(list(range(4))),
       st.booleans())
@settings(max_examples=25, deadline=None)
def test_equivalence_verdict_invariant_under_output_order(
        net_seed, perm, corrupt):
    from repro.logic.gates import GateType
    from repro.logic.generators import random_logic
    from repro.sim.functional import (verify_equivalence,
                                      verify_equivalence_exact)

    net = random_logic(5, 12, seed=net_seed)
    net.outputs = net.outputs[:4]
    perm = [i for i in perm if i < len(net.outputs)]
    other = net.copy()
    if corrupt:
        victim = other.nodes[other.outputs[0]]
        if victim.kind == "gate":
            victim.gtype = GateType.NOT if victim.gtype is not GateType.NOT \
                else GateType.BUF
            victim.fanins = victim.fanins[:1]
        else:
            victim.cover = victim.cover.complement()
        other._invalidate()
    expected = verify_equivalence(net, other, num_vectors=64)
    expected_exact = verify_equivalence_exact(net, other)
    other.outputs = [other.outputs[i] for i in perm]
    assert verify_equivalence(net, other, num_vectors=64) == expected
    assert verify_equivalence_exact(net, other) == expected_exact
