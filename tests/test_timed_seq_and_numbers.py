"""Tests for clocked timed simulation, number representation activity,
and straight-line program prediction."""

import random

import pytest

from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.opt.datapath.number_repr import (representation_comparison,
                                            sine_stream,
                                            stream_transitions,
                                            to_sign_magnitude,
                                            to_twos_complement)
from repro.sim.event import timed_sequential_transitions
from repro.sim.functional import sequential_transitions


def glitchy_then_quiet(reg_after_chain: bool) -> Network:
    """XOR cascade into an AND funnel with one pipeline register whose
    position is the experiment variable."""
    net = Network()
    ins = net.add_inputs([f"i{k}" for k in range(6)])
    x = ins[0]
    for k in range(1, 4):
        x = net.add_gate(f"x{k}", GateType.XOR, [x, ins[k]])
    if reg_after_chain:
        net.add_latch(x, "q")
        x = "q"
    a = net.add_gate("a1", GateType.AND, [x, ins[4]])
    a = net.add_gate("a2", GateType.AND, [a, ins[5]])
    if reg_after_chain:
        net.set_output(a)
    else:
        net.add_latch(a, "q")
        out = net.add_gate("ob", GateType.BUF, ["q"])
        net.set_output(out)
    return net


class TestTimedSequential:
    def drive(self, count=300, seed=0):
        rng = random.Random(seed)
        return [{f"i{k}": rng.getrandbits(1) for k in range(6)}
                for _ in range(count)]

    def test_timed_dominates_functional(self):
        net = glitchy_then_quiet(False)
        vecs = self.drive()
        timed = timed_sequential_transitions(net, vecs)
        func, _ = sequential_transitions(net, vecs)
        for name in func:
            assert timed[name] >= func[name], name

    def test_registers_filter_glitches(self):
        """The [29] mechanism: a register placed after the glitchy
        cascade stops glitches from reaching the downstream logic."""
        vecs = self.drive(400, seed=1)

        def downstream_glitches(net):
            timed = timed_sequential_transitions(net, vecs)
            func, _ = sequential_transitions(net, vecs)
            return sum(timed[n] - func[n] for n in ("a1", "a2"))

        filtered = downstream_glitches(glitchy_then_quiet(True))
        unfiltered = downstream_glitches(glitchy_then_quiet(False))
        assert filtered < unfiltered / 2

    def test_latch_output_at_most_one_transition_per_cycle(self):
        net = glitchy_then_quiet(True)
        vecs = self.drive(250, seed=2)
        timed = timed_sequential_transitions(net, vecs)
        assert timed["q"] <= len(vecs) - 1

    def test_enable_respected(self):
        net = Network()
        net.add_inputs(["d", "en"])
        net.add_latch("d", "q", enable="en")
        net.add_gate("o", GateType.BUF, ["q"])
        net.set_output("o")
        vecs = [{"d": k & 1, "en": 0} for k in range(30)]
        timed = timed_sequential_transitions(net, vecs)
        assert timed["q"] == 0


class TestNumberRepresentation:
    def test_encodings(self):
        assert to_twos_complement(-1, 8) == 0xFF
        assert to_twos_complement(5, 8) == 5
        assert to_sign_magnitude(-5, 8) == 0x85
        assert to_sign_magnitude(5, 8) == 5

    def test_bad_representation(self):
        with pytest.raises(ValueError):
            stream_transitions([1, 2], 8, "gray")

    def test_sign_magnitude_wins_on_zero_crossing_signals(self):
        """Small, frequently-crossing signals pay heavy sign-extension
        flips in two's complement."""
        vals = sine_stream(4000, amplitude=30, period=40, seed=1)
        tc, sm, ratio = representation_comparison(vals, 16)
        assert sm < tc
        assert ratio < 0.9

    def test_no_advantage_without_crossings(self):
        vals = [100 + (k % 7) for k in range(2000)]   # always positive
        tc, sm, _ = representation_comparison(vals, 16)
        assert sm == tc   # identical encodings for non-negative values


class TestPredictProgram:
    def test_straight_line_prediction(self):
        from repro.sw.compile import linear_scan_allocate
        from repro.sw.cpu import CPU, dsp_profile
        from repro.sw.power_model import fit_instruction_model
        from repro.sw.programs import dot_product

        cpu = CPU(dsp_profile())
        model = fit_instruction_model(cpu, 60)
        prog, mem, _ = dot_product(4)
        prog = linear_scan_allocate(prog, 8)
        predicted = model.predict_program(prog)
        measured = cpu.run(prog, memory=dict(mem)).energy
        assert predicted == pytest.approx(measured, rel=0.05)

    def test_branches_rejected(self):
        from repro.sw.power_model import InstructionPowerModel
        from repro.sw.programs import linear_search

        model = InstructionPowerModel(base={}, overhead={})
        prog, _, _ = linear_search(8, 3)
        with pytest.raises(ValueError):
            model.predict_program(prog)
