"""Tests for the fail-soft pass engine (repro.core.passes), the flows
rebuilt on top of it, and the flow/CLI bug batch."""

import json

import pytest

from repro.core.flow import (_enable_rate, fsm_low_power_flow,
                             low_power_flow, run_flow)
from repro.core.passes import (ADOPTED, FlowError, FlowSpec,
                               FlowTrace, Pass, PassContext,
                               ROLLED_BACK, SKIPPED, TraceRecord,
                               available_passes, make_pass,
                               run_network_passes)
from repro.logic.blif import write_blif
from repro.logic.gates import GateType
from repro.logic.generators import ripple_carry_adder
from repro.logic.netlist import Latch, Network
from repro.logic.transform import to_sop_network
from repro.sim.functional import verify_equivalence
from repro.tools.cli import main


def _raise(net, ctx, params):
    raise RuntimeError("boom")


def _complement_output(net, ctx, params):
    node = net.nodes[net.outputs[0]]
    node.cover = node.cover.complement()
    net._invalidate()


def _inflate_sizes(net, ctx, params):
    for node in net.nodes.values():
        if not node.is_source():
            node.attrs["size"] = 8.0
    net._invalidate()


def _engine(net, passes, **kw):
    work = to_sop_network(net)
    ctx = PassContext(original=net, num_vectors=256, seed=0)
    return run_network_passes(work, passes, ctx, **kw)


class TestRollback:
    def test_raising_pass_rolls_back_and_flow_continues(self):
        net = ripple_carry_adder(2)
        passes = [make_pass("extract"),
                  Pass(name="bomb", apply=_raise),
                  make_pass("map")]
        final, trace, outcomes = _engine(net, passes)
        by = {r.name: r for r in trace.records}
        assert by["bomb"].outcome == ROLLED_BACK
        assert by["bomb"].reason.startswith("exception: RuntimeError")
        assert by["extract"].outcome == ADOPTED
        assert by["map"].outcome == ADOPTED        # flow kept going
        assert verify_equivalence(net, final, 512)
        # the rolled-back record shows no delta
        assert by["bomb"].power_after == by["bomb"].power_before
        assert by["bomb"].gates_after == by["bomb"].gates_before

    def test_strict_mode_reraises(self):
        net = ripple_carry_adder(2)
        passes = [Pass(name="bomb", apply=_raise)]
        with pytest.raises(RuntimeError, match="boom"):
            _engine(net, passes, strict=True)

    def test_equivalence_break_rolls_back(self):
        net = ripple_carry_adder(2)
        passes = [Pass(name="breaker", apply=_complement_output),
                  make_pass("map")]
        final, trace, _ = _engine(net, passes)
        by = {r.name: r for r in trace.records}
        assert by["breaker"].outcome == ROLLED_BACK
        assert by["breaker"].reason == "equivalence"
        assert by["breaker"].verify_vectors == 256
        assert by["map"].outcome == ADOPTED
        assert verify_equivalence(net, final, 512)

    def test_equivalence_break_strict_raises(self):
        net = ripple_carry_adder(2)
        passes = [Pass(name="breaker", apply=_complement_output)]
        with pytest.raises(RuntimeError, match="broke equivalence"):
            _engine(net, passes, strict=True)

    def test_power_regression_gate(self):
        net = ripple_carry_adder(2)
        gated = [Pass(name="inflate", apply=_inflate_sizes,
                      max_power_regression=0.0)]
        final, trace, _ = _engine(net, gated)
        assert trace.records[0].outcome == ROLLED_BACK
        assert trace.records[0].reason == "power-regression"
        # the rejected candidate's power is still recorded
        assert trace.records[0].power_after > \
            trace.records[0].power_before
        assert all(float(n.attrs.get("size", 1.0)) == 1.0
                   for n in final.nodes.values())

    def test_power_regression_ungated_adopts(self):
        net = ripple_carry_adder(2)
        passes = [Pass(name="inflate", apply=_inflate_sizes)]
        final, trace, _ = _engine(net, passes)
        assert trace.records[0].outcome == ADOPTED

    def test_power_regression_strict_raises(self):
        net = ripple_carry_adder(2)
        passes = [Pass(name="inflate", apply=_inflate_sizes,
                       max_power_regression=0.0)]
        with pytest.raises(FlowError, match="regressed power"):
            _engine(net, passes, strict=True)

    def test_input_network_never_mutated(self):
        net = ripple_carry_adder(2)
        blif_before = write_blif(net)
        _engine(net, [make_pass("extract"), make_pass("map")])
        assert write_blif(net) == blif_before


class TestTrace:
    def test_jsonl_round_trip(self, tmp_path):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=128)
        path = tmp_path / "trace.jsonl"
        res.trace.write(str(path))
        loaded = FlowTrace.load(str(path))
        assert loaded == res.trace
        assert loaded.fingerprint() == res.trace.fingerprint()

    def test_fingerprint_deterministic_and_ignores_wall(self):
        r1 = low_power_flow(ripple_carry_adder(2), num_vectors=128)
        r2 = low_power_flow(ripple_carry_adder(2), num_vectors=128)
        assert r1.trace.fingerprint() == r2.trace.fingerprint()
        r2.trace.records[0].wall_s += 100.0
        assert r1.trace.fingerprint() == r2.trace.fingerprint()
        r2.trace.records[0].name = "renamed"
        assert r1.trace.fingerprint() != r2.trace.fingerprint()

    def test_jsonl_lines_are_objects(self):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=128,
                             use_mapping=False, use_sizing=False)
        lines = res.trace.to_jsonl().strip().splitlines()
        head = json.loads(lines[0])
        assert head["type"] == "flow"
        assert head["flow"] == "low_power_flow"
        assert all(json.loads(ln)["type"] == "pass"
                   for ln in lines[1:])

    def test_bad_record_type_rejected(self):
        with pytest.raises(ValueError, match="unknown trace record"):
            FlowTrace.from_jsonl('{"type": "mystery"}\n')

    def test_outcome_counts(self):
        trace = FlowTrace()
        trace.add(TraceRecord(index=0, name="a", outcome=ADOPTED))
        trace.add(TraceRecord(index=1, name="b", outcome=SKIPPED))
        trace.add(TraceRecord(index=2, name="c", outcome=SKIPPED))
        assert trace.outcomes() == {ADOPTED: 1, SKIPPED: 2}


class TestSizeCap:
    def test_skip_is_recorded(self):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=128,
                             dontcare_size_cap=0,
                             use_extraction=False, use_mapping=False,
                             use_sizing=False)
        assert [s.name for s in res.stages] == ["initial", "dontcare"]
        stage = res.stages[1]
        assert stage.outcome == SKIPPED
        assert stage.reason == "size-cap"
        # the skipped stage's snapshot is the unchanged adopted state
        assert stage.report.total == res.stages[0].report.total
        rec = res.trace.records[0]
        assert rec.outcome == SKIPPED and rec.reason == "size-cap"

    def test_cap_is_a_parameter(self):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=128,
                             dontcare_size_cap=None,
                             use_extraction=False, use_mapping=False,
                             use_sizing=False)
        assert res.stages[1].outcome == ADOPTED

    def test_default_flag_behaviour_unchanged(self):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=128,
                             use_dontcares=False, use_extraction=False,
                             use_mapping=False, use_sizing=False)
        assert [s.name for s in res.stages] == ["initial"]


class TestVerifyScaling:
    def test_scaled_with_effort(self):
        ctx = PassContext(original=Network(), num_vectors=4096)
        assert ctx.verify_vectors == 1024

    def test_floor_at_256(self):
        ctx = PassContext(original=Network(), num_vectors=128)
        assert ctx.verify_vectors == 256

    def test_trace_records_verify_strength(self):
        res = low_power_flow(ripple_carry_adder(2), num_vectors=2048,
                             use_dontcares=False, use_extraction=False,
                             use_sizing=False)
        assert res.trace.records[0].verify_vectors == 512


class TestFlowSpec:
    def test_string_and_object_entries(self):
        spec = FlowSpec.from_dict({
            "name": "s", "num_vectors": 64,
            "passes": ["extract",
                       {"pass": "map",
                        "params": {"objective": "area"}}]})
        assert spec.passes == [("extract", {}),
                               ("map", {"objective": "area"})]
        res = run_flow(ripple_carry_adder(2), spec)
        assert [s.name for s in res.stages] == \
            ["initial", "extract", "map"]
        assert res.trace.flow == "s"

    def test_bad_specs_rejected(self):
        for bad in ({}, {"passes": []}, {"passes": [42]},
                    {"passes": [{"params": {}}]},
                    {"passes": [{"pass": "map", "params": 3}]}, []):
            with pytest.raises(ValueError):
                FlowSpec.from_dict(bad)

    def test_unknown_pass_name(self):
        with pytest.raises(ValueError, match="unknown pass"):
            make_pass("definitely-not-a-pass")

    def test_registry_contents(self):
        names = available_passes()
        for expected in ("dontcare", "extract", "map", "size",
                         "balance", "reorder", "sweep"):
            assert expected in names


class TestEnableRate:
    def test_derived_from_latch_enables(self):
        latches = [Latch(data="d0", output="q0", enable="en"),
                   Latch(data="d1", output="q1", enable="en")]
        trace = [{"en": 1}, {"en": 0}, {"en": 1}, {"en": 1}]
        assert _enable_rate(trace, latches) == pytest.approx(0.75)

    def test_missing_enable_degrades_to_one(self):
        latches = [Latch(data="d", output="q", enable="renamed")]
        assert _enable_rate([{"other": 1}], latches) == 1.0

    def test_ungated_latches(self):
        latches = [Latch(data="d", output="q")]
        assert _enable_rate([{"d": 1}], latches) == 1.0
        assert _enable_rate([], latches) == 1.0

    def test_fsm_flow_failsoft_on_stage_crash(self, monkeypatch):
        import repro.opt.seq.minimize_fsm as m
        from repro.opt.seq.fsm_benchmarks import load_benchmark

        def explode(stg):
            raise RuntimeError("minimize crashed")

        monkeypatch.setattr(m, "minimize_stg", explode)
        stg = load_benchmark("traffic")
        res = fsm_low_power_flow(stg, sequence_length=100, seed=0)
        by = {r.name: r for r in res.trace.records}
        assert by["minimize"].outcome == ROLLED_BACK
        assert res.states_after == res.states_before  # fallback: stg
        assert res.network is not None
        assert res.power_after > 0.0

    def test_fsm_flow_strict_reraises(self, monkeypatch):
        import repro.opt.seq.minimize_fsm as m
        from repro.opt.seq.fsm_benchmarks import load_benchmark

        def explode(stg):
            raise RuntimeError("minimize crashed")

        monkeypatch.setattr(m, "minimize_stg", explode)
        with pytest.raises(RuntimeError, match="minimize crashed"):
            fsm_low_power_flow(load_benchmark("traffic"),
                               sequence_length=100, strict=True)

    def test_fsm_flow_trace_present(self):
        from repro.opt.seq.fsm_benchmarks import load_benchmark

        res = fsm_low_power_flow(load_benchmark("traffic"),
                                 sequence_length=100, seed=0)
        names = [r.name for r in res.trace.records]
        assert names == ["minimize", "encode", "clock-gate",
                         "simulate", "measure"]
        assert all(r.outcome == ADOPTED for r in res.trace.records)


@pytest.fixture
def comb_blif(tmp_path):
    path = tmp_path / "rca.blif"
    path.write_text(write_blif(ripple_carry_adder(2)))
    return str(path)


@pytest.fixture
def seq_blif(tmp_path):
    net = Network("seq")
    net.add_input("a")
    net.add_latch("g", "q")
    net.add_gate("g", GateType.AND, ["a", "q"])
    net.set_output("g")
    path = tmp_path / "seq.blif"
    path.write_text(write_blif(net))
    return str(path)


class TestCli:
    def test_sequential_guard_on_all_comb_commands(self, seq_blif,
                                                   capsys):
        for cmd in (["optimize", seq_blif], ["balance", seq_blif],
                    ["map", seq_blif], ["glitch", seq_blif]):
            assert main(cmd) == 1
            assert "sequential" in capsys.readouterr().err

    def test_optimize_trace(self, comb_blif, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        out = tmp_path / "out.blif"
        assert main(["optimize", comb_blif, "--vectors", "128",
                     "--trace", str(trace), "-o", str(out)]) == 0
        capsys.readouterr()
        loaded = FlowTrace.load(str(trace))
        assert [r.name for r in loaded.records] == \
            ["dontcare", "extract", "map", "size"]
        assert out.exists()

    def test_flow_spec_roundtrip(self, comb_blif, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            {"name": "mini", "num_vectors": 64,
             "passes": ["extract", "map"]}))
        trace = tmp_path / "t.jsonl"
        assert main(["flow", comb_blif, "--spec", str(spec),
                     "--trace", str(trace)]) == 0
        assert "adopted=2" in capsys.readouterr().out
        assert FlowTrace.load(str(trace)).flow == "mini"

    def test_flow_spec_sequential_guard(self, seq_blif, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"passes": ["extract"]}))
        assert main(["flow", seq_blif, "--spec", str(spec)]) == 1

    def test_flow_bad_spec_exit_codes(self, comb_blif, tmp_path,
                                      capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["flow", comb_blif, "--spec", missing]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["flow", comb_blif, "--spec", str(bad)]) == 2
        unknown = tmp_path / "unknown.json"
        unknown.write_text(json.dumps({"passes": ["nonexistent"]}))
        assert main(["flow", comb_blif, "--spec",
                     str(unknown)]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_balance_selective_and_cap(self, tmp_path, capsys):
        from repro.logic.generators import parity_tree

        path = tmp_path / "chain.blif"
        path.write_text(write_blif(parity_tree(10, balanced=False)))
        assert main(["balance", str(path), "--vectors", "64",
                     "--selective", "--max-buffers", "2"]) == 0
        out = capsys.readouterr().out
        buffers = int(out.splitlines()[0].split(":")[1])
        assert buffers <= 2
