"""Unit tests for BLIF I/O."""

import pytest

from repro.logic.blif import BlifError, read_blif, write_blif
from repro.logic.generators import ripple_carry_adder
from repro.sim.functional import verify_equivalence

SIMPLE = """
.model test
.inputs a b c
.outputs f
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.end
"""


class TestRead:
    def test_simple(self):
        net = read_blif(SIMPLE)
        assert net.name == "test"
        assert net.inputs == ["a", "b", "c"]
        assert net.outputs == ["f"]
        # f = ab + c
        assert net.evaluate({"a": 1, "b": 1, "c": 0})["f"] == 1
        assert net.evaluate({"a": 0, "b": 1, "c": 0})["f"] == 0
        assert net.evaluate({"a": 0, "b": 0, "c": 1})["f"] == 1

    def test_latch(self):
        text = """
.model seq
.inputs d
.outputs q
.latch d q 1
.end
"""
        net = read_blif(text)
        assert len(net.latches) == 1
        assert net.latches[0].init == 1

    def test_constants(self):
        text = """
.model c
.outputs one zero
.names one
1
.names zero
.end
"""
        net = read_blif(text)
        vals = net.evaluate({})
        assert vals["one"] == 1 and vals["zero"] == 0

    def test_comments_and_continuations(self):
        text = (".model x # comment\n.inputs a \\\nb\n.outputs f\n"
                ".names a b f\n11 1\n.end\n")
        net = read_blif(text)
        assert net.inputs == ["a", "b"]

    def test_bad_construct(self):
        with pytest.raises(BlifError):
            read_blif(".model x\n.gate nand2 a=1 b=2 o=3\n")

    def test_off_set_rejected(self):
        with pytest.raises(BlifError):
            read_blif(".model x\n.inputs a\n.outputs f\n"
                      ".names a f\n1 0\n.end\n")

    def test_width_mismatch_rejected(self):
        with pytest.raises(BlifError):
            read_blif(".model x\n.inputs a b\n.outputs f\n"
                      ".names a b f\n1 1\n.end\n")


class TestRoundTrip:
    def test_simple_roundtrip(self):
        net = read_blif(SIMPLE)
        text = write_blif(net)
        back = read_blif(text)
        assert verify_equivalence(net, back, 64)

    def test_generator_roundtrip(self):
        net = ripple_carry_adder(3)
        back = read_blif(write_blif(net))
        assert verify_equivalence(net, back, 256)

    def test_latch_roundtrip(self):
        text = ".model s\n.inputs d\n.outputs q\n.latch d q 1\n.end\n"
        net = read_blif(text)
        back = read_blif(write_blif(net))
        assert back.latches[0].init == 1
        assert back.latches[0].data == "d"


class TestHardenedErrors:
    def test_duplicate_definition_names_both_lines(self):
        text = (".model t\n.inputs a\n.outputs f\n"
                ".names a f\n1 1\n.names a f\n0 1\n.end\n")
        with pytest.raises(BlifError,
                           match=r"line 6: 'f' already defined at "
                                 r"line 4"):
            read_blif(text)

    def test_duplicate_input(self):
        with pytest.raises(BlifError, match="already defined"):
            read_blif(".model t\n.inputs a a\n.end\n")

    def test_undefined_fanin_has_line(self):
        text = (".model t\n.inputs a\n.outputs f\n"
                ".names a ghost f\n11 1\n.end\n")
        with pytest.raises(BlifError,
                           match=r"line 4: 'f' reads undefined net "
                                 r"'ghost' as fanin"):
            read_blif(text)

    def test_latch_missing_data_has_line(self):
        text = ".model t\n.latch d q 0\n.outputs q\n.end\n"
        with pytest.raises(BlifError,
                           match=r"line 2: 'q' reads undefined net "
                                 r"'d' as latch data"):
            read_blif(text)

    def test_undefined_output(self):
        text = ".model t\n.inputs a\n.outputs nowhere\n.end\n"
        with pytest.raises(BlifError,
                           match="'nowhere' is never defined"):
            read_blif(text)

    def test_cover_width_mismatch_has_line(self):
        text = (".model t\n.inputs a\n.outputs f\n"
                ".names a f\n11 1\n.end\n")
        with pytest.raises(BlifError, match="line 5"):
            read_blif(text)

    def test_check_false_loads_broken_input(self):
        text = (".model t\n.inputs a\n.outputs f\n"
                ".names a ghost f\n11 1\n.end\n")
        net = read_blif(text, check=False)
        assert "f" in net.nodes and "ghost" not in net.nodes

    def test_blif_error_is_netlist_error(self):
        from repro.logic.netlist import NetlistError

        assert issubclass(BlifError, NetlistError)

    def test_continuation_reports_first_line(self):
        text = (".model t\n.inputs a\n.outputs f\n"
                ".names a \\\nghost f\n11 1\n.end\n")
        with pytest.raises(BlifError, match="line 4"):
            read_blif(text)
