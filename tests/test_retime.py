"""Unit tests for retiming."""

import random

import pytest

from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.opt.seq.retime import (HOST_SINK, HOST_SRC, RetimingGraph,
                                  apply_retiming, low_power_retiming,
                                  min_period_retiming)
from repro.sim.functional import sequential_transitions


def chain_then_register():
    """4-gate chain with two registers at the end: min period should
    drop from 4 to ~2 by spreading the registers."""
    net = Network("pipe")
    net.add_inputs(["a", "b", "c", "d"])
    net.add_gate("g1", GateType.XOR, ["a", "b"])
    net.add_gate("g2", GateType.XOR, ["g1", "c"])
    net.add_gate("g3", GateType.AND, ["g2", "d"])
    net.add_gate("g4", GateType.OR, ["g3", "a"])
    net.add_latch("g4", "q1")
    net.add_latch("q1", "q2")
    net.add_gate("o", GateType.BUF, ["q2"])
    net.set_output("o")
    return net


def run_streams(net, vecs):
    _, trace = sequential_transitions(net, vecs)
    return [t[net.outputs[0]] for t in trace]


class TestGraph:
    def test_edges_weights(self):
        net = chain_then_register()
        graph = RetimingGraph(net)
        w = {(e.tail, e.head): e.weight for e in graph.edges}
        assert w[("g1", "g2")] == 0
        assert w[("g4", "o")] == 2       # two latches traversed
        assert w[("o", HOST_SINK)] == 0

    def test_clock_period(self):
        graph = RetimingGraph(chain_then_register())
        assert graph.clock_period() == 4.0

    def test_no_path_through_host(self):
        """Splitting the host prevents fake PO->PI combinational paths."""
        graph = RetimingGraph(chain_then_register())
        srcs = {e.tail for e in graph.edges}
        assert HOST_SINK not in srcs

    def test_enable_latch_rejected(self):
        net = Network()
        net.add_inputs(["d", "en"])
        net.add_latch("d", "q", enable="en")
        net.add_gate("o", GateType.BUF, ["q"])
        net.set_output("o")
        with pytest.raises(ValueError):
            RetimingGraph(net)


class TestMinPeriod:
    def test_period_improves(self):
        graph = RetimingGraph(chain_then_register())
        period, r = min_period_retiming(graph)
        assert period < graph.clock_period()
        assert period == 2.0

    def test_retimed_network_equivalent(self):
        net = chain_then_register()
        graph = RetimingGraph(net)
        _, r = min_period_retiming(graph)
        net2 = apply_retiming(net, r)
        rng = random.Random(1)
        vecs = [{n: rng.getrandbits(1) for n in "abcd"}
                for _ in range(80)]
        s1 = run_streams(net, vecs)
        s2 = run_streams(net2, vecs)
        assert s1[6:] == s2[6:]          # identical after transient

    def test_io_latency_preserved(self):
        """HOST src/sink pinning keeps total path register count."""
        net = chain_then_register()
        graph = RetimingGraph(net)
        _, r = min_period_retiming(graph)
        assert r[HOST_SRC] == 0 and r[HOST_SINK] == 0

    def test_identity_retiming_roundtrip(self):
        net = chain_then_register()
        graph = RetimingGraph(net)
        r0 = {v: 0 for v in graph.vertices}
        net2 = apply_retiming(net, r0)
        rng = random.Random(2)
        vecs = [{n: rng.getrandbits(1) for n in "abcd"}
                for _ in range(40)]
        assert run_streams(net, vecs) == run_streams(net2, vecs)


class TestLowPower:
    def test_respects_period(self):
        net = chain_then_register()
        graph = RetimingGraph(net)
        period, _ = min_period_retiming(graph)
        act = {"g1": 0.9, "g2": 0.8, "g3": 0.1, "g4": 0.1}
        r = low_power_retiming(graph, period, act)
        assert graph.clock_period(r) <= period

    def test_prefers_low_activity_edges(self):
        """At a relaxed period the registers should sit on the
        low-activity signals."""
        net = chain_then_register()
        graph = RetimingGraph(net)
        act = {"g1": 0.95, "g2": 0.95, "g3": 0.02, "g4": 0.02,
               "o": 0.02}
        r = low_power_retiming(graph, 4.0, act)
        cost = graph.register_cost(r, act)
        r0 = graph.feasible_retiming(4.0)
        assert cost <= graph.register_cost(r0, act) + 1e-9

    def test_infeasible_period_raises(self):
        graph = RetimingGraph(chain_then_register())
        with pytest.raises(ValueError):
            low_power_retiming(graph, 0.5, {})

    def test_functional_after_low_power_retiming(self):
        net = chain_then_register()
        graph = RetimingGraph(net)
        period, _ = min_period_retiming(graph)
        act = {"g1": 0.9, "g2": 0.8, "g3": 0.1, "g4": 0.1}
        r = low_power_retiming(graph, period, act)
        net2 = apply_retiming(net, r)
        rng = random.Random(3)
        vecs = [{n: rng.getrandbits(1) for n in "abcd"}
                for _ in range(80)]
        assert run_streams(net, vecs)[6:] == run_streams(net2, vecs)[6:]
