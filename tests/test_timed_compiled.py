"""The compiled word-parallel timed engine (``repro.sim.timed``) must
be bit-identical, per node, to the event-driven oracle — on random
combinational networks, under non-uniform float delays (including
zero-delay delta cycles), and in clocked-sequential mode with latch
enables — and its cached program must never go stale."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.power.glitch import glitch_report, timed_average_power
from repro.sim.event import (EventSimulator, timed_sequential_transitions,
                             timed_transitions)
from repro.sim.timed import get_timed
from repro.sim.vectors import random_words, vectors_from_words

SETTINGS = settings(max_examples=25, deadline=None)

TWO_IN = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
          GateType.XOR, GateType.XNOR]


def _random_comb(seed, num_inputs, num_gates):
    rng = random.Random(seed)
    net = Network(f"t{seed}")
    pool = net.add_inputs([f"i{k}" for k in range(num_inputs)])
    for g in range(num_gates):
        r = rng.random()
        if r < 0.2:
            gt = rng.choice([GateType.NOT, GateType.BUF])
            fins = [rng.choice(pool)]
        else:
            gt = rng.choice(TWO_IN)
            fins = [rng.choice(pool), rng.choice(pool)]
        pool.append(net.add_gate(f"g{g}", gt, fins))
    net.set_output(pool[-1])
    return net


def _stimulus(net, count, seed):
    sources = [n.name for n in net.nodes.values() if n.is_source()]
    words = random_words(sources, count, seed)
    return vectors_from_words(words, count)


@st.composite
def comb_cases(draw):
    seed = draw(st.integers(0, 10 ** 6))
    net = _random_comb(seed, draw(st.integers(2, 5)),
                       draw(st.integers(1, 14)))
    vecs = _stimulus(net, draw(st.integers(2, 40)), seed + 1)
    return net, vecs, seed


@given(comb_cases())
@SETTINGS
def test_timed_matches_oracle_unit_delays(case):
    net, vecs, _seed = case
    assert timed_transitions(net, vecs, engine="compiled") == \
        timed_transitions(net, vecs, engine="event")


@given(comb_cases())
@SETTINGS
def test_timed_matches_oracle_float_delays(case):
    net, vecs, seed = case
    rng = random.Random(seed + 2)
    delays = {n.name: rng.choice([0.0, 0.1, 0.2, 0.3, 0.5, 1.0, 2.5])
              for n in net.nodes.values() if not n.is_source()}
    assert timed_transitions(net, vecs, delays=delays,
                             engine="compiled") == \
        timed_transitions(net, vecs, delays=delays, engine="event")


def _random_seq(seed):
    """Two latch stages (random enables and inits) between random
    gate layers, with feedback through the latch outputs."""
    rng = random.Random(seed)
    net = Network(f"s{seed}")
    pool = net.add_inputs([f"i{k}" for k in range(3)])

    def add_gates(tag, n):
        for g in range(n):
            gt = rng.choice(TWO_IN + [GateType.NOT])
            k = 1 if gt is GateType.NOT else 2
            pool.append(net.add_gate(
                f"{tag}{g}", gt, [rng.choice(pool) for _ in range(k)]))

    add_gates("a", rng.randint(2, 5))
    net.add_latch(rng.choice(pool), "qA",
                  enable="i0" if rng.random() < 0.5 else None,
                  init=rng.randint(0, 1))
    pool.append("qA")
    add_gates("b", rng.randint(2, 6))
    net.add_latch(rng.choice(pool), "qB",
                  enable=rng.choice(pool[:4])
                  if rng.random() < 0.5 else None,
                  init=rng.randint(0, 1))
    pool.append("qB")
    add_gates("c", rng.randint(1, 4))
    net.set_output(pool[-1])
    return net


@given(st.integers(0, 10 ** 6), st.integers(2, 30))
@SETTINGS
def test_timed_sequential_matches_oracle(seed, cycles):
    net = _random_seq(seed)
    rng = random.Random(seed + 3)
    # Partial vectors: a missing input holds its previous value.
    vecs = [{f"i{k}": rng.getrandbits(1) for k in range(3)
             if rng.random() < 0.8} for _ in range(cycles)]
    assert timed_sequential_transitions(net, vecs,
                                        engine="compiled") == \
        timed_sequential_transitions(net, vecs, engine="event")


def test_partial_combinational_vectors_hold():
    net = _random_comb(7, 3, 8)
    rng = random.Random(8)
    vecs = [{f"i{k}": rng.getrandbits(1) for k in range(3)
             if rng.random() < 0.6} for _ in range(25)]
    assert timed_transitions(net, vecs, engine="compiled") == \
        timed_transitions(net, vecs, engine="event")


def test_engine_selector_validation():
    net = _random_comb(1, 2, 3)
    vecs = _stimulus(net, 4, 0)
    for fn in (timed_transitions, timed_sequential_transitions):
        with pytest.raises(ValueError, match="unknown timed engine"):
            fn(net, vecs, engine="interpreted")
    with pytest.raises(ValueError, match="unknown timed engine"):
        glitch_report(net, num_vectors=4, engine="bogus")


def test_glitch_report_engines_agree():
    net = _random_comb(11, 4, 12)
    a = glitch_report(net, num_vectors=64, seed=2, engine="compiled")
    b = glitch_report(net, num_vectors=64, seed=2, engine="event")
    assert a.timed == b.timed
    assert a.functional == b.functional
    pa = timed_average_power(net, 64, seed=2, engine="compiled")
    pb = timed_average_power(net, 64, seed=2, engine="event")
    assert pa.total == pb.total


def test_timed_program_cache_reuse_and_invalidation():
    net = _random_comb(21, 3, 10)
    prog = get_timed(net).program
    assert get_timed(net).program is prog          # cache hit

    # A different delay map is a different program, same base compile.
    alt = get_timed(net, {"g0": 2.0}).program
    assert alt is not prog
    assert alt.base is prog.base
    assert get_timed(net).program is prog          # variant kept

    # Structural edits through the mutation API invalidate the cache.
    net.add_gate("extra", GateType.NOT, [net.outputs[0]])
    assert get_timed(net).program is not prog

    # An in-place attrs["delay"] edit resolves to a new delay key even
    # though no structural hook fired.
    prog2 = get_timed(net).program
    gate = next(n for n in net.nodes.values() if n.kind == "gate")
    gate.attrs["delay"] = 3.25
    prog3 = get_timed(net).program
    assert prog3 is not prog2
    assert prog3.delay_key != prog2.delay_key


def test_event_simulator_reuses_network_caches():
    net = _random_comb(31, 3, 10)
    s1 = EventSimulator(net)
    s2 = EventSimulator(net)
    # topo order and fanouts are computed once per network revision
    assert s1.order is s2.order
    assert s1.fanouts is s2.fanouts
    net.add_gate("x", GateType.NOT, [net.outputs[0]])
    s3 = EventSimulator(net)
    assert s3.order is not s1.order
