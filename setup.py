"""Setuptools shim so `python setup.py develop` works in offline
environments lacking the `wheel` package (PEP 660 editable installs
need it; `develop` does not)."""
from setuptools import setup

setup()
