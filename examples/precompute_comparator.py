#!/usr/bin/env python
"""Figure 1 of the paper: precomputation applied to a comparator.

Builds the n-bit C > D comparator, wraps it in the sequential
precomputation architecture (LE = C<n-1> XNOR D<n-1> gating the
low-order input registers), verifies cycle-accurate equivalence against
the ungated registered baseline, and measures the power saving as a
function of the width n.
"""

import random

from repro.core.report import format_table
from repro.logic.generators import comparator
from repro.opt.seq.precompute import (precomputed_comparator,
                                      select_precompute_inputs)
from repro.power.activity import sequential_activity
from repro.power.model import power_report
from repro.sim.functional import sequential_transitions


def drive(n, count, seed):
    rng = random.Random(seed)
    vecs = []
    for _ in range(count):
        c, d = rng.getrandbits(n), rng.getrandbits(n)
        v = {f"c{i}": (c >> i) & 1 for i in range(n)}
        v.update({f"d{i}": (d >> i) & 1 for i in range(n)})
        vecs.append(v)
    return vecs


def main() -> None:
    print("Which inputs best predict the comparator output?")
    sel = select_precompute_inputs(comparator(6), 2)
    print(f"  automatic selection on cmp6: {sel} "
          "(the MSB pair, as in Figure 1)\n")

    rows = []
    for n in (4, 8, 16):
        pre = precomputed_comparator(n)
        vecs = drive(n, 500, seed=n)

        # Cycle-accurate check: gated and baseline outputs agree.
        _, tb = sequential_transitions(pre.baseline, vecs)
        _, tg = sequential_transitions(pre.network, vecs)
        out = pre.baseline.outputs[0]
        assert [t[out] for t in tb][1:] == [t[out] for t in tg][1:], \
            "gated design diverged!"

        p_base = power_report(
            pre.baseline, sequential_activity(pre.baseline, vecs)).total
        p_gate = power_report(
            pre.network, sequential_activity(pre.network, vecs)).total
        rows.append([f"cmp{n}", pre.disable_probability,
                     pre.le_literals, p_base * 1e6, p_gate * 1e6,
                     1 - p_gate / p_base])

    print(format_table(
        ["comparator", "P(registers held)", "LE logic (lits)",
         "baseline uW", "precomputed uW", "saving"], rows))
    print("\nThe hold probability is exactly 1/2 (MSBs differ half the "
          "time on\nuniform inputs) and the saving grows with n: the "
          "disabled cone is the\nwhole low-order datapath.")


if __name__ == "__main__":
    main()
