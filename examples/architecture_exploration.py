#!/usr/bin/env python
"""Design-space exploration across abstraction levels.

The survey's closing argument is that power must be attacked at *every*
level.  This walkthrough explores one datapath slice at four levels:

  1. arithmetic architecture (ripple vs lookahead vs carry-select),
  2. number representation for a zero-crossing signal,
  3. memory loop structure (interchange and tiling),
  4. scheduling discipline (greedy list vs force-directed).
"""

from repro.arch.memory import (MemoryHierarchy, loop_access_trace,
                               memory_energy, tiled_access_trace)
from repro.arch.dfg import fir_dfg
from repro.arch.scheduling import (force_directed_schedule,
                                   list_schedule, required_units,
                                   schedule_length)
from repro.core.report import format_table
from repro.logic.generators import (carry_lookahead_adder,
                                    carry_select_adder,
                                    ripple_carry_adder)
from repro.opt.datapath.number_repr import (representation_comparison,
                                            sine_stream)
from repro.power.glitch import glitch_report
from repro.power.model import average_power


def main() -> None:
    # -- 1: adder architectures -----------------------------------------
    rows = []
    for name, make in [("ripple", ripple_carry_adder),
                       ("lookahead", carry_lookahead_adder),
                       ("carry-select", carry_select_adder)]:
        net = make(8)
        rep = average_power(net, 512, seed=1)
        g = glitch_report(net, 96, seed=1)
        rows.append([name, net.depth(), net.num_transistors(),
                     rep.total * 1e6, g.glitch_power_fraction])
    print(format_table(["adder", "depth", "transistors", "power uW",
                        "glitch frac"], rows))
    print("  -> speed is bought with transistors and power\n")

    # -- 2: number representation ----------------------------------------
    signal = sine_stream(4000, amplitude=30, period=40)
    tc, sm, ratio = representation_comparison(signal, 16)
    print(f"zero-crossing signal, 16-bit bus flips: two's complement "
          f"{tc}, sign-magnitude {sm} ({1 - ratio:.0%} fewer)\n")

    # -- 3: memory structure -----------------------------------------------
    h = MemoryHierarchy(buffer_words=64)
    variants = [
        ("column-major", loop_access_trace((64, 64), (1, 0))),
        ("row-major", loop_access_trace((64, 64), (0, 1))),
        ("col-major + 8x8 tiles",
         tiled_access_trace((64, 64), (8, 8), (1, 0))),
    ]
    rows = []
    for label, trace in variants:
        energy, _hits, misses = memory_energy(trace, h,
                                              associative=True)
        rows.append([label, misses, energy * 1e9])
    print(format_table(["loop structure", "misses", "energy nJ"], rows))
    print("  -> interchange or tiling keeps the working set in the "
          "foreground buffer\n")

    # -- 4: scheduling discipline --------------------------------------------
    dfg = fir_dfg(8)
    latency = dfg.critical_path() + 4
    greedy = list_schedule(dfg, {})
    fds = force_directed_schedule(dfg, latency)
    rows = [["greedy list", schedule_length(dfg, greedy),
             required_units(dfg, greedy).get("mul", 0),
             required_units(dfg, greedy).get("add", 0)],
            ["force-directed", schedule_length(dfg, fds),
             required_units(dfg, fds).get("mul", 0),
             required_units(dfg, fds).get("add", 0)]]
    print(format_table(["scheduler", "latency", "multipliers",
                        "adders"], rows))
    print("  -> force-directed scheduling flattens concurrency, "
          "shrinking the allocation\n      (fewer units = less "
          "capacitance)")


if __name__ == "__main__":
    main()
