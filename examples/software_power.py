#!/usr/bin/env python
"""Software power analysis and optimization (Section V of the paper).

Demonstrates the instruction-level methodology end to end:
  1. fit a Tiwari-style instruction power model against the ISS,
  2. show that faster code is lower-energy code (register pressure),
  3. cheaper instruction selection (strength reduction, MAC packing),
  4. cold scheduling: big win on the DSP, noise on the big CPU.
"""

from repro.core.report import format_table
from repro.sw.compile import (linear_scan_allocate, peephole_mac,
                              strength_reduce)
from repro.sw.cpu import CPU, big_cpu_profile, dsp_profile
from repro.sw.power_model import fit_instruction_model
from repro.sw.programs import (dot_product, fir_kernel, mixed_block,
                               scale_by_constant)
from repro.sw.schedule import cold_schedule, control_path_switching


def main() -> None:
    dsp = CPU(dsp_profile())
    big = CPU(big_cpu_profile())

    # -- 1: model fitting ------------------------------------------------
    print("fitting the instruction-level power model on the DSP ...")
    model = fit_instruction_model(dsp, repetitions=100)
    prog, mem, _ = dot_product(6)
    alloc = linear_scan_allocate(prog, 8)
    err = model.prediction_error(dsp, alloc)
    print(f"  base(add) = {model.base['add']:.2f} nJ, "
          f"overhead(add,ld) = {model.pair_overhead('add', 'ld'):.2f} "
          f"nJ")
    print(f"  whole-program prediction error: {err:.2%}\n")

    # -- 2: register allocation ------------------------------------------
    rows = []
    for regs in (3, 4, 6, 12):
        res = big.run(linear_scan_allocate(prog, regs),
                      memory=dict(mem))
        rows.append([f"{regs} registers", res.cycles, res.energy])
    print(format_table(["allocation", "cycles", "energy nJ"], rows))
    print("  -> faster code IS lower-energy code\n")

    # -- 3: instruction selection ------------------------------------------
    sp, smem, _ = scale_by_constant(6, 8)
    r_mul = big.run(linear_scan_allocate(sp, 8), memory=dict(smem))
    r_shl = big.run(linear_scan_allocate(strength_reduce(sp), 8),
                    memory=dict(smem))
    print(f"scale-by-8 kernel : mul {r_mul.energy:.1f} nJ -> "
          f"shl {r_shl.energy:.1f} nJ")

    fp, fmem, _ = fir_kernel(8)
    r_plain = dsp.run(linear_scan_allocate(fp, 8), memory=dict(fmem))
    r_mac = dsp.run(linear_scan_allocate(peephole_mac(fp), 8),
                    memory=dict(fmem))
    print(f"fir8 on the DSP   : mul+add {r_plain.energy:.1f} nJ -> "
          f"mac {r_mac.energy:.1f} nJ\n")

    # -- 4: cold scheduling ---------------------------------------------------
    prog_m = mixed_block()
    cold = cold_schedule(prog_m)
    rows = []
    for label, cpu in [("small DSP", dsp), ("big CPU", big)]:
        orig, opt = cpu.run(prog_m), cpu.run(cold)
        rows.append([label,
                     control_path_switching(orig.opcode_trace),
                     control_path_switching(opt.opcode_trace),
                     orig.energy, opt.energy,
                     f"{1 - opt.energy / orig.energy:.1%}"])
    print(format_table(["cpu", "opcode flips before", "after",
                        "E before nJ", "E after nJ", "saving"], rows))
    print("  -> instruction order matters on the DSP, barely on the "
          "big CPU\n     (the [40] vs [46] contrast the paper "
          "describes)")


if __name__ == "__main__":
    main()
