#!/usr/bin/env python
"""Behavioral synthesis for low power (Section IV of the paper).

Walks an FIR filter through the architecture-level toolkit:
  1. schedule under resource constraints,
  2. bind operations to units minimizing operand switching,
  3. pick module variants (fast vs low-power) for fixed throughput,
  4. transform (tree-height reduction) and scale the supply voltage,
  5. choose the memory loop order for the coefficient array,
  6. synthesize the bound design to a gate-level datapath and check it
     computes the same answers (the RTL back end).
"""

from repro.arch.allocation import bind_operations, profile_operands
from repro.arch.dfg import chained_sum_dfg, fir_dfg
from repro.arch.memory import best_loop_order, MemoryHierarchy
from repro.arch.power_models import default_module_library, pfa_power
from repro.arch.scheduling import list_schedule, schedule_length
from repro.arch.transforms import (transform_and_scale,
                                   tree_height_reduction)
from repro.core.report import format_table


def main() -> None:
    dfg = fir_dfg(8)
    print(f"workload: {dfg} (critical path "
          f"{dfg.critical_path()} steps)\n")

    # -- 1/2: schedule + binding -----------------------------------------
    sched = list_schedule(dfg, {"mul": 2, "add": 2})
    print(f"list schedule with 2 mul + 2 add units: "
          f"{schedule_length(dfg, sched)} control steps")
    traces = profile_operands(dfg, num_samples=64, seed=1)
    naive = bind_operations(dfg, sched, "naive", traces)
    lowp = bind_operations(dfg, sched, "low-power", traces)
    print(f"binding operand-switching cost: naive="
          f"{naive.switched_capacitance:.1f}  low-power="
          f"{lowp.switched_capacitance:.1f}\n")

    # -- 3: module selection ----------------------------------------------
    lib = default_module_library()
    rows = []
    for label, mods in [
            ("all-fast", {"add": lib.fastest("add"),
                          "mul": lib.fastest("mul")}),
            ("low-power", {"add": lib.lowest_power("add"),
                           "mul": lib.lowest_power("mul")})]:
        delays = {"add": mods["add"].delay, "mul": mods["mul"].delay,
                  "input": 0, "const": 0, "output": 0}
        s = list_schedule(dfg, {"add": 2, "mul": 2}, delays)
        rows.append([label, schedule_length(dfg, s, delays),
                     pfa_power(dfg, s, mods) * 1e6])
    print(format_table(["modules", "schedule length", "power uW"],
                       rows))

    # -- 4: transformation + voltage scaling --------------------------------
    chain = chained_sum_dfg(8)
    thr = tree_height_reduction(chain)
    res = transform_and_scale(chain, thr)
    print(f"\ntree-height reduction on an 8-term sum: critical path "
          f"{res.csteps_before} -> {res.csteps_after}")
    print(f"  scale V_DD {res.vdd_ref:.1f} V -> {res.vdd:.2f} V at "
          f"fixed throughput")
    print(f"  power ratio {res.power_ratio:.2f} "
          f"({res.saving:.0%} saving, capacitance x{res.cap_ratio:.2f})")

    # -- 5: memory loop order ----------------------------------------------
    best, table = best_loop_order((32, 32),
                                  MemoryHierarchy(buffer_words=64))
    worst = max(table.values())
    print(f"\ncoefficient-array loop order: best {best} uses "
          f"{table[best] / worst:.0%} of the worst order's memory "
          "energy")

    # -- 6: RTL synthesis ------------------------------------------------------
    import random

    from repro.arch.dfg import fir_dfg as _fir
    from repro.arch.rtl import run_iteration, synthesize_datapath

    small = _fir(3)
    sched_small = list_schedule(small, {"add": 1, "mul": 1})
    bind_small = bind_operations(small, sched_small, "low-power")
    rtl = synthesize_datapath(small, sched_small, bind_small.binding,
                              width=4)
    print(f"\nRTL back end: fir3 -> {rtl.network.num_gates()} gates, "
          f"{rtl.num_registers} shared registers, "
          f"{rtl.latency}-step controller")
    rng = random.Random(1)
    ints = {n: rng.randrange(16) for n in small.inputs()}
    got = run_iteration(rtl, ints)["y"]
    ref = int(small.evaluate({k: float(v)
                              for k, v in ints.items()})["y"]) & 15
    print(f"  sample check: hardware computes {got}, DFG says {ref} "
          f"({'match' if got == ref else 'MISMATCH'})")


if __name__ == "__main__":
    main()
