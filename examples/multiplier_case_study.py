#!/usr/bin/env python
"""Case study: the low-power multiplier of [25] (Lemonds &
Mahant-Shetti), rebuilt with this framework.

[25] reduced a 16x16 multiplier's power with *transition reduction
circuitry* — delay elements that align converging partial-product
paths.  We reproduce the design trajectory on an 6x6 array multiplier:

  1. measure glitch (spurious-transition) power in the raw array,
  2. add minimum-size transition-reduction buffers (path balancing),
  3. compare against a Wallace-style balanced reduction tree,
  4. map the best candidate to the cell library for power.

Power numbers are from the event-driven (glitch-inclusive) simulator.
"""

from repro.core.report import format_table
from repro.library.cells import generic_library
from repro.logic.generators import array_multiplier, wallace_multiplier
from repro.opt.logic.balance import balance_paths
from repro.opt.logic.mapping import tech_map
from repro.power.glitch import glitch_report, timed_average_power
from repro.sim.functional import verify_equivalence

N = 6
VECTORS = 96


def measure(net, label, rows):
    g = glitch_report(net, num_vectors=VECTORS, seed=7)
    p = timed_average_power(net, num_vectors=VECTORS, seed=7)
    rows.append([label, net.num_gates(), net.depth(),
                 g.glitch_power_fraction, p.total * 1e6])
    return p.total


def main() -> None:
    rows = []

    raw = array_multiplier(N)
    p_raw = measure(raw, "array (raw)", rows)

    balanced = array_multiplier(N)
    res = balance_paths(balanced)          # min-size delay buffers
    assert verify_equivalence(raw, balanced, 256)
    p_bal = measure(balanced,
                    f"array + {res.buffers_added} delay buffers", rows)

    wallace = wallace_multiplier(N)
    assert verify_equivalence(raw, wallace, 256)
    measure(wallace, "wallace tree", rows)

    print(format_table(
        ["design", "gates", "depth", "glitch power frac",
         "timed power uW"], rows))
    print(f"\ntransition-reduction circuitry: "
          f"{1 - p_bal / p_raw:+.1%} net power "
          "(glitches removed, buffer capacitance paid)\n")

    # -- technology mapping of the balanced design ---------------------
    lib = generic_library()
    mapped = tech_map(balanced, lib, "power", seed=1)
    assert verify_equivalence(raw, mapped.mapped, 256)
    top = sorted(mapped.cells_used.items(), key=lambda kv: -kv[1])[:5]
    print(f"power-mapped: area {mapped.total_area:.0f}, "
          f"top cells: " +
          ", ".join(f"{c} x{n}" for c, n in top))


if __name__ == "__main__":
    main()
