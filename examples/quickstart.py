#!/usr/bin/env python
"""Quickstart: build a netlist, analyze its power, run the low-power
flow, and inspect what every stage bought.

Covers the core API surface:
  * circuit generators and hand-built networks,
  * the three activity estimators,
  * the Eqn-1 power model and report,
  * the combinational low-power flow (don't-cares -> extraction ->
    power-driven technology mapping -> sizing).
"""

from repro.core.flow import low_power_flow
from repro.logic.gates import GateType
from repro.logic.generators import array_multiplier, random_logic
from repro.logic.netlist import Network
from repro.power.activity import (activity_from_simulation,
                                  signal_probability_exact,
                                  signal_probability_propagation)
from repro.power.glitch import glitch_report
from repro.power.model import average_power


def main() -> None:
    # -- 1. Build a circuit by hand -----------------------------------
    net = Network("demo")
    net.add_inputs(["a", "b", "c"])
    net.add_gate("ab", GateType.AND, ["a", "b"])
    net.add_gate("f", GateType.OR, ["ab", "c"])
    net.set_output("f")
    print("hand-built:", net)
    print("f(1,1,0) =", net.evaluate({"a": 1, "b": 1, "c": 0})["f"])

    # -- 2. Analyze power of a generated multiplier --------------------
    mult = array_multiplier(4)
    print("\n4x4 array multiplier:", mult)
    report = average_power(mult, num_vectors=1024)
    print(report.summary())

    g = glitch_report(mult, num_vectors=128)
    print(f"glitch power fraction  : {g.glitch_power_fraction:.1%} "
          "(the paper's 10-40% band)")

    # -- 3. Compare the three activity estimators ----------------------
    probs_fast = signal_probability_propagation(net)
    probs_exact = signal_probability_exact(net)
    act_sim, _ = activity_from_simulation(net, num_vectors=4096)
    print("\nestimators on node 'f':")
    print(f"  propagation P(f)={probs_fast['f']:.4f}   "
          f"exact P(f)={probs_exact['f']:.4f}   "
          f"simulated activity={act_sim['f']:.4f}")

    # -- 4. Run the low-power flow -------------------------------------
    target = random_logic(8, 30, seed=9)
    print(f"\nrunning the low-power flow on {target} ...")
    result = low_power_flow(target, num_vectors=512)
    print(result.summary())
    print(f"net power saving: {result.total_saving:.1%}")


if __name__ == "__main__":
    main()
