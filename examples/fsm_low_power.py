#!/usr/bin/env python
"""Sequential low power: state encoding + self-loop clock gating.

Takes a KISS-format FSM, compares encodings (natural, greedy, annealed,
one-hot) on register switching and synthesized power, then applies
Benini/De Micheli self-loop clock gating on top of the best encoding
and reports the combined saving including clock-tree power.
"""

import random

from repro.core.report import format_table
from repro.opt.seq.encoding import (encode_anneal, encode_greedy,
                                    encode_natural, encode_onehot,
                                    evaluate_encoding)
from repro.opt.seq.gated_clock import clock_power, self_loop_clock_gating
from repro.opt.seq.stg import read_kiss
from repro.power.activity import sequential_activity
from repro.power.model import power_report
from repro.sim.functional import sequential_transitions

# A bursty protocol controller: mostly idle, occasionally walks a
# 6-state handshake.  Completely specified (2 inputs).
KISS = """
.i 2
.o 1
.r idle
11 idle  req1  0
0- idle  idle  0
10 idle  idle  0
11 req1  req2  0
0- req1  idle  0
10 req1  req1  0
11 req2  xfer  0
0- req2  idle  0
10 req2  req2  0
11 xfer  ack1  1
0- xfer  xfer  1
10 xfer  xfer  1
11 ack1  ack2  1
0- ack1  ack1  1
10 ack1  ack1  1
11 ack2  idle  0
0- ack2  ack2  0
10 ack2  ack2  0
.e
"""


def main() -> None:
    stg = read_kiss(KISS)
    print(f"FSM: {stg}")
    print(f"self-loop probability (uniform inputs): "
          f"{stg.self_loop_probability():.2f}\n")

    # -- encoding comparison -------------------------------------------
    rows = []
    encoders = [("natural", encode_natural(stg)),
                ("greedy", encode_greedy(stg)),
                ("anneal", encode_anneal(stg, iterations=3000, seed=1)),
                ("one-hot", encode_onehot(stg))]
    best = None
    for name, enc in encoders:
        res = evaluate_encoding(stg, enc, sequence_length=1000, seed=2)
        rows.append([name, res.register_cost, res.literals,
                     res.total_power * 1e6])
        if best is None or res.register_cost < best[1].register_cost:
            best = (name, res, enc)
    print(format_table(["encoding", "FF transitions/cycle",
                        "logic literals", "power uW"], rows))
    print(f"\nbest encoding on register switching: {best[0]}\n")

    # -- clock gating on top ---------------------------------------------
    # Drive with a bursty, idle-dominated request pattern (x0·x1 is the
    # "advance" condition): gating pays when the machine mostly idles;
    # with uniform inputs the Fa logic's own power roughly breaks even.
    gate = self_loop_clock_gating(stg, best[2])
    rng = random.Random(3)
    vecs = [{"x0": int(rng.random() < 0.25),
             "x1": int(rng.random() < 0.25)}
            for _ in range(1500)]
    _, tb = sequential_transitions(gate.baseline, vecs)
    _, tg = sequential_transitions(gate.network, vecs)
    assert [t["z0"] for t in tb] == [t["z0"] for t in tg], \
        "clock gating changed the FSM behaviour!"
    enable_rate = sum(t["_fa_n"] for t in tg) / len(tg)

    p_base = power_report(
        gate.baseline, sequential_activity(gate.baseline, vecs)).total \
        + clock_power(gate.baseline, {})
    p_gate = power_report(
        gate.network, sequential_activity(gate.network, vecs)).total \
        + clock_power(gate.network,
                      {l.output: enable_rate
                       for l in gate.network.latches})
    print(f"clock gating: activation Fa covers "
          f"{gate.activation_probability:.0%} of cycles "
          f"({gate.fa_literals} literals of gating logic)")
    print(f"measured enable rate : {enable_rate:.2f}")
    print(f"power incl. clock    : {p_base * 1e6:.2f} uW -> "
          f"{p_gate * 1e6:.2f} uW "
          f"({1 - p_gate / p_base:+.1%} saving)")


if __name__ == "__main__":
    main()
