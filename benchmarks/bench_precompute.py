"""E12 — Precomputation (claim C12, Figure 1 of the paper) and guarded
evaluation ([44]).

The n-bit comparator of Figure 1, precomputed on its MSB pair: the
low-order registers are disabled with probability 1/2 on uniform
inputs, and the saving grows with n.  Guarded evaluation isolates the
deselected cone of a mux with the same unobservability argument.
"""

import random

from repro.bench.profiling import (PHASE_EST, PHASE_SIM, PHASE_SYNTH,
                                   phase)
from repro.core.report import format_table
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.opt.seq.guarded import guarded_evaluation
from repro.opt.seq.precompute import precomputed_comparator
from repro.power.activity import (activity_from_simulation,
                                  sequential_activity)
from repro.power.model import power_report
from repro.sim.functional import (sequential_transitions,
                                  verify_equivalence)

from conftest import bench_params, emit, scaled

CLAIMS = ("C12",)


def comparator_rows(sizes=(4, 8, 16), cycles=400):
    rows = []
    for n in sizes:
        with phase(PHASE_SYNTH):
            pre = precomputed_comparator(n)
        rng = random.Random(n)
        vecs = []
        for _ in range(cycles):
            c, d = rng.getrandbits(n), rng.getrandbits(n)
            v = {f"c{i}": (c >> i) & 1 for i in range(n)}
            v.update({f"d{i}": (d >> i) & 1 for i in range(n)})
            vecs.append(v)
        with phase(PHASE_SIM):
            _, tb = sequential_transitions(pre.baseline, vecs)
            _, tg = sequential_transitions(pre.network, vecs)
        out = pre.baseline.outputs[0]
        assert [t[out] for t in tb][1:] == [t[out] for t in tg][1:]
        with phase(PHASE_EST):
            pb = power_report(
                pre.baseline,
                sequential_activity(pre.baseline, vecs)).total
            pg = power_report(
                pre.network,
                sequential_activity(pre.network, vecs)).total
        rows.append([f"cmp{n}", pre.disable_probability,
                     pre.le_literals, pb * 1e6, pg * 1e6, 1 - pg / pb])
    return rows


def _deep_cone(net, prefix, inputs):
    prods = [net.add_gate(f"{prefix}p{i}", GateType.AND,
                          [inputs[2 * i], inputs[2 * i + 1]])
             for i in range(4)]
    x1 = net.add_gate(f"{prefix}x1", GateType.XOR, [prods[0], prods[1]])
    x2 = net.add_gate(f"{prefix}x2", GateType.XOR, [prods[2], prods[3]])
    x3 = net.add_gate(f"{prefix}x3", GateType.XOR, [x1, x2])
    o1 = net.add_gate(f"{prefix}o1", GateType.OR,
                      [inputs[0], inputs[3]])
    o2 = net.add_gate(f"{prefix}o2", GateType.XNOR, [o1, inputs[5]])
    a1 = net.add_gate(f"{prefix}a1", GateType.AND, [o2, inputs[6]])
    return net.add_gate(f"{prefix}out", GateType.XOR, [x3, a1])


def _mux_of_cones():
    net = Network("guard")
    net.add_inputs(["s"] + [f"a{k}" for k in range(8)] +
                   [f"b{k}" for k in range(8)])
    left = _deep_cone(net, "L", [f"a{k}" for k in range(8)])
    right = _deep_cone(net, "R", [f"b{k}" for k in range(8)])
    net.add_gate("m", GateType.MUX, ["s", left, right])
    net.set_output("m")
    return net


def combinational_rows(vectors=2048, verify_vectors=256):
    from repro.opt.seq.precompute import combinational_precompute
    from repro.logic.generators import comparator

    rows = []
    for label, probs in [("uniform MSBs", {}),
                         ("sticky MSBs (p=.95/.05)",
                          {"c7": 0.95, "d7": 0.05})]:
        with phase(PHASE_SYNTH):
            pre = combinational_precompute(comparator(8), ["c7", "d7"],
                                           input_probs=probs)
        assert verify_equivalence(pre.baseline, pre.network,
                                  verify_vectors)
        with phase(PHASE_SIM):
            a0, _ = activity_from_simulation(pre.baseline, vectors,
                                             seed=2, input_probs=probs)
            a1, _ = activity_from_simulation(pre.network, vectors,
                                             seed=2, input_probs=probs)
        p0 = power_report(pre.baseline, a0).total
        p1 = power_report(pre.network, a1).total
        rows.append([label, pre.disable_probability, p0 * 1e6,
                     p1 * 1e6, 1 - p1 / p0])
    return rows


def guarded_rows(vectors=2048, verify_vectors=512):
    rows = []
    for p_sel, label in [(0.5, "toggling select (declined)"),
                         (0.95, "skewed select")]:
        ref = _mux_of_cones()
        net = _mux_of_cones()
        probs = {"s": p_sel}
        with phase(PHASE_SYNTH):
            res = guarded_evaluation(net, input_probs=probs)
        assert verify_equivalence(ref, net, verify_vectors)
        with phase(PHASE_SIM):
            a0, _ = activity_from_simulation(ref, vectors, seed=5,
                                             input_probs=probs)
            a1, _ = activity_from_simulation(net, vectors, seed=5,
                                             input_probs=probs)
        p0 = power_report(ref, a0).total
        p1 = power_report(net, a1).total
        rows.append([label, res.cones_isolated, p0 * 1e6, p1 * 1e6,
                     1 - p1 / p0])
    return rows


def run(params=None):
    quick, _seed = bench_params(params)
    cycles = scaled(400, quick, floor=100)
    act_vectors = scaled(2048, quick, floor=256)
    sizes = (4, 8) if quick else (4, 8, 16)
    rows = comparator_rows(sizes=sizes, cycles=cycles)
    crows = combinational_rows(vectors=act_vectors,
                               verify_vectors=scaled(256, quick,
                                                     floor=128))
    grows = guarded_rows(vectors=act_vectors,
                         verify_vectors=scaled(512, quick, floor=128))
    metrics = {}
    for (label, p_dis, _lits, _pb, _pg, saving) in rows:
        metrics[f"{label}.disable_probability"] = p_dis
        metrics[f"{label}.saving"] = saving
    for key, row in zip(("uniform", "sticky"), crows):
        metrics[f"comb.{key}.disable_probability"] = row[1]
        metrics[f"comb.{key}.saving"] = row[4]
    for key, row in zip(("toggling", "skewed"), grows):
        metrics[f"guard.{key}.cones"] = row[1]
        metrics[f"guard.{key}.saving"] = row[4]
    return {"metrics": metrics, "vectors": cycles}


def bench_precompute(benchmark):
    rows = benchmark.pedantic(comparator_rows, rounds=2, iterations=1)
    emit("E12a: Figure-1 precomputed comparator", format_table(
        ["circuit", "P(disable)", "LE literals", "base uW", "gated uW",
         "saving"], rows))
    for row in rows:
        assert abs(row[1] - 0.5) < 1e-6     # Fig. 1: exactly 1/2
    savings = [row[5] for row in rows]
    assert savings[-1] > savings[0]          # grows with n
    assert savings[-1] > 0.2

    crows = combinational_rows()
    emit("E12c: combinational precomputation", format_table(
        ["predictor stats", "P(disable)", "plain uW", "precomp uW",
         "saving"], crows))
    uniform, sticky = crows
    # Uniform predictor toggling eats the saving; a sticky predictor
    # (the transparent-latch use case of [1]) wins clearly.
    assert sticky[4] > 0.3
    assert sticky[4] > uniform[4]

    grows = guarded_rows()
    emit("E12b: guarded evaluation (operand isolation)", format_table(
        ["workload", "cones", "plain uW", "guarded uW", "saving"],
        grows))
    toggling, skewed = grows
    # The optimizer declines the toggling-select case (shielding would
    # add power) and wins clearly on the idle leg of the skewed case.
    assert toggling[1] == 0 and abs(toggling[4]) < 0.02
    assert skewed[1] >= 1 and skewed[4] > 0.15
