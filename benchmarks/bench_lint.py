"""Lint-engine gate: exact diagnostic counts and rule timings.

The static analyzer (repro.analysis) is deterministic: on a fixed
suite of generator circuits every rule must fire an exact number of
times, the self-audit must hold (zero error-severity findings on
well-formed circuits), and each injected defect class must trip
exactly its rule.  These are contracts, not tolerances — the CI
compares this bench's metrics against the baseline at ``--tol 0``.
Wall-clock metrics carry the ``_ms`` suffix and are exempt.

The circuit suite is fixed (no ``--quick`` scaling): diagnostic
counts must be identical between smoke runs and full runs.
"""

import time

from repro.analysis import LintConfig, lint_network
from repro.bench.profiling import PHASE_OPT, phase
from repro.core.report import format_table
from repro.logic import generators as G
from repro.logic.gates import GateType
from repro.logic.netlist import Network

from conftest import bench_params, emit

CLAIMS = ()

#: Fixed audit suite — sizes never scale with --quick.
SUITE = (
    ("rca8", lambda: G.ripple_carry_adder(8)),
    ("cla8", lambda: G.carry_lookahead_adder(8)),
    ("mult4", lambda: G.array_multiplier(4)),
    ("muxtree3", lambda: G.mux_tree(3)),
    ("parity16", lambda: G.parity_tree(16)),
    ("counter8", lambda: G.counter(8)),
    ("regfile44", lambda: G.register_file(4, 4)),
)


def _mux_gated_net():
    """A latch gated by a hazard-prone (MUX-shaped) enable."""
    from repro.logic.cube import Cube
    from repro.logic.sop import Cover

    net = Network("gated")
    for n in ("s", "a", "b", "d"):
        net.add_input(n)
    net.add_sop("en", ["s", "a", "b"],
                Cover(3, [Cube.from_string("01-"),
                          Cube.from_string("1-1")]))
    net.add_latch("d", "q", enable="en")
    net.set_output("q")
    return net


def _injections():
    """(name, network, expected rule) defect triples."""
    cyclic = Network("cyclic")
    cyclic.add_input("a")
    cyclic.add_gate("x", GateType.AND, ["a", "y"])
    cyclic.add_gate("y", GateType.BUF, ["x"])
    cyclic.set_output("x")

    undriven = Network("undriven")
    undriven.add_input("a")
    undriven.add_gate("g", GateType.AND, ["a", "ghost"])
    undriven.set_output("g")

    bad_delay = Network("bad_delay")
    bad_delay.add_input("a")
    bad_delay.add_gate("g", GateType.NOT, ["a"])
    bad_delay.nodes["g"].attrs["delay"] = -1.0
    bad_delay.set_output("g")

    return (("cycle", cyclic, "combinational-cycle"),
            ("undriven", undriven, "undriven-net"),
            ("bad_delay", bad_delay, "malformed-delay"),
            ("gating", _mux_gated_net(), "gating-hazard"))


def lint_exercise(seed=0):
    config = LintConfig(hot_net_top=5)
    severities = {"error": 0, "warning": 0, "info": 0}
    rule_counts = {}
    rows = []
    start = time.perf_counter()
    with phase(PHASE_OPT):
        for name, build in SUITE:
            report = lint_network(build(), config=config)
            sev = report.severity_counts()
            for key in severities:
                severities[key] += sev[key]
            for rule, count in report.counts().items():
                rule_counts[rule] = rule_counts.get(rule, 0) + count
            rows.append([name, sev["error"], sev["warning"],
                         sev["info"], len(report.skipped_rules)])
    suite_ms = (time.perf_counter() - start) * 1e3

    injected_ok = 0
    start = time.perf_counter()
    with phase(PHASE_OPT):
        for _name, net, expected in _injections():
            report = lint_network(net, config=config)
            if any(d.rule == expected for d in report.diagnostics):
                injected_ok += 1
    inject_ms = (time.perf_counter() - start) * 1e3

    metrics = {
        "suite_circuits": float(len(SUITE)),
        "errors_total": float(severities["error"]),
        "warnings_total": float(severities["warning"]),
        "info_total": float(severities["info"]),
        "injected_defects": float(len(_injections())),
        "injected_detected": float(injected_ok),
        "lint_suite_ms": suite_ms,
        "lint_inject_ms": inject_ms,
    }
    for rule, count in sorted(rule_counts.items()):
        metrics["diags_" + rule.replace("-", "_")] = float(count)
    return metrics, rows


def run(params=None):
    _quick, seed = bench_params(params)
    metrics, _rows = lint_exercise(seed=seed)
    return {"metrics": metrics, "vectors": 0}


def bench_lint(benchmark):
    metrics, rows = benchmark.pedantic(lint_exercise, rounds=1,
                                       iterations=1)
    emit("lint: per-circuit severity counts of the audit suite",
         format_table(["circuit", "errors", "warnings", "info",
                       "skipped"], rows))
    # self-audit: every generator circuit is error-free
    assert metrics["errors_total"] == 0.0
    # every injected defect class trips its rule
    assert metrics["injected_detected"] == metrics["injected_defects"]
    # the hazard rule sees the mux tree's selector hazards
    assert metrics["diags_static_hazard"] >= 7.0
    assert metrics["diags_hot_net"] == 5.0 * len(SUITE)
