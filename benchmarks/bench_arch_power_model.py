"""E14 — Architecture-level power model fidelity (claim C14).

Paper (§IV-A): activity-aware black-box capacitance models ([21]/[22])
are more accurate than white-noise (UWN/PFA) models, especially away
from the white-noise operating point.  Ground truth: gate-level
bit-parallel simulation of the module netlists.
"""

import random

from repro.arch.power_models import characterize_module, \
    measure_switched_cap
from repro.bench.profiling import PHASE_EST, PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.generators import array_multiplier, ripple_carry_adder

from conftest import bench_params, emit, scaled

CLAIMS = ("C14",)


def model_fidelity_rows(vectors=256, seed=1):
    rows = []
    for name, net in [("rca8", ripple_carry_adder(8)),
                      ("mult4", array_multiplier(4))]:
        with phase(PHASE_EST):
            ch = characterize_module(net, "op", name,
                                     num_vectors=vectors, seed=seed)
        rng = random.Random(42)
        # Validation stream at low activity (h ~ 0.1), unseen during
        # characterization seeds.
        pis = list(net.inputs)
        vectors_list = []
        prev = {pi: rng.getrandbits(1) for pi in pis}
        vectors_list.append(dict(prev))
        flips = 0
        for _ in range(vectors - 1):
            cur = {}
            for pi in pis:
                if rng.random() < 0.8:
                    cur[pi] = prev[pi]
                else:
                    cur[pi] = rng.getrandbits(1)
                flips += cur[pi] ^ prev[pi]
            vectors_list.append(cur)
            prev = cur
        h = flips / ((vectors - 1) * len(pis))
        with phase(PHASE_SIM):
            measured = measure_switched_cap(net, vectors_list)
        err_uwn = ch.prediction_error(h, measured, "uwn")
        err_bb = ch.prediction_error(h, measured, "blackbox")
        rows.append([name, h, measured, ch.module.cap_per_op,
                     ch.module.cap_base + ch.module.cap_slope * h,
                     err_uwn, err_bb])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(256, quick, floor=64)
    rows = model_fidelity_rows(vectors=vectors, seed=seed + 1)
    metrics = {}
    for name, h, measured, _uwn_pred, _bb_pred, e_uwn, e_bb in rows:
        metrics[f"{name}.activity"] = h
        metrics[f"{name}.measured_cap"] = measured
        metrics[f"{name}.err_uwn"] = e_uwn
        metrics[f"{name}.err_blackbox"] = e_bb
    return {"metrics": metrics, "vectors": vectors}


def bench_arch_power_model(benchmark):
    rows = benchmark.pedantic(model_fidelity_rows, rounds=2,
                              iterations=1)
    emit("E14: module power model fidelity at low input activity",
         format_table(["module", "h", "measured cap", "UWN pred",
                       "black-box pred", "UWN err", "BB err"], rows))
    for row in rows:
        assert row[6] < row[5], \
            f"{row[0]}: black-box not better ({row[6]} vs {row[5]})"
        assert row[6] < 0.35
