"""E14 — Architecture-level power model fidelity (claim C14).

Paper (§IV-A): activity-aware black-box capacitance models ([21]/[22])
are more accurate than white-noise (UWN/PFA) models, especially away
from the white-noise operating point.  Ground truth: gate-level
bit-parallel simulation of the module netlists.
"""

import random

from repro.arch.power_models import characterize_module, \
    measure_switched_cap
from repro.core.report import format_table
from repro.logic.generators import array_multiplier, ripple_carry_adder

from conftest import emit


def model_fidelity_rows():
    rows = []
    for name, net in [("rca8", ripple_carry_adder(8)),
                      ("mult4", array_multiplier(4))]:
        ch = characterize_module(net, "op", name, num_vectors=256,
                                 seed=1)
        rng = random.Random(42)
        # Validation stream at low activity (h ~ 0.1), unseen during
        # characterization seeds.
        pis = list(net.inputs)
        vectors = []
        prev = {pi: rng.getrandbits(1) for pi in pis}
        vectors.append(dict(prev))
        flips = 0
        for _ in range(255):
            cur = {}
            for pi in pis:
                if rng.random() < 0.8:
                    cur[pi] = prev[pi]
                else:
                    cur[pi] = rng.getrandbits(1)
                flips += cur[pi] ^ prev[pi]
            vectors.append(cur)
            prev = cur
        h = flips / (255 * len(pis))
        measured = measure_switched_cap(net, vectors)
        err_uwn = ch.prediction_error(h, measured, "uwn")
        err_bb = ch.prediction_error(h, measured, "blackbox")
        rows.append([name, h, measured, ch.module.cap_per_op,
                     ch.module.cap_base + ch.module.cap_slope * h,
                     err_uwn, err_bb])
    return rows


def bench_arch_power_model(benchmark):
    rows = benchmark.pedantic(model_fidelity_rows, rounds=2,
                              iterations=1)
    emit("E14: module power model fidelity at low input activity",
         format_table(["module", "h", "measured cap", "UWN pred",
                       "black-box pred", "UWN err", "BB err"], rows))
    for row in rows:
        assert row[6] < row[5], \
            f"{row[0]}: black-box not better ({row[6]} vs {row[5]})"
        assert row[6] < 0.35
