"""Ablation A7 — Word-parallel compiled timed simulation.

The compiled time-wheel engine (``repro.sim.timed``) must be (a)
bit-identical, per node, to the event-driven oracle on combinational,
float-delay and clocked-sequential workloads, (b) at least 5x faster
than the oracle on the 500+-node circuit every balance / retiming loop
re-simulates, and (c) safely cached: a structural edit must recompile
the timed program (a stale one would corrupt every glitch estimate).

Deterministic gating metrics: per-circuit node-level count mismatches
(always 0), a checksum of the per-node transition counts (any change
in timed semantics or lowering shows up here), and the recompile count
over an edit sequence.  Wall-clock metrics (``*_ms``) and speedup
ratios (``*_x``) are volatile and exempt from drift gating.
"""

import random
import time
import zlib

from repro.bench.profiling import PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.logic.generators import array_multiplier, ripple_carry_adder
from repro.sim.event import (timed_sequential_transitions,
                             timed_transitions)
from repro.sim.timed import get_timed
from repro.sim.vectors import random_words, vectors_from_words

from conftest import bench_params, emit, scaled

CLAIMS = ()


def _float_delays(net, seed=4):
    """Non-uniform transport delays exercising the general time wheel
    (path-dependent float sums, zero-delay delta cycles)."""
    rng = random.Random(seed)
    return {n.name: rng.choice([0.0, 0.1, 0.2, 0.5, 1.0, 1.0, 2.5])
            for n in net.nodes.values() if not n.is_source()}


CIRCUITS = [
    # name, make, delays(net) or None
    ("mult12", lambda: array_multiplier(12), None),       # 576 nodes
    ("rca32", lambda: ripple_carry_adder(32), None),
    ("mult6_float", lambda: array_multiplier(6), _float_delays),
]


def _checksum(counts):
    """Deterministic digest of per-node transition counts."""
    acc = 0
    for name, c in sorted(counts.items()):
        acc = (acc * 1000003 + zlib.crc32(name.encode()) + c) % (1 << 40)
    return acc


def _seq_pipeline(width=6):
    """Registered XOR cascade into an AND funnel — glitchy logic with
    latch enables, for the clocked-sequential exactness check."""
    net = Network("tsq")
    ins = net.add_inputs([f"i{k}" for k in range(width + 1)])
    noisy = ins[0]
    for k in range(1, width):
        noisy = net.add_gate(f"x{k}", GateType.XOR, [noisy, ins[k]])
    net.add_latch(noisy, "nq", enable=ins[width], init=1)
    acc = "nq"
    for k in range(width):
        acc = net.add_gate(f"a{k}", GateType.AND, [acc, ins[k]])
    net.add_latch(acc, "oq")
    net.set_output(net.add_gate("o", GateType.BUF, ["oq"]))
    return net


def timed_rows(vectors=256, seed=4, repeats=3):
    rows = []
    for name, make, delay_fn in CIRCUITS:
        net = make()
        delays = delay_fn(net) if delay_fn else None
        sources = [n.name for n in net.nodes.values() if n.is_source()]
        words = random_words(sources, vectors, seed)
        vecs = vectors_from_words(words, vectors)

        t0 = time.perf_counter()
        event = timed_transitions(net, vecs, delays=delays,
                                  engine="event")
        t_event = time.perf_counter() - t0

        # Warm the timed-compile cache; steady state is evaluation
        # plus the fingerprint re-verification of the base program.
        get_timed(net, delays)
        with phase(PHASE_SIM):
            t0 = time.perf_counter()
            for _ in range(repeats):
                compiled = timed_transitions(net, vecs, delays=delays,
                                             engine="compiled")
            t_compiled = (time.perf_counter() - t0) / repeats

        mismatch = sum(1 for k, c in event.items()
                       if compiled.get(k) != c)

        # A structural edit must invalidate the cached timed program.
        gate = next(n.name for n in net.nodes.values()
                    if n.kind == "gate" and n.gtype is GateType.AND)
        before = get_timed(net, delays).program
        net.nodes[gate].gtype = GateType.NAND
        recompiled = get_timed(net, delays).program is not before
        net.nodes[gate].gtype = GateType.AND

        rows.append([name, len(net.nodes), mismatch,
                     _checksum(compiled), int(recompiled),
                     t_event * 1e3, t_compiled * 1e3])

    # Clocked-sequential exactness (latch enables, init values).
    net = _seq_pipeline()
    rng = random.Random(seed + 1)
    svecs = [{f"i{k}": rng.getrandbits(1) for k in range(7)
              if rng.random() < 0.9} for _ in range(vectors)]
    t0 = time.perf_counter()
    event = timed_sequential_transitions(net, svecs, engine="event")
    t_event = time.perf_counter() - t0
    with phase(PHASE_SIM):
        t0 = time.perf_counter()
        for _ in range(repeats):
            compiled = timed_sequential_transitions(net, svecs,
                                                    engine="compiled")
        t_compiled = (time.perf_counter() - t0) / repeats
    mismatch = sum(1 for k, c in event.items() if compiled.get(k) != c)
    rows.append(["seq_pipe", len(net.nodes), mismatch,
                 _checksum(compiled), 1, t_event * 1e3,
                 t_compiled * 1e3])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(256, quick, floor=96)
    rows = timed_rows(vectors=vectors, seed=seed + 4)
    metrics = {}
    for (name, nodes, mismatch, checksum, recompiled,
         t_event, t_compiled) in rows:
        metrics[f"{name}.nodes"] = nodes
        metrics[f"{name}.mismatch_nodes"] = mismatch
        metrics[f"{name}.counts_checksum"] = checksum
        metrics[f"{name}.recompiled"] = recompiled
        metrics[f"{name}.event_ms"] = t_event
        metrics[f"{name}.compiled_ms"] = t_compiled
        metrics[f"{name}.speedup_x"] = \
            t_event / t_compiled if t_compiled else 0.0
    return {"metrics": metrics, "vectors": vectors}


def bench_timed_sim(benchmark):
    rows = benchmark.pedantic(timed_rows, rounds=1, iterations=1)
    emit("A7: compiled word-parallel vs event-driven timed simulation",
         format_table(
             ["circuit", "nodes", "mismatch", "checksum", "recompiled",
              "event ms", "compiled ms"], rows))
    for (name, nodes, mismatch, _cks, recompiled,
         t_event, t_compiled) in rows:
        assert mismatch == 0, f"{name}: timed engine not bit-exact"
        assert recompiled == 1, f"{name}: stale timed-compile cache"
        speedup = t_event / t_compiled
        if nodes >= 500:
            # The headline acceptance: ≥5x on a 500+-node circuit.
            assert speedup >= 5.0, f"{name}: only {speedup:.2f}x"
        else:
            assert speedup >= 2.0, f"{name}: only {speedup:.2f}x"
