"""Flow-engine gate: trace determinism and rollback behaviour.

The pass manager (repro.core.passes) must (1) produce bit-identical
traces across reruns at equal parameters, (2) roll back raising,
equivalence-breaking and power-regressing passes while the remaining
passes still run to a final, equivalent network, and (3) record guard
skips (the don't-care size cap) instead of silently omitting stages.
These are contracts, not tolerances — the CI compares this bench's
metrics against the baseline at ``--tol 0``.

With ``$REPRO_FLOW_TRACE`` set, the default flow's JSONL trace is
written there (the CI uploads it as a workflow artifact).
"""

import os

from repro.bench.profiling import PHASE_OPT, phase
from repro.core.flow import low_power_flow
from repro.core.passes import (ADOPTED, Pass, PassContext,
                               ROLLED_BACK, SKIPPED, make_pass,
                               run_network_passes)
from repro.core.report import format_table
from repro.logic.generators import ripple_carry_adder
from repro.logic.transform import to_sop_network
from repro.sim.functional import verify_equivalence

from conftest import bench_params, emit, scaled

CLAIMS = ()


def _bomb(net, ctx, params):
    raise RuntimeError("injected pass failure")


def _break_equivalence(net, ctx, params):
    node = net.nodes[net.outputs[0]]
    node.cover = node.cover.complement()
    net._invalidate()


def _regress_power(net, ctx, params):
    for node in net.nodes.values():
        if not node.is_source():
            node.attrs["size"] = 8.0
    net._invalidate()


def engine_exercise(vectors=256, seed=0):
    net = ripple_carry_adder(4)

    # 1. Default flow, twice: the trace fingerprint (wall times
    # excluded) must be identical, as must the final power.
    with phase(PHASE_OPT):
        res1 = low_power_flow(net, num_vectors=vectors, seed=seed)
        res2 = low_power_flow(net, num_vectors=vectors, seed=seed)
    deterministic = res1.trace.fingerprint() == res2.trace.fingerprint()

    # 2. Guard skip: a zero size cap must record the don't-care stage
    # as skipped (reason size-cap), not drop it from the history.
    with phase(PHASE_OPT):
        res_cap = low_power_flow(net, num_vectors=vectors, seed=seed,
                                 dontcare_size_cap=0)
    skips = [s for s in res_cap.stages if s.outcome == SKIPPED]
    skip_recorded = len(skips) == 1 and skips[0].reason == "size-cap"

    # 3. Hostile flow: three failing passes between two good ones.
    work = to_sop_network(net)
    ctx = PassContext(original=net, num_vectors=vectors, seed=seed)
    passes = [
        make_pass("extract"),
        Pass(name="bomb", apply=_bomb),
        Pass(name="breaker", apply=_break_equivalence),
        Pass(name="regressor", apply=_regress_power,
             max_power_regression=0.0),
        make_pass("map"),
    ]
    with phase(PHASE_OPT):
        final, trace, _ = run_network_passes(work, passes, ctx)
    outcomes = {r.name: r.outcome for r in trace.records}
    reasons = {r.name: r.reason for r in trace.records}
    survived = verify_equivalence(net, final, 512, seed)

    rows = [[r.name, r.outcome, r.reason or "-"]
            for r in trace.records]
    return {
        "deterministic": float(deterministic),
        "skip_recorded": float(skip_recorded),
        "final_power_uW": res1.stages[-1].report.total * 1e6,
        "stages_adopted": float(sum(
            1 for s in res1.stages[1:] if s.outcome == ADOPTED)),
        "rolled_back": float(sum(
            1 for o in outcomes.values() if o == ROLLED_BACK)),
        "bomb_rolled_back": float(
            outcomes.get("bomb") == ROLLED_BACK
            and reasons.get("bomb", "").startswith("exception")),
        "breaker_rolled_back": float(
            outcomes.get("breaker") == ROLLED_BACK
            and reasons.get("breaker") == "equivalence"),
        "regressor_rolled_back": float(
            outcomes.get("regressor") == ROLLED_BACK
            and reasons.get("regressor") == "power-regression"),
        "tail_pass_adopted": float(outcomes.get("map") == ADOPTED),
        "final_equivalent": float(survived),
    }, res1.trace, rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(512, quick, floor=256)
    metrics, default_trace, _rows = engine_exercise(vectors=vectors,
                                                    seed=seed)
    trace_out = os.environ.get("REPRO_FLOW_TRACE")
    if trace_out:
        default_trace.write(trace_out)
    return {"metrics": metrics, "vectors": vectors}


def bench_flow_engine(benchmark):
    metrics, _trace, rows = benchmark.pedantic(
        engine_exercise, rounds=1, iterations=1)
    emit("flow engine: outcome per pass of the hostile flow",
         format_table(["pass", "outcome", "reason"], rows))
    assert metrics["deterministic"] == 1.0
    assert metrics["skip_recorded"] == 1.0
    assert metrics["rolled_back"] == 3.0
    assert metrics["bomb_rolled_back"] == 1.0
    assert metrics["breaker_rolled_back"] == 1.0
    assert metrics["regressor_rolled_back"] == 1.0
    assert metrics["tail_pass_adopted"] == 1.0
    assert metrics["final_equivalent"] == 1.0
