"""E3 — Slack-driven transistor sizing (claim C4).

Paper (§II-B, [42]/[3]): starting from a sizing that meets the delay
constraint, downsizing zero-impact gates off the critical path saves
power at (nearly) no delay cost.  We size three netlists against their
all-max-size delay +5%.
"""

from repro.bench.profiling import PHASE_OPT, PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.generators import (array_multiplier, comparator,
                                    ripple_carry_adder)
from repro.opt.circuit.sizing import size_for_power
from repro.power.activity import activity_from_simulation

from conftest import bench_params, emit, scaled

CLAIMS = ("C4",)

CIRCUITS = [
    ("rca8", lambda: ripple_carry_adder(8)),
    ("cmp8", lambda: comparator(8)),
    ("mult4", lambda: array_multiplier(4)),
]


def sizing_sweep(vectors=512, seed=2):
    rows = []
    for name, make in CIRCUITS:
        net = make()
        with phase(PHASE_SIM):
            act, _ = activity_from_simulation(net, vectors, seed=seed)
        with phase(PHASE_OPT):
            res = size_for_power(net, act, apply=False)
        rows.append([name, res.power_before, res.power_after,
                     res.power_saving, res.delay_before,
                     res.delay_after, res.moves])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(512, quick)
    rows = sizing_sweep(vectors=vectors, seed=seed + 2)
    metrics = {}
    for name, _pb, _pa, saving, d_before, d_after, moves in rows:
        metrics[f"{name}.cap_saving"] = saving
        metrics[f"{name}.delay_ratio"] = (d_after / d_before
                                          if d_before else 1.0)
        metrics[f"{name}.moves"] = moves
    return {"metrics": metrics, "vectors": vectors}


def bench_transistor_sizing(benchmark):
    rows = benchmark.pedantic(sizing_sweep, rounds=2, iterations=1)
    emit("E3: slack-driven sizing (switched cap)", format_table(
        ["circuit", "cap before", "cap after", "saving",
         "delay before", "delay after", "moves"], rows))
    for row in rows:
        assert row[3] > 0.2, f"{row[0]} saved only {row[3]:.0%}"
        assert row[5] <= row[4] * 1.05 + 1e-9
