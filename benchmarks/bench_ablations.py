"""Ablations A2–A4 from DESIGN.md.

A2 — precomputation input selection: probability-greedy vs exhaustive.
A3 — encoding: greedy constructive vs simulated annealing.
A4 — residue coding: one-hot RNS wire flips vs the internal switching
     of a binary ripple adder on the same accumulation workload.
"""

import random

from repro.bench.profiling import PHASE_OPT, PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.generators import comparator, ripple_carry_adder
from repro.opt.datapath.residue import OneHotResidue
from repro.opt.seq.encoding import (encode_anneal, encode_greedy,
                                    encoding_cost)
from repro.opt.seq.precompute import (disable_probability,
                                      select_precompute_inputs)
from repro.opt.seq.stg import STG
from repro.sim.functional import simulate_transitions
from repro.sim.vectors import words_from_vectors

from conftest import bench_params, emit, scaled

CLAIMS = ()


def precompute_selection_rows():
    rows = []
    for n in (4, 5):
        net = comparator(n)
        with phase(PHASE_OPT):
            exhaustive = select_precompute_inputs(net, 2,
                                                  exhaustive_limit=99)
            greedy = select_precompute_inputs(net, 2,
                                              exhaustive_limit=0)
        p_ex = disable_probability(net, exhaustive)
        p_gr = disable_probability(net, greedy)
        rows.append([f"cmp{n}", "+".join(sorted(exhaustive)), p_ex,
                     "+".join(sorted(greedy)), p_gr])
    return rows


def encoding_rows(iterations=3000):
    rng = random.Random(3)
    rows = []
    for n in (8, 12):
        stg = STG(2, 1)
        states = [f"s{i}" for i in range(n)]
        for s in states:
            for k, t in enumerate(rng.sample(states, 4)):
                stg.add_transition(format(k, "02b"), s, t, "0")
        with phase(PHASE_OPT):
            greedy = encode_greedy(stg)
            anneal = encode_anneal(stg, iterations=iterations, seed=2)
        rows.append([f"rand{n}", encoding_cost(stg, greedy),
                     encoding_cost(stg, anneal)])
    return rows


def residue_rows(count=200):
    """Accumulator workload: binary adder internal transitions vs RNS
    one-hot wire flips (the proper [11] comparison: the RNS adder is a
    rotator with no carry chain)."""
    rng = random.Random(4)
    values = [rng.randrange(256) for _ in range(count)]
    # Binary side: 8-bit RCA accumulating; count all internal node
    # transitions via bit-parallel simulation of consecutive operands.
    net = ripple_carry_adder(8)
    acc = 0
    vectors = []
    for v in values:
        vec = {f"a{i}": (acc >> i) & 1 for i in range(8)}
        vec.update({f"b{i}": (v >> i) & 1 for i in range(8)})
        vec["cin"] = 0
        vectors.append(vec)
        acc = (acc + v) & 0xFF
    words = words_from_vectors(vectors)
    with phase(PHASE_SIM):
        tr = simulate_transitions(net, words, len(vectors))
    binary_internal = sum(t for name, t in tr.items()
                          if not net.nodes[name].is_source())
    # RNS side: one-hot digit flips of the accumulator value.
    ohr = OneHotResidue([3, 5, 7, 11])
    accs = []
    acc = 0
    for v in values:
        acc = (acc + v) % ohr.range
        accs.append(acc)
    rns_flips = ohr.stream_transitions(accs)
    return [["binary RCA8 (internal)", binary_internal],
            [f"one-hot RNS {ohr.moduli}", rns_flips]]


def run(params=None):
    quick, _seed = bench_params(params)
    iterations = scaled(3000, quick, floor=800)
    count = scaled(200, quick, floor=100)
    prows = precompute_selection_rows()
    erows = encoding_rows(iterations=iterations)
    rrows = residue_rows(count=count)
    metrics = {}
    for circuit, _ex, p_ex, _gr, p_gr in prows:
        metrics[f"precompute.{circuit}.p_disable_exhaustive"] = p_ex
        metrics[f"precompute.{circuit}.p_disable_greedy"] = p_gr
    for fsm, greedy_cost, anneal_cost in erows:
        metrics[f"encoding.{fsm}.greedy_cost"] = greedy_cost
        metrics[f"encoding.{fsm}.anneal_cost"] = anneal_cost
    metrics["residue.binary_transitions"] = rrows[0][1]
    metrics["residue.rns_transitions"] = rrows[1][1]
    return {"metrics": metrics, "vectors": count}


def bench_ablations(benchmark):
    prows = benchmark(precompute_selection_rows)
    emit("A2: precompute input selection", format_table(
        ["circuit", "exhaustive", "P(disable)", "greedy",
         "P(disable)"], prows))
    for row in prows:
        assert row[2] >= row[4] - 1e-9      # exhaustive >= greedy
        assert row[4] >= 0.9 * row[2]       # greedy close behind

    erows = encoding_rows()
    emit("A3: greedy vs annealed encoding (FF transitions/cycle)",
         format_table(["fsm", "greedy", "anneal"], erows))
    for row in erows:
        assert row[2] <= row[1] + 1e-9

    rrows = residue_rows()
    emit("A4: accumulate workload switching", format_table(
        ["datapath", "total transitions"], rrows))
    assert rrows[1][1] < rrows[0][1]
