"""E10 — Retiming for low power (claim C10, [29]).

Paper (§III-C.2): the switching activity at flip-flop *outputs* can be
far below the activity at their inputs, because the clock filters
spurious/noisy transitions.  Low-power retiming therefore moves
registers onto low-activity signals.  Workload: a glitchy XOR cascade
and four registered operands funnel into an AND tree; the original
design holds five registers on high-activity wires, and forward
retiming (at a relaxed period) collapses them into a single register on
the quiet output.
"""

import random

from repro.bench.profiling import (PHASE_EST, PHASE_OPT, PHASE_SIM,
                                   phase)
from repro.core.report import format_table
from repro.logic.gates import GateType
from repro.logic.netlist import Network
from repro.opt.seq.retime import (RetimingGraph, apply_retiming,
                                  low_power_retiming,
                                  min_period_retiming)
from repro.power.activity import sequential_activity
from repro.power.model import power_report
from repro.sim.event import timed_sequential_transitions
from repro.sim.functional import sequential_transitions

from conftest import bench_params, emit, scaled

CLAIMS = ("C10",)


def glitchy_pipeline(width=4):
    net = Network("gp")
    ins = net.add_inputs([f"i{k}" for k in range(2 * width)])
    noisy = ins[0]
    for k in range(1, width):
        noisy = net.add_gate(f"x{k}", GateType.XOR, [noisy, ins[k]])
    net.add_latch(noisy, "nq")                    # register on a noisy wire
    quiet = "nq"
    for k in range(width):
        reg = f"i{width + k}_r"
        net.add_latch(ins[width + k], reg)        # registered operands
        quiet = net.add_gate(f"a{k}", GateType.AND, [quiet, reg])
    o = net.add_gate("o", GateType.BUF, [quiet])
    net.set_output(o)
    return net


def retime_experiment(cycles=800, seed=11):
    net = glitchy_pipeline()
    graph = RetimingGraph(net)
    p0 = graph.clock_period()
    with phase(PHASE_OPT):
        _period, r_min = min_period_retiming(graph)

    rng = random.Random(seed)
    vecs = [{f"i{k}": rng.getrandbits(1) for k in range(8)}
            for _ in range(cycles)]
    with phase(PHASE_SIM):
        act = sequential_activity(net, vecs)
    relaxed = p0 + 4.0
    with phase(PHASE_OPT):
        r_lp = low_power_retiming(graph, relaxed, act)

    rows = []
    streams = {}
    for name, r in [("original", {v: 0 for v in graph.vertices}),
                    ("min-period", r_min),
                    ("low-power (relaxed P)", r_lp)]:
        net_r = apply_retiming(net, r)
        with phase(PHASE_SIM):
            _, trace = sequential_transitions(net_r, vecs)
        streams[name] = [t[net_r.outputs[0]] for t in trace]
        with phase(PHASE_EST):
            act_r = sequential_activity(net_r, vecs)
        rep = power_report(net_r, act_r)
        with phase(PHASE_SIM):
            timed = timed_sequential_transitions(net_r, vecs)
        cycles = max(1, len(vecs) - 1)
        timed_rep = power_report(
            net_r, {n: t / cycles for n, t in timed.items()})
        rows.append([name, graph.clock_period(r), len(net_r.latches),
                     graph.register_cost(r, act), rep.total * 1e6,
                     timed_rep.total * 1e6])
    # All variants must agree once the pipeline transient has flushed.
    for name in streams:
        assert streams["original"][8:] == streams[name][8:], name
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    cycles = scaled(800, quick, floor=200)
    rows = retime_experiment(cycles=cycles, seed=seed + 11)
    metrics = {}
    for key, row in zip(("original", "min_period", "low_power"), rows):
        metrics[f"{key}.period"] = row[1]
        metrics[f"{key}.registers"] = row[2]
        metrics[f"{key}.reg_cost"] = row[3]
        metrics[f"{key}.power_uW"] = row[4]
        metrics[f"{key}.timed_power_uW"] = row[5]
    return {"metrics": metrics, "vectors": cycles}


def bench_retiming(benchmark):
    rows = benchmark.pedantic(retime_experiment, rounds=2, iterations=1)
    emit("E10: retiming (period / registers / activity-weighted "
         "register cost / power)", format_table(
             ["variant", "period", "registers", "reg cost",
              "power uW", "timed power uW"], rows))
    by = {r[0]: r for r in rows}
    assert by["min-period"][1] <= by["original"][1]
    lp = by["low-power (relaxed P)"]
    orig = by["original"]
    # Registers migrate to the quiet output: fewer registers, much
    # lower activity-weighted register cost, lower measured power.
    assert lp[2] < orig[2]
    assert lp[3] < 0.5 * orig[3]
    assert lp[4] < orig[4]
    # The flip side of C10: registers also *filter* glitches.  The
    # low-power retiming keeps one register instead of five, so with
    # hazards counted its glitch surcharge (timed minus zero-delay
    # power) must exceed the original's — switching-activity savings
    # and glitch filtering pull register placement in opposite
    # directions.
    assert lp[5] - lp[4] > orig[5] - orig[4]
