"""Shared helpers for the experiment benches.

Every bench regenerates one table/claim from DESIGN.md's experiment
index (E1–E15 plus ablations).  Conventions:

* the *shape* of the claim is asserted (who wins, roughly by how much);
* the central computation runs under pytest-benchmark so wall-clock
  costs are tracked;
* the reproduced table is printed (visible with ``pytest -s`` and kept
  in EXPERIMENTS.md).
"""

import sys

import pytest

sys.stdout.reconfigure(line_buffering=True)


def emit(title: str, table: str) -> None:
    print(f"\n=== {title} ===\n{table}")
