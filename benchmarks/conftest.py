"""Shared helpers for the experiment benches.

Every bench regenerates one table/claim from DESIGN.md's experiment
index (E1–E15 plus ablations).  Conventions:

* the *shape* of the claim is asserted (who wins, roughly by how much);
* the central computation runs under pytest-benchmark so wall-clock
  costs are tracked;
* the reproduced table is printed (visible with ``pytest -s`` and kept
  in EXPERIMENTS.md);
* each module additionally exports ``CLAIMS`` and a
  ``run(params) -> dict`` entry point so the unified harness
  (``repro.bench``, ``python -m repro.tools.cli bench run``) can
  execute it headlessly, in parallel, and track its metrics in
  ``BENCH_*.json`` artifacts.

``run(params)`` contract: ``params`` is a plain dict understood via
:func:`bench_params` — ``{"quick": bool, "seed": int}`` — and the
return value is ``{"metrics": {str: number}, "vectors": int}``.  With
``seed=0`` the metrics reproduce the tables in EXPERIMENTS.md (each
bench offsets the harness seed by its historical constants).  Metric
keys ending in ``_ms``/``_s`` are wall-clock and exempt from
regression gating.
"""

import sys

sys.stdout.reconfigure(line_buffering=True)


def emit(title: str, table: str) -> None:
    print(f"\n=== {title} ===\n{table}")


def bench_params(params):
    """Decode a harness params dict into ``(quick, seed)``."""
    p = dict(params or {})
    return bool(p.get("quick", False)), int(p.get("seed", 0))


def scaled(n: int, quick: bool, floor: int = 8,
           divisor: int = 8) -> int:
    """Shrink a workload size in ``--quick`` mode (CI smoke runs)."""
    return n if not quick else max(floor, n // divisor)
