"""E11 — Gated clocks (claim C11, [9]/[4]).

Paper (§III-C.3): registers not updated every cycle can have their
clocks gated; for FSMs, the self-loop activation function of [4] stops
the state registers' clock whenever the machine idles.  We sweep the
self-loop probability (via input statistics) and report clock power and
total power, gated vs baseline.
"""

import random

from repro.bench.profiling import (PHASE_EST, PHASE_OPT, PHASE_SIM,
                                   phase)
from repro.core.report import format_table
from repro.opt.seq.encoding import encode_natural
from repro.opt.seq.gated_clock import (clock_power,
                                       self_loop_clock_gating)
from repro.opt.seq.stg import STG
from repro.power.activity import sequential_activity
from repro.power.model import power_report
from repro.sim.functional import sequential_transitions

from conftest import bench_params, emit, scaled

CLAIMS = ("C11",)


def idle_stg():
    """Moves only on input 11, otherwise self-loops."""
    stg = STG(2, 1)
    for i in range(4):
        s, nxt = f"s{i}", f"s{(i + 1) % 4}"
        out = "1" if i == 3 else "0"
        stg.add_transition("11", s, nxt, out)
        stg.add_transition("0-", s, s, out)
        stg.add_transition("10", s, s, out)
    return stg


def gating_sweep(cycles=800, seed=0):
    stg = idle_stg()
    with phase(PHASE_OPT):
        res = self_loop_clock_gating(stg, encode_natural(stg))
    rows = []
    for p_move, label in [(0.5, "moderate (p11=0.25)"),
                          (0.25, "idle (p11=0.06)")]:
        rng = random.Random(int(p_move * 100) + seed)
        vecs = []
        for _ in range(cycles):
            x0 = int(rng.random() < p_move)
            x1 = int(rng.random() < p_move)
            vecs.append({"x0": x0, "x1": x1})
        with phase(PHASE_SIM):
            _, tb = sequential_transitions(res.baseline, vecs)
            _, tg = sequential_transitions(res.network, vecs)
        assert [t["z0"] for t in tb] == [t["z0"] for t in tg]
        en_rate = sum(t["_fa_n"] for t in tg) / len(tg)
        with phase(PHASE_EST):
            pb = power_report(res.baseline,
                              sequential_activity(res.baseline, vecs))
            pg = power_report(res.network,
                              sequential_activity(res.network, vecs))
        ckb = clock_power(res.baseline, {})
        ckg = clock_power(res.network,
                          {l.output: en_rate
                           for l in res.network.latches})
        total_b = pb.total + ckb
        total_g = pg.total + ckg
        rows.append([label, en_rate, ckb * 1e6, ckg * 1e6,
                     total_b * 1e6, total_g * 1e6,
                     1 - total_g / total_b])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    cycles = scaled(800, quick, floor=200)
    rows = gating_sweep(cycles=cycles, seed=seed)
    metrics = {}
    for key, row in zip(("moderate", "idle"), rows):
        metrics[f"{key}.enable_rate"] = row[1]
        metrics[f"{key}.clock_power_gated_uW"] = row[3]
        metrics[f"{key}.saving"] = row[6]
    return {"metrics": metrics, "vectors": cycles}


def bench_gated_clock(benchmark):
    rows = benchmark.pedantic(gating_sweep, rounds=2, iterations=1)
    emit("E11: FSM self-loop clock gating", format_table(
        ["workload", "enable rate", "clk pwr base uW",
         "clk pwr gated uW", "total base uW", "total gated uW",
         "saving"], rows))
    moderate, idle = rows
    # Gated clock power tracks the enable rate; idler machines save
    # more overall.
    assert idle[1] < moderate[1]
    assert idle[3] < moderate[3]
    assert idle[6] > moderate[6]
    assert idle[6] > 0.03
