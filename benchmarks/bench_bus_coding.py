"""E9 — Bus-invert coding (claim C9, [39]).

Paper (§III-C.1): adding one invert line bounds the per-transfer
transitions to about n/2 and cuts the expected count on random data;
Gray coding wins on sequential addresses; limited-weight codes win on
skewed symbol distributions.
"""

import random

from repro.bench.profiling import PHASE_OPT, phase
from repro.core.report import format_table
from repro.opt.datapath.bus_coding import (bus_invert, gray_code_stream,
                                           limited_weight_code,
                                           partitioned_bus_invert)
from repro.sim.vectors import counter_bus_stream, random_bus_stream

from conftest import bench_params, emit, scaled

CLAIMS = ("C9",)


def coding_sweep(length=4000, seed=0):
    rows = []
    for width in (8, 16, 32):
        stream = random_bus_stream(width, length, seed=width + seed)
        bi = bus_invert(stream, width)
        rows.append([f"random w={width}", "bus-invert", bi.extra_lines,
                     bi.transitions_uncoded / (len(stream) - 1),
                     bi.per_transfer, bi.saving])
    s32 = random_bus_stream(32, length, seed=9 + seed)
    pb = partitioned_bus_invert(s32, 32, 4)
    rows.append(["random w=32", "bus-invert/4", pb.extra_lines,
                 pb.transitions_uncoded / (length - 1), pb.per_transfer,
                 pb.saving])
    addr = counter_bus_stream(16, length)
    gr = gray_code_stream(addr, 16)
    rows.append(["addresses w=16", "gray", 0,
                 gr.transitions_uncoded / (length - 1), gr.per_transfer,
                 gr.saving])
    rng = random.Random(4 + seed)
    skew = rng.choices([0xFF, 0x0F, 0xF0, 0x3C], [0.6, 0.2, 0.1, 0.1],
                       k=length)
    lw = limited_weight_code(skew, 8)
    rows.append(["skewed w=8", "limited-weight", lw.extra_lines,
                 lw.transitions_uncoded / (length - 1), lw.per_transfer,
                 lw.saving])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    length = scaled(4000, quick, floor=500)
    with phase(PHASE_OPT):
        rows = coding_sweep(length=length, seed=seed)
    metrics = {}
    for stream, scheme, _extra, _uncoded, per_xfer, saving in rows:
        key = (stream.replace(" ", "_").replace("=", "")
               + "." + scheme.replace("/", "_"))
        metrics[f"{key}.per_transfer"] = per_xfer
        metrics[f"{key}.saving"] = saving
    return {"metrics": metrics, "vectors": length}


def bench_bus_coding(benchmark):
    rows = benchmark(coding_sweep)
    emit("E9: bus coding (transitions per transfer)", format_table(
        ["stream", "scheme", "extra lines", "uncoded/xfer",
         "coded/xfer", "saving"], rows))
    by = {(r[0], r[1]): r for r in rows}
    # Narrower buses benefit more from a single invert line.
    assert by[("random w=8", "bus-invert")][5] > \
        by[("random w=32", "bus-invert")][5]
    # Expected ~18% at w=8 on i.i.d. data.
    assert 0.10 < by[("random w=8", "bus-invert")][5] < 0.25
    # Partitioning recovers the loss on wide buses.
    assert by[("random w=32", "bus-invert/4")][5] > \
        by[("random w=32", "bus-invert")][5]
    # Gray on addresses: one flip per transfer.
    assert by[("addresses w=16", "gray")][4] == 1.0
    assert by[("skewed w=8", "limited-weight")][5] > 0.3
